//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over numeric `Range`s, and
//! `SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand` uses for its small RNGs. The bit stream differs
//! from the real `StdRng` (ChaCha12), which is fine: every caller in this
//! workspace seeds explicitly and only relies on *within-build*
//! determinism, never on a particular stream.

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over half-open ranges.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open, `lo <= x < hi`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching `rand`'s contract.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly samplable from a `Range`.
pub trait SampleUniform: Sized {
    /// Draws one sample from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.abs_diff(range.start) as u64;
                let offset = rng.next_u64() % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                range.start + (rng.next_f64() as $t) * (range.end - range.start)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom::shuffle`.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
