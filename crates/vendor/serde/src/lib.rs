//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op derive macros and declares the two marker traits
//! so `use serde::{Deserialize, Serialize}` keeps resolving. The build
//! container has no registry access, so the real crate cannot be fetched;
//! nothing in this workspace performs actual serialization (the derives
//! exist so downstream users of the real serde can), which makes the
//! empty expansion sound.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never used as a bound here).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (never used as a bound here).
pub trait Deserialize<'de> {}
