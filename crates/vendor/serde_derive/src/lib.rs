//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as annotations —
//! nothing in the toolkit serializes at run time (there is no `serde_json`
//! or similar consumer), so the derives can expand to nothing. Keeping the
//! derive macros around (rather than stripping the annotations from ~30
//! files) preserves source compatibility with the real `serde` should the
//! build environment ever regain registry access.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
