//! Offline stand-in for the subset of `criterion` the bench targets use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is a plain min/mean over `sample_size` wall-clock samples —
//! enough to eyeball regressions locally; no statistics, plots, or
//! baseline storage.

use std::time::Instant;

/// Number of timed samples when the group does not override it.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&id.into(), DEFAULT_SAMPLE_SIZE, f);
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times one invocation of `routine` per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += 1;
        drop(out);
    }
}

fn run_one(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // One untimed warm-up pass.
    let mut warm = Bencher::default();
    f(&mut warm);
    let mut best = u128::MAX;
    let mut total: u128 = 0;
    let mut iters: u64 = 0;
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        if b.iters == 0 {
            continue;
        }
        let per_iter = b.elapsed_ns / b.iters as u128;
        best = best.min(per_iter);
        total += b.elapsed_ns;
        iters += b.iters;
    }
    if iters > 0 {
        let mean = total / iters as u128;
        println!(
            "bench {id:<40} mean {:>12.3} ms  best {:>12.3} ms  ({iters} iters)",
            mean as f64 / 1e6,
            best as f64 / 1e6,
        );
    }
}

/// Prevents the optimizer from discarding a value (forwards to `std`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
