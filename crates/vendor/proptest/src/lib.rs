//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` item macro with `arg in strategy` bindings,
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, numeric `Range`
//! strategies, and the `prop_assert!`/`prop_assert_eq!` family. Cases are
//! generated from a deterministic per-test PRNG (FNV-hashed test path ×
//! case index), so failures reproduce without a persistence file. No
//! shrinking is performed: the failing inputs are reported as drawn.

use std::fmt;
use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is tuned for cheap unit properties; the
        // heavier flow-level properties here override it downward anyway.
        ProptestConfig { cases: 64 }
    }
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case generator (SplitMix64 over a seeded counter).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u32) -> Self {
        // FNV-1a over the test path gives a stable per-test seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Only what the workspace needs: sampling; shrinking
/// is intentionally absent.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.abs_diff(self.start) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_strategy_float!(f32, f64);

/// Constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Everything test modules import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!("(", $(stringify!($arg), " = {:?}, ",)* ")"),
                    $(&$arg),*
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {} with inputs {}: {}",
                        stringify!($name),
                        __case,
                        __inputs,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($cfg:expr;) => {};
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assert_eq failed: {:?} != {:?}",
                __l, __r
            )));
        }
    }};
}

/// Fallible inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assert_ne failed: both sides are {:?}",
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn trailing_comma_and_eq(a in 0usize..4,) {
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
