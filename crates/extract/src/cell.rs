use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use m3d_geom::{LayerShape, ShapeSet};
use m3d_tech::{CellLayer, TechNode, Tier};

/// How the extractor models the doped top-tier silicon of a T-MI cell
/// (paper Section 3.2).
///
/// Calibre XRC can model only one diffusion layer, so the paper brackets
/// reality between two extremes; we reproduce both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopSiliconModel {
    /// Top-tier silicon treated as dielectric: electric field penetrates,
    /// so bottom-tier and top-tier conductors couple fully.
    /// *Over*-estimates coupling ("3D" column of Table 1).
    Dielectric,
    /// Top-tier silicon treated as a grounded conductor: it shields the
    /// tiers from each other; bottom-tier conductors see only a cap to
    /// ground. *Under*-estimates coupling ("3D-c" column of Table 1).
    Conductor,
}

/// Result of cell-internal extraction: per-electrical-node lumped R and C
/// plus the explicit inter-node coupling caps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CellExtraction {
    /// Lumped series resistance per electrical node, kΩ.
    pub node_r: BTreeMap<u32, f64>,
    /// Total capacitance per node (ground + its share of couplings), fF.
    pub node_c: BTreeMap<u32, f64>,
    /// Inter-node coupling capacitances `(node_a, node_b, fF)`.
    pub couplings: Vec<(u32, u32, f64)>,
}

impl CellExtraction {
    /// Total cell-internal resistance, kΩ — the figure the paper's Table 1
    /// reports per cell.
    pub fn total_r(&self) -> f64 {
        self.node_r.values().sum()
    }

    /// Total cell-internal capacitance, fF (coupling caps counted once per
    /// terminal, i.e. twice overall, matching a sum over net totals).
    pub fn total_c(&self) -> f64 {
        self.node_c.values().sum()
    }

    /// Resistance of one node, kΩ (0 when the node has no resistive shapes).
    pub fn r_of(&self, node: u32) -> f64 {
        self.node_r.get(&node).copied().unwrap_or(0.0)
    }

    /// Capacitance of one node, fF.
    pub fn c_of(&self, node: u32) -> f64 {
        self.node_c.get(&node).copied().unwrap_or(0.0)
    }
}

/// Vertical coupling coefficient between a bottom-tier and a top-tier
/// conductor separated by the inter-tier ILD, fF/µm² of overlap.
fn inter_tier_c_area(node: &TechNode) -> f64 {
    // Parallel plate: k * eps0 / d. eps0 = 8.854e-3 fF/µm.
    let d_um = node.ild_thickness as f64 * 1e-3;
    node.ild_k * 8.854e-3 / d_um
}

/// Extracts the cell-internal parasitic RC of a transistor-level layout.
///
/// The model, documented per component:
///
/// * **Resistance**: every planar shape contributes
///   `sheet_r * (length / width) / 2` to its node (the half factor is the
///   usual lumped approximation of a distributed line feeding side taps);
///   every cut shape (contact, via, MIV) contributes its per-cut
///   resistance. Cuts of the same node on the same layer that touch are
///   merged as parallel (contact arrays).
/// * **Ground capacitance**: planar shapes contribute
///   `c_area * area + c_fringe * perimeter`.
/// * **Inter-tier coupling** (T-MI only): overlapping bottom-tier /
///   top-tier conductor pairs couple through the inter-tier ILD with a
///   parallel-plate cap. Under [`TopSiliconModel::Dielectric`] the cap
///   connects the two nodes (counted in both nodes' totals); under
///   [`TopSiliconModel::Conductor`] the grounded silicon screens it and
///   each bottom shape instead gets a single cap to ground.
///
/// `shapes` whose node is [`LayerShape::FLOATING`] (wells, implants) are
/// ignored.
pub fn extract_cell(node: &TechNode, shapes: &ShapeSet, model: TopSiliconModel) -> CellExtraction {
    let mut ext = CellExtraction::default();

    let mut planar: Vec<&LayerShape> = Vec::new();
    for s in shapes {
        if s.node == LayerShape::FLOATING {
            continue;
        }
        let Some(layer) = CellLayer::from_index(s.layer) else {
            continue;
        };
        let props = layer.props(node);
        let r_entry = ext.node_r.entry(s.node).or_insert(0.0);
        let c_entry = ext.node_c.entry(s.node).or_insert(0.0);
        if props.is_cut {
            *r_entry += props.cut_r;
        } else {
            let w_um = (s.rect.width().min(s.rect.height()) as f64 * 1e-3).max(1e-4);
            let l_um = s.rect.width().max(s.rect.height()) as f64 * 1e-3;
            *r_entry += props.sheet_r * (l_um / w_um) * 0.5;
            let area_um2 = s.rect.area() as f64 * 1e-6;
            let perim_um = 2.0 * (s.rect.width() + s.rect.height()) as f64 * 1e-3;
            *c_entry += props.c_area * area_um2 + props.c_fringe * perim_um;
            planar.push(s);
        }
    }

    // Inter-tier vertical coupling for folded cells.
    let c_vert = inter_tier_c_area(node);
    let tier_of = |s: &LayerShape| CellLayer::from_index(s.layer).map(|l| l.props(node).tier);
    let mut bottom_grounded: BTreeMap<u32, f64> = BTreeMap::new();
    if model == TopSiliconModel::Conductor {
        for a in &planar {
            if tier_of(a) == Some(Tier::Bottom) {
                *bottom_grounded.entry(a.node).or_insert(0.0) +=
                    c_vert * a.rect.area() as f64 * 1e-6;
            }
        }
    }
    for (i, a) in planar.iter().enumerate() {
        if tier_of(a) != Some(Tier::Bottom) {
            continue;
        }
        if model == TopSiliconModel::Conductor {
            break;
        }
        for b in planar.iter().skip(i + 1) {
            if tier_of(b) != Some(Tier::Top) {
                continue;
            }
            // Fringing fields spread laterally about one ILD thickness, so
            // shapes that nearly overlap still couple: intersect the rects
            // inflated by the ILD thickness and derate the extra ring.
            let d = node.ild_thickness;
            let Some(ov) = a.rect.inflate(d).intersection(&b.rect.inflate(d)) else {
                continue;
            };
            let direct = a
                .rect
                .intersection(&b.rect)
                .map(|r| r.area() as f64 * 1e-6)
                .unwrap_or(0.0);
            let ring = (ov.area() as f64 * 1e-6 - direct).max(0.0);
            let area_um2 = direct + 0.05 * ring;
            if area_um2 <= 0.0 {
                continue;
            }
            let c = c_vert * area_um2;
            match model {
                TopSiliconModel::Dielectric => {
                    if a.node != b.node {
                        *ext.node_c.entry(a.node).or_insert(0.0) += c;
                        *ext.node_c.entry(b.node).or_insert(0.0) += c;
                        ext.couplings
                            .push((a.node.min(b.node), a.node.max(b.node), c));
                    }
                }
                TopSiliconModel::Conductor => {
                    // Handled below: the grounded plane couples each bottom
                    // shape over its full area, independent of top shapes.
                }
            }
        }
    }
    for (n, c) in bottom_grounded {
        *ext.node_c.entry(n).or_insert(0.0) += c;
    }
    ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_geom::{Point, Rect};

    fn wire(layer: CellLayer, node: u32, x: i64, y: i64, w: i64, h: i64) -> LayerShape {
        LayerShape::new(layer.index(), Rect::from_size(Point::new(x, y), w, h), node)
    }

    #[test]
    fn single_wire_r_and_c() {
        let tech = TechNode::n45();
        let mut s = ShapeSet::new();
        // 1 um long, 70 nm wide M1 wire on node 1.
        s.push(wire(CellLayer::Metal1, 1, 0, 0, 1000, 70));
        let e = extract_cell(&tech, &s, TopSiliconModel::Dielectric);
        let props = CellLayer::Metal1.props(&tech);
        let expect_r = props.sheet_r * (1.0 / 0.07) * 0.5;
        assert!((e.r_of(1) - expect_r).abs() < 1e-9);
        let expect_c = props.c_area * 0.07 + props.c_fringe * 2.14;
        assert!((e.c_of(1) - expect_c).abs() < 1e-9);
    }

    #[test]
    fn cuts_add_contact_resistance() {
        let tech = TechNode::n45();
        let mut s = ShapeSet::new();
        s.push(wire(CellLayer::Contact, 2, 0, 0, 70, 70));
        s.push(wire(CellLayer::Miv, 2, 0, 200, 70, 70));
        let e = extract_cell(&tech, &s, TopSiliconModel::Dielectric);
        assert!((e.r_of(2) - (tech.contact_resistance + tech.miv.resistance)).abs() < 1e-12);
        assert_eq!(e.c_of(2), 0.0);
    }

    #[test]
    fn floating_shapes_are_ignored() {
        let tech = TechNode::n45();
        let mut s = ShapeSet::new();
        s.push(LayerShape::floating(
            CellLayer::Metal1.index(),
            Rect::from_size(Point::ORIGIN, 500, 500),
        ));
        let e = extract_cell(&tech, &s, TopSiliconModel::Dielectric);
        assert!(e.node_c.is_empty() && e.node_r.is_empty());
    }

    #[test]
    fn dielectric_model_couples_tiers_conductor_screens() {
        let tech = TechNode::n45();
        let mut s = ShapeSet::new();
        // MB1 on node 1 below M1 on node 2, 0.5 x 0.1 um overlap.
        s.push(wire(CellLayer::MetalB1, 1, 0, 0, 500, 100));
        s.push(wire(CellLayer::Metal1, 2, 0, 0, 500, 100));
        let die = extract_cell(&tech, &s, TopSiliconModel::Dielectric);
        let con = extract_cell(&tech, &s, TopSiliconModel::Conductor);
        // Dielectric: coupling counted on both nodes -> higher total.
        assert!(die.total_c() > con.total_c());
        assert_eq!(die.couplings.len(), 1);
        assert!(con.couplings.is_empty());
        // The coupling is at least the direct parallel-plate value over
        // the 0.05 um^2 overlap, plus a bounded fringing ring.
        let c_vert = tech.ild_k * 8.854e-3 / (tech.ild_thickness as f64 * 1e-3);
        let plate = c_vert * 0.05;
        assert!(die.couplings[0].2 >= plate);
        assert!(die.couplings[0].2 <= plate * 1.5, "ring too large");
    }

    #[test]
    fn same_node_overlap_does_not_self_couple() {
        let tech = TechNode::n45();
        let mut s = ShapeSet::new();
        s.push(wire(CellLayer::MetalB1, 1, 0, 0, 500, 100));
        s.push(wire(CellLayer::Metal1, 1, 0, 0, 500, 100));
        let die = extract_cell(&tech, &s, TopSiliconModel::Dielectric);
        assert!(die.couplings.is_empty());
    }

    #[test]
    fn two_d_cell_is_model_insensitive() {
        // A 2D cell has no bottom-tier shapes: both silicon models agree.
        let tech = TechNode::n45();
        let mut s = ShapeSet::new();
        s.push(wire(CellLayer::Metal1, 1, 0, 0, 800, 70));
        s.push(wire(CellLayer::Poly, 2, 100, 0, 50, 1200));
        s.push(wire(CellLayer::Contact, 1, 0, 0, 70, 70));
        let die = extract_cell(&tech, &s, TopSiliconModel::Dielectric);
        let con = extract_cell(&tech, &s, TopSiliconModel::Conductor);
        assert_eq!(die, con);
    }
}
