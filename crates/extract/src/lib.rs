//! Parasitic RC extraction for the `monolith3d` toolkit.
//!
//! Two extraction engines live here, mirroring the two extraction steps of
//! the DAC'13 T-MI study:
//!
//! * [`extract_cell`] — cell-internal parasitics from a transistor-level
//!   layout ([`m3d_geom::ShapeSet`] over [`m3d_tech::CellLayer`]s). This is
//!   the toolkit's Calibre-XRC analogue, including the paper's two
//!   bracketing models for the top-tier silicon ([`TopSiliconModel`]):
//!   treating it as a *dielectric* over-estimates the coupling between
//!   bottom- and top-tier conductors, treating it as a grounded *conductor*
//!   under-estimates it ("the real case would be between these two extreme
//!   cases", Section 3.2). Table 1 of the paper is regenerated with this
//!   engine.
//! * [`extract_net`] — routed-net parasitics from per-layer wire lengths,
//!   using the capTable-derived unit RC of [`m3d_tech::WireRc`]. The STA
//!   and power engines consume the resulting [`NetParasitics`].
//!
//! # Example
//!
//! ```
//! use m3d_tech::{MetalStack, StackKind, TechNode};
//! use m3d_extract::extract_net;
//!
//! let node = TechNode::n45();
//! let stack = MetalStack::new(&node, StackKind::TwoD);
//! let m2 = stack.by_name("M2").expect("M2 exists").index;
//! let m7 = stack.by_name("M7").expect("M7 exists").index;
//! // A net with 12 um on M2 and 80 um on M7, 4 vias.
//! let p = extract_net(&node, &stack, &[(m2, 12.0), (m7, 80.0)], 4);
//! assert!(p.c_wire > 0.0 && p.r_wire > 0.0);
//! assert_eq!(p.length_um(), 92.0);
//! ```

mod cell;
mod net;

pub use cell::{extract_cell, CellExtraction, TopSiliconModel};
pub use net::{extract_net, try_extract_net, ExtractError, NetParasitics};
