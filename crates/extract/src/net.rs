use serde::{Deserialize, Serialize};

use m3d_tech::{MetalClass, MetalStack, TechNode, WireRc};

/// Lumped parasitics of one routed net.
///
/// The per-class length breakdown feeds the layer-usage reports (paper
/// Fig. 10) and the MB1-usage statistics of Section 3.3.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetParasitics {
    /// Total wire capacitance, fF.
    pub c_wire: f64,
    /// Total wire resistance driver-to-sink along the main trunk, kΩ.
    pub r_wire: f64,
    /// Wire length per metal class `[M1, local, intermediate, global]`, µm.
    pub class_len_um: [f64; 4],
    /// Number of via cuts on the net.
    pub via_count: u32,
}

impl NetParasitics {
    /// Total routed length, µm.
    pub fn length_um(&self) -> f64 {
        self.class_len_um.iter().sum()
    }

    /// Elmore delay contribution of the wire alone driving `c_load` fF:
    /// `R_wire * (C_wire/2 + C_load)`, ps.
    pub fn elmore_into(&self, c_load: f64) -> f64 {
        self.r_wire * (0.5 * self.c_wire + c_load)
    }

    /// Accumulates another segment bundle (used when a net is routed in
    /// several passes).
    pub fn merge(&mut self, other: &NetParasitics) {
        self.c_wire += other.c_wire;
        self.r_wire += other.r_wire;
        for (a, b) in self.class_len_um.iter_mut().zip(other.class_len_um) {
            *a += b;
        }
        self.via_count += other.via_count;
    }
}

/// Net-extraction failure: a routed segment the extractor cannot turn
/// into parasitics.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// A segment referenced a layer index outside the metal stack.
    LayerOutOfRange {
        /// The referenced stack layer index.
        layer: u16,
        /// Number of layers the stack actually has.
        stack_len: usize,
    },
    /// A segment length was negative or non-finite.
    BadSegmentLength {
        /// The segment's stack layer index.
        layer: u16,
        /// The offending length, µm.
        len_um: f64,
    },
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::LayerOutOfRange { layer, stack_len } => write!(
                f,
                "segment references layer {layer} but the stack has {stack_len} layers"
            ),
            ExtractError::BadSegmentLength { layer, len_um } => {
                write!(f, "segment on layer {layer} has invalid length {len_um} um")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

fn class_slot(class: MetalClass) -> usize {
    match class {
        MetalClass::M1 => 0,
        MetalClass::Local => 1,
        MetalClass::Intermediate => 2,
        MetalClass::Global => 3,
    }
}

/// Extracts lumped RC for a net routed as `segments` — `(stack layer index,
/// length in µm)` pairs — with `via_count` inter-layer cuts.
///
/// Resistance sums all segments in series (the trunk-path approximation:
/// multi-fanout nets are mostly trunk + short stubs on the routing grid);
/// capacitance sums all segments. Via resistance uses the node's per-cut
/// value.
///
/// # Panics
///
/// Panics if a segment references a layer index outside the stack; see
/// [`try_extract_net`] for the fallible form used by the supervised flow.
pub fn extract_net(
    node: &TechNode,
    stack: &MetalStack,
    segments: &[(u16, f64)],
    via_count: u32,
) -> NetParasitics {
    match try_extract_net(node, stack, segments, via_count) {
        Ok(p) => p,
        Err(e) => panic!("net extraction failed: {e}"),
    }
}

/// Fallible form of [`extract_net`].
///
/// # Errors
///
/// Returns [`ExtractError`] when a segment references a layer outside the
/// stack or carries a negative / non-finite length.
pub fn try_extract_net(
    node: &TechNode,
    stack: &MetalStack,
    segments: &[(u16, f64)],
    via_count: u32,
) -> Result<NetParasitics, ExtractError> {
    let mut p = NetParasitics {
        via_count,
        r_wire: node.via_resistance * via_count as f64,
        ..Default::default()
    };
    let layers = stack.layers();
    for &(layer_idx, len_um) in segments {
        let layer = layers
            .get(layer_idx as usize)
            .ok_or(ExtractError::LayerOutOfRange {
                layer: layer_idx,
                stack_len: layers.len(),
            })?;
        if !len_um.is_finite() || len_um < 0.0 {
            return Err(ExtractError::BadSegmentLength {
                layer: layer_idx,
                len_um,
            });
        }
        let rc = WireRc::for_layer(node, layer);
        p.c_wire += rc.capacitance(len_um);
        p.r_wire += rc.resistance(len_um);
        p.class_len_um[class_slot(layer.class)] += len_um;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::StackKind;

    fn ctx() -> (TechNode, MetalStack) {
        let node = TechNode::n45();
        let stack = MetalStack::new(&node, StackKind::Tmi);
        (node, stack)
    }

    #[test]
    fn empty_net_has_only_via_resistance() {
        let (node, stack) = ctx();
        let p = extract_net(&node, &stack, &[], 3);
        assert_eq!(p.c_wire, 0.0);
        assert!((p.r_wire - 3.0 * node.via_resistance).abs() < 1e-12);
        assert_eq!(p.length_um(), 0.0);
    }

    #[test]
    fn capacitance_scales_linearly_with_length() {
        let (node, stack) = ctx();
        let m2 = stack.by_name("M2").expect("M2").index;
        let p1 = extract_net(&node, &stack, &[(m2, 10.0)], 0);
        let p2 = extract_net(&node, &stack, &[(m2, 20.0)], 0);
        assert!((p2.c_wire / p1.c_wire - 2.0).abs() < 1e-9);
        assert!((p2.r_wire / p1.r_wire - 2.0).abs() < 1e-9);
    }

    #[test]
    fn class_breakdown_matches_segments() {
        let (node, stack) = ctx();
        let mb1 = stack.by_name("MB1").expect("MB1").index;
        let m4 = stack.by_name("M4").expect("M4").index;
        let m8 = stack.by_name("M8").expect("M8").index;
        let m10 = stack.by_name("M10").expect("M10").index;
        let p = extract_net(
            &node,
            &stack,
            &[(mb1, 1.0), (m4, 5.0), (m8, 7.0), (m10, 40.0)],
            6,
        );
        assert_eq!(p.class_len_um, [1.0, 5.0, 7.0, 40.0]);
        assert_eq!(p.length_um(), 53.0);
    }

    #[test]
    fn global_wire_has_lower_r_than_local() {
        let (node, stack) = ctx();
        let m2 = stack.by_name("M2").expect("M2").index;
        let m10 = stack.by_name("M10").expect("M10").index;
        let local = extract_net(&node, &stack, &[(m2, 100.0)], 0);
        let global = extract_net(&node, &stack, &[(m10, 100.0)], 0);
        assert!(global.r_wire < local.r_wire / 10.0);
    }

    #[test]
    fn elmore_grows_with_load() {
        let (node, stack) = ctx();
        let m4 = stack.by_name("M4").expect("M4").index;
        let p = extract_net(&node, &stack, &[(m4, 50.0)], 2);
        assert!(p.elmore_into(5.0) > p.elmore_into(1.0));
        assert!(p.elmore_into(0.0) > 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let (node, stack) = ctx();
        let m2 = stack.by_name("M2").expect("M2").index;
        let mut a = extract_net(&node, &stack, &[(m2, 10.0)], 1);
        let b = extract_net(&node, &stack, &[(m2, 5.0)], 2);
        a.merge(&b);
        assert_eq!(a.via_count, 3);
        assert!((a.class_len_um[1] - 15.0).abs() < 1e-12);
    }
}
