use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Nm, NmArea, Point};

/// An axis-aligned rectangle on the nanometre grid.
///
/// Stored as the lower-left (`lo`) and upper-right (`hi`) corners with the
/// invariant `lo.x <= hi.x && lo.y <= hi.y`; [`Rect::new`] normalizes its
/// arguments so the invariant always holds. A rectangle may be degenerate
/// (zero width and/or height), which is useful for representing points and
/// wire centrelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates the rectangle spanning the two corner points (in any order).
    ///
    /// ```
    /// use m3d_geom::{Point, Rect};
    /// let r = Rect::new(Point::new(10, 20), Point::new(0, 5));
    /// assert_eq!(r.lo(), Point::new(0, 5));
    /// assert_eq!(r.hi(), Point::new(10, 20));
    /// ```
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from its lower-left corner plus a size.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is negative.
    #[inline]
    pub fn from_size(lo: Point, w: Nm, h: Nm) -> Self {
        assert!(w >= 0 && h >= 0, "rectangle size must be non-negative");
        Rect {
            lo,
            hi: Point::new(lo.x + w, lo.y + h),
        }
    }

    /// The lower-left corner.
    #[inline]
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// The upper-right corner.
    #[inline]
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Width in nanometres (always non-negative).
    #[inline]
    pub fn width(&self) -> Nm {
        self.hi.x - self.lo.x
    }

    /// Height in nanometres (always non-negative).
    #[inline]
    pub fn height(&self) -> Nm {
        self.hi.y - self.lo.y
    }

    /// Exact area in nm².
    #[inline]
    pub fn area(&self) -> NmArea {
        self.width() as NmArea * self.height() as NmArea
    }

    /// Half-perimeter, the HPWL contribution of this bounding box.
    #[inline]
    pub fn half_perimeter(&self) -> Nm {
        self.width() + self.height()
    }

    /// Centre point, rounded toward the lower-left grid point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.lo.x + self.width() / 2, self.lo.y + self.height() / 2)
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Returns `true` when the closed rectangles share at least one point.
    #[inline]
    pub fn touches(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// The overlapping region, if the rectangles overlap with positive area
    /// or share an edge/corner (degenerate overlap is returned too).
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.touches(other) {
            return None;
        }
        Some(Rect {
            lo: Point::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            hi: Point::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        })
    }

    /// The smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Grows the rectangle by `margin` on every side (shrinks when negative).
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the rectangle.
    #[inline]
    pub fn inflate(&self, margin: Nm) -> Rect {
        let r = Rect {
            lo: Point::new(self.lo.x - margin, self.lo.y - margin),
            hi: Point::new(self.hi.x + margin, self.hi.y + margin),
        };
        assert!(
            r.lo.x <= r.hi.x && r.lo.y <= r.hi.y,
            "inflate margin {margin} inverts rectangle"
        );
        r
    }

    /// Translates the rectangle by the vector `d`.
    #[inline]
    pub fn translate(&self, d: Point) -> Rect {
        Rect {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// The smallest rectangle containing every point of `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect {
            lo: first,
            hi: first,
        };
        for p in it {
            r.lo.x = r.lo.x.min(p.x);
            r.lo.y = r.lo.y.min(p.y);
            r.hi.x = r.hi.x.max(p.x);
            r.hi.y = r.hi.y.max(p.y);
        }
        Some(r)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(Point::new(5, -2), Point::new(-1, 9));
        assert_eq!(r.lo(), Point::new(-1, -2));
        assert_eq!(r.hi(), Point::new(5, 9));
        assert_eq!(r.width(), 6);
        assert_eq!(r.height(), 11);
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let a = Rect::from_size(Point::new(0, 0), 10, 10);
        let b = Rect::from_size(Point::new(20, 20), 5, 5);
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn shared_edge_gives_degenerate_intersection() {
        let a = Rect::from_size(Point::new(0, 0), 10, 10);
        let b = Rect::from_size(Point::new(10, 0), 10, 10);
        let i = a.intersection(&b).expect("edges touch");
        assert_eq!(i.width(), 0);
        assert_eq!(i.area(), 0);
    }

    #[test]
    fn bounding_covers_all_points() {
        let pts = [Point::new(3, 1), Point::new(-5, 7), Point::new(0, 0)];
        let r = Rect::bounding(pts).expect("non-empty");
        for p in pts {
            assert!(r.contains(p));
        }
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    proptest! {
        #[test]
        fn intersection_is_contained_in_both(
            ax in -1000i64..1000, ay in -1000i64..1000, aw in 0i64..500, ah in 0i64..500,
            bx in -1000i64..1000, by in -1000i64..1000, bw in 0i64..500, bh in 0i64..500,
        ) {
            let a = Rect::from_size(Point::new(ax, ay), aw, ah);
            let b = Rect::from_size(Point::new(bx, by), bw, bh);
            if let Some(i) = a.intersection(&b) {
                prop_assert!(i.area() <= a.area());
                prop_assert!(i.area() <= b.area());
                prop_assert!(a.contains(i.lo()) && a.contains(i.hi()));
                prop_assert!(b.contains(i.lo()) && b.contains(i.hi()));
            }
        }

        #[test]
        fn union_contains_both(
            ax in -1000i64..1000, ay in -1000i64..1000, aw in 0i64..500, ah in 0i64..500,
            bx in -1000i64..1000, by in -1000i64..1000, bw in 0i64..500, bh in 0i64..500,
        ) {
            let a = Rect::from_size(Point::new(ax, ay), aw, ah);
            let b = Rect::from_size(Point::new(bx, by), bw, bh);
            let u = a.union(&b);
            prop_assert!(u.contains(a.lo()) && u.contains(a.hi()));
            prop_assert!(u.contains(b.lo()) && u.contains(b.hi()));
            prop_assert!(u.area() >= a.area().max(b.area()));
        }

        #[test]
        fn intersection_commutes(
            ax in -100i64..100, ay in -100i64..100, aw in 0i64..80, ah in 0i64..80,
            bx in -100i64..100, by in -100i64..100, bw in 0i64..80, bh in 0i64..80,
        ) {
            let a = Rect::from_size(Point::new(ax, ay), aw, ah);
            let b = Rect::from_size(Point::new(bx, by), bw, bh);
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        }
    }
}
