use serde::{Deserialize, Serialize};

use crate::{Point, Rect};

/// Placement orientation of a cell instance, following the DEF convention.
///
/// Standard-cell rows alternate between `N` and `FS` so that neighbouring
/// rows can share power rails; the placer in `m3d-place` assigns these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Orient {
    /// North: no transformation.
    #[default]
    N,
    /// Flipped south: mirrored about the x-axis.
    FS,
    /// South: rotated 180 degrees.
    S,
    /// Flipped north: mirrored about the y-axis.
    FN,
}

impl Orient {
    /// Applies the orientation to a point inside a cell of size `w` x `h`,
    /// keeping the result within the cell's positive quadrant.
    ///
    /// ```
    /// use m3d_geom::{Orient, Point};
    /// // A pin at (10, 20) in a 100x70 cell, flipped south:
    /// assert_eq!(Orient::FS.apply(Point::new(10, 20), 100, 70), Point::new(10, 50));
    /// ```
    pub fn apply(self, p: Point, w: i64, h: i64) -> Point {
        match self {
            Orient::N => p,
            Orient::FS => Point::new(p.x, h - p.y),
            Orient::S => Point::new(w - p.x, h - p.y),
            Orient::FN => Point::new(w - p.x, p.y),
        }
    }

    /// Applies the orientation to a rectangle inside a cell of size `w` x `h`.
    pub fn apply_rect(self, r: Rect, w: i64, h: i64) -> Rect {
        Rect::new(self.apply(r.lo(), w, h), self.apply(r.hi(), w, h))
    }

    /// The inverse orientation (all four are self-inverse).
    pub fn inverse(self) -> Orient {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientations_are_involutions() {
        let p = Point::new(13, 29);
        for o in [Orient::N, Orient::FS, Orient::S, Orient::FN] {
            assert_eq!(o.apply(o.apply(p, 100, 70), 100, 70), p, "{o:?}");
        }
    }

    #[test]
    fn rect_transform_preserves_area() {
        let r = Rect::new(Point::new(5, 10), Point::new(30, 40));
        for o in [Orient::N, Orient::FS, Orient::S, Orient::FN] {
            assert_eq!(o.apply_rect(r, 100, 70).area(), r.area(), "{o:?}");
        }
    }
}
