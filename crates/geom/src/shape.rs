use serde::{Deserialize, Serialize};

use crate::{Nm, NmArea, Rect};

/// A rectangle tagged with the layer it is drawn on and, optionally, the
/// electrical node it belongs to.
///
/// Layers are identified by an opaque `u16` index assigned by the technology
/// (see `m3d-tech`); this crate stays technology-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerShape {
    /// Technology layer index.
    pub layer: u16,
    /// The drawn rectangle.
    pub rect: Rect,
    /// Electrical node id inside the owning cell (`u32::MAX` = floating).
    pub node: u32,
}

impl LayerShape {
    /// A shape not attached to any electrical node (e.g. well or implant).
    pub const FLOATING: u32 = u32::MAX;

    /// Creates a shape on `layer` connected to electrical `node`.
    pub fn new(layer: u16, rect: Rect, node: u32) -> Self {
        LayerShape { layer, rect, node }
    }

    /// Creates an electrically floating shape.
    pub fn floating(layer: u16, rect: Rect) -> Self {
        LayerShape {
            layer,
            rect,
            node: Self::FLOATING,
        }
    }
}

/// An ordered collection of [`LayerShape`]s, the geometric body of a cell
/// layout or a routed net.
///
/// ```
/// use m3d_geom::{LayerShape, Point, Rect, ShapeSet};
///
/// let mut s = ShapeSet::new();
/// s.push(LayerShape::new(0, Rect::from_size(Point::ORIGIN, 100, 70), 1));
/// s.push(LayerShape::new(1, Rect::from_size(Point::new(30, 0), 70, 70), 1));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.area_on_layer(0), 7_000);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShapeSet {
    shapes: Vec<LayerShape>,
}

impl ShapeSet {
    /// Creates an empty shape set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a shape.
    pub fn push(&mut self, shape: LayerShape) {
        self.shapes.push(shape);
    }

    /// Number of shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// `true` when the set holds no shapes.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Iterates over the shapes in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, LayerShape> {
        self.shapes.iter()
    }

    /// All shapes on the given layer.
    pub fn on_layer(&self, layer: u16) -> impl Iterator<Item = &LayerShape> {
        self.shapes.iter().filter(move |s| s.layer == layer)
    }

    /// All shapes belonging to the given electrical node.
    pub fn on_node(&self, node: u32) -> impl Iterator<Item = &LayerShape> {
        self.shapes.iter().filter(move |s| s.node == node)
    }

    /// Total drawn area on a layer in nm² (overlaps double-counted; the
    /// layouts built by `m3d-cells` keep same-layer shapes disjoint).
    pub fn area_on_layer(&self, layer: u16) -> NmArea {
        self.on_layer(layer).map(|s| s.rect.area()).sum()
    }

    /// The bounding box of the whole set, or `None` when empty.
    pub fn bounding_box(&self) -> Option<Rect> {
        let mut it = self.shapes.iter();
        let first = it.next()?.rect;
        Some(it.fold(first, |acc, s| acc.union(&s.rect)))
    }

    /// Total wire length on a layer: for each shape the longer side is taken
    /// as the run length. This matches how routers measure per-layer metal
    /// usage.
    pub fn run_length_on_layer(&self, layer: u16) -> Nm {
        self.on_layer(layer)
            .map(|s| s.rect.width().max(s.rect.height()))
            .sum()
    }
}

impl FromIterator<LayerShape> for ShapeSet {
    fn from_iter<I: IntoIterator<Item = LayerShape>>(iter: I) -> Self {
        ShapeSet {
            shapes: iter.into_iter().collect(),
        }
    }
}

impl Extend<LayerShape> for ShapeSet {
    fn extend<I: IntoIterator<Item = LayerShape>>(&mut self, iter: I) {
        self.shapes.extend(iter);
    }
}

impl IntoIterator for ShapeSet {
    type Item = LayerShape;
    type IntoIter = std::vec::IntoIter<LayerShape>;
    fn into_iter(self) -> Self::IntoIter {
        self.shapes.into_iter()
    }
}

impl<'a> IntoIterator for &'a ShapeSet {
    type Item = &'a LayerShape;
    type IntoIter = std::slice::Iter<'a, LayerShape>;
    fn into_iter(self) -> Self::IntoIter {
        self.shapes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn sample() -> ShapeSet {
        let mut s = ShapeSet::new();
        s.push(LayerShape::new(
            0,
            Rect::from_size(Point::new(0, 0), 10, 10),
            1,
        ));
        s.push(LayerShape::new(
            0,
            Rect::from_size(Point::new(20, 0), 5, 10),
            2,
        ));
        s.push(LayerShape::new(
            3,
            Rect::from_size(Point::new(0, 20), 100, 4),
            1,
        ));
        s
    }

    #[test]
    fn per_layer_queries() {
        let s = sample();
        assert_eq!(s.on_layer(0).count(), 2);
        assert_eq!(s.area_on_layer(0), 150);
        assert_eq!(s.area_on_layer(3), 400);
        assert_eq!(s.area_on_layer(7), 0);
    }

    #[test]
    fn per_node_queries() {
        let s = sample();
        assert_eq!(s.on_node(1).count(), 2);
        assert_eq!(s.on_node(2).count(), 1);
    }

    #[test]
    fn bounding_box_spans_all() {
        let s = sample();
        let bb = s.bounding_box().expect("non-empty");
        assert_eq!(bb.lo(), Point::new(0, 0));
        assert_eq!(bb.hi(), Point::new(100, 24));
        assert!(ShapeSet::new().bounding_box().is_none());
    }

    #[test]
    fn run_length_uses_longer_side() {
        let s = sample();
        // Layer 3 shape is a 100x4 wire: run length 100.
        assert_eq!(s.run_length_on_layer(3), 100);
        // Layer 0 shapes are 10x10 and 5x10: longer sides 10 + 10.
        assert_eq!(s.run_length_on_layer(0), 20);
    }

    #[test]
    fn collect_and_extend() {
        let v: Vec<LayerShape> = sample().into_iter().collect();
        let mut s: ShapeSet = v.iter().copied().collect();
        s.extend(v);
        assert_eq!(s.len(), 6);
    }
}
