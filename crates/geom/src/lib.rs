//! Fixed-point nanometre geometry for the `monolith3d` EDA toolkit.
//!
//! All layout geometry in the toolkit is expressed on an integer nanometre
//! grid, mirroring the database units used by real layout databases (GDSII
//! uses a 1 nm or finer grid). Integer coordinates make overlap and area
//! arithmetic exact, which matters for the parasitic extractor built on top
//! of this crate.
//!
//! # Example
//!
//! ```
//! use m3d_geom::{Point, Rect};
//!
//! let a = Rect::new(Point::new(0, 0), Point::new(100, 50));
//! let b = Rect::new(Point::new(60, 10), Point::new(160, 80));
//! let overlap = a.intersection(&b).expect("rectangles overlap");
//! assert_eq!(overlap.width(), 40);
//! assert_eq!(overlap.height(), 40);
//! ```

mod point;
mod rect;
mod shape;
mod transform;

pub use point::Point;
pub use rect::Rect;
pub use shape::{LayerShape, ShapeSet};
pub use transform::Orient;

/// A length on the integer nanometre grid.
pub type Nm = i64;

/// Squared-nanometre area. `i128` so that chip-scale rectangles
/// (hundreds of micrometres on a side) never overflow.
pub type NmArea = i128;

/// Converts a nanometre length to micrometres.
///
/// ```
/// assert!((m3d_geom::nm_to_um(1400) - 1.4).abs() < 1e-12);
/// ```
#[inline]
pub fn nm_to_um(nm: Nm) -> f64 {
    nm as f64 * 1e-3
}

/// Converts a micrometre length to the nearest nanometre grid point.
///
/// ```
/// assert_eq!(m3d_geom::um_to_nm(0.84), 840);
/// ```
#[inline]
pub fn um_to_nm(um: f64) -> Nm {
    (um * 1e3).round() as Nm
}

/// Converts an exact nm^2 area to um^2.
#[inline]
pub fn area_to_um2(area: NmArea) -> f64 {
    area as f64 * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        for nm in [0, 1, 70, 840, 1400, 457_830] {
            assert_eq!(um_to_nm(nm_to_um(nm)), nm);
        }
    }

    #[test]
    fn area_conversion_matches_manual() {
        // 1.4 um x 1.0 um cell = 1.4 um^2.
        let area: NmArea = 1400 * 1000;
        assert!((area_to_um2(area) - 1.4).abs() < 1e-12);
    }
}
