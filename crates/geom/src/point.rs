use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use crate::Nm;

/// A point on the integer nanometre grid.
///
/// ```
/// use m3d_geom::Point;
/// let p = Point::new(3, 4) + Point::new(1, -4);
/// assert_eq!(p, Point::new(4, 0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate in nanometres.
    pub x: Nm,
    /// Vertical coordinate in nanometres.
    pub y: Nm,
}

impl Point {
    /// Creates a point at `(x, y)` nanometres.
    #[inline]
    pub const fn new(x: Nm, y: Nm) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Manhattan (L1) distance to `other`, in nanometres.
    ///
    /// This is the natural wirelength metric on a rectilinear routing grid.
    ///
    /// ```
    /// use m3d_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan(Point::new(3, 4)), 7);
    /// ```
    #[inline]
    pub fn manhattan(self, other: Point) -> Nm {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`, in (fractional) nanometres.
    #[inline]
    pub fn euclidean(self, other: Point) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        dx.hypot(dy)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_vectors() {
        let a = Point::new(10, -3);
        let b = Point::new(-4, 8);
        assert_eq!(a + b, Point::new(6, 5));
        assert_eq!(a - b, Point::new(14, -11));
        assert_eq!(-(a - b), b - a);
    }

    #[test]
    fn manhattan_is_symmetric_and_triangle() {
        let a = Point::new(0, 0);
        let b = Point::new(5, 9);
        let c = Point::new(-3, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert!(a.manhattan(b) <= a.manhattan(c) + c.manhattan(b));
    }

    #[test]
    fn euclidean_never_exceeds_manhattan() {
        let a = Point::new(-7, 11);
        let b = Point::new(13, -2);
        assert!(a.euclidean(b) <= a.manhattan(b) as f64 + 1e-9);
    }
}
