//! AES-128 round engine: registered state and key, one encrypt round and
//! one decrypt round of combinational logic (S-boxes, MixColumns,
//! AddRoundKey) plus on-the-fly key schedule — an iterative AES core with
//! both directions, which is what gives the benchmark its ~10-14k cells
//! at a one-round critical path (closable at the paper's 0.8 ns).

use m3d_cells::{CellFunction, CellLibrary};

use crate::{NetId, Netlist, NetlistBuilder};

use super::BenchScale;

/// Composite-field-style S-box: an 8-bit substitution network with the
/// gate mix and depth of a Canright-style GF(2^4) tower implementation
/// (~110 gates: linear in/out layers in XOR, a multiplicative core in
/// AND/XOR/NOR).
fn sbox(b: &mut NetlistBuilder<'_>, x: &[NetId]) -> Vec<NetId> {
    debug_assert_eq!(x.len(), 8);
    // Input linear layer: basis change into the tower field.
    let mut lin = Vec::with_capacity(8);
    for i in 0..8 {
        let t = b.gate(CellFunction::Xor2, &[x[i], x[(i + 3) % 8]]);
        lin.push(b.gate(CellFunction::Xor2, &[t, x[(i + 5) % 8]]));
    }
    let (hi, lo) = lin.split_at(4);
    // GF(2^4) squares and products.
    let sq: Vec<NetId> = (0..4)
        .map(|i| b.gate(CellFunction::Xor2, &[hi[i], lo[i]]))
        .collect();
    let mut prod = Vec::with_capacity(8);
    for i in 0..4 {
        for j in 0..2 {
            prod.push(b.gate(CellFunction::And2, &[hi[i], lo[(i + j) % 4]]));
        }
    }
    // Shared inversion core in GF(2^4).
    let mut core = Vec::with_capacity(4);
    for i in 0..4 {
        let t1 = b.gate(CellFunction::Xor2, &[prod[2 * i], prod[2 * i + 1]]);
        let t2 = b.gate(CellFunction::Nor2, &[sq[i], t1]);
        let t3 = b.gate(CellFunction::Xor2, &[t2, sq[(i + 1) % 4]]);
        core.push(t3);
    }
    // Output multipliers back into GF(2^8).
    let mut out_pre = Vec::with_capacity(8);
    for i in 0..4 {
        out_pre.push(b.gate(CellFunction::And2, &[core[i], hi[i]]));
        out_pre.push(b.gate(CellFunction::And2, &[core[i], lo[i]]));
    }
    // Output linear layer + affine constant (inverters on selected bits).
    let mut out = Vec::with_capacity(8);
    for i in 0..8 {
        let t = b.gate(CellFunction::Xor2, &[out_pre[i], out_pre[(i + 2) % 8]]);
        let u = b.gate(CellFunction::Xor2, &[t, lin[(i + 1) % 8]]);
        out.push(if i % 3 == 0 {
            b.gate(CellFunction::Inv, &[u])
        } else {
            u
        });
    }
    out
}

/// GF(2^8) xtime (multiply by 2 modulo the AES polynomial) on a byte.
fn xtime(b: &mut NetlistBuilder<'_>, byte: &[NetId]) -> Vec<NetId> {
    debug_assert_eq!(byte.len(), 8);
    let msb = byte[7];
    let mut out = Vec::with_capacity(8);
    // Shift left; bits 0,3,4 absorb the reduction polynomial via XOR with
    // the shifted-out MSB (0x1B taps at 0, 1, 3, 4).
    out.push(msb); // bit0 = msb (shifted-in reduction)
    for i in 1..8 {
        let prev = byte[i - 1];
        if i == 1 || i == 3 || i == 4 {
            out.push(b.gate(CellFunction::Xor2, &[prev, msb]));
        } else {
            out.push(prev);
        }
    }
    out
}

/// MixColumns on one 4-byte column.
fn mix_column(b: &mut NetlistBuilder<'_>, col: &[Vec<NetId>]) -> Vec<Vec<NetId>> {
    debug_assert_eq!(col.len(), 4);
    let doubled: Vec<Vec<NetId>> = col.iter().map(|byte| xtime(b, byte)).collect();
    let mut out = Vec::with_capacity(4);
    for r in 0..4 {
        // out[r] = 2*a[r] ^ 3*a[r+1] ^ a[r+2] ^ a[r+3]
        //        = 2*a[r] ^ 2*a[r+1] ^ a[r+1] ^ a[r+2] ^ a[r+3].
        let mut byte = Vec::with_capacity(8);
        for bit in 0..8 {
            let t1 = b.gate(
                CellFunction::Xor2,
                &[doubled[r][bit], doubled[(r + 1) % 4][bit]],
            );
            let t2 = b.gate(
                CellFunction::Xor2,
                &[col[(r + 1) % 4][bit], col[(r + 2) % 4][bit]],
            );
            let t3 = b.gate(CellFunction::Xor2, &[t1, t2]);
            byte.push(b.gate(CellFunction::Xor2, &[t3, col[(r + 3) % 4][bit]]));
        }
        out.push(byte);
    }
    out
}

/// One AES round over `sboxes` bytes of state: SubBytes, ShiftRows
/// (re-wiring), MixColumns, AddRoundKey.
fn round(b: &mut NetlistBuilder<'_>, state: &[Vec<NetId>], key: &[Vec<NetId>]) -> Vec<Vec<NetId>> {
    let n = state.len();
    // SubBytes.
    let subbed: Vec<Vec<NetId>> = state.iter().map(|byte| sbox(b, byte)).collect();
    // ShiftRows: byte permutation (row r rotates by r).
    let shifted: Vec<Vec<NetId>> = (0..n)
        .map(|i| {
            let row = i % 4;
            let col = i / 4;
            let cols = n / 4;
            subbed[((col + row) % cols) * 4 + row].clone()
        })
        .collect();
    // MixColumns per 4-byte column.
    let mut mixed = Vec::with_capacity(n);
    for c in 0..n / 4 {
        let col: Vec<Vec<NetId>> = (0..4).map(|r| shifted[c * 4 + r].clone()).collect();
        mixed.extend(mix_column(b, &col));
    }
    // AddRoundKey.
    mixed
        .iter()
        .zip(key)
        .map(|(byte, kbyte)| {
            byte.iter()
                .zip(kbyte)
                .map(|(&s, &k)| b.gate(CellFunction::Xor2, &[s, k]))
                .collect()
        })
        .collect()
}

/// Key schedule step: rotate+sub the last word, XOR chain across words.
fn key_schedule(b: &mut NetlistBuilder<'_>, key: &[Vec<NetId>]) -> Vec<Vec<NetId>> {
    let n = key.len();
    let words = n / 4;
    // g = SubBytes(RotWord(last word)).
    let mut g: Vec<Vec<NetId>> = (0..4)
        .map(|r| key[(words - 1) * 4 + (r + 1) % 4].clone())
        .collect();
    g = g.iter().map(|byte| sbox(b, byte)).collect();
    let mut out: Vec<Vec<NetId>> = Vec::with_capacity(n);
    for w in 0..words {
        for r in 0..4 {
            let prev: &Vec<NetId> = if w == 0 { &g[r] } else { &out[(w - 1) * 4 + r] };
            let cur = &key[w * 4 + r];
            let byte: Vec<NetId> = cur
                .iter()
                .zip(prev)
                .map(|(&a, &p)| b.gate(CellFunction::Xor2, &[a, p]))
                .collect();
            out.push(byte);
        }
    }
    out
}

/// Generates the AES benchmark.
pub fn generate(lib: &CellLibrary, scale: BenchScale) -> Netlist {
    // Bytes of state: 16 at paper scale (128-bit), 4 for tests. Three
    // independent engines at paper scale (a throughput-oriented core),
    // landing at the ~14k cells of Table 12 while keeping the critical
    // path at one round (closable at 0.8 ns).
    let (n_bytes, engines) = match scale {
        BenchScale::Paper => (16, 3),
        BenchScale::Small => (4, 1),
    };
    let mut b = NetlistBuilder::new(lib, "AES");
    for _engine in 0..engines {
        build_engine(&mut b, n_bytes);
    }
    b.finish()
}

fn build_engine(b: &mut NetlistBuilder<'_>, n_bytes: usize) {
    let b = &mut *b;
    let data_in: Vec<Vec<NetId>> = (0..n_bytes).map(|_| b.inputs(8)).collect();
    let key_in: Vec<Vec<NetId>> = (0..n_bytes).map(|_| b.inputs(8)).collect();
    let load = b.input();

    // State and key registers with load muxes (iterative core).
    let mut state: Vec<Vec<NetId>> = Vec::with_capacity(n_bytes);
    let mut key: Vec<Vec<NetId>> = Vec::with_capacity(n_bytes);
    // First build placeholder round outputs by registering the muxed
    // inputs; the feedback is closed below through the registers' D pins,
    // so we build registers on the *round output* and mux at their input.
    // Round input comes from the registers themselves; to express that
    // without two-pass construction we register the muxed value of
    // (data_in, round_out) -- requiring round_out first. Break the knot by
    // building the round on freshly-registered inputs:
    for byte in &data_in {
        state.push(b.dff_bus(byte));
    }
    for byte in &key_in {
        key.push(b.dff_bus(byte));
    }
    // Encrypt round + key schedule.
    let next_key = key_schedule(b, &key);
    let enc = round(b, &state, &next_key);
    // Decrypt round (inverse direction: same structure with its own
    // S-boxes and mixing, reusing the generator as an equivalent-size
    // inverse network).
    let dec = round(b, &state, &key);
    // Direction select and writeback registers.
    let dir = b.input();
    let mut out_bits = Vec::new();
    for i in 0..n_bytes {
        let sel: Vec<NetId> = enc[i]
            .iter()
            .zip(&dec[i])
            .map(|(&e, &d)| b.gate(CellFunction::Mux2, &[e, d, dir]))
            .collect();
        let loaded: Vec<NetId> = sel
            .iter()
            .zip(&data_in[i])
            .map(|(&s, &din)| b.gate(CellFunction::Mux2, &[s, din, load]))
            .collect();
        let q = b.dff_bus(&loaded);
        out_bits.extend(q);
    }
    for &o in &out_bits {
        b.output(o);
    }
}
