//! Structural generators for the five benchmark circuits of the paper's
//! Table 12.
//!
//! The generators build each benchmark from its published architecture.
//! They are *structurally* faithful — gate mix, logic depth, connectivity
//! pattern, register placement — which is what physical design cares
//! about; they are not bit-exact verified implementations of the
//! algorithms (no proprietary RTL is reproduced).

mod aes;
mod des;
mod fpu;
mod ldpc;
mod m256;

use serde::{Deserialize, Serialize};

use m3d_cells::{CellFunction, CellLibrary};
use m3d_tech::{NodeId, PdkRegistry};

use crate::{NetId, Netlist, NetlistBuilder};

/// Which benchmark circuit to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Double-precision floating-point unit datapath.
    Fpu,
    /// AES-128 encrypt/decrypt round engine.
    Aes,
    /// IEEE 802.3an (2048,1723) LDPC min-sum decoder.
    Ldpc,
    /// Dual 16-round pipelined DES cores.
    Des,
    /// 256-bit Wallace-tree integer multiplier.
    M256,
}

/// Generation size: full paper-scale designs or reduced versions for fast
/// unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchScale {
    /// Full size, comparable to the paper's Table 12.
    Paper,
    /// Scaled down ~10-50x for tests and quick benches.
    Small,
}

impl Benchmark {
    /// All five benchmarks in the paper's table order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Fpu,
        Benchmark::Aes,
        Benchmark::Ldpc,
        Benchmark::Des,
        Benchmark::M256,
    ];

    /// Table name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Fpu => "FPU",
            Benchmark::Aes => "AES",
            Benchmark::Ldpc => "LDPC",
            Benchmark::Des => "DES",
            Benchmark::M256 => "M256",
        }
    }

    /// Target clock period, ps (paper Table 12 for the two paper nodes;
    /// every registered PDK carries its own table).
    ///
    /// # Panics
    ///
    /// Panics when `node` names no registered PDK or the PDK has no
    /// clock target for this benchmark — sign-off against an undefined
    /// constraint would silently pass everything.
    pub fn target_clock_ps(self, node: NodeId) -> f64 {
        let pdk = PdkRegistry::global()
            .get(node)
            .unwrap_or_else(|| panic!("node '{}' names no registered PDK", node.label()));
        pdk.target_clock_ps(self.name()).unwrap_or_else(|| {
            panic!(
                "PDK '{}' defines no clock target for {}",
                pdk.name(),
                self.name()
            )
        })
    }

    /// Target placement utilization (paper S6: ~80 %, lowered to ~33 % for
    /// the wire-congested LDPC and 68 % for M256).
    pub fn target_utilization(self) -> f64 {
        match self {
            Benchmark::Ldpc => 0.33,
            Benchmark::M256 => 0.68,
            _ => 0.80,
        }
    }

    /// Generates the benchmark netlist against `lib`.
    pub fn generate(self, lib: &CellLibrary, scale: BenchScale) -> Netlist {
        match self {
            Benchmark::Fpu => fpu::generate(lib, scale),
            Benchmark::Aes => aes::generate(lib, scale),
            Benchmark::Ldpc => ldpc::generate(lib, scale),
            Benchmark::Des => des::generate(lib, scale),
            Benchmark::M256 => m256::generate(lib, scale),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wallace/Dadda-style carry-save reduction of per-column partial-product
/// bit lists down to two rows, followed by a prefix adder. Returns the
/// product bits (LSB first).
pub(crate) fn wallace_reduce(
    b: &mut NetlistBuilder<'_>,
    mut columns: Vec<Vec<NetId>>,
) -> Vec<NetId> {
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        // Once the residue is height <= 3, one uniform FA/HA pass (HA on
        // *every* 2-bit column) finishes in a single level; without it the
        // leftover carries ripple rightward one column per iteration.
        let finishing = max_height <= 3;
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); columns.len() + 1];
        for (ci, col) in columns.iter().enumerate() {
            let mut i = 0;
            while col.len() - i >= 3 {
                let outs =
                    b.gate_outputs(CellFunction::FullAdder, &[col[i], col[i + 1], col[i + 2]]);
                next[ci].push(outs[0]);
                next[ci + 1].push(outs[1]);
                i += 3;
            }
            if col.len() - i == 2 && (col.len() > 2 || finishing) {
                let outs = b.gate_outputs(CellFunction::HalfAdder, &[col[i], col[i + 1]]);
                next[ci].push(outs[0]);
                next[ci + 1].push(outs[1]);
                i += 2;
            }
            for &n in &col[i..] {
                next[ci].push(n);
            }
        }
        if next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        columns = next;
    }
    // Final carry-propagate add of the two remaining rows.
    let w = columns.len();
    let zero_fill = |b: &mut NetlistBuilder<'_>, col: &[NetId], idx: usize| -> NetId {
        // Columns can be ragged; reuse an existing bit XORed with itself as
        // a structural zero when needed.
        col.get(idx).copied().unwrap_or_else(|| {
            let any = col.first().copied().expect("non-empty column");
            b.gate(CellFunction::Xor2, &[any, any])
        })
    };
    let mut row_a = Vec::with_capacity(w);
    let mut row_b = Vec::with_capacity(w);
    for col in &columns {
        if col.is_empty() {
            continue;
        }
        row_a.push(zero_fill(b, col, 0));
        row_b.push(zero_fill(b, col, 1));
    }
    b.prefix_adder(&row_a, &row_b)
}

/// Builds an unsigned array multiplier: AND partial products + Wallace
/// reduction + prefix adder. Returns the full 2w-bit product.
pub(crate) fn multiplier(b: &mut NetlistBuilder<'_>, a: &[NetId], x: &[NetId]) -> Vec<NetId> {
    let w = a.len();
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * w];
    for (i, &xi) in x.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let pp = b.gate(CellFunction::And2, &[aj, xi]);
            columns[i + j].push(pp);
        }
    }
    wallace_reduce(b, columns)
}

/// Logarithmic barrel shifter over `bits` controlled by `shift` (LSB
/// first): stage k muxes between the input and the input shifted by 2^k.
pub(crate) fn barrel_shifter(
    b: &mut NetlistBuilder<'_>,
    bits: &[NetId],
    shift: &[NetId],
) -> Vec<NetId> {
    let mut cur: Vec<NetId> = bits.to_vec();
    for (k, &s) in shift.iter().enumerate() {
        let amount = 1usize << k;
        let mut next = Vec::with_capacity(cur.len());
        for i in 0..cur.len() {
            let shifted = cur[(i + amount) % cur.len()];
            next.push(b.gate(CellFunction::Mux2, &[cur[i], shifted, s]));
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::{DesignStyle, TechNode};

    fn lib() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    #[test]
    fn small_benchmarks_generate_and_are_consistent() {
        let lib = lib();
        for bench in Benchmark::ALL {
            let n = bench.generate(&lib, BenchScale::Small);
            assert!(n.instance_count() > 50, "{bench} too small");
            n.check_consistency(&lib);
            // Levelizable: no combinational loops.
            crate::levelize(&n, &lib).expect("acyclic");
        }
    }

    #[test]
    fn multiplier_size_is_quadratic() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let a = b.inputs(8);
        let x = b.inputs(8);
        let p = multiplier(&mut b, &a, &x);
        assert!(p.len() >= 15);
        let n = b.finish();
        // 64 ANDs + ~50 adders + CPA.
        assert!(n.instance_count() > 110, "got {}", n.instance_count());
    }

    #[test]
    fn barrel_shifter_stage_count() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let bits = b.inputs(16);
        let sh = b.inputs(4);
        let out = barrel_shifter(&mut b, &bits, &sh);
        assert_eq!(out.len(), 16);
        assert_eq!(b.finish().instance_count(), 4 * 16);
    }

    #[test]
    fn clock_targets_scale_down_at_7nm() {
        for bench in Benchmark::ALL {
            assert!(bench.target_clock_ps(NodeId::N7) < bench.target_clock_ps(NodeId::N45));
        }
        assert_eq!(Benchmark::Ldpc.target_utilization(), 0.33);
    }
}
