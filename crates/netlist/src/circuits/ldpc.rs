//! IEEE 802.3an (2048,1723) LDPC min-sum decoder.
//!
//! 2048 variable-node units and 384 check-node units joined by a 6-regular
//! / 32-regular pseudo-random bipartite graph (12,288 edges). The graph
//! has *no spatial locality*: whatever the placer does, most edges span
//! the die. This is the mechanism behind the paper's LDPC observations —
//! the largest wirelength, the lowest routable utilization (33 %), nearly
//! half the cells' power in the wires, and the largest T-MI power benefit
//! (32.1 % at 45 nm).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use m3d_cells::{CellFunction, CellLibrary};

use crate::{NetId, Netlist, NetlistBuilder};

use super::BenchScale;

/// Builds the regular bipartite edge list: every variable node has degree
/// `var_deg`, every check node degree `vars * var_deg / checks`.
fn edges(vars: usize, checks: usize, var_deg: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut check_vars: Vec<Vec<usize>> = vec![Vec::new(); checks];
    for _layer in 0..var_deg {
        let mut perm: Vec<usize> = (0..vars).collect();
        perm.shuffle(&mut rng);
        for (i, v) in perm.into_iter().enumerate() {
            check_vars[i % checks].push(v);
        }
    }
    check_vars
}

/// Variable-node unit: combines the channel bit with its check messages
/// (XOR/majority network) and registers sign and state.
fn vnu(b: &mut NetlistBuilder<'_>, channel: NetId, msgs: &[NetId]) -> NetId {
    let parity = b.xor_tree(msgs);
    let combined = b.gate(CellFunction::Xor2, &[channel, parity]);
    // Majority-ish magnitude update using an adder cell.
    let maj = b.gate_outputs(CellFunction::FullAdder, &[channel, parity, msgs[0]]);
    let state = b.dff(maj[1]);
    let sel = b.gate(CellFunction::Mux2, &[combined, maj[0], state]);
    b.dff(sel)
}

/// Check-node unit: parity over its variable messages plus a compare
/// (min-approximation) tree, registered.
fn cnu(b: &mut NetlistBuilder<'_>, msgs: &[NetId]) -> NetId {
    let parity = b.xor_tree(msgs);
    // Min-magnitude approximation over a sampled subset (bit-serial
    // magnitude datapath).
    let sample = &msgs[..msgs.len().min(8)];
    let all_ones = b.reduce(CellFunction::And2, sample);
    let any_one = b.reduce(CellFunction::Or2, sample);
    let strong = b.gate(CellFunction::Xor2, &[all_ones, any_one]);
    let msg = b.gate(CellFunction::Mux2, &[parity, strong, all_ones]);
    b.dff(msg)
}

/// Generates the LDPC benchmark.
pub fn generate(lib: &CellLibrary, scale: BenchScale) -> Netlist {
    let (vars, checks, var_deg) = match scale {
        BenchScale::Paper => (2048, 384, 6),
        BenchScale::Small => (128, 24, 6),
    };
    let mut b = NetlistBuilder::new(lib, "LDPC");
    let channel: Vec<NetId> = b.inputs(vars);
    // First half-iteration: variable estimates start as registered channel
    // bits.
    let var_est: Vec<NetId> = channel.iter().map(|&c| b.dff(c)).collect();

    let graph = edges(vars, checks, var_deg, 0x31A5u64);
    // Check nodes consume their variables' estimates.
    let mut check_out = Vec::with_capacity(checks);
    for cv in &graph {
        let msgs: Vec<NetId> = cv.iter().map(|&v| var_est[v]).collect();
        check_out.push(cnu(&mut b, &msgs));
    }
    // Variables consume their checks' outputs.
    let mut var_to_checks: Vec<Vec<usize>> = vec![Vec::new(); vars];
    for (c, cv) in graph.iter().enumerate() {
        for &v in cv {
            var_to_checks[v].push(c);
        }
    }
    let mut decisions = Vec::with_capacity(vars);
    for v in 0..vars {
        let msgs: Vec<NetId> = var_to_checks[v].iter().map(|&c| check_out[c]).collect();
        decisions.push(vnu(&mut b, channel[v], &msgs));
    }
    // Outputs: fold the decisions into a syndrome-width bus so the pad
    // count stays reasonable.
    for chunk in decisions.chunks(16) {
        let o = b.xor_tree(chunk);
        b.output(o);
    }
    b.finish()
}
