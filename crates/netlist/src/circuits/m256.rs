//! M256: a 256-bit partial-sum-add integer multiplier — 65,536 AND
//! partial products reduced by carry-save adder (Wallace) stages into a
//! final prefix-adder carry-propagate add, with registered operands and
//! product. The largest benchmark (paper: ~200k cells), with regular
//! neighbour-dominated wiring.

use m3d_cells::CellLibrary;

use crate::{Netlist, NetlistBuilder};

use super::{multiplier, BenchScale};

/// Generates the M256 benchmark.
pub fn generate(lib: &CellLibrary, scale: BenchScale) -> Netlist {
    let width = match scale {
        BenchScale::Paper => 256usize,
        BenchScale::Small => 16,
    };
    let mut b = NetlistBuilder::new(lib, "M256");
    let a_in = b.inputs(width);
    let x_in = b.inputs(width);
    let a = b.dff_bus(&a_in);
    let x = b.dff_bus(&x_in);
    let product = multiplier(&mut b, &a, &x);
    let q = b.dff_bus(&product);
    for &o in &q {
        b.output(o);
    }
    b.finish()
}
