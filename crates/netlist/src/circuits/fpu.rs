//! Double-precision floating-point unit datapath: a fused add/multiply
//! slice with the classic FPU blocks — operand registers, a 53×53
//! Wallace-tree mantissa multiplier, alignment and normalization barrel
//! shifters, a 64-bit Kogge-Stone significand adder, leading-zero count,
//! exponent arithmetic, and rounding.

use m3d_cells::{CellFunction, CellLibrary};

use crate::{NetId, Netlist, NetlistBuilder};

use super::{barrel_shifter, multiplier, BenchScale};

/// Leading-zero counter tree: produces log2(w) count bits.
fn lzc(b: &mut NetlistBuilder<'_>, bits: &[NetId]) -> Vec<NetId> {
    // Hierarchical valid/count: at each pairing level, one count bit.
    let mut valid: Vec<NetId> = bits.to_vec();
    let mut count_bits = Vec::new();
    while valid.len() > 1 {
        let mut next_valid = Vec::with_capacity(valid.len() / 2);
        let mut sel_bits = Vec::with_capacity(valid.len() / 2);
        for pair in valid.chunks(2) {
            if pair.len() == 2 {
                next_valid.push(b.gate(CellFunction::Or2, &[pair[0], pair[1]]));
                sel_bits.push(b.gate(CellFunction::Inv, &[pair[0]]));
            } else {
                next_valid.push(pair[0]);
            }
        }
        count_bits.push(b.reduce(CellFunction::And2, &sel_bits));
        valid = next_valid;
    }
    count_bits
}

/// Generates the FPU benchmark.
pub fn generate(lib: &CellLibrary, scale: BenchScale) -> Netlist {
    let (mant, width) = match scale {
        BenchScale::Paper => (53usize, 64usize),
        BenchScale::Small => (12, 16),
    };
    let mut b = NetlistBuilder::new(lib, "FPU");
    // Operand registers.
    let a_in = b.inputs(width);
    let c_in = b.inputs(width);
    let a = b.dff_bus(&a_in);
    let c = b.dff_bus(&c_in);
    let exp_bits = width - mant;

    // Mantissa multiplier (pipeline stage 1).
    let prod = multiplier(&mut b, &a[..mant], &c[..mant]);
    let prod = b.dff_bus(&prod);

    // Exponent adder + alignment amount.
    let exp_sum = b.prefix_adder(&a[mant..], &c[mant..]);
    let shift_amount: Vec<NetId> = exp_sum.iter().take(exp_bits.min(6)).copied().collect();

    // Alignment shifter on the addend.
    let aligned = barrel_shifter(&mut b, &c[..width.min(prod.len())], &shift_amount);

    // Significand add (pipeline stage 2).
    let top = &prod[prod.len() - width.min(prod.len())..];
    let aligned = b.dff_bus(&aligned);
    let sum = b.prefix_adder(top, &aligned);
    let sum = b.dff_bus(&sum);

    // Normalization: LZC then left shift.
    let count = lzc(&mut b, &sum);
    let shift2: Vec<NetId> = count.iter().take(6).copied().collect();
    let normalized = barrel_shifter(&mut b, &sum, &shift2);

    // Rounding: increment decision + log-depth prefix incrementer
    // (carry_i = rnd AND all lower bits set; a ripple would be a 64-deep
    // chain, which no synthesized FPU would tolerate).
    let guard = normalized[0];
    let round_bit = normalized[1];
    let sticky = b.reduce(CellFunction::Or2, &normalized[..4.min(normalized.len())]);
    let rnd = b.gate(CellFunction::And2, &[guard, round_bit]);
    let rnd = b.gate(CellFunction::Or2, &[rnd, sticky]);
    let w = normalized.len();
    // Kogge-Stone prefix AND.
    let mut p: Vec<NetId> = normalized.clone();
    let mut dist = 1;
    while dist < w {
        let mut p2 = p.clone();
        for i in dist..w {
            p2[i] = b.gate(CellFunction::And2, &[p[i], p[i - dist]]);
        }
        p = p2;
        dist *= 2;
    }
    let mut rounded = Vec::with_capacity(w);
    rounded.push(b.gate(CellFunction::Xor2, &[normalized[0], rnd]));
    for i in 1..w {
        let carry = b.gate(CellFunction::And2, &[rnd, p[i - 1]]);
        rounded.push(b.gate(CellFunction::Xor2, &[normalized[i], carry]));
    }

    // Exponent adjust and result registers.
    let exp_adj = b.prefix_adder(
        &exp_sum,
        &count[..exp_bits.min(count.len())]
            .iter()
            .copied()
            .chain(std::iter::repeat_n(
                exp_sum[0],
                exp_bits.saturating_sub(count.len()),
            ))
            .collect::<Vec<_>>(),
    );
    let result_q = b.dff_bus(&rounded);
    let exp_q = b.dff_bus(&exp_adj);
    for &o in result_q.iter().chain(&exp_q) {
        b.output(o);
    }
    b.finish()
}
