//! Dual fully-unrolled, pipelined 16-round DES cores.
//!
//! Each round is a Feistel step: expansion wiring, key XOR, the eight
//! 6-to-4 S-boxes, permutation wiring, XOR with the left half, and a
//! pipeline register. S-boxes are realized as 4-level MUX2 trees over the
//! real DES S-box tables with two-variable leaf gates — exactly the tight
//! little clusters of short nets that make DES the paper's low-benefit
//! outlier (Section 4.3: pin capacitance dominates wire capacitance).

use m3d_cells::{CellFunction, CellLibrary};

use crate::{NetId, Netlist, NetlistBuilder};

use super::BenchScale;

/// The eight standard DES S-boxes (public domain), `SBOX[s][row*16+col]`.
#[rustfmt::skip]
const SBOX: [[u8; 64]; 8] = [
    [14,4,13,1,2,15,11,8,3,10,6,12,5,9,0,7,
     0,15,7,4,14,2,13,1,10,6,12,11,9,5,3,8,
     4,1,14,8,13,6,2,11,15,12,9,7,3,10,5,0,
     15,12,8,2,4,9,1,7,5,11,3,14,10,0,6,13],
    [15,1,8,14,6,11,3,4,9,7,2,13,12,0,5,10,
     3,13,4,7,15,2,8,14,12,0,1,10,6,9,11,5,
     0,14,7,11,10,4,13,1,5,8,12,6,9,3,2,15,
     13,8,10,1,3,15,4,2,11,6,7,12,0,5,14,9],
    [10,0,9,14,6,3,15,5,1,13,12,7,11,4,2,8,
     13,7,0,9,3,4,6,10,2,8,5,14,12,11,15,1,
     13,6,4,9,8,15,3,0,11,1,2,12,5,10,14,7,
     1,10,13,0,6,9,8,7,4,15,14,3,11,5,2,12],
    [7,13,14,3,0,6,9,10,1,2,8,5,11,12,4,15,
     13,8,11,5,6,15,0,3,4,7,2,12,1,10,14,9,
     10,6,9,0,12,11,7,13,15,1,3,14,5,2,8,4,
     3,15,0,6,10,1,13,8,9,4,5,11,12,7,2,14],
    [2,12,4,1,7,10,11,6,8,5,3,15,13,0,14,9,
     14,11,2,12,4,7,13,1,5,0,15,10,3,9,8,6,
     4,2,1,11,10,13,7,8,15,9,12,5,6,3,0,14,
     11,8,12,7,1,14,2,13,6,15,0,9,10,4,5,3],
    [12,1,10,15,9,2,6,8,0,13,3,4,14,7,5,11,
     10,15,4,2,7,12,9,5,6,1,13,14,0,11,3,8,
     9,14,15,5,2,8,12,3,7,0,4,10,1,13,11,6,
     4,3,2,12,9,5,15,10,11,14,1,7,6,0,8,13],
    [4,11,2,14,15,0,8,13,3,12,9,7,5,10,6,1,
     13,0,11,7,4,9,1,10,14,3,5,12,2,15,8,6,
     1,4,11,13,12,3,7,14,10,15,6,8,0,5,9,2,
     6,11,13,8,1,4,10,7,9,5,0,15,14,2,3,12],
    [13,2,8,4,6,15,11,1,10,9,3,14,5,0,12,7,
     1,15,13,8,10,3,7,4,12,5,6,11,0,14,9,2,
     7,11,4,1,9,12,14,2,0,6,10,13,15,3,5,8,
     2,1,14,7,4,10,8,13,15,12,9,0,3,5,6,11],
];

/// Realizes a two-variable boolean function (truth table over (a,b) with
/// index `a*2 + b`) as at most one gate over `a`, `b` and their shared
/// complements.
fn leaf(b: &mut NetlistBuilder<'_>, tt: u8, a: NetId, x: NetId, na: NetId, nx: NetId) -> NetId {
    use CellFunction as F;
    match tt & 0xF {
        0b0000 => b.gate(F::And2, &[a, na]),
        0b1111 => b.gate(F::Or2, &[a, na]),
        0b0011 => a,
        0b1100 => na,
        0b0101 => x,
        0b1010 => nx,
        0b0001 => b.gate(F::And2, &[a, x]),
        0b0111 => b.gate(F::Or2, &[a, x]),
        0b0110 => b.gate(F::Xor2, &[a, x]),
        0b1001 => b.gate(F::Xnor2, &[a, x]),
        0b1110 => b.gate(F::Nand2, &[a, x]),
        0b1000 => b.gate(F::Nor2, &[a, x]),
        0b0010 => b.gate(F::And2, &[a, nx]),
        0b0100 => b.gate(F::And2, &[na, x]),
        0b1011 => b.gate(F::Or2, &[a, nx]),
        0b1101 => b.gate(F::Or2, &[na, x]),
        _ => unreachable!(),
    }
}

/// One DES S-box: 6 inputs, 4 outputs, as four 4-level MUX2 trees with
/// 2-variable leaves over the real table.
///
/// DES input bit convention: bits (b5, b0) select the row, (b4..b1) the
/// column. We decompose on the four column bits (MUX tree) and leave
/// (b5, b0) as the leaf variables.
fn des_sbox(b: &mut NetlistBuilder<'_>, s: usize, inputs: &[NetId]) -> Vec<NetId> {
    debug_assert_eq!(inputs.len(), 6);
    let (b5, mid, b0) = (inputs[5], &inputs[1..5], inputs[0]);
    let nb5 = b.gate(CellFunction::Inv, &[b5]);
    let nb0 = b.gate(CellFunction::Inv, &[b0]);
    let table = &SBOX[s];
    let mut outs = Vec::with_capacity(4);
    for bit in 0..4 {
        // Leaves: for each column (4 mid bits), a function of (b5, b0).
        let mut level: Vec<NetId> = (0..16)
            .map(|col| {
                let mut tt = 0u8;
                for (idx, (r_hi, r_lo)) in [(0u8, 0u8), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
                    let row = (r_hi * 2 + r_lo) as usize;
                    let v = (table[row * 16 + col] >> bit) & 1;
                    tt |= v << idx;
                }
                leaf(b, tt, b5, b0, nb5, nb0)
            })
            .collect();
        // MUX tree on the four column-select bits.
        for (k, &sel) in mid.iter().enumerate() {
            let _ = k;
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                next.push(b.gate(CellFunction::Mux2, &[pair[0], pair[1], sel]));
            }
            level = next;
        }
        debug_assert_eq!(level.len(), 1);
        outs.push(level[0]);
    }
    outs
}

/// One Feistel round: returns (new_left, new_right).
fn round(
    b: &mut NetlistBuilder<'_>,
    left: &[NetId],
    right: &[NetId],
    round_key: &[NetId],
) -> (Vec<NetId>, Vec<NetId>) {
    let half = right.len(); // 32 at paper scale
    let n_sbox = half / 4;
    // Expansion: 6 bits per S-box, overlapping neighbours (wiring only).
    let mut f_out = Vec::with_capacity(half);
    for s in 0..n_sbox {
        let base = s * 4;
        let expanded: Vec<NetId> = (0..6)
            .map(|k| {
                let idx = (base + half - 1 + k) % half;
                let r = right[idx];
                // Key mixing.
                b.gate(
                    CellFunction::Xor2,
                    &[r, round_key[(s * 6 + k) % round_key.len()]],
                )
            })
            .collect();
        let outs = des_sbox(b, s % 8, &expanded);
        // P permutation: spread this S-box's outputs across the half.
        for (k, &o) in outs.iter().enumerate() {
            let _ = k;
            f_out.push(o);
        }
    }
    // Permute (wiring) and XOR with the left half.
    let new_right: Vec<NetId> = (0..half)
        .map(|i| {
            let p = (i * 7 + 3) % half; // fixed permutation pattern
            b.gate(CellFunction::Xor2, &[left[i], f_out[p]])
        })
        .collect();
    (right.to_vec(), new_right)
}

/// Generates the DES benchmark: `cores` pipelined 16-round cores.
pub fn generate(lib: &CellLibrary, scale: BenchScale) -> Netlist {
    // Three chained-key cores at paper scale (a 3DES-style pipeline),
    // landing at the ~51k cells of Table 12.
    let (cores, rounds, half) = match scale {
        BenchScale::Paper => (3, 16, 32),
        BenchScale::Small => (1, 2, 16),
    };
    let mut b = NetlistBuilder::new(lib, "DES");
    for _core in 0..cores {
        let block = b.inputs(half * 2);
        let key = b.inputs(56.min(half * 2 - 8));
        let (mut left, mut right) = {
            let (l, r) = block.split_at(half);
            (b.dff_bus(l), b.dff_bus(r))
        };
        let mut key_reg = b.dff_bus(&key);
        for round_idx in 0..rounds {
            // Round key: rotated key register slice (wiring only).
            let rk: Vec<NetId> = (0..key_reg.len())
                .map(|i| key_reg[(i + round_idx * 2 + 1) % key_reg.len()])
                .collect();
            let (l2, r2) = round(&mut b, &left, &right, &rk);
            // Pipeline registers each round (the paper's DES closes 1 ns
            // only as a pipeline).
            left = b.dff_bus(&l2);
            right = b.dff_bus(&r2);
            key_reg = b.dff_bus(&rk);
        }
        for &o in left.iter().chain(&right) {
            b.output(o);
        }
    }
    b.finish()
}
