//! Gate-level netlists and the benchmark circuits of the T-MI study.
//!
//! The five benchmarks (paper Table 12) are generated *structurally* from
//! their architectures rather than read from proprietary RTL:
//!
//! | circuit | architecture here | wiring character |
//! |---|---|---|
//! | FPU  | double-precision mantissa datapath: 53×53 array multiplier, barrel shifters, Kogge-Stone adder, LZC, rounding | mixed |
//! | AES  | two unrolled AES-128 rounds: 16 S-boxes, MixColumns XOR trees, key schedule | mostly local |
//! | LDPC | IEEE 802.3an (2048,1723) min-sum decoder: 2048 variable nodes, 384 check nodes, pseudo-random regular bipartite interconnect | dominated by long global wires |
//! | DES  | two 16-round unrolled/pipelined DES cores with mux-tree S-boxes | tight local clusters, short nets |
//! | M256 | partial-sum-add 256-bit array multiplier (carry-save rows + final prefix adder) | regular neighbour wiring |
//!
//! The LDPC-vs-DES contrast is the paper's Section 4.3 analysis: LDPC's
//! bipartite graph has no spatial locality, so placement cannot shorten
//! its nets (huge wire capacitance, many buffers), while DES decomposes
//! into S-box clusters with short nets whose capacitance is pin-dominated.
//!
//! # Example
//!
//! ```
//! use m3d_cells::{CellFunction, CellLibrary};
//! use m3d_netlist::NetlistBuilder;
//! use m3d_tech::{DesignStyle, TechNode};
//!
//! let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
//! let mut b = NetlistBuilder::new(&lib, "toy");
//! let a = b.input();
//! let c = b.input();
//! let x = b.gate(CellFunction::Nand2, &[a, c]);
//! let q = b.dff(x);
//! b.output(q);
//! let n = b.finish();
//! assert_eq!(n.instance_count(), 2);
//! assert_eq!(n.stats(&lib).flop_count, 1);
//! ```

mod builder;
pub mod circuits;
mod edit;
pub mod io;
mod netlist;
mod stats;
mod topo;

pub use builder::NetlistBuilder;
pub use circuits::{BenchScale, Benchmark};
pub use netlist::{InstId, Instance, Net, NetDriver, NetId, Netlist, PinRef};
pub use stats::NetlistStats;
pub use topo::levelize;
