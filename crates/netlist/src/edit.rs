//! In-place netlist edits used by the timing/power optimizers: gate
//! resizing and repeater (buffer) insertion/removal.

use m3d_cells::{CellFunction, CellId, CellLibrary};

use crate::{InstId, Instance, Net, NetDriver, NetId, Netlist, PinRef};

impl Netlist {
    /// Swaps the library cell of `inst` to another drive variant of the
    /// same function (gate sizing).
    ///
    /// # Panics
    ///
    /// Panics if the new cell's function differs from the old one.
    pub fn resize(&mut self, inst: InstId, new_cell: CellId, lib: &CellLibrary) {
        let old = self.instances[inst.0 as usize].cell;
        assert_eq!(
            lib.cell(old).function,
            lib.cell(new_cell).function,
            "resize must preserve function"
        );
        self.instances[inst.0 as usize].cell = new_cell;
    }

    /// Inserts a repeater (BUF) of cell `buf` driving the given subset of
    /// `net`'s sinks. Sinks are identified by index into the net's current
    /// sink list; the rest stay on the original net.
    ///
    /// Returns the new instance and its output net.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not a single-input cell or a sink index is out
    /// of range.
    pub fn insert_repeater(
        &mut self,
        net: NetId,
        sink_indices: &[usize],
        buf: CellId,
        lib: &CellLibrary,
    ) -> (InstId, NetId) {
        let cell = lib.cell(buf);
        assert_eq!(cell.input_count(), 1, "repeater must be single-input");
        let inst = InstId(self.instances.len() as u32);
        let new_net = NetId(self.nets.len() as u32);

        // Move chosen sinks to the new net.
        let mut chosen: Vec<PinRef> = Vec::with_capacity(sink_indices.len());
        {
            let old = &mut self.nets[net.0 as usize];
            let mut keep = Vec::with_capacity(old.sinks.len());
            let to_move: std::collections::BTreeSet<usize> = sink_indices.iter().copied().collect();
            for (i, s) in old.sinks.iter().enumerate() {
                if to_move.contains(&i) {
                    chosen.push(*s);
                } else {
                    keep.push(*s);
                }
            }
            assert_eq!(chosen.len(), sink_indices.len(), "sink index out of range");
            old.sinks = keep;
            old.sinks.push(PinRef { inst, pin: 0 });
        }
        for s in &chosen {
            self.instances[s.inst.0 as usize].pins[s.pin as usize] = new_net;
        }
        self.nets.push(Net {
            driver: NetDriver::Cell { inst, pin: 0 },
            sinks: chosen,
            is_output: false,
        });
        self.instances.push(Instance {
            cell: buf,
            pins: vec![net, new_net],
            is_repeater: true,
        });
        (inst, new_net)
    }

    /// Counts repeaters plus standalone inverters/buffers — the population
    /// the paper's "#buffers" column reports.
    pub fn repeater_count(&self, lib: &CellLibrary) -> usize {
        self.instances
            .iter()
            .filter(|i| i.is_repeater || matches!(lib.cell(i.cell).function, CellFunction::Buf))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;
    use m3d_tech::{DesignStyle, TechNode};

    fn lib() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    #[test]
    fn resize_changes_cell_only() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        b.gate(CellFunction::Inv, &[x]);
        let mut n = b.finish();
        let (x4, _) = lib.id_named("INV_X4").expect("INV_X4");
        n.resize(InstId(0), x4, &lib);
        assert_eq!(lib.cell(n.inst(InstId(0)).cell).drive, 4);
        n.check_consistency(&lib);
    }

    #[test]
    #[should_panic(expected = "preserve function")]
    fn resize_rejects_function_change() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        b.gate(CellFunction::Inv, &[x]);
        let mut n = b.finish();
        let (nand, _) = lib.id_named("NAND2_X1").expect("NAND2_X1");
        n.resize(InstId(0), nand, &lib);
    }

    #[test]
    fn repeater_splits_fanout() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let a = b.gate(CellFunction::Inv, &[x]);
        for _ in 0..6 {
            b.gate(CellFunction::Inv, &[a]);
        }
        let mut n = b.finish();
        let (buf, _) = lib.id_named("BUF_X2").expect("BUF_X2");
        let before = n.net(a).sinks.len();
        assert_eq!(before, 6);
        let (_inst, new_net) = n.insert_repeater(a, &[0, 1, 2], buf, &lib);
        assert_eq!(n.net(a).sinks.len(), 4); // 3 kept + the buffer input
        assert_eq!(n.net(new_net).sinks.len(), 3);
        assert_eq!(n.repeater_count(&lib), 1);
        n.check_consistency(&lib);
    }
}
