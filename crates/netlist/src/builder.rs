use m3d_cells::{CellFunction, CellLibrary};

use crate::{InstId, Instance, Net, NetDriver, NetId, Netlist, PinRef};

/// Incremental netlist constructor used by the benchmark generators.
///
/// Gates are instantiated at the weakest drive (X1); sizing is the
/// synthesizer's job (`m3d-synth`).
#[derive(Debug)]
pub struct NetlistBuilder<'l> {
    lib: &'l CellLibrary,
    n: Netlist,
}

impl<'l> NetlistBuilder<'l> {
    /// Starts a new design.
    pub fn new(lib: &'l CellLibrary, name: &str) -> Self {
        NetlistBuilder {
            lib,
            n: Netlist::new(name),
        }
    }

    /// The library being targeted.
    pub fn library(&self) -> &'l CellLibrary {
        self.lib
    }

    fn fresh_net(&mut self, driver: NetDriver) -> NetId {
        let id = NetId(self.n.nets.len() as u32);
        self.n.nets.push(Net {
            driver,
            sinks: Vec::new(),
            is_output: false,
        });
        id
    }

    /// Creates a primary-input net.
    pub fn input(&mut self) -> NetId {
        let port = self.n.primary_inputs.len() as u32;
        let id = self.fresh_net(NetDriver::Port(port));
        self.n.primary_inputs.push(id);
        id
    }

    /// Creates `count` primary inputs.
    pub fn inputs(&mut self, count: usize) -> Vec<NetId> {
        (0..count).map(|_| self.input()).collect()
    }

    /// Marks a net as a primary output.
    pub fn output(&mut self, net: NetId) {
        self.n.nets[net.0 as usize].is_output = true;
        self.n.primary_outputs.push(net);
    }

    /// Instantiates the X1 variant of `function` over `inputs`, returning
    /// the (first) output net.
    ///
    /// # Panics
    ///
    /// Panics when the arity does not match the function.
    pub fn gate(&mut self, function: CellFunction, inputs: &[NetId]) -> NetId {
        self.gate_outputs(function, inputs)[0]
    }

    /// Like [`NetlistBuilder::gate`] but returns all output nets
    /// (half/full adders have two).
    pub fn gate_outputs(&mut self, function: CellFunction, inputs: &[NetId]) -> Vec<NetId> {
        assert_eq!(
            inputs.len(),
            function.input_count(),
            "{function:?} expects {} inputs",
            function.input_count()
        );
        assert!(
            !function.is_sequential(),
            "use NetlistBuilder::dff for flip-flops"
        );
        let cell = self.lib.smallest(function);
        let inst = InstId(self.n.instances.len() as u32);
        let mut pins = inputs.to_vec();
        let outs: Vec<NetId> = (0..function.output_count())
            .map(|o| self.fresh_net(NetDriver::Cell { inst, pin: o as u8 }))
            .collect();
        pins.extend(&outs);
        for (p, &net) in inputs.iter().enumerate() {
            self.n.nets[net.0 as usize]
                .sinks
                .push(PinRef { inst, pin: p as u8 });
        }
        self.n.instances.push(Instance {
            cell,
            pins,
            is_repeater: false,
        });
        outs
    }

    /// Instantiates a DFF clocked by the design clock (created on first
    /// use), returning the Q net.
    pub fn dff(&mut self, d: NetId) -> NetId {
        let clock = match self.n.clock {
            Some(c) => c,
            None => {
                let port = self.n.primary_inputs.len() as u32;
                let c = self.fresh_net(NetDriver::Port(port));
                self.n.primary_inputs.push(c);
                self.n.clock = Some(c);
                c
            }
        };
        let cell = self.lib.smallest(CellFunction::Dff);
        let inst = InstId(self.n.instances.len() as u32);
        let q = self.fresh_net(NetDriver::Cell { inst, pin: 0 });
        // DFF pins: D, CK, Q.
        self.n.nets[d.0 as usize]
            .sinks
            .push(PinRef { inst, pin: 0 });
        self.n.nets[clock.0 as usize]
            .sinks
            .push(PinRef { inst, pin: 1 });
        self.n.instances.push(Instance {
            cell,
            pins: vec![d, clock, q],
            is_repeater: false,
        });
        q
    }

    /// Registers a whole bus, returning the Q nets.
    pub fn dff_bus(&mut self, d: &[NetId]) -> Vec<NetId> {
        d.iter().map(|&n| self.dff(n)).collect()
    }

    /// Balanced XOR reduction of `nets` (parity tree).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn xor_tree(&mut self, nets: &[NetId]) -> NetId {
        assert!(!nets.is_empty(), "xor tree of nothing");
        let mut level: Vec<NetId> = nets.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(CellFunction::Xor2, &[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    }

    /// Balanced AND/OR reduction.
    pub fn reduce(&mut self, function: CellFunction, nets: &[NetId]) -> NetId {
        assert!(!nets.is_empty(), "reduction of nothing");
        let mut level: Vec<NetId> = nets.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(function, &[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    }

    /// Ripple carry-save adder row: adds three equal-width buses, returning
    /// (sum, carry-out shifted left by the caller).
    pub fn csa_row(&mut self, a: &[NetId], b: &[NetId], c: &[NetId]) -> (Vec<NetId>, Vec<NetId>) {
        assert!(
            a.len() == b.len() && b.len() == c.len(),
            "bus widths differ"
        );
        let mut sums = Vec::with_capacity(a.len());
        let mut carries = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let outs = self.gate_outputs(CellFunction::FullAdder, &[a[i], b[i], c[i]]);
            sums.push(outs[0]);
            carries.push(outs[1]);
        }
        (sums, carries)
    }

    /// Kogge-Stone-style prefix adder over two buses; returns the sum bus
    /// (carry-out dropped).
    pub fn prefix_adder(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "bus widths differ");
        let w = a.len();
        // Generate/propagate.
        let mut g: Vec<NetId> = (0..w)
            .map(|i| self.gate(CellFunction::And2, &[a[i], b[i]]))
            .collect();
        let mut p: Vec<NetId> = (0..w)
            .map(|i| self.gate(CellFunction::Xor2, &[a[i], b[i]]))
            .collect();
        let p0 = p.clone();
        // Prefix network.
        let mut dist = 1;
        while dist < w {
            let mut g2 = g.clone();
            let mut p2 = p.clone();
            for i in dist..w {
                // g' = g | (p & g_prev); p' = p & p_prev.
                let t = self.gate(CellFunction::And2, &[p[i], g[i - dist]]);
                g2[i] = self.gate(CellFunction::Or2, &[g[i], t]);
                p2[i] = self.gate(CellFunction::And2, &[p[i], p[i - dist]]);
            }
            g = g2;
            p = p2;
            dist *= 2;
        }
        // Sum: p0[i] ^ carry_in(i) where carry_in(i) = g[i-1].
        let mut sum = Vec::with_capacity(w);
        sum.push(p0[0]);
        for i in 1..w {
            sum.push(self.gate(CellFunction::Xor2, &[p0[i], g[i - 1]]));
        }
        sum
    }

    /// 2:1 mux of two buses by one select.
    pub fn mux_bus(&mut self, a: &[NetId], b: &[NetId], sel: NetId) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "bus widths differ");
        (0..a.len())
            .map(|i| self.gate(CellFunction::Mux2, &[a[i], b[i], sel]))
            .collect()
    }

    /// Finalizes the netlist.
    pub fn finish(self) -> Netlist {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::{DesignStyle, TechNode};

    fn lib() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    #[test]
    fn xor_tree_gate_count_is_n_minus_1() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let ins = b.inputs(32);
        b.xor_tree(&ins);
        assert_eq!(b.finish().instance_count(), 31);
    }

    #[test]
    fn prefix_adder_has_log_depth_structure() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let a = b.inputs(16);
        let c = b.inputs(16);
        let sum = b.prefix_adder(&a, &c);
        assert_eq!(sum.len(), 16);
        let n = b.finish();
        // 2w (g/p) + prefix levels ~ 3w log w / something + sums; just
        // bound it loosely but meaningfully.
        assert!(n.instance_count() > 70 && n.instance_count() < 250);
        n.check_consistency(&lib);
    }

    #[test]
    fn csa_row_emits_full_adders() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.inputs(8);
        let y = b.inputs(8);
        let z = b.inputs(8);
        let (s, c) = b.csa_row(&x, &y, &z);
        assert_eq!(s.len(), 8);
        assert_eq!(c.len(), 8);
        assert_eq!(b.finish().instance_count(), 8);
    }

    #[test]
    fn clock_net_is_shared() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let q1 = b.dff(x);
        let _q2 = b.dff(q1);
        let n = b.finish();
        let clock = n.clock.expect("clock exists");
        assert_eq!(n.net(clock).sinks.len(), 2);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn arity_is_checked() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        b.gate(CellFunction::Nand2, &[x]);
    }
}
