use serde::{Deserialize, Serialize};

use m3d_cells::{CellId, CellLibrary};

/// Instance handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstId(pub u32);

/// Net handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub u32);

/// A cell input pin reference: instance plus input-pin index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PinRef {
    /// The instance.
    pub inst: InstId,
    /// Input pin index in [`m3d_cells::CellFunction::input_names`] order.
    pub pin: u8,
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetDriver {
    /// Primary input number `n`.
    Port(u32),
    /// Output pin `pin` of `inst` (output index, usually 0).
    Cell {
        /// Driving instance.
        inst: InstId,
        /// Output pin index.
        pin: u8,
    },
    /// Undriven (only during construction).
    None,
}

/// One placed-netlist instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Library cell.
    pub cell: CellId,
    /// Net connected to each input pin (input order), then each output pin.
    pub pins: Vec<NetId>,
    /// Set for buffers/inverters inserted by optimization — the population
    /// the paper's "#buffers" column counts.
    pub is_repeater: bool,
}

/// One net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Driver.
    pub driver: NetDriver,
    /// Fanout: every input pin the net feeds.
    pub sinks: Vec<PinRef>,
    /// `true` when this net also feeds a primary output.
    pub is_output: bool,
}

/// A flat mapped gate-level netlist over a [`CellLibrary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    pub(crate) instances: Vec<Instance>,
    pub(crate) nets: Vec<Net>,
    /// Nets driven by primary inputs.
    pub primary_inputs: Vec<NetId>,
    /// Nets observed at primary outputs.
    pub primary_outputs: Vec<NetId>,
    /// The single clock net, when the design is sequential.
    pub clock: Option<NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: &str) -> Self {
        Netlist {
            name: name.to_string(),
            instances: Vec::new(),
            nets: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            clock: None,
        }
    }

    /// Reassembles a netlist from the parts [`Netlist::instances`] /
    /// [`Netlist::nets`] expose — the durable-checkpoint decode path.
    /// The parts are trusted as-is; callers that construct them by hand
    /// (rather than round-tripping a real netlist) should follow up with
    /// [`Netlist::check_consistency`].
    pub fn from_parts(
        name: String,
        instances: Vec<Instance>,
        nets: Vec<Net>,
        primary_inputs: Vec<NetId>,
        primary_outputs: Vec<NetId>,
        clock: Option<NetId>,
    ) -> Self {
        Netlist {
            name,
            instances,
            nets,
            primary_inputs,
            primary_outputs,
            clock,
        }
    }

    /// All instances in id order (the durable-checkpoint encode path).
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// All nets in id order (the durable-checkpoint encode path).
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Instance by id.
    pub fn inst(&self, id: InstId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    /// Net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Iterates instance ids.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.instances.len() as u32).map(InstId)
    }

    /// Iterates net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Generated instance name.
    pub fn inst_name(&self, id: InstId) -> String {
        format!("u{}", id.0)
    }

    /// Generated net name.
    pub fn net_name(&self, id: NetId) -> String {
        format!("n{}", id.0)
    }

    /// The net driven by output pin 0 of `inst`, if any.
    pub fn output_net(&self, inst: InstId, lib: &CellLibrary) -> Option<NetId> {
        let i = self.inst(inst);
        let n_in = lib.cell(i.cell).input_count();
        i.pins.get(n_in).copied()
    }

    /// The net on input pin `pin` of `inst`.
    pub fn input_net(&self, inst: InstId, pin: u8) -> NetId {
        self.inst(inst).pins[pin as usize]
    }

    /// Total cell area, µm².
    pub fn total_cell_area(&self, lib: &CellLibrary) -> f64 {
        self.instances
            .iter()
            .map(|i| lib.cell(i.cell).area_um2())
            .sum()
    }

    /// Total input pin capacitance hanging on a net, fF.
    pub fn net_pin_cap(&self, id: NetId, lib: &CellLibrary) -> f64 {
        self.net(id)
            .sinks
            .iter()
            .map(|p| lib.cell(self.inst(p.inst).cell).input_cap(p.pin as usize))
            .sum()
    }

    /// Validates cross-reference consistency (every sink's instance pin
    /// points back at the net, every cell driver owns its net).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency; used by tests
    /// and debug assertions after netlist edits.
    pub fn check_consistency(&self, lib: &CellLibrary) {
        for (ni, net) in self.nets.iter().enumerate() {
            for s in &net.sinks {
                let inst = self.inst(s.inst);
                assert_eq!(
                    inst.pins[s.pin as usize],
                    NetId(ni as u32),
                    "sink {:?} of net {} points elsewhere",
                    s,
                    ni
                );
            }
            if let NetDriver::Cell { inst, pin } = net.driver {
                let i = self.inst(inst);
                let n_in = lib.cell(i.cell).input_count();
                assert_eq!(
                    i.pins[n_in + pin as usize],
                    NetId(ni as u32),
                    "driver of net {ni} does not own it"
                );
            }
        }
        for (ii, inst) in self.instances.iter().enumerate() {
            let cell = lib.cell(inst.cell);
            assert_eq!(
                inst.pins.len(),
                cell.input_count() + cell.function.output_count(),
                "instance {ii} pin arity"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;
    use m3d_cells::CellFunction;
    use m3d_tech::{DesignStyle, TechNode};

    fn lib() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    #[test]
    fn builder_produces_consistent_netlist() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let y = b.input();
        let z = b.gate(CellFunction::Xor2, &[x, y]);
        let q = b.dff(z);
        b.output(q);
        let n = b.finish();
        n.check_consistency(&lib);
        assert_eq!(n.instance_count(), 2);
        // x, y, plus the auto-created clock port.
        assert_eq!(n.primary_inputs.len(), 3);
        assert_eq!(n.primary_outputs.len(), 1);
        assert!(n.clock.is_some());
    }

    #[test]
    fn net_pin_cap_sums_sink_pins() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let a = b.gate(CellFunction::Inv, &[x]);
        let _f1 = b.gate(CellFunction::Inv, &[a]);
        let _f2 = b.gate(CellFunction::Nand2, &[a, x]);
        let n = b.finish();
        let inv = lib.cell_named("INV_X1").expect("inv");
        let nand = lib.cell_named("NAND2_X1").expect("nand");
        let expect = inv.input_cap(0) + nand.input_cap(0);
        assert!((n.net_pin_cap(a, &lib) - expect).abs() < 1e-12);
    }

    #[test]
    fn output_net_is_after_inputs() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let z = b.gate(CellFunction::Inv, &[x]);
        let n = b.finish();
        assert_eq!(n.output_net(InstId(0), &lib), Some(z));
        assert_eq!(n.input_net(InstId(0), 0), x);
    }
}
