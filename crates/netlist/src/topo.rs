use m3d_cells::CellLibrary;

use crate::{InstId, NetDriver, Netlist};

/// Levelizes the combinational portion of a netlist: returns per-instance
/// logic levels (distance from primary inputs / flop outputs) plus a
/// topological order of instance ids.
///
/// Flip-flops sit at level 0 (their Q is a timing start point); their D
/// input terminates paths. Combinational loops would never levelize, so
/// they are reported as an error.
///
/// # Errors
///
/// Returns the ids of instances stuck in a combinational cycle.
pub fn levelize(
    netlist: &Netlist,
    lib: &CellLibrary,
) -> Result<(Vec<u32>, Vec<InstId>), Vec<InstId>> {
    let n = netlist.instance_count();
    let mut level = vec![0u32; n];
    let mut pending = vec![0u32; n]; // unresolved combinational fanins
    let mut order: Vec<InstId> = Vec::with_capacity(n);
    let mut ready: Vec<InstId> = Vec::new();

    // Sequential cells are timing start points: they carry no
    // combinational dependencies, but they MUST precede their fanout in
    // the returned order (their Q arrival seeds the paths). Queue them
    // first and only then the dependency-free combinational cells, and
    // pop from the front so that seeding order is preserved.
    for id in netlist.inst_ids() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        if cell.function.is_sequential() {
            ready.push(id);
            continue;
        }
        let mut deps = 0;
        for p in 0..cell.input_count() {
            let net = netlist.net(inst.pins[p]);
            if let NetDriver::Cell { inst: d, .. } = net.driver {
                let dcell = lib.cell(netlist.inst(d).cell);
                if !dcell.function.is_sequential() {
                    deps += 1;
                }
            }
        }
        pending[id.0 as usize] = deps;
        if deps == 0 {
            ready.push(id);
        }
    }
    // Stable FIFO processing: flops (queued first) come out first.
    let mut head = 0usize;
    while head < ready.len() {
        let id = ready[head];
        head += 1;
        {
            order.push(id);
            let inst = netlist.inst(id);
            let cell = lib.cell(inst.cell);
            // A flop's Q is a timing start point: it raises its fanout's level
            // but was never counted as a combinational dependency.
            let i_am_seq = cell.function.is_sequential();
            let my_level = level[id.0 as usize];
            let n_in = cell.input_count();
            for &net_id in &inst.pins[n_in..] {
                for sink in &netlist.net(net_id).sinks {
                    let scell = lib.cell(netlist.inst(sink.inst).cell);
                    if scell.function.is_sequential() {
                        continue;
                    }
                    let s = sink.inst.0 as usize;
                    level[s] = level[s].max(my_level + 1);
                    if i_am_seq {
                        continue;
                    }
                    pending[s] -= 1;
                    if pending[s] == 0 {
                        ready.push(sink.inst);
                    }
                }
            }
        }
    }

    if order.len() < n {
        let stuck: Vec<InstId> = netlist
            .inst_ids()
            .filter(|id| pending[id.0 as usize] > 0)
            .collect();
        return Err(stuck);
    }
    Ok((level, order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;
    use m3d_cells::CellFunction;
    use m3d_tech::{DesignStyle, TechNode};

    fn lib() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    #[test]
    fn chain_levels_increase() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let mut x = b.input();
        for _ in 0..5 {
            x = b.gate(CellFunction::Inv, &[x]);
        }
        let n = b.finish();
        let (levels, order) = levelize(&n, &lib).expect("acyclic");
        assert_eq!(order.len(), 5);
        let mut sorted = levels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn flops_break_cycles() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        // q feeds back through an inverter into its own D: fine, the DFF
        // breaks the loop.
        let d_placeholder = b.gate(CellFunction::Inv, &[x]);
        let q = b.dff(d_placeholder);
        let _nq = b.gate(CellFunction::Inv, &[q]);
        let n = b.finish();
        assert!(levelize(&n, &lib).is_ok());
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let i0 = b.input();
        let i1 = b.input();
        let a = b.gate(CellFunction::Nand2, &[i0, i1]);
        let c = b.gate(CellFunction::Inv, &[a]);
        let _d = b.gate(CellFunction::Nand2, &[a, c]);
        let n = b.finish();
        let (_, order) = levelize(&n, &lib).expect("acyclic");
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        assert!(pos[&InstId(0)] < pos[&InstId(1)]);
        assert!(pos[&InstId(1)] < pos[&InstId(2)]);
    }
}
