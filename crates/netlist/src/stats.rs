use serde::{Deserialize, Serialize};

use m3d_cells::CellLibrary;

use crate::Netlist;

/// Summary statistics of a netlist — the columns of the paper's Table 12.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Number of cell instances.
    pub cell_count: usize,
    /// Total standard-cell area, µm².
    pub cell_area_um2: f64,
    /// Number of nets.
    pub net_count: usize,
    /// Mean fanout over driven nets (sinks per net).
    pub average_fanout: f64,
    /// Flip-flop count.
    pub flop_count: usize,
    /// Repeater count (paper "#buffers").
    pub buffer_count: usize,
}

impl Netlist {
    /// Computes summary statistics against `lib`.
    pub fn stats(&self, lib: &CellLibrary) -> NetlistStats {
        let mut fanout_sum = 0usize;
        let mut driven = 0usize;
        for id in self.net_ids() {
            let net = self.net(id);
            if Some(id) == self.clock {
                continue; // the clock's huge fanout would skew the average
            }
            if !net.sinks.is_empty() {
                fanout_sum += net.sinks.len() + usize::from(net.is_output);
                driven += 1;
            }
        }
        let flop_count = self
            .inst_ids()
            .filter(|&i| lib.cell(self.inst(i).cell).function.is_sequential())
            .count();
        NetlistStats {
            cell_count: self.instance_count(),
            cell_area_um2: self.total_cell_area(lib),
            net_count: self.net_count(),
            average_fanout: if driven > 0 {
                fanout_sum as f64 / driven as f64
            } else {
                0.0
            },
            flop_count,
            buffer_count: self.repeater_count(lib),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::NetlistBuilder;
    use m3d_cells::{CellFunction, CellLibrary};
    use m3d_tech::{DesignStyle, TechNode};

    #[test]
    fn stats_count_the_obvious() {
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let y = b.input();
        let a = b.gate(CellFunction::Nand2, &[x, y]);
        let q = b.dff(a);
        b.output(q);
        let n = b.finish();
        let s = n.stats(&lib);
        assert_eq!(s.cell_count, 2);
        assert_eq!(s.flop_count, 1);
        assert_eq!(s.buffer_count, 0);
        assert!(s.cell_area_um2 > 0.0);
        assert!(s.average_fanout >= 1.0);
    }
}
