use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, TechNode};
use std::time::Instant;
fn main() {
    let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
    for bench in Benchmark::ALL {
        let t = Instant::now();
        let n = bench.generate(&lib, BenchScale::Paper);
        let s = n.stats(&lib);
        println!(
            "{:5}: cells {:7} area {:9.0} um2 nets {:7} fanout {:.2} flops {:6}  ({:.2?})",
            bench.name(),
            s.cell_count,
            s.cell_area_um2,
            s.net_count,
            s.average_fanout,
            s.flop_count,
            t.elapsed()
        );
    }
    println!("paper: FPU 9694/19123, AES 13891/16756, LDPC 38289/60590, DES 51162/85526, M256 202877/293636");
}
