//! `monolith3d` — an open reproduction of the DAC'13 study *"Power
//! Benefit Study for Ultra-High Density Transistor-Level Monolithic 3D
//! ICs"* (Lee, Limbrick, Lim).
//!
//! Transistor-level monolithic 3D integration (**T-MI**) folds every
//! standard cell: PMOS devices go to the bottom tier, NMOS devices stay
//! on top, and nano-scale monolithic inter-tier vias (MIVs) stitch the
//! halves. Cell height drops 40 %, die footprint 40-44 %, wirelength
//! 20-34 %, and — the paper's headline — *total power drops up to 32 %
//! at iso-performance*, with the benefit depending strongly on circuit
//! wiring character and target clock.
//!
//! This crate is the study itself, built on the toolkit's substrates:
//!
//! | stage (paper Fig. 1) | crate |
//! |---|---|
//! | T-MI cell design + characterization | `m3d-cells`, `m3d-spice`, `m3d-extract` |
//! | metal stack + interconnect RC | `m3d-tech` |
//! | wire load models + synthesis | `m3d-synth` |
//! | placement | `m3d-place` |
//! | routing | `m3d-route` |
//! | timing/power sign-off | `m3d-sta`, `m3d-power` |
//!
//! [`Flow`] runs the whole pipeline for one (benchmark, node, style)
//! point; [`Comparison`] runs the iso-performance 2D-vs-T-MI pair and
//! reports the percentage deltas of the paper's Tables 4/7/13/14;
//! [`experiments`] regenerates every table and figure.
//!
//! The pipeline itself is a [`StageGraph`] ([`stage`]): one [`Stage`]
//! per paper step, reading and writing a typed [`FlowContext`] artifact
//! store ([`artifacts`]), with cell libraries and completed results
//! shared through a content-keyed [`ArtifactCache`] ([`cache`]) so the
//! experiment drivers and `paper_tables` never rebuild an identical
//! artifact.
//!
//! Failure handling: every stage has a fallible entry point whose errors
//! unify into [`FlowError`] ([`error`]); [`Flow::try_run`] reports the
//! first failing stage instead of panicking; [`FlowSupervisor`]
//! ([`supervisor`]) adds bounded retry with checkpointed resume and a
//! degradation ladder, and [`faultinject`] plants deterministic faults —
//! addressed to stages by name — to test that machinery.
//!
//! Governance: [`govern`] layers a resource governor over the executor —
//! a [`CancelToken`] hierarchy threaded through workers, the supervisor
//! watchdog and cache build waits; run/point deadline budgets returning
//! typed partial results ([`PointOutcome`]); a bounded [`AdmissionQueue`]
//! with priorities, quotas and a backpressure policy; and
//! [`RunGovernor::drain`], which finishes in-flight points and persists
//! the unstarted remainder for a later process to resume.
//!
//! Observability: the supervisor, cache and executor emit typed events
//! (stage spans with wall/busy durations, retries, degradation rungs,
//! checkpoint writes/resumes, cache traffic, work stealing) into a
//! pluggable [`observe::Recorder`] — JSONL traces, in-memory capture
//! for tests, or a [`observe::MetricsRegistry`] summarizing a run as a
//! [`observe::RunReport`]. Attach one with
//! [`ArtifactCache::set_recorder`]; the default null recorder costs
//! nothing.
//!
//! # Example: a small iso-performance comparison
//!
//! ```no_run
//! use m3d_netlist::{BenchScale, Benchmark};
//! use m3d_tech::NodeId;
//! use monolith3d::{Comparison, FlowConfig};
//!
//! let cfg = FlowConfig::new(NodeId::N45).scale(BenchScale::Small);
//! let cmp = Comparison::run(Benchmark::Aes, &cfg);
//! println!(
//!     "footprint {:+.1}%  wirelength {:+.1}%  power {:+.1}%",
//!     cmp.footprint_pct(),
//!     cmp.wirelength_pct(),
//!     cmp.total_power_pct()
//! );
//! ```

pub mod artifacts;
pub mod cache;
pub mod checkpoint;
mod codec;
mod compare;
pub mod error;
pub mod executor;
pub mod experiments;
pub mod faultinject;
mod flow;
pub mod gmi;
pub mod govern;
pub mod observe;
mod sharded;
pub mod stage;
pub mod store;
pub mod supervisor;

pub use artifacts::FlowContext;
pub use cache::{ArtifactCache, CacheStats, FlowKey, LibraryKey};
pub use checkpoint::CheckpointStore;
pub use compare::Comparison;
pub use error::StoreFailure;
pub use error::{ConfigError, FlowError, FlowStage};
pub use executor::{
    ExecutorReport, ExperimentPlan, GovernedReport, ParallelExecutor, PlanPoint, WorkerReport,
};
pub use faultinject::{
    FaultInjector, FaultKind, FaultPlan, InjectedFault, PlannedFault, PlannedStoreFault,
    StoreFaultKind, StoreFaultPlan,
};
pub use flow::{default_clock_scale, default_clock_scale_at, Flow, FlowConfig, FlowResult};
pub use flow::{estimate_models, extraction_models, try_extraction_models};
pub use govern::{
    load_remainder, save_remainder, AdmissionError, AdmissionQueue, Backpressure, CancelCause,
    CancelToken, PointOutcome, Priority, RunGovernor, REMAINDER_FILE,
};
pub use observe::{
    escape_json_into, json_raw_field, json_str_field, unescape_json, CacheKind, Event, EventKind,
    JsonlRecorder, MetricsRegistry, NullRecorder, Recorder, RunReport, StageOutcome, Tee,
    TraceSummary, VecRecorder,
};
pub use stage::{Stage, StageGraph};
pub use store::{DiskCounters, DiskStore};
pub use supervisor::{
    AttemptRecord, Disposition, FlowReport, FlowSupervisor, Relaxation, StageDeadlines,
    SupervisorPolicy,
};
