//! Work-stealing parallel execution of the paper's experiment matrix.
//!
//! The result tables are an embarrassingly parallel matrix — five
//! benchmarks × two styles × two nodes × the sensitivity sweeps — whose
//! points are independent given the shared cell library. An
//! [`ExperimentPlan`] enumerates the matrix (deduplicated by
//! [`FlowKey`], so "table 4" and the scorecard don't schedule the same
//! point twice); a [`ParallelExecutor`] fans the points out across N
//! workers that share one [`ArtifactCache`], whose per-key coalescing
//! guarantees each distinct library is still characterized exactly once
//! no matter how many workers want it at the same instant.
//!
//! **Determinism.** Execution order is whatever the work-stealing
//! schedule produces, but it cannot leak into the results: every flow
//! is a deterministic pure function of its configuration, and the
//! report collects results *by plan index*, so
//! [`ExecutorReport::results`] is always in plan order and every value
//! is bit-identical to a serial run of the same plan. The drivers that
//! format the paper's tables then run serially against the warmed cache
//! and emit byte-identical output (`tests/parallel.rs` and the CI
//! `parallel-determinism` job both pin this).
//!
//! The pool is hand-rolled over [`std::thread::scope`] — no external
//! runtime: each worker owns a deque seeded round-robin, pops from its
//! own front, and steals from the back of a victim's deque when empty.
//! Stealing matters here because flow points are far from uniform (an
//! LDPC sign-off costs ~10× a DES one at paper scale); a static
//! partition would leave workers idle behind the slowest stripe.

use std::collections::{HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use m3d_netlist::Benchmark;
use m3d_tech::DesignStyle;

use crate::cache::{ArtifactCache, FlowKey};
use crate::error::FlowError;
use crate::faultinject::FaultPlan;
use crate::flow::{Flow, FlowConfig, FlowResult};
use crate::govern::{self, CancelCause, CancelToken, PointOutcome, RunGovernor};
use crate::observe::EventKind;
use crate::supervisor::{FlowSupervisor, StageDeadlines, SupervisorPolicy};

/// One point of the experiment matrix: a full flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPoint {
    /// Benchmark circuit.
    pub bench: Benchmark,
    /// 2D or T-MI.
    pub style: DesignStyle,
    /// The full knob set.
    pub config: FlowConfig,
}

/// An ordered, deduplicated enumeration of flow points.
///
/// Points deduplicate by [`FlowKey`] — the projection onto the knobs a
/// flow actually consumes — so two drivers sweeping overlapping
/// configurations contribute each shared point once, and the executor
/// never races two workers on the same key.
#[derive(Debug, Default)]
pub struct ExperimentPlan {
    points: Vec<PlanPoint>,
    seen: HashSet<FlowKey>,
}

impl ExperimentPlan {
    /// An empty plan.
    pub fn new() -> Self {
        ExperimentPlan::default()
    }

    /// Appends one flow point unless an equivalent one (same
    /// [`FlowKey`]) is already planned. Returns whether it was added.
    pub fn push(&mut self, bench: Benchmark, style: DesignStyle, config: FlowConfig) -> bool {
        if self.seen.insert(FlowKey::of(bench, style, &config)) {
            self.points.push(PlanPoint {
                bench,
                style,
                config,
            });
            true
        } else {
            false
        }
    }

    /// Appends the iso-performance pair (2D + T-MI) a
    /// [`crate::Comparison`] runs.
    pub fn push_comparison(&mut self, bench: Benchmark, config: &FlowConfig) {
        self.push(bench, DesignStyle::TwoD, config.clone());
        self.push(bench, DesignStyle::Tmi, config.clone());
    }

    /// Appends every point of `other` (dedup still applies).
    pub fn merge(&mut self, other: ExperimentPlan) {
        for p in other.points {
            self.push(p.bench, p.style, p.config);
        }
    }

    /// The planned points, in plan order.
    pub fn points(&self) -> &[PlanPoint] {
        &self.points
    }

    /// Number of planned points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing is planned.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Per-worker execution accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerReport {
    /// Flow points this worker executed.
    pub items: usize,
    /// Of those, how many were stolen from another worker's deque.
    pub steals: usize,
    /// Wall-clock seconds spent inside flow runs (vs idle/queue time).
    pub busy_s: f64,
}

/// The outcome of one [`ParallelExecutor::run`].
#[derive(Debug)]
pub struct ExecutorReport {
    /// One result per plan point, **in plan order** regardless of the
    /// schedule that produced them.
    pub results: Vec<Result<FlowResult, FlowError>>,
    /// Wall-clock seconds for the whole fan-out.
    pub wall_s: f64,
    /// Per-worker accounting, indexed by worker id.
    pub workers: Vec<WorkerReport>,
}

impl ExecutorReport {
    /// Per-worker utilization: busy seconds over the run's wall clock,
    /// in `[0, 1]` per worker. The mean approaches 1 when stealing
    /// keeps every worker fed.
    pub fn utilization(&self) -> Vec<f64> {
        self.workers
            .iter()
            .map(|w| {
                if self.wall_s > 0.0 {
                    (w.busy_s / self.wall_s).min(1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Points that completed without a flow error.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// The first error, if any point failed.
    pub fn first_error(&self) -> Option<&FlowError> {
        self.results.iter().find_map(|r| r.as_ref().err())
    }
}

/// What [`ParallelExecutor::run_governed`] returns: *partial results*.
/// Completed slots carry their [`FlowResult`] intact; slots the
/// governor stopped carry a typed [`PointOutcome`] — never a panic,
/// never a hang.
#[derive(Debug)]
pub struct GovernedReport {
    /// One outcome per plan point, **in plan order**.
    pub outcomes: Vec<PointOutcome>,
    /// Wall-clock seconds for the whole governed fan-out.
    pub wall_s: f64,
    /// Per-worker accounting, indexed by worker id.
    pub workers: Vec<WorkerReport>,
    /// Plan points never started because of a drain, in plan order
    /// (empty unless the run drained).
    pub remainder: Vec<PlanPoint>,
    /// Where the remainder was persisted, when the governor carries a
    /// drain directory and the save succeeded.
    pub remainder_path: Option<PathBuf>,
}

impl GovernedReport {
    /// Points that closed with a result.
    pub fn done_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_done()).count()
    }

    /// Outcomes matching a terminal key (`"cancelled"`, …).
    pub fn count(&self, key: &str) -> usize {
        self.outcomes.iter().filter(|o| o.key() == key).count()
    }

    /// The first genuine flow error (governor interventions are not
    /// errors and don't show up here).
    pub fn first_error(&self) -> Option<&FlowError> {
        self.outcomes.iter().find_map(|o| match o {
            PointOutcome::Failed(e) => Some(e),
            _ => None,
        })
    }

    /// True when the governor stopped at least one point.
    pub fn is_partial(&self) -> bool {
        self.outcomes.iter().any(|o| {
            matches!(
                o,
                PointOutcome::Cancelled | PointOutcome::DeadlineExceeded | PointOutcome::Drained
            )
        })
    }
}

/// Fans an [`ExperimentPlan`] out across a scoped work-stealing pool.
#[derive(Debug)]
pub struct ParallelExecutor {
    workers: usize,
    cache: Arc<ArtifactCache>,
}

impl ParallelExecutor {
    /// An executor with `workers` threads (clamped to at least 1)
    /// sharing the process-wide [`ArtifactCache::global`].
    pub fn new(workers: usize) -> Self {
        ParallelExecutor {
            workers: workers.max(1),
            cache: ArtifactCache::global(),
        }
    }

    /// Substitutes an explicit cache — a fresh one isolates cold
    /// measurements and tests from the process-wide memo.
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The host's available parallelism — the `--jobs` default.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Runs every planned point, returning results in plan order.
    ///
    /// Worker `w` starts from its own stripe (points `w`, `w + N`,
    /// `w + 2N`, …) and steals from the back of other deques once its
    /// own drains. Since the plan is finite and nothing enqueues new
    /// work, "every deque empty" is a safe termination condition. A
    /// failing point records its [`FlowError`] in its slot and the
    /// fan-out continues — error reporting is the caller's call.
    pub fn run(&self, plan: &ExperimentPlan) -> ExecutorReport {
        let n = plan.len();
        if n == 0 {
            return ExecutorReport {
                results: Vec::new(),
                wall_s: 0.0,
                workers: Vec::new(),
            };
        }
        let workers = self.workers.min(n);
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new(((w..n).step_by(workers)).collect()))
            .collect();
        let slots: Vec<Mutex<Option<Result<FlowResult, FlowError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        let t0 = Instant::now();
        // The fan-out inherits the cache's event sink: flows executed
        // here emit their stage and cache events through it already, so
        // the executor only adds its own scheduling events.
        let recorder = self.cache.recorder();
        let reports: Vec<WorkerReport> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let slots = &slots;
                    let cache = &self.cache;
                    let recorder = &recorder;
                    s.spawn(move || {
                        let mut rep = WorkerReport::default();
                        loop {
                            // Own work first (front), then steal from a
                            // victim's back — opposite ends, so a busy
                            // owner and its thief rarely want the same
                            // index.
                            let mut stolen_from = None;
                            let mut next = queues[w].lock().expect("queue lock").pop_front();
                            if next.is_none() {
                                for v in 1..workers {
                                    let victim = (w + v) % workers;
                                    next = queues[victim].lock().expect("queue lock").pop_back();
                                    if next.is_some() {
                                        stolen_from = Some(victim);
                                        break;
                                    }
                                }
                            }
                            let Some(i) = next else { break };
                            if let Some(victim) = stolen_from {
                                if recorder.enabled() {
                                    recorder.record(EventKind::WorkerStolen {
                                        worker: w,
                                        victim,
                                        point: i,
                                    });
                                }
                            }
                            let p = &plan.points()[i];
                            let t = Instant::now();
                            let r = Flow::new(p.bench, p.style, p.config.clone())
                                .try_run_with_cache(cache);
                            rep.busy_s += t.elapsed().as_secs_f64();
                            rep.items += 1;
                            rep.steals += usize::from(stolen_from.is_some());
                            *slots[i].lock().expect("slot lock") = Some(r);
                        }
                        rep
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect()
        });

        ExecutorReport {
            results: slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("slot lock")
                        .expect("every planned point was executed")
                })
                .collect(),
            wall_s: t0.elapsed().as_secs_f64(),
            workers: reports,
        }
    }

    /// [`ParallelExecutor::run`] under a [`RunGovernor`]: the same
    /// work-stealing schedule and the same cache interactions (a
    /// governed point that completes warms the cache bit-identically to
    /// an ungoverned one), plus cooperative cancellation, run/point
    /// deadlines, and graceful drain.
    ///
    /// Workers check the governor between points: on cancel or deadline
    /// they stop popping and the in-flight point unwinds through the
    /// supervisor's between-stage checks and watchdog; on
    /// [`RunGovernor::drain`] they finish their in-flight point and
    /// stop. Slots never started get a typed [`PointOutcome`], and a
    /// drain's unstarted remainder is persisted through the checkpoint
    /// codec when the governor carries a drain directory.
    pub fn run_governed(&self, plan: &ExperimentPlan, gov: &RunGovernor) -> GovernedReport {
        let n = plan.len();
        if n == 0 {
            return GovernedReport {
                outcomes: Vec::new(),
                wall_s: 0.0,
                workers: Vec::new(),
                remainder: Vec::new(),
                remainder_path: None,
            };
        }
        gov.arm();
        let workers = self.workers.min(n);
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new(((w..n).step_by(workers)).collect()))
            .collect();
        let slots: Vec<Mutex<Option<PointOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();

        let t0 = Instant::now();
        let recorder = self.cache.recorder();
        // First-observer flags: cancel and drain are each announced
        // exactly once per run, by whichever thread notices first.
        let cancel_announced = AtomicBool::new(false);
        let drain_announced = AtomicBool::new(false);
        let announce_stop = |cause: Option<CancelCause>, draining: bool| {
            if let Some(c) = cause {
                if !cancel_announced.swap(true, Ordering::AcqRel) && recorder.enabled() {
                    recorder.record(EventKind::CancelRequested {
                        reason: match c {
                            CancelCause::Cancelled => "explicit",
                            CancelCause::DeadlineExceeded => "deadline",
                        },
                    });
                }
            }
            if draining && !drain_announced.swap(true, Ordering::AcqRel) && recorder.enabled() {
                recorder.record(EventKind::DrainStarted);
            }
        };
        let stopped = || {
            let cause = gov.cause();
            let draining = gov.is_draining();
            announce_stop(cause, draining);
            cause.is_some() || draining
        };

        let reports: Vec<WorkerReport> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let slots = &slots;
                    let stopped = &stopped;
                    let recorder = &recorder;
                    let this = &*self;
                    s.spawn(move || {
                        let mut rep = WorkerReport::default();
                        loop {
                            if stopped() {
                                break;
                            }
                            let mut stolen_from = None;
                            let mut next = queues[w].lock().expect("queue lock").pop_front();
                            if next.is_none() {
                                for v in 1..workers {
                                    let victim = (w + v) % workers;
                                    next = queues[victim].lock().expect("queue lock").pop_back();
                                    if next.is_some() {
                                        stolen_from = Some(victim);
                                        break;
                                    }
                                }
                            }
                            let Some(i) = next else { break };
                            // A stop may have landed while we were
                            // popping; put the point back untouched so
                            // it counts as never started.
                            if stopped() {
                                queues[w].lock().expect("queue lock").push_front(i);
                                break;
                            }
                            if let Some(victim) = stolen_from {
                                if recorder.enabled() {
                                    recorder.record(EventKind::WorkerStolen {
                                        worker: w,
                                        victim,
                                        point: i,
                                    });
                                }
                            }
                            let p = &plan.points()[i];
                            let t = Instant::now();
                            let outcome = this.run_governed_point(gov, p);
                            rep.busy_s += t.elapsed().as_secs_f64();
                            rep.items += 1;
                            rep.steals += usize::from(stolen_from.is_some());
                            *slots[i].lock().expect("slot lock") = Some(outcome);
                        }
                        rep
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect()
        });

        // Collection: completed slots keep their outcome; never-started
        // slots get a typed one from the run's terminal state. A drain
        // that raced a cancel counts as cancelled — the remainder is
        // only meaningful for a clean drain.
        let cause = gov.cause();
        let draining = gov.is_draining();
        announce_stop(cause, draining);
        let clean_drain = draining && cause.is_none();
        let mut outcomes = Vec::with_capacity(n);
        let mut remainder: Vec<PlanPoint> = Vec::new();
        for (i, m) in slots.into_iter().enumerate() {
            match m.into_inner().expect("slot lock") {
                Some(o) => outcomes.push(o),
                None => {
                    let p = &plan.points()[i];
                    let o = if clean_drain {
                        remainder.push(p.clone());
                        PointOutcome::Drained
                    } else {
                        match cause {
                            Some(CancelCause::DeadlineExceeded) => PointOutcome::DeadlineExceeded,
                            _ => PointOutcome::Cancelled,
                        }
                    };
                    if recorder.enabled() {
                        recorder.record(EventKind::PointCancelled {
                            bench: p.bench,
                            style: p.style,
                            outcome: o.key(),
                        });
                    }
                    outcomes.push(o);
                }
            }
        }
        let mut remainder_path = None;
        if clean_drain {
            if let Some(dir) = gov.drain_dir() {
                let path = dir.join(govern::REMAINDER_FILE);
                if govern::save_remainder(&path, &remainder).is_ok() {
                    remainder_path = Some(path);
                }
            }
        }
        if draining && recorder.enabled() {
            recorder.record(EventKind::DrainFinished {
                pending: remainder.len() as u64,
            });
        }

        GovernedReport {
            outcomes,
            wall_s: t0.elapsed().as_secs_f64(),
            workers: reports,
            remainder,
            remainder_path,
        }
    }

    /// One governed plan point: the exact cache contract of
    /// [`Flow::try_run_with_cache`] (validate → result-cache lookup →
    /// strict supervisor → result-cache store), with the governor's
    /// token, stage budgets and fault plan threaded into the
    /// supervisor. Governor interventions map to typed outcomes via the
    /// point token's cause; everything else is a plain `Failed`.
    fn run_governed_point(&self, gov: &RunGovernor, p: &PlanPoint) -> PointOutcome {
        self.run_point_inner(p, &gov.point_token(), gov.stage_deadlines(), gov.faults())
    }

    /// Runs one plan point under `tok` on this executor's cache —
    /// the single-request entry `m3d-serve` dispatches on: the same
    /// validate → cache lookup → strict supervisor → store contract as
    /// a governed batch point, so concurrent identical requests from
    /// different connections coalesce on the cache's per-key build
    /// cell and characterize exactly once. Cancel `tok` (or arm a
    /// deadline on it) to get a typed [`PointOutcome::Cancelled`] /
    /// [`PointOutcome::DeadlineExceeded`] back.
    pub fn run_point(&self, p: &PlanPoint, tok: &CancelToken) -> PointOutcome {
        self.run_point_inner(p, tok, None, &FaultPlan::new())
    }

    fn run_point_inner(
        &self,
        p: &PlanPoint,
        tok: &CancelToken,
        stage_deadlines: Option<&StageDeadlines>,
        faults: &FaultPlan,
    ) -> PointOutcome {
        if let Err(e) = p.config.validate() {
            return PointOutcome::Failed(e);
        }
        if let Some(hit) = self.cache.lookup_result(p.bench, p.style, &p.config) {
            return PointOutcome::Done(Box::new(hit));
        }
        let mut policy = SupervisorPolicy::strict();
        if let Some(d) = stage_deadlines {
            policy.deadlines = Some(d.clone());
        }
        let mut sup = FlowSupervisor::new(p.bench, p.style, p.config.clone())
            .policy(policy)
            .with_cache(Arc::clone(&self.cache))
            .with_cancel(tok.clone());
        if !faults.is_empty() {
            sup = sup.with_faults(faults.clone());
        }
        match sup.run().into_result() {
            Ok(result) => {
                self.cache
                    .store_result(p.bench, p.style, &p.config, &result);
                PointOutcome::Done(Box::new(result))
            }
            Err(e) => match tok.cause() {
                Some(CancelCause::Cancelled) => PointOutcome::Cancelled,
                Some(CancelCause::DeadlineExceeded) => PointOutcome::DeadlineExceeded,
                None => PointOutcome::Failed(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::BenchScale;
    use m3d_tech::NodeId;

    fn small_cfg() -> FlowConfig {
        FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
    }

    #[test]
    fn plan_dedups_by_flow_key() {
        let mut plan = ExperimentPlan::new();
        assert!(plan.push(Benchmark::Des, DesignStyle::TwoD, small_cfg()));
        assert!(
            !plan.push(Benchmark::Des, DesignStyle::TwoD, small_cfg()),
            "identical point must dedup"
        );
        // An unconsumed-knob change maps to the same FlowKey and dedups.
        let mut flipped = small_cfg();
        flipped.tmi_wlm = false;
        assert!(!plan.push(Benchmark::Des, DesignStyle::TwoD, flipped));
        // A consumed-knob change is a new point.
        let mut scaled = small_cfg();
        scaled.pin_cap_scale = 0.6;
        assert!(plan.push(Benchmark::Des, DesignStyle::TwoD, scaled));
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn comparison_pushes_both_styles() {
        let mut plan = ExperimentPlan::new();
        plan.push_comparison(Benchmark::Aes, &small_cfg());
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.points()[0].style, DesignStyle::TwoD);
        assert_eq!(plan.points()[1].style, DesignStyle::Tmi);
    }

    #[test]
    fn merge_applies_dedup_across_plans() {
        let mut a = ExperimentPlan::new();
        a.push_comparison(Benchmark::Aes, &small_cfg());
        let mut b = ExperimentPlan::new();
        b.push_comparison(Benchmark::Aes, &small_cfg());
        b.push(Benchmark::Ldpc, DesignStyle::TwoD, small_cfg());
        a.merge(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_plan_runs_to_an_empty_report() {
        let report = ParallelExecutor::new(4)
            .with_cache(Arc::new(ArtifactCache::default()))
            .run(&ExperimentPlan::new());
        assert!(report.results.is_empty());
        assert!(report.workers.is_empty());
    }

    #[test]
    fn executor_collects_in_plan_order_with_more_workers_than_points() {
        let mut plan = ExperimentPlan::new();
        plan.push(Benchmark::Des, DesignStyle::TwoD, small_cfg());
        plan.push(Benchmark::Des, DesignStyle::Tmi, small_cfg());
        let report = ParallelExecutor::new(8)
            .with_cache(Arc::new(ArtifactCache::default()))
            .run(&plan);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.ok_count(), 2);
        // Workers clamp to the point count.
        assert_eq!(report.workers.len(), 2);
        let executed: usize = report.workers.iter().map(|w| w.items).sum();
        assert_eq!(executed, 2);
        // Plan order, not completion order.
        let first = report.results[0].as_ref().expect("2D point closed");
        let second = report.results[1].as_ref().expect("T-MI point closed");
        assert_eq!(first.style, DesignStyle::TwoD);
        assert_eq!(second.style, DesignStyle::Tmi);
    }

    #[test]
    fn a_failing_point_does_not_poison_the_fanout() {
        let mut plan = ExperimentPlan::new();
        let mut bad = small_cfg();
        bad.pin_cap_scale = -1.0; // rejected by FlowConfig::validate
        plan.push(Benchmark::Des, DesignStyle::TwoD, bad);
        plan.push(Benchmark::Des, DesignStyle::TwoD, small_cfg());
        let report = ParallelExecutor::new(2)
            .with_cache(Arc::new(ArtifactCache::default()))
            .run(&plan);
        assert_eq!(report.ok_count(), 1);
        assert!(report.results[0].is_err());
        assert!(report.results[1].is_ok());
        assert!(report.first_error().is_some());
    }

    #[test]
    fn utilization_is_bounded_per_worker() {
        let mut plan = ExperimentPlan::new();
        plan.push_comparison(Benchmark::Des, &small_cfg());
        let report = ParallelExecutor::new(2)
            .with_cache(Arc::new(ArtifactCache::default()))
            .run(&plan);
        for u in report.utilization() {
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        }
    }
}
