//! The flow supervisor: per-stage retry with checkpointed resume, plus a
//! bounded degradation ladder when the flow cannot close as configured.
//!
//! The supervisor drives the [`crate::StageGraph`] — the same stages
//! `Flow::try_run` executes — but wraps each stage in a retry loop that
//! restores the last good [`Artifacts`] checkpoint before re-attempting,
//! and — when a whole run fails or sign-off timing does not close —
//! escalates through a ladder of recovery knobs that mirrors what a
//! designer would try by hand:
//!
//! 1. **More optimization passes**, resuming from the routing checkpoint
//!    when one exists (re-closing post-route without re-synthesizing);
//! 2. **Relaxed utilization** (a roomier floorplan routes and closes more
//!    easily), restarting from synthesis since the WLM shifts;
//! 3. **Clock backoff** (the paper's iso-performance pressure released a
//!    step), also restarting from synthesis.
//!
//! The [`FlowReport`] records every attempt — each named by its
//! [`FlowStage`] — and ends in a [`Disposition`]: `Closed`,
//! `ClosedDegraded` with the relaxations that were needed, or `Failed`
//! naming the stage and its typed error.

use std::sync::Arc;

use m3d_netlist::Benchmark;
use m3d_tech::DesignStyle;

use crate::artifacts::{Artifacts, FlowContext};
use crate::cache::ArtifactCache;
use crate::error::{FlowError, FlowStage};
use crate::faultinject::{FaultInjector, FaultPlan};
use crate::flow::{FlowConfig, FlowResult};
use crate::stage::{Stage, StageGraph};

/// Retry and degradation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorPolicy {
    /// Attempts per stage (per ladder rung) before escalating; >= 1.
    pub max_stage_attempts: u32,
    /// Whether the degradation ladder may run at all.
    pub allow_degradation: bool,
    /// Optimization passes added by the first ladder rung.
    pub extra_opt_passes: usize,
    /// Utilization multiplier of the second rung (< 1 loosens the core).
    pub utilization_relax: f64,
    /// Clock-period multiplier of the third rung (> 1 slows the target).
    pub clock_backoff: f64,
    /// Sign-off closure tolerance: the run counts as closed when
    /// `wns_ps >= -wns_tolerance_frac * clock_ps`. `f64::INFINITY`
    /// disables the gate entirely.
    pub wns_tolerance_frac: f64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_stage_attempts: 2,
            allow_degradation: true,
            extra_opt_passes: 2,
            utilization_relax: 0.85,
            clock_backoff: 1.25,
            wns_tolerance_frac: 0.05,
        }
    }
}

impl SupervisorPolicy {
    /// One attempt per stage, no degradation, no sign-off gate — the
    /// policy behind [`crate::Flow::try_run`], which must execute
    /// exactly the unsupervised stage sequence.
    pub fn strict() -> Self {
        SupervisorPolicy {
            max_stage_attempts: 1,
            allow_degradation: false,
            wns_tolerance_frac: f64::INFINITY,
            ..SupervisorPolicy::default()
        }
    }
}

/// One recovery knob the ladder applied.
#[derive(Debug, Clone, PartialEq)]
pub enum Relaxation {
    /// Optimization pass budget increased.
    ExtraOptPasses {
        /// Passes added on top of the configured budget.
        added: usize,
    },
    /// Placement utilization loosened.
    RelaxedUtilization {
        /// Utilization before the rung.
        from: f64,
        /// Utilization after the rung.
        to: f64,
    },
    /// Clock target slowed.
    ClockBackoff {
        /// Clock period before the rung, ps.
        from_ps: f64,
        /// Clock period after the rung, ps.
        to_ps: f64,
    },
}

impl std::fmt::Display for Relaxation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Relaxation::ExtraOptPasses { added } => {
                write!(f, "+{added} optimization passes")
            }
            Relaxation::RelaxedUtilization { from, to } => {
                write!(f, "utilization relaxed {from:.2} -> {to:.2}")
            }
            Relaxation::ClockBackoff { from_ps, to_ps } => {
                write!(f, "clock backed off {from_ps:.0} ps -> {to_ps:.0} ps")
            }
        }
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Closed under the configured targets.
    Closed,
    /// Closed, but only after the listed relaxations.
    ClosedDegraded {
        /// Ladder rungs that were needed, in the order applied.
        relaxations: Vec<Relaxation>,
    },
    /// Could not close: the stage that gave out, with its typed error.
    Failed {
        /// Stage of the final failure.
        stage: FlowStage,
        /// The error that exhausted the retry and degradation budget.
        error: FlowError,
    },
}

/// One stage execution attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Stage attempted.
    pub stage: FlowStage,
    /// Degradation rung the attempt ran under (0 = as configured).
    pub rung: u32,
    /// 1-based attempt number within this stage at this rung.
    pub attempt: u32,
    /// `None` on success; the stage error otherwise.
    pub error: Option<FlowError>,
}

/// The supervisor's structured account of a run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Benchmark the run targeted.
    pub bench: Benchmark,
    /// Design style the run targeted.
    pub style: DesignStyle,
    /// Every stage attempt, in execution order.
    pub attempts: Vec<AttemptRecord>,
    /// Outcome.
    pub disposition: Disposition,
    /// The sign-off result when the run closed (possibly degraded).
    pub result: Option<FlowResult>,
    /// Effective clock period after any backoff, ps.
    pub clock_ps: f64,
    /// Effective utilization after any relaxation.
    pub utilization: f64,
}

impl FlowReport {
    /// True when the run produced a sign-off result.
    pub fn closed(&self) -> bool {
        !matches!(self.disposition, Disposition::Failed { .. })
    }

    /// True when closure needed the degradation ladder.
    pub fn degraded(&self) -> bool {
        matches!(self.disposition, Disposition::ClosedDegraded { .. })
    }

    /// Number of attempts recorded for a stage (across all rungs).
    pub fn stage_attempts(&self, stage: FlowStage) -> u32 {
        self.attempts.iter().filter(|a| a.stage == stage).count() as u32
    }

    /// Number of attempts recorded for a stage addressed by name
    /// (`"route"`, `"sign-off"`, …). Unknown names count zero.
    pub fn stage_attempts_named(&self, name: &str) -> u32 {
        FlowStage::from_name(name)
            .map(|s| self.stage_attempts(s))
            .unwrap_or(0)
    }

    /// Converts the report into a plain result, discarding the attempt
    /// history: the sign-off result when closed, the final error
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns the error of the final failure for `Failed` dispositions.
    pub fn into_result(self) -> Result<FlowResult, FlowError> {
        match self.disposition {
            Disposition::Failed { error, .. } => Err(error),
            Disposition::Closed | Disposition::ClosedDegraded { .. } => {
                Ok(self.result.expect("closed dispositions carry a result"))
            }
        }
    }
}

/// A whole-rung failure, carrying the routing checkpoint so the next
/// rung can resume post-route work without re-synthesizing.
struct RungFailure {
    stage: FlowStage,
    error: FlowError,
    // Boxed: a checkpoint carries the whole working state, and the
    // failure travels by value through `Result`.
    routing_ckpt: Option<Box<Artifacts>>,
}

/// Drives the [`StageGraph`] under a [`SupervisorPolicy`], with optional
/// deterministic fault injection for testing the recovery machinery.
///
/// The supervisor always *executes* its stages — it never consults the
/// result cache, so planted faults and degradation scenarios behave
/// identically whether or not an equivalent flow already completed.
/// Result memoization lives one level up, in
/// [`crate::Flow::try_run_with_cache`]; the shared cache passed here
/// only deduplicates cell-library builds inside the library stage.
#[derive(Debug)]
pub struct FlowSupervisor {
    bench: Benchmark,
    style: DesignStyle,
    config: FlowConfig,
    policy: SupervisorPolicy,
    injector: FaultInjector,
    graph: StageGraph,
    cache: Arc<ArtifactCache>,
}

impl FlowSupervisor {
    /// A supervisor over the paper pipeline for `bench`/`style`/`config`,
    /// with the default policy, no faults, and the process-wide
    /// library cache.
    pub fn new(bench: Benchmark, style: DesignStyle, config: FlowConfig) -> Self {
        FlowSupervisor {
            bench,
            style,
            config,
            policy: SupervisorPolicy::default(),
            injector: FaultInjector::new(FaultPlan::new()),
            graph: StageGraph::paper_pipeline(),
            cache: ArtifactCache::global(),
        }
    }

    /// Replaces the policy.
    pub fn policy(mut self, policy: SupervisorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arms a deterministic fault plan (test harness).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.injector = FaultInjector::new(plan);
        self
    }

    /// Replaces the artifact cache (library-build sharing only; see the
    /// type docs).
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Runs the flow to a disposition. Never panics on stage failures:
    /// every error lands in the report.
    pub fn run(self) -> FlowReport {
        let FlowSupervisor {
            bench,
            style,
            config,
            policy,
            mut injector,
            graph,
            cache,
        } = self;
        let mut records: Vec<AttemptRecord> = Vec::new();
        let mut cx = FlowContext::new(bench, style, config, cache);
        let fail_report = |records: Vec<AttemptRecord>,
                           stage: FlowStage,
                           error: FlowError,
                           clock_ps: f64,
                           utilization: f64| FlowReport {
            bench,
            style,
            attempts: records,
            disposition: Disposition::Failed { stage, error },
            result: None,
            clock_ps,
            utilization,
        };

        // Library preparation, retried like any stage.
        if let Err(e) = run_stage(
            graph.stage(FlowStage::Library),
            &mut cx,
            &mut injector,
            &mut records,
            policy.max_stage_attempts,
            0,
        ) {
            return fail_report(records, FlowStage::Library, e, 0.0, 0.0);
        }

        let mut relaxations: Vec<Relaxation> = Vec::new();
        let mut resume: Option<Artifacts> = None;
        let mut rung: u32 = 0;
        loop {
            match execute_rung(
                &graph,
                &mut cx,
                &policy,
                &mut injector,
                &mut records,
                rung,
                resume.take(),
            ) {
                Ok(result) => {
                    let disposition = if relaxations.is_empty() {
                        Disposition::Closed
                    } else {
                        Disposition::ClosedDegraded {
                            relaxations: relaxations.clone(),
                        }
                    };
                    let env = cx.env.as_ref().expect("library stage ran");
                    return FlowReport {
                        bench,
                        style,
                        attempts: records,
                        disposition,
                        result: Some(result),
                        clock_ps: env.clock_ps,
                        utilization: env.utilization,
                    };
                }
                Err(fail) => {
                    // Config/library errors are structural: no physical
                    // knob fixes them, so fail fast. Otherwise walk the
                    // ladder until it runs out.
                    let structural =
                        matches!(fail.error, FlowError::Config(_) | FlowError::Library(_));
                    if !policy.allow_degradation || structural || rung >= 3 {
                        let (clock_ps, utilization) = cx
                            .env
                            .as_ref()
                            .map(|e| (e.clock_ps, e.utilization))
                            .unwrap_or((0.0, 0.0));
                        return fail_report(records, fail.stage, fail.error, clock_ps, utilization);
                    }
                    let env = cx.env.as_mut().expect("library stage ran");
                    match rung {
                        0 => {
                            env.opt_passes += policy.extra_opt_passes;
                            relaxations.push(Relaxation::ExtraOptPasses {
                                added: policy.extra_opt_passes,
                            });
                            // More passes only change post-route work, so
                            // resume from the routing checkpoint when the
                            // failed rung got that far.
                            resume = fail.routing_ckpt.map(|b| *b);
                        }
                        1 => {
                            let from = env.utilization;
                            env.utilization *= policy.utilization_relax;
                            relaxations.push(Relaxation::RelaxedUtilization {
                                from,
                                to: env.utilization,
                            });
                        }
                        _ => {
                            let from = env.clock_ps;
                            env.clock_ps *= policy.clock_backoff;
                            relaxations.push(Relaxation::ClockBackoff {
                                from_ps: from,
                                to_ps: env.clock_ps,
                            });
                        }
                    }
                    rung += 1;
                }
            }
        }
    }
}

/// Runs one stage under the retry budget: the artifact store is
/// checkpointed before the first attempt, every failed attempt is
/// recorded and the checkpoint restored, so a retry re-enters the stage
/// from the last good state.
fn run_stage(
    stage: &dyn Stage,
    cx: &mut FlowContext,
    injector: &mut FaultInjector,
    records: &mut Vec<AttemptRecord>,
    max_attempts: u32,
    rung: u32,
) -> Result<(), FlowError> {
    let id = stage.id();
    let checkpoint = cx.art.clone();
    let max_attempts = max_attempts.max(1);
    let mut attempt = 0;
    loop {
        attempt += 1;
        let outcome = match injector.tick(id) {
            Some(injected) => Err(injected),
            None => stage.run(cx),
        };
        match outcome {
            Ok(()) => {
                records.push(AttemptRecord {
                    stage: id,
                    rung,
                    attempt,
                    error: None,
                });
                return Ok(());
            }
            Err(e) => {
                records.push(AttemptRecord {
                    stage: id,
                    rung,
                    attempt,
                    error: Some(e.clone()),
                });
                cx.art = checkpoint.clone();
                if attempt >= max_attempts {
                    return Err(e);
                }
            }
        }
    }
}

/// Executes one full pass of the pipeline (the two-round floorplan loop
/// plus sign-off) at the current ladder rung, checkpointing the artifact
/// store after routing so retries and ladder resumes restart from the
/// last good state.
fn execute_rung(
    graph: &StageGraph,
    cx: &mut FlowContext,
    policy: &SupervisorPolicy,
    injector: &mut FaultInjector,
    records: &mut Vec<AttemptRecord>,
    rung: u32,
    resume: Option<Artifacts>,
) -> Result<FlowResult, RungFailure> {
    let att = policy.max_stage_attempts;
    let resumed = resume.is_some();
    let mut routing_ckpt: Option<Artifacts> = resume.clone();
    if let Some(art) = resume {
        cx.art = art;
    }
    let fail = |stage: FlowStage, error: FlowError, ckpt: Option<Artifacts>| RungFailure {
        stage,
        error,
        routing_ckpt: ckpt.map(Box::new),
    };

    if !resumed {
        run_stage(
            graph.stage(FlowStage::Synthesis),
            cx,
            injector,
            records,
            att,
            rung,
        )
        .map_err(|e| fail(FlowStage::Synthesis, e, None))?;
    }

    // The two-round floorplan loop of the unsupervised flow: round 1
    // sizes the design; a second round re-builds the core when the cell
    // area drifted from the floorplan basis. A degraded resume re-closes
    // post-route work only.
    let mut round = 0;
    let mut round1_best: Option<(m3d_netlist::Netlist, m3d_place::Placement, f64)> = None;
    loop {
        if !(resumed && round == 0) {
            for id in [
                FlowStage::Placement,
                FlowStage::PreRouteOpt,
                FlowStage::Routing,
            ] {
                run_stage(graph.stage(id), cx, injector, records, att, rung)
                    .map_err(|e| fail(id, e, routing_ckpt.clone()))?;
            }
            routing_ckpt = Some(cx.art.clone());
        }
        run_stage(
            graph.stage(FlowStage::PostRouteOpt),
            cx,
            injector,
            records,
            att,
            rung,
        )
        .map_err(|e| fail(FlowStage::PostRouteOpt, e, routing_ckpt.clone()))?;

        round += 1;
        if resumed {
            break;
        }
        let wns_now = cx.art.wns_after_opt;
        if round >= 2 {
            // Keep whichever round closed better (round 2 can fail on
            // stubborn designs; fall back to the round-1 result).
            if let Some((n1, p1, w1)) = round1_best.take() {
                if wns_now < w1.min(0.0) {
                    // Sign-off below re-routes and re-extracts.
                    cx.art.netlist = Some(n1);
                    cx.art.placement = Some(p1);
                }
            }
            break;
        }
        let env = cx.env.as_ref().expect("library stage ran");
        let netlist = cx
            .art
            .netlist
            .as_ref()
            .expect("synthesis stage leaves a netlist");
        let placement = cx
            .art
            .placement
            .as_ref()
            .expect("post-route stage leaves a placement");
        let area_now: f64 = netlist.total_cell_area(&env.lib);
        let basis = area_now / placement.footprint_um2();
        if (basis / env.utilization - 1.0).abs() <= 0.10 {
            break;
        }
        round1_best = Some((netlist.clone(), placement.clone(), wns_now));
    }

    run_stage(
        graph.stage(FlowStage::SignOff),
        cx,
        injector,
        records,
        att,
        rung,
    )
    .map_err(|e| fail(FlowStage::SignOff, e, routing_ckpt.clone()))?;
    let result = cx.result.take().expect("sign-off stage stores a result");

    let clock_ps = cx.env.as_ref().expect("library stage ran").clock_ps;
    if result.wns_ps < -policy.wns_tolerance_frac * clock_ps {
        let error = FlowError::TimingNotClosed {
            wns_ps: result.wns_ps,
            clock_ps,
        };
        records.push(AttemptRecord {
            stage: FlowStage::SignOff,
            rung,
            attempt: 0,
            error: Some(error.clone()),
        });
        return Err(fail(FlowStage::SignOff, error, routing_ckpt));
    }
    Ok(result)
}
