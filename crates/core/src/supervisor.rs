//! The flow supervisor: crash-only execution of the stage graph, with
//! per-stage retry, panic containment, wall-clock deadlines, durable
//! on-disk checkpoints, and a bounded degradation ladder when the flow
//! cannot close as configured.
//!
//! The supervisor drives the [`crate::StageGraph`] — the same stages
//! `Flow::try_run` executes — but wraps each stage attempt in a
//! containment envelope:
//!
//! * the stage body runs on a named worker thread under
//!   `catch_unwind`, so a panic becomes [`FlowError::StagePanicked`]
//!   and feeds the ordinary retry/degradation ladder instead of
//!   unwinding the driver;
//! * a watchdog bounds each attempt's wall clock
//!   ([`StageDeadlines`]); an overrun abandons the worker and reports
//!   [`FlowError::DeadlineExceeded`], restoring the pre-attempt state;
//! * with [`FlowSupervisor::with_checkpoints`], every completed stage
//!   writes a durable snapshot ([`crate::checkpoint`]) so a killed
//!   process resumes at the first incomplete stage via
//!   [`FlowSupervisor::resume_from`] — re-running no completed stage
//!   and reproducing the uninterrupted run bit for bit.
//!
//! When a whole run fails or sign-off timing does not close, the
//! supervisor escalates through a ladder of recovery knobs that mirrors
//! what a designer would try by hand:
//!
//! 1. **More optimization passes**, resuming from the routing checkpoint
//!    when one exists (re-closing post-route without re-synthesizing);
//! 2. **Relaxed utilization** (a roomier floorplan routes and closes more
//!    easily), restarting from synthesis since the WLM shifts;
//! 3. **Clock backoff** (the paper's iso-performance pressure released a
//!    step), also restarting from synthesis.
//!
//! The [`FlowReport`] records every attempt — each named by its
//! [`FlowStage`] — and ends in a [`Disposition`]: `Closed`,
//! `ClosedDegraded` with the relaxations that were needed, or `Failed`
//! naming the stage and its typed error.

use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use m3d_netlist::{Benchmark, Netlist};
use m3d_place::Placement;
use m3d_tech::DesignStyle;

use crate::artifacts::{Artifacts, FlowContext};
use crate::cache::ArtifactCache;
use crate::checkpoint::{CheckpointStore, Cursor, EnvKnobs, PersistedState};
use crate::error::{FlowError, FlowStage};
use crate::faultinject::{FaultInjector, FaultKind, FaultPlan};
use crate::flow::{FlowConfig, FlowResult};
use crate::govern::{self, CancelToken};
use crate::observe::{EventKind, Recorder, StageOutcome};
use crate::stage::{Stage, StageGraph};

/// Per-stage wall-clock budgets for the watchdog.
///
/// The defaults are derived from the flow benchmark (`BENCH_flow.json`):
/// a cold paper-pipeline run measures ~0.2 s at reduced scale in a
/// release build, with routing and the optimization stages dominating.
/// Paper-scale designs and debug builds cost two to three orders of
/// magnitude more, so each stage gets minutes, proportioned by its
/// measured share — generous enough that only a genuinely wedged stage
/// trips the watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDeadlines {
    budget_ms: [u64; FlowStage::ALL.len()],
}

impl Default for StageDeadlines {
    fn default() -> Self {
        StageDeadlines {
            // library, synth, place, preroute, route, postroute, signoff
            budget_ms: [60_000, 180_000, 180_000, 120_000, 240_000, 240_000, 180_000],
        }
    }
}

impl StageDeadlines {
    /// The same budget for every stage.
    pub fn uniform(budget_ms: u64) -> Self {
        StageDeadlines {
            budget_ms: [budget_ms; FlowStage::ALL.len()],
        }
    }

    /// Overrides one stage's budget, addressed by name (`"route"`, …).
    ///
    /// # Panics
    ///
    /// Panics on a name no stage answers to — a typo in a policy, best
    /// caught loudly.
    pub fn with_stage(mut self, stage: &str, budget_ms: u64) -> Self {
        let id = FlowStage::from_name(stage)
            .unwrap_or_else(|| panic!("no flow stage is named '{stage}'"));
        self.budget_ms[id.index()] = budget_ms;
        self
    }

    /// The budget for a stage, milliseconds.
    pub fn budget_ms(&self, stage: FlowStage) -> u64 {
        self.budget_ms[stage.index()]
    }
}

/// Retry and degradation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorPolicy {
    /// Attempts per stage (per ladder rung) before escalating; >= 1.
    pub max_stage_attempts: u32,
    /// Whether the degradation ladder may run at all.
    pub allow_degradation: bool,
    /// Optimization passes added by the first ladder rung.
    pub extra_opt_passes: usize,
    /// Utilization multiplier of the second rung (< 1 loosens the core).
    pub utilization_relax: f64,
    /// Clock-period multiplier of the third rung (> 1 slows the target).
    pub clock_backoff: f64,
    /// Sign-off closure tolerance: the run counts as closed when
    /// `wns_ps >= -wns_tolerance_frac * clock_ps`. `f64::INFINITY`
    /// disables the gate entirely.
    pub wns_tolerance_frac: f64,
    /// Per-stage wall-clock budgets; `None` disables the watchdog (the
    /// supervisor waits on each stage forever).
    pub deadlines: Option<StageDeadlines>,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_stage_attempts: 2,
            allow_degradation: true,
            extra_opt_passes: 2,
            utilization_relax: 0.85,
            clock_backoff: 1.25,
            wns_tolerance_frac: 0.05,
            deadlines: Some(StageDeadlines::default()),
        }
    }
}

impl SupervisorPolicy {
    /// One attempt per stage, no degradation, no sign-off gate — the
    /// policy behind [`crate::Flow::try_run`], which must execute
    /// exactly the unsupervised stage sequence.
    pub fn strict() -> Self {
        SupervisorPolicy {
            max_stage_attempts: 1,
            allow_degradation: false,
            wns_tolerance_frac: f64::INFINITY,
            ..SupervisorPolicy::default()
        }
    }
}

/// One recovery knob the ladder applied.
#[derive(Debug, Clone, PartialEq)]
pub enum Relaxation {
    /// Optimization pass budget increased.
    ExtraOptPasses {
        /// Passes added on top of the configured budget.
        added: usize,
    },
    /// Placement utilization loosened.
    RelaxedUtilization {
        /// Utilization before the rung.
        from: f64,
        /// Utilization after the rung.
        to: f64,
    },
    /// Clock target slowed.
    ClockBackoff {
        /// Clock period before the rung, ps.
        from_ps: f64,
        /// Clock period after the rung, ps.
        to_ps: f64,
    },
}

impl std::fmt::Display for Relaxation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Relaxation::ExtraOptPasses { added } => {
                write!(f, "+{added} optimization passes")
            }
            Relaxation::RelaxedUtilization { from, to } => {
                write!(f, "utilization relaxed {from:.2} -> {to:.2}")
            }
            Relaxation::ClockBackoff { from_ps, to_ps } => {
                write!(f, "clock backed off {from_ps:.0} ps -> {to_ps:.0} ps")
            }
        }
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Closed under the configured targets.
    Closed,
    /// Closed, but only after the listed relaxations.
    ClosedDegraded {
        /// Ladder rungs that were needed, in the order applied.
        relaxations: Vec<Relaxation>,
    },
    /// Could not close: the stage that gave out, with its typed error.
    Failed {
        /// Stage of the final failure.
        stage: FlowStage,
        /// The error that exhausted the retry and degradation budget.
        error: FlowError,
    },
}

/// One stage execution attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Stage attempted.
    pub stage: FlowStage,
    /// Degradation rung the attempt ran under (0 = as configured).
    pub rung: u32,
    /// 1-based attempt number within this stage at this rung.
    pub attempt: u32,
    /// `None` on success; the stage error otherwise.
    pub error: Option<FlowError>,
}

/// The supervisor's structured account of a run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Benchmark the run targeted.
    pub bench: Benchmark,
    /// Design style the run targeted.
    pub style: DesignStyle,
    /// Every stage attempt, in execution order. A resumed run carries
    /// the crashed process's records first, restored from the
    /// checkpoint ([`FlowError::Restored`] for failed attempts).
    pub attempts: Vec<AttemptRecord>,
    /// Outcome.
    pub disposition: Disposition,
    /// The sign-off result when the run closed (possibly degraded).
    pub result: Option<FlowResult>,
    /// Effective clock period after any backoff, ps.
    pub clock_ps: f64,
    /// Effective utilization after any relaxation.
    pub utilization: f64,
    /// Checkpoint-layer incidents the run survived: quarantined corrupt
    /// snapshots found during resume, and failed snapshot writes. Each
    /// is a [`FlowError::CorruptCheckpoint`]; none of them fail the run.
    pub checkpoint_incidents: Vec<FlowError>,
}

impl FlowReport {
    /// True when the run produced a sign-off result.
    pub fn closed(&self) -> bool {
        !matches!(self.disposition, Disposition::Failed { .. })
    }

    /// True when closure needed the degradation ladder.
    pub fn degraded(&self) -> bool {
        matches!(self.disposition, Disposition::ClosedDegraded { .. })
    }

    /// Number of attempts recorded for a stage, addressed by name
    /// (`"route"`, `"signoff"`, or a display name like `"sign-off"`),
    /// across all rungs. Unknown names count zero.
    pub fn stage_attempts(&self, stage: &str) -> u32 {
        match FlowStage::from_name(stage) {
            Some(id) => self.attempts.iter().filter(|a| a.stage == id).count() as u32,
            None => 0,
        }
    }

    /// Converts the report into a plain result, discarding the attempt
    /// history: the sign-off result when closed, the final error
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns the error of the final failure for `Failed` dispositions.
    pub fn into_result(self) -> Result<FlowResult, FlowError> {
        match self.disposition {
            Disposition::Failed { error, .. } => Err(error),
            Disposition::Closed | Disposition::ClosedDegraded { .. } => {
                Ok(self.result.expect("closed dispositions carry a result"))
            }
        }
    }
}

/// Renders a panic payload for [`FlowError::StagePanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Prefix of the worker threads stage attempts run on; the process-wide
/// panic hook stays silent for them (their unwinds are contained and
/// reported as [`FlowError::StagePanicked`], so the default
/// stderr backtrace would only be noise).
const WORKER_PREFIX: &str = "m3d-stage-";

/// The watchdog waits for the worker in slices this long, so it can
/// observe run-level cancellation while a stage is in flight. Bounds
/// the reaction latency of both cancel and deadline to one slice.
const WATCHDOG_SLICE: Duration = Duration::from_millis(15);

/// After cancelling an attempt's token, how long the watchdog waits for
/// the worker to comply before detaching it (and tracing the leak as a
/// `stage_abandoned` event). Part of the bounded-termination guarantee:
/// a governed run returns within its deadline plus one watchdog slice
/// plus this grace, per in-flight stage.
const ABANDON_GRACE: Duration = Duration::from_millis(100);

/// How a planted fault manifests inside the stage worker thread.
#[derive(Debug)]
enum WorkerFault {
    /// Plain (non-cancellable) sleep before the stage body.
    Delay(Duration),
    /// Panic before the stage body.
    Panic(String),
    /// Park on the attempt token until cancelled ([`FaultKind::StuckStage`]).
    Stuck,
    /// Cancellable stall, then the normal body ([`FaultKind::SlowStage`]).
    Slow(Duration),
}

fn silence_contained_panics() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let contained = thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_PREFIX));
            if !contained {
                previous(info);
            }
        }));
    });
}

/// Drives the [`StageGraph`] under a [`SupervisorPolicy`], with optional
/// deterministic fault injection for testing the recovery machinery and
/// optional durable checkpoints for crash recovery.
///
/// The supervisor always *executes* its stages — it never consults the
/// result cache, so planted faults and degradation scenarios behave
/// identically whether or not an equivalent flow already completed.
/// Result memoization lives one level up, in
/// [`crate::Flow::try_run_with_cache`]; the shared cache passed here
/// only deduplicates cell-library builds inside the library stage.
#[derive(Debug)]
pub struct FlowSupervisor {
    bench: Benchmark,
    style: DesignStyle,
    config: FlowConfig,
    policy: SupervisorPolicy,
    injector: FaultInjector,
    graph: StageGraph,
    cache: Arc<ArtifactCache>,
    store: Option<CheckpointStore>,
    resume: Option<PersistedState>,
    incidents: Vec<FlowError>,
    /// Explicit event sink; `None` inherits the cache's recorder at
    /// [`FlowSupervisor::run`] time.
    recorder: Option<Arc<dyn Recorder>>,
    /// Cancellation point for this run; `None` runs ungoverned.
    cancel: Option<CancelToken>,
}

impl FlowSupervisor {
    /// A supervisor over the paper pipeline for `bench`/`style`/`config`,
    /// with the default policy, no faults, no checkpointing, and the
    /// process-wide library cache.
    pub fn new(bench: Benchmark, style: DesignStyle, config: FlowConfig) -> Self {
        FlowSupervisor {
            bench,
            style,
            config,
            policy: SupervisorPolicy::default(),
            injector: FaultInjector::new(FaultPlan::new()),
            graph: StageGraph::paper_pipeline(),
            cache: ArtifactCache::global(),
            store: None,
            resume: None,
            incidents: Vec::new(),
            recorder: None,
            cancel: None,
        }
    }

    /// Replaces the policy.
    pub fn policy(mut self, policy: SupervisorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches an explicit event sink for this run. Without it, the
    /// run inherits whatever recorder is attached to its cache
    /// ([`ArtifactCache::set_recorder`]) — usually the right thing, so
    /// one attachment instruments stage spans and cache traffic
    /// together.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Arms a deterministic fault plan (test harness).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.injector = FaultInjector::new(plan);
        self
    }

    /// Threads a cancellation point through the run: the stage loop
    /// checks it between stages, the watchdog folds it into its wait,
    /// and each stage attempt installs a child of it thread-locally so
    /// deep waits (the cache's coalescing wait included) unwind with
    /// [`FlowError::Cancelled`] instead of hanging.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Replaces the artifact cache (library-build sharing only; see the
    /// type docs).
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Enables durable checkpoints in `dir`: every completed stage and
    /// every ladder escalation writes one snapshot, so a killed process
    /// continues via [`FlowSupervisor::resume_from`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::CorruptCheckpoint`] when the directory
    /// cannot be created.
    pub fn with_checkpoints(mut self, dir: impl AsRef<Path>) -> Result<Self, FlowError> {
        self.store = Some(CheckpointStore::open(dir)?);
        Ok(self)
    }

    /// Rebuilds a supervisor from the newest valid snapshot in a
    /// checkpoint directory. The returned supervisor targets the
    /// crashed run's benchmark/style/config and, when run, continues at
    /// the first incomplete stage: completed stages are *not* re-run
    /// (their attempt records come back from the snapshot), and the
    /// resumed run's numerics are bit-identical to an uninterrupted one.
    ///
    /// Snapshots that fail verification are quarantined under
    /// `dir/quarantine/` and surfaced in
    /// [`FlowReport::checkpoint_incidents`]; resume falls back to the
    /// next older snapshot, which re-runs just the affected stage.
    ///
    /// Policy and fault plan reset to defaults — apply
    /// [`FlowSupervisor::policy`] / [`FlowSupervisor::with_faults`]
    /// again if the resumed leg needs them.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::CorruptCheckpoint`] when the directory has
    /// no snapshots at all or none verifies — the caller should start
    /// the run from scratch.
    pub fn resume_from(dir: impl AsRef<Path>) -> Result<Self, FlowError> {
        let store = CheckpointStore::open(&dir)?;
        // load_latest can quarantine corrupt snapshots; trace those
        // into the global cache's sink (run() re-resolves later, so an
        // explicit with_recorder still wins for the run itself).
        store.set_recorder(ArtifactCache::global().recorder());
        let Some((state, incidents)) = store.load_latest()? else {
            return Err(FlowError::CorruptCheckpoint {
                path: dir.as_ref().display().to_string(),
                detail: "no checkpoint snapshots in directory".to_string(),
            });
        };
        Ok(FlowSupervisor {
            bench: state.bench,
            style: state.style,
            config: state.config.clone(),
            policy: SupervisorPolicy::default(),
            injector: FaultInjector::new(FaultPlan::new()),
            graph: StageGraph::paper_pipeline(),
            cache: ArtifactCache::global(),
            store: Some(store),
            resume: Some(state),
            incidents,
            recorder: None,
            cancel: None,
        })
    }

    /// The checkpoint directory, when checkpointing is enabled.
    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(CheckpointStore::dir)
    }

    /// Runs the flow to a disposition. Never panics on stage failures —
    /// panics included: every error lands in the report.
    pub fn run(self) -> FlowReport {
        silence_contained_panics();
        let FlowSupervisor {
            bench,
            style,
            config,
            policy,
            injector,
            graph,
            cache,
            store,
            resume,
            incidents,
            recorder,
            cancel,
        } = self;
        // An explicit recorder wins; otherwise inherit the cache's, so
        // attaching a sink to the cache instruments the whole run.
        let recorder = recorder.unwrap_or_else(|| cache.recorder());
        // Checkpoint quarantines trace into the same sink.
        if let Some(s) = &store {
            s.set_recorder(Arc::clone(&recorder));
        }
        let mut cx = FlowContext::new(bench, style, config, cache);
        let mut engine = Engine {
            policy,
            injector,
            graph,
            store,
            incidents,
            recorder,
            seq: 0,
            records: Vec::new(),
            relaxations: Vec::new(),
            rung: 0,
            round: 0,
            resumed_rung: false,
            cursor: Cursor::Synth,
            round1_best: None,
            routing_ckpt: None,
            corrupt_next_save: false,
            cancel,
        };

        match resume {
            Some(state) => {
                // Trace the resume before any live stage runs, so a
                // resumed run's trace always opens with it.
                engine.emit(|| EventKind::CheckpointResumed {
                    bench,
                    style,
                    cursor: state.cursor.key(),
                });
                // The cell library is a pure, memoized function of the
                // config; rebuild the environment through the library
                // stage directly — deterministic, so it earns no new
                // attempt record — then restore the effective knobs the
                // ladder had applied.
                if let Err(e) = engine.graph.stage(FlowStage::Library).run(&mut cx) {
                    return engine.fail_report(&cx, FlowStage::Library, e);
                }
                if let (Some(env), Some(knobs)) = (cx.env.as_mut(), state.env) {
                    env.clock_ps = knobs.clock_ps;
                    env.utilization = knobs.utilization;
                    env.opt_passes = knobs.opt_passes;
                }
                cx.art = state.art;
                engine.seq = state.seq;
                engine.records = state.records;
                engine.relaxations = state.relaxations;
                engine.rung = state.rung;
                engine.round = state.round;
                engine.resumed_rung = state.resumed_rung;
                engine.cursor = state.cursor;
                engine.round1_best = state.round1_best;
                engine.routing_ckpt = state.routing_ckpt;
            }
            None => {
                // Library preparation, retried like any stage.
                if let Err(e) = engine.run_stage(FlowStage::Library, &mut cx) {
                    return engine.fail_report(&cx, FlowStage::Library, e);
                }
                engine.save(&cx);
            }
        }
        engine.drive(cx)
    }
}

/// The running state of one supervised flow: everything `run` threads
/// through the rung loop, the cursor machine, and the checkpoint saves.
struct Engine {
    policy: SupervisorPolicy,
    injector: FaultInjector,
    graph: StageGraph,
    store: Option<CheckpointStore>,
    incidents: Vec<FlowError>,
    /// Resolved event sink (never `None`; disabled = null recorder).
    recorder: Arc<dyn Recorder>,
    /// Monotonic snapshot counter (continues across resume).
    seq: u64,
    records: Vec<AttemptRecord>,
    relaxations: Vec<Relaxation>,
    rung: u32,
    /// Floorplan round within the current rung (counts completed
    /// post-route passes).
    round: u32,
    /// Whether the current rung resumed from the routing checkpoint
    /// (ladder rung 1): it re-closes post-route work only.
    resumed_rung: bool,
    /// The next step of the cursor machine.
    cursor: Cursor,
    /// Round-1 netlist/placement/WNS kept across the floorplan rounds.
    round1_best: Option<(Netlist, Placement, f64)>,
    /// Artifacts snapshot taken after routing — what ladder rung 1
    /// resumes from.
    routing_ckpt: Option<Artifacts>,
    /// Armed by a `CorruptCheckpoint` fault: the next snapshot write is
    /// bit-flipped after landing on disk.
    corrupt_next_save: bool,
    /// Run-level cancellation point; `None` runs ungoverned.
    cancel: Option<CancelToken>,
}

impl Engine {
    /// Records one event iff the resolved recorder is live — with the
    /// default null recorder this is one virtual call, no event
    /// construction.
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        if self.recorder.enabled() {
            self.recorder.record(kind());
        }
    }

    /// The rung loop: execute the cursor machine to a result or walk the
    /// degradation ladder.
    fn drive(mut self, mut cx: FlowContext) -> FlowReport {
        loop {
            match self.execute_rung(&mut cx) {
                Ok(result) => {
                    let disposition = if self.relaxations.is_empty() {
                        Disposition::Closed
                    } else {
                        Disposition::ClosedDegraded {
                            relaxations: self.relaxations.clone(),
                        }
                    };
                    let env = cx.env.as_ref().expect("library stage ran");
                    return FlowReport {
                        bench: cx.bench,
                        style: cx.style,
                        attempts: self.records,
                        disposition,
                        result: Some(result),
                        clock_ps: env.clock_ps,
                        utilization: env.utilization,
                        checkpoint_incidents: self.incidents,
                    };
                }
                Err((stage, error)) => {
                    // A kill is not a failure to recover from in-process:
                    // the run stops dead, leaving the checkpoint
                    // directory exactly as a SIGKILL would. A cancel
                    // likewise: the governor asked the run to stop, so
                    // the ladder must not outlive it.
                    let killed = matches!(
                        error,
                        FlowError::Interrupted { .. } | FlowError::Cancelled { .. }
                    );
                    // Config/library errors are structural: no physical
                    // knob fixes them, so fail fast. Otherwise walk the
                    // ladder until it runs out.
                    let structural = matches!(error, FlowError::Config(_) | FlowError::Library(_));
                    if killed || !self.policy.allow_degradation || structural || self.rung >= 3 {
                        return self.fail_report(&cx, stage, error);
                    }
                    let env = cx.env.as_mut().expect("library stage ran");
                    match self.rung {
                        0 => {
                            env.opt_passes += self.policy.extra_opt_passes;
                            self.relaxations.push(Relaxation::ExtraOptPasses {
                                added: self.policy.extra_opt_passes,
                            });
                            // More passes only change post-route work, so
                            // resume from the routing checkpoint when the
                            // failed rung got that far.
                            match self.routing_ckpt.clone() {
                                Some(art) => {
                                    cx.art = art;
                                    self.cursor = Cursor::Postroute;
                                    self.resumed_rung = true;
                                    self.round = 0;
                                }
                                None => self.reset_for_fresh_rung(),
                            }
                        }
                        1 => {
                            let from = env.utilization;
                            env.utilization *= self.policy.utilization_relax;
                            self.relaxations.push(Relaxation::RelaxedUtilization {
                                from,
                                to: env.utilization,
                            });
                            self.reset_for_fresh_rung();
                        }
                        _ => {
                            let from = env.clock_ps;
                            env.clock_ps *= self.policy.clock_backoff;
                            self.relaxations.push(Relaxation::ClockBackoff {
                                from_ps: from,
                                to_ps: env.clock_ps,
                            });
                            self.reset_for_fresh_rung();
                        }
                    }
                    self.rung += 1;
                    self.emit(|| EventKind::DegradationRungEntered {
                        bench: cx.bench,
                        style: cx.style,
                        rung: self.rung,
                    });
                    self.save(&cx);
                }
            }
        }
    }

    /// A ladder escalation that restarts the pipeline from synthesis.
    fn reset_for_fresh_rung(&mut self) {
        self.cursor = Cursor::Synth;
        self.resumed_rung = false;
        self.round = 0;
        self.round1_best = None;
        self.routing_ckpt = None;
    }

    /// Executes the cursor machine until sign-off or a stage gives out.
    /// Every completed stage advances the cursor and writes a snapshot;
    /// `Decide` is pure and replays deterministically on resume.
    fn execute_rung(&mut self, cx: &mut FlowContext) -> Result<FlowResult, (FlowStage, FlowError)> {
        loop {
            // Cooperative cancellation point between stages: a governed
            // run stops at the next stage boundary without opening a
            // new span, attributed to the stage it was about to enter.
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                let stage = self.cursor_stage();
                return Err((stage, FlowError::Cancelled { stage }));
            }
            match self.cursor {
                Cursor::Synth => {
                    self.run_stage(FlowStage::Synthesis, cx)
                        .map_err(|e| (FlowStage::Synthesis, e))?;
                    self.round = 0;
                    self.round1_best = None;
                    self.cursor = Cursor::Place;
                    self.save(cx);
                }
                Cursor::Place => {
                    self.run_stage(FlowStage::Placement, cx)
                        .map_err(|e| (FlowStage::Placement, e))?;
                    self.cursor = Cursor::Preroute;
                    self.save(cx);
                }
                Cursor::Preroute => {
                    self.run_stage(FlowStage::PreRouteOpt, cx)
                        .map_err(|e| (FlowStage::PreRouteOpt, e))?;
                    self.cursor = Cursor::Route;
                    self.save(cx);
                }
                Cursor::Route => {
                    self.run_stage(FlowStage::Routing, cx)
                        .map_err(|e| (FlowStage::Routing, e))?;
                    self.routing_ckpt = Some(cx.art.clone());
                    self.cursor = Cursor::Postroute;
                    self.save(cx);
                }
                Cursor::Postroute => {
                    self.run_stage(FlowStage::PostRouteOpt, cx)
                        .map_err(|e| (FlowStage::PostRouteOpt, e))?;
                    self.round += 1;
                    self.cursor = Cursor::Decide;
                    self.save(cx);
                }
                Cursor::Decide => {
                    // The two-round floorplan loop of the unsupervised
                    // flow: round 1 sizes the design; a second round
                    // re-builds the core when the cell area drifted from
                    // the floorplan basis. A degraded resume re-closes
                    // post-route work only. Pure decision over
                    // checkpointed values — resume replays it exactly.
                    self.cursor = self.decide(cx);
                }
                Cursor::Signoff => {
                    self.run_stage(FlowStage::SignOff, cx)
                        .map_err(|e| (FlowStage::SignOff, e))?;
                    let result = cx.result.take().expect("sign-off stage stores a result");
                    let clock_ps = cx.env.as_ref().expect("library stage ran").clock_ps;
                    if result.wns_ps < -self.policy.wns_tolerance_frac * clock_ps {
                        let error = FlowError::TimingNotClosed {
                            wns_ps: result.wns_ps,
                            clock_ps,
                        };
                        self.records.push(AttemptRecord {
                            stage: FlowStage::SignOff,
                            rung: self.rung,
                            attempt: 0,
                            error: Some(error.clone()),
                        });
                        return Err((FlowStage::SignOff, error));
                    }
                    return Ok(result);
                }
            }
        }
    }

    /// The stage the cursor machine would enter next — what a
    /// between-stage cancellation is attributed to.
    fn cursor_stage(&self) -> FlowStage {
        match self.cursor {
            Cursor::Synth => FlowStage::Synthesis,
            Cursor::Place => FlowStage::Placement,
            Cursor::Preroute => FlowStage::PreRouteOpt,
            Cursor::Route => FlowStage::Routing,
            Cursor::Postroute => FlowStage::PostRouteOpt,
            Cursor::Decide | Cursor::Signoff => FlowStage::SignOff,
        }
    }

    /// The floorplan-round decision: sign off, or re-place at the
    /// corrected floorplan basis.
    fn decide(&mut self, cx: &mut FlowContext) -> Cursor {
        if self.resumed_rung {
            return Cursor::Signoff;
        }
        let wns_now = cx.art.wns_after_opt;
        if self.round >= 2 {
            // Keep whichever round closed better (round 2 can fail on
            // stubborn designs; fall back to the round-1 result).
            if let Some((n1, p1, w1)) = self.round1_best.take() {
                if wns_now < w1.min(0.0) {
                    // Sign-off below re-routes and re-extracts.
                    cx.art.netlist = Some(n1);
                    cx.art.placement = Some(p1);
                }
            }
            return Cursor::Signoff;
        }
        let env = cx.env.as_ref().expect("library stage ran");
        let netlist = cx
            .art
            .netlist
            .as_ref()
            .expect("synthesis stage leaves a netlist");
        let placement = cx
            .art
            .placement
            .as_ref()
            .expect("post-route stage leaves a placement");
        let area_now: f64 = netlist.total_cell_area(&env.lib);
        let basis = area_now / placement.footprint_um2();
        if (basis / env.utilization - 1.0).abs() <= 0.10 {
            return Cursor::Signoff;
        }
        self.round1_best = Some((netlist.clone(), placement.clone(), wns_now));
        Cursor::Place
    }

    /// Runs one stage under the retry budget, each attempt contained on
    /// a watchdogged worker thread. The artifact store is checkpointed
    /// before the first attempt; every failed attempt — typed error,
    /// panic, or deadline overrun — is recorded and the checkpoint
    /// restored, so a retry re-enters the stage from the last good
    /// state. A planted `Kill` fault stops the run dead with
    /// [`FlowError::Interrupted`]: no record, no snapshot.
    fn run_stage(&mut self, id: FlowStage, cx: &mut FlowContext) -> Result<(), FlowError> {
        let stage = self.graph.stage_arc(id);
        let checkpoint = cx.art.clone();
        let max_attempts = self.policy.max_stage_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            let fault = self.injector.tick(id);
            if let Some(f) = &fault {
                match &f.kind {
                    // A kill models SIGKILL at stage entry: it returns
                    // before the span opens, so traces stay balanced —
                    // a killed process records nothing.
                    FaultKind::Kill => return Err(FlowError::Interrupted { stage: id }),
                    FaultKind::CorruptCheckpoint => self.corrupt_next_save = true,
                    _ => {}
                }
            }
            // Every attempt gets a span — injected errors included, so
            // the trace pairs one terminal event with every start and
            // mirrors the attempt records exactly.
            self.emit(|| EventKind::StageStarted {
                bench: cx.bench,
                style: cx.style,
                stage: id,
                rung: self.rung,
                attempt,
                consumes: stage.consumes(),
            });
            let wall_t0 = Instant::now();
            let (outcome, busy_s) = match &fault {
                Some(f) if f.kind == FaultKind::Error => (Err(f.error()), 0.0),
                _ => {
                    let wfault = fault.as_ref().and_then(|f| match &f.kind {
                        FaultKind::Delay(d) => Some(WorkerFault::Delay(*d)),
                        FaultKind::Panic => Some(WorkerFault::Panic(f.detail.clone())),
                        FaultKind::StuckStage => Some(WorkerFault::Stuck),
                        FaultKind::SlowStage(d) => Some(WorkerFault::Slow(*d)),
                        _ => None,
                    });
                    self.run_contained(Arc::clone(&stage), cx, &checkpoint, wfault)
                }
            };
            let wall_s = wall_t0.elapsed().as_secs_f64();
            self.emit(|| EventKind::StageFinished {
                bench: cx.bench,
                style: cx.style,
                stage: id,
                rung: self.rung,
                attempt,
                outcome: match &outcome {
                    Ok(()) => StageOutcome::Ok,
                    Err(e) => StageOutcome::of_error(e),
                },
                wall_s,
                busy_s,
            });
            match outcome {
                Ok(()) => {
                    self.records.push(AttemptRecord {
                        stage: id,
                        rung: self.rung,
                        attempt,
                        error: None,
                    });
                    return Ok(());
                }
                Err(e) => {
                    self.records.push(AttemptRecord {
                        stage: id,
                        rung: self.rung,
                        attempt,
                        error: Some(e.clone()),
                    });
                    cx.art = checkpoint.clone();
                    // A cancelled attempt is never retried: the
                    // governor asked the run to stop, so unwind now.
                    if matches!(e, FlowError::Cancelled { .. }) || attempt >= max_attempts {
                        return Err(e);
                    }
                    self.emit(|| EventKind::RetryScheduled {
                        bench: cx.bench,
                        style: cx.style,
                        stage: id,
                        next_attempt: attempt + 1,
                    });
                }
            }
        }
    }

    /// One contained stage attempt: the context moves onto a named
    /// worker thread, the stage body runs under `catch_unwind`, and the
    /// supervisor waits at most the stage's deadline budget for the
    /// context to come back — in cancellable slices, so a governor's
    /// cancel is honored mid-stage, not just at stage boundaries.
    ///
    /// Every attempt gets its own [`CancelToken`] (a child of the run
    /// token when one exists), installed thread-locally on the worker
    /// so deep waits — the cache's coalescing wait included — unwind
    /// instead of hanging. On overrun or cancel the watchdog cancels
    /// the attempt token and gives the worker one grace period to
    /// comply: a cooperative worker joins cleanly (no leak, no event);
    /// one that ignores its token is detached *visibly*, with a
    /// `stage_abandoned` event — leaked work is always traced.
    ///
    /// On a panic the context died with the worker's unwind; after any
    /// failure the context is rebuilt from the pre-attempt environment
    /// and artifact checkpoint, so the caller's retry semantics are
    /// identical across all failure modes.
    ///
    /// The second return value is the attempt's *busy* time: seconds
    /// measured inside the worker around the stage body. The caller
    /// times the wall clock around this whole call; the difference is
    /// spawn/channel/watchdog overhead (plus any injected delay).
    /// Attempts that never report back — panics, overruns, cancels —
    /// yield 0.
    fn run_contained(
        &mut self,
        stage: Arc<dyn Stage>,
        cx: &mut FlowContext,
        checkpoint: &Artifacts,
        fault: Option<WorkerFault>,
    ) -> (Result<(), FlowError>, f64) {
        let id = stage.id();
        let env_snapshot = cx.env.clone();
        let rebuild = |cx: &mut FlowContext| {
            cx.env = env_snapshot.clone();
            cx.art = checkpoint.clone();
            cx.result = None;
        };
        let budget_ms = self.policy.deadlines.as_ref().map(|d| d.budget_ms(id));
        // An attempt that is over before it starts — run token already
        // cancelled, or a zero stage budget — never spawns a worker:
        // server requests with an expired deadline must reject
        // instantly, not after a watchdog slice (or a full stage body).
        {
            let cancelled = self.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
            if cancelled || budget_ms == Some(0) {
                let error = if cancelled {
                    FlowError::Cancelled { stage: id }
                } else {
                    FlowError::DeadlineExceeded {
                        stage: id,
                        budget_ms: 0,
                    }
                };
                return (Err(error), 0.0);
            }
        }
        // Move the context into the worker; leave a hollow shell (same
        // run identity, no artifacts) to be overwritten on return.
        let shell = FlowContext::new(cx.bench, cx.style, cx.config.clone(), Arc::clone(&cx.cache));
        let owned = std::mem::replace(cx, shell);
        let (bench, style) = (cx.bench, cx.style);
        let (tx, rx) = mpsc::channel();
        // The attempt's own cancellation point: the watchdog cancels it
        // (not the run token) on overrun, so one abandoned attempt
        // never takes the rest of the run with it.
        let attempt_tok = match &self.cancel {
            Some(run_tok) => run_tok.child(),
            None => CancelToken::new(),
        };
        let worker_tok = attempt_tok.clone();
        let builder = thread::Builder::new().name(format!("{WORKER_PREFIX}{}", id.key()));
        let handle = builder
            .spawn(move || {
                let _guard = govern::install(worker_tok.clone());
                let verdict = panic::catch_unwind(AssertUnwindSafe(move || {
                    let mut cx = owned;
                    match fault {
                        Some(WorkerFault::Panic(message)) => panic!("{message}"),
                        // A non-cooperative wedge: plain sleep, blind
                        // to cancellation — exercises the watchdog's
                        // abandon path.
                        Some(WorkerFault::Delay(d)) => thread::sleep(d),
                        // A cooperative wedge: parks on the attempt
                        // token until cancelled, then unwinds cleanly —
                        // proves cancellation wins without a leak.
                        Some(WorkerFault::Stuck) => {
                            worker_tok.wait_cancelled();
                            return (cx, Err(FlowError::Cancelled { stage: id }), 0.0);
                        }
                        // A slow stage: cancellable stall (the guard
                        // blocks for up to `d`), then the normal body.
                        Some(WorkerFault::Slow(d)) if worker_tok.wait_cancelled_for(d) => {
                            return (cx, Err(FlowError::Cancelled { stage: id }), 0.0);
                        }
                        Some(WorkerFault::Slow(_)) | None => {}
                    }
                    let busy_t0 = Instant::now();
                    let outcome = stage.run(&mut cx);
                    (cx, outcome, busy_t0.elapsed().as_secs_f64())
                }));
                // The receiver may have given up (deadline overrun); a
                // failed send just drops the late result.
                let _ = tx.send(verdict);
            })
            .expect("spawning a stage worker thread");
        let governed = self.cancel.is_some();
        let received = if budget_ms.is_none() && !governed {
            // Ungoverned and unbounded: one blocking wait, the
            // pre-governor fast path.
            match rx.recv() {
                Ok(v) => v,
                Err(_) => {
                    let _ = handle.join();
                    rebuild(cx);
                    return (
                        Err(FlowError::StagePanicked {
                            stage: id,
                            payload: "stage worker vanished without a result".to_string(),
                        }),
                        0.0,
                    );
                }
            }
        } else {
            let t0 = Instant::now();
            loop {
                // Check before waiting (including before the first
                // slice): a cancel or deadline that is already due
                // aborts the attempt now, not one 15 ms slice later.
                let cancelled = self.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
                let blown = budget_ms.is_some_and(|b| t0.elapsed() >= Duration::from_millis(b));
                if cancelled || blown {
                    // Ask the attempt to stop, and give it one grace
                    // period to comply.
                    attempt_tok.cancel();
                    let responded = !matches!(
                        rx.recv_timeout(ABANDON_GRACE),
                        Err(RecvTimeoutError::Timeout)
                    );
                    if responded {
                        // Cooperative exit: clean join, no leak. The
                        // late verdict is discarded — the attempt
                        // failed either way and the state is rebuilt
                        // below.
                        let _ = handle.join();
                    } else {
                        // The worker ignored its token: detach it,
                        // visibly.
                        let abandoned_ms =
                            budget_ms.unwrap_or_else(|| t0.elapsed().as_millis() as u64);
                        self.emit(|| EventKind::StageAbandoned {
                            bench,
                            style,
                            stage: id,
                            budget_ms: abandoned_ms,
                        });
                        drop(handle);
                    }
                    rebuild(cx);
                    let error = if cancelled {
                        FlowError::Cancelled { stage: id }
                    } else {
                        FlowError::DeadlineExceeded {
                            stage: id,
                            budget_ms: budget_ms.expect("blown implies a budget"),
                        }
                    };
                    return (Err(error), 0.0);
                }
                match rx.recv_timeout(WATCHDOG_SLICE) {
                    Ok(v) => break v,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        let _ = handle.join();
                        rebuild(cx);
                        return (
                            Err(FlowError::StagePanicked {
                                stage: id,
                                payload: "stage worker vanished without a result".to_string(),
                            }),
                            0.0,
                        );
                    }
                }
            }
        };
        let _ = handle.join();
        match received {
            Ok((returned, outcome, busy_s)) => {
                *cx = returned;
                (outcome, busy_s)
            }
            Err(payload) => {
                rebuild(cx);
                (
                    Err(FlowError::StagePanicked {
                        stage: id,
                        payload: panic_message(payload.as_ref()),
                    }),
                    0.0,
                )
            }
        }
    }

    /// Writes one durable snapshot of the current supervisor state, when
    /// checkpointing is enabled. Write failures are surfaced in
    /// [`FlowReport::checkpoint_incidents`], never fail the run. A
    /// planted `CorruptCheckpoint` fault flips a byte of the file after
    /// it lands.
    fn save(&mut self, cx: &FlowContext) {
        let corrupt = std::mem::take(&mut self.corrupt_next_save);
        let Some(store) = &self.store else {
            return;
        };
        self.seq += 1;
        // The routed design is never consumed across a stage boundary
        // (sign-off re-routes), so snapshots drop it.
        fn durable(a: &Artifacts) -> Artifacts {
            let mut a = a.clone();
            a.routed = None;
            a
        }
        let state = PersistedState {
            seq: self.seq,
            bench: cx.bench,
            style: cx.style,
            config: cx.config.clone(),
            rung: self.rung,
            round: self.round,
            resumed_rung: self.resumed_rung,
            cursor: self.cursor,
            env: cx.env.as_ref().map(|e| EnvKnobs {
                clock_ps: e.clock_ps,
                utilization: e.utilization,
                opt_passes: e.opt_passes,
            }),
            relaxations: self.relaxations.clone(),
            records: self.records.clone(),
            art: durable(&cx.art),
            round1_best: self.round1_best.clone(),
            routing_ckpt: self.routing_ckpt.as_ref().map(durable),
        };
        match store.save(&state) {
            Ok((_, bytes)) => {
                if corrupt {
                    store.corrupt_newest();
                }
                self.emit(|| EventKind::CheckpointWritten {
                    bench: cx.bench,
                    style: cx.style,
                    cursor: state.cursor.key(),
                    bytes,
                });
            }
            Err(e) => self.incidents.push(e),
        }
    }

    /// Assembles a `Failed` report.
    fn fail_report(self, cx: &FlowContext, stage: FlowStage, error: FlowError) -> FlowReport {
        let (clock_ps, utilization) = cx
            .env
            .as_ref()
            .map(|e| (e.clock_ps, e.utilization))
            .unwrap_or((0.0, 0.0));
        FlowReport {
            bench: cx.bench,
            style: cx.style,
            attempts: self.records,
            disposition: Disposition::Failed { stage, error },
            result: None,
            clock_ps,
            utilization,
            checkpoint_incidents: self.incidents,
        }
    }
}
