//! Lock sharding, generic over the per-shard container.
//!
//! One mutex per shard, keys routed by hash: concurrent operations on
//! different keys proceed without contending on a single container-wide
//! lock. The [`crate::ArtifactCache`] shards its LRU maps through this,
//! and the [`crate::observe::MetricsRegistry`] shards its counter and
//! histogram maps — same machinery, different inner containers.

use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// A fixed set of independently locked shards of `S`.
#[derive(Debug)]
pub(crate) struct Sharded<S> {
    shards: Vec<Mutex<S>>,
}

impl<S> Sharded<S> {
    /// `count` shards (clamped to at least 1), each initialized by
    /// `init`.
    pub(crate) fn new(count: usize, init: impl Fn() -> S) -> Self {
        Sharded {
            shards: (0..count.max(1)).map(|_| Mutex::new(init())).collect(),
        }
    }

    /// The shard a key routes to. `DefaultHasher` is deterministic
    /// within a process, which is all shard routing needs.
    pub(crate) fn shard<K: Hash + ?Sized>(&self, key: &K) -> &Mutex<S> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Number of shards (test observability only).
    #[cfg(test)]
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Every shard, for whole-container sweeps (clear, len, snapshot).
    pub(crate) fn iter(&self) -> std::slice::Iter<'_, Mutex<S>> {
        self.shards.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let s: Sharded<Vec<u32>> = Sharded::new(4, Vec::new);
        assert_eq!(s.shard_count(), 4);
        for k in 0..100u64 {
            let a = s.shard(&k) as *const _;
            let b = s.shard(&k) as *const _;
            assert_eq!(a, b, "same key must route to the same shard");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s: Sharded<u32> = Sharded::new(0, || 0);
        assert_eq!(s.shard_count(), 1);
        *s.shard(&"anything").lock().expect("shard lock") += 1;
        assert_eq!(
            *s.iter()
                .next()
                .expect("one shard")
                .lock()
                .expect("shard lock"),
            1
        );
    }
}
