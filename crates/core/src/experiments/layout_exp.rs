//! Full-flow layout experiments (Tables 4/5/7/12/13/14/16; Figs. 3, 6).

use std::fmt::Write as _;

use m3d_netlist::{BenchScale, Benchmark};
use m3d_place::Placer;
use m3d_synth::WireLoadModel;
use m3d_tech::{DesignStyle, NodeId};

use crate::cache::ArtifactCache;
use crate::{Comparison, ExperimentPlan, FlowConfig, FlowResult};

/// The LDPC-vs-DES wiring-character contrast pair (Fig. 3, Table 16).
const CONTRAST_BENCHES: [Benchmark; 2] = [Benchmark::Ldpc, Benchmark::Des];

/// The circuits Table 5 compares against prior published work.
const TABLE5_BENCHES: [Benchmark; 3] = [Benchmark::Aes, Benchmark::Ldpc, Benchmark::Des];

/// Enumerates the flow points the named driver of this module runs, so
/// the parallel executor can pre-warm the shared cache; returns whether
/// the name belongs to this module. Drivers and plans iterate the same
/// constants — `tests/parallel.rs` asserts a warmed driver performs
/// zero flow misses.
pub(crate) fn add_plan(name: &str, scale: BenchScale, plan: &mut ExperimentPlan) -> bool {
    match name {
        "table4" => {
            let cfg = FlowConfig::new(NodeId::N45).scale(scale);
            for bench in Benchmark::ALL {
                plan.push_comparison(bench, &cfg);
            }
        }
        "table7" => {
            let cfg = FlowConfig::new(NodeId::N7).scale(scale);
            for bench in Benchmark::ALL {
                plan.push_comparison(bench, &cfg);
            }
        }
        "table5" => {
            let cfg = FlowConfig::new(NodeId::N45).scale(scale);
            for bench in TABLE5_BENCHES {
                plan.push_comparison(bench, &cfg);
            }
        }
        "fig3" => {
            let cfg = FlowConfig::new(NodeId::N45).scale(scale);
            for bench in CONTRAST_BENCHES {
                plan.push(bench, DesignStyle::TwoD, cfg.clone());
            }
        }
        "table16" => {
            let cfg = FlowConfig::new(NodeId::N45).scale(scale);
            for bench in CONTRAST_BENCHES {
                plan.push_comparison(bench, &cfg);
            }
        }
        // table12 and fig6 build libraries and placements but run no
        // full flows — nothing to pre-warm.
        "table12" | "fig6" => {}
        _ => return false,
    }
    true
}

/// Node-selected form of [`add_plan`]: enumerates the flow points the
/// smoke drivers run when retargeted to `node` (the `--node` CLI path).
/// The paper nodes keep their classic plans; any other registered node
/// gets the same loops with its own [`FlowConfig`].
pub(crate) fn add_plan_at(
    name: &str,
    scale: BenchScale,
    node: NodeId,
    plan: &mut ExperimentPlan,
) -> bool {
    if node == NodeId::N45 {
        return add_plan(name, scale, plan);
    }
    match name {
        "table4" => {
            if node == NodeId::N7 {
                return add_plan("table7", scale, plan);
            }
            let cfg = FlowConfig::new(node).scale(scale);
            for bench in Benchmark::ALL {
                plan.push_comparison(bench, &cfg);
            }
        }
        "fig3" => {
            let cfg = FlowConfig::new(node).scale(scale);
            for bench in CONTRAST_BENCHES {
                plan.push(bench, DesignStyle::TwoD, cfg.clone());
            }
        }
        "table16" => {
            let cfg = FlowConfig::new(node).scale(scale);
            for bench in CONTRAST_BENCHES {
                plan.push_comparison(bench, &cfg);
            }
        }
        _ => return false,
    }
    true
}

fn detail_row(r: &FlowResult) -> String {
    format!(
        "  {:3} fp {:9.0} um2  cells {:7} bufs {:6} util {:4.2} WL {:7.3} m WNS {:+6.0} ps  \
         P {:8.2} mW (cell {:7.2} net {:7.2} leak {:6.3})",
        r.style.label(),
        r.footprint_um2,
        r.cell_count,
        r.buffer_count,
        r.utilization,
        r.wirelength_m(),
        r.wns_ps,
        r.total_power_mw(),
        r.power.cell_mw,
        r.power.net_mw(),
        r.power.leakage_mw
    )
}

fn layout_table(node: NodeId, scale: BenchScale, paper: &[(&str, [f64; 6])]) -> String {
    let cfg = FlowConfig::new(node).scale(scale);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "circuit  footprint wirelen    total     cell      net    leakage   (percent change, T-MI over 2D)"
    );
    let mut details = String::new();
    for bench in Benchmark::ALL {
        let cmp = Comparison::run(bench, &cfg);
        let _ = writeln!(out, "{}", cmp.table_row());
        if let Some((_, p)) = paper.iter().find(|(n, _)| *n == bench.name()) {
            let _ = writeln!(
                out,
                "  paper: {:+7.1}%  {:+7.1}%  {:+7.1}%  {:+7.1}%  {:+7.1}%  {:+7.1}%",
                p[0], p[1], p[2], p[3], p[4], p[5]
            );
        }
        details.push_str(&detail_row(&cmp.two_d));
        details.push('\n');
        details.push_str(&detail_row(&cmp.tmi));
        details.push('\n');
    }
    out.push_str("detailed rows (Tables 13/14 layout):\n");
    out.push_str(&details);
    out
}

/// Tables 4 and 13: the 45 nm iso-performance layout comparison for all
/// five benchmarks.
pub fn table4_layout_45nm(scale: BenchScale) -> String {
    let paper = [
        ("FPU", [-41.7, -26.3, -14.5, -9.4, -19.5, -11.1]),
        ("AES", [-42.4, -23.6, -10.9, -7.6, -13.9, -9.5]),
        ("LDPC", [-43.2, -33.6, -32.1, -12.8, -39.2, -21.7]),
        ("DES", [-40.9, -21.5, -4.1, -1.6, -7.7, -1.4]),
        ("M256", [-43.4, -28.4, -17.5, -10.7, -22.2, -12.9]),
    ];
    format!(
        "Table 4 / Table 13 - 45 nm layout results\n{}",
        layout_table(NodeId::N45, scale, &paper)
    )
}

/// Tables 7 and 14: the 7 nm projection.
pub fn table7_layout_7nm(scale: BenchScale) -> String {
    let paper = [
        ("FPU", [-47.0, -34.2, -37.3, -32.4, -44.4, -21.0]),
        ("AES", [-62.0, -47.8, -19.8, -10.3, -28.4, -28.5]),
        ("LDPC", [-42.9, -27.7, -19.1, -3.7, -26.6, -3.5]),
        ("DES", [-40.8, -21.9, -3.4, -1.3, -7.3, -3.0]),
        ("M256", [-44.6, -23.0, -17.8, -14.1, -23.0, -2.4]),
    ];
    format!(
        "Table 7 / Table 14 - 7 nm layout results\n{}",
        layout_table(NodeId::N7, scale, &paper)
    )
}

/// Node-selected layout comparison (the `--node` CLI path): the two
/// paper nodes delegate to their pinned tables — bytes unchanged — and
/// any other registered node renders the generic comparison without
/// paper reference rows.
pub fn layout_results_at(node: NodeId, scale: BenchScale) -> String {
    if node == NodeId::N45 {
        table4_layout_45nm(scale)
    } else if node == NodeId::N7 {
        table7_layout_7nm(scale)
    } else {
        format!(
            "Layout results - {} node\n{}",
            node.label(),
            layout_table(node, scale, &[])
        )
    }
}

/// Table 5: our AES/LDPC/DES results alongside the published numbers of
/// the prior monolithic-3D works the paper compares against
/// (Bobba et al. \[2\] CELONCEL; Lee et al. \[7\]).
pub fn table5_prior_work(scale: BenchScale) -> String {
    let cfg = FlowConfig::new(NodeId::N45).scale(scale);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5 - comparison with prior works (wirelength m / power mW / reduction)"
    );
    for bench in TABLE5_BENCHES {
        let cmp = Comparison::run(bench, &cfg);
        let _ = writeln!(
            out,
            "{:5} ours-2D  WL {:6.3} m  P {:8.2} mW",
            bench.name(),
            cmp.two_d.wirelength_m(),
            cmp.two_d.total_power_mw()
        );
        let _ = writeln!(
            out,
            "      ours-3D  WL {:6.3} m ({:+5.1}%)  P {:8.2} mW ({:+5.1}%)",
            cmp.tmi.wirelength_m(),
            cmp.wirelength_pct(),
            cmp.tmi.total_power_mw(),
            cmp.total_power_pct()
        );
    }
    out.push_str(
        "published prior results (their setups; not directly comparable):\n\
         AES : paper-2D 0.260 m/13.69 mW, paper-3D -23.5%/-10.9% | [7]-3D -21.0%/-6.6%\n\
         LDPC: paper-2D 3.806 m/54.79 mW, paper-3D -33.6%/-32.1% | [2]-3D -12.6%/-6.0%\n\
         DES : paper-2D 0.611 m/63.88 mW, paper-3D -21.6%/-4.1%  | [2]-3D -13.4%/-1.9% | [7]-3D -19.7%/-3.1%\n",
    );
    out
}

/// Fig. 3: the LDPC vs DES layout-character contrast (Section 4.3) —
/// average net length, footprint and the wire/pin capacitance split that
/// explains their opposite power benefits.
pub fn fig3_circuit_character(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 3 - LDPC vs DES layout character (2D designs, 45 nm)"
    );
    fig3_rows(&FlowConfig::new(NodeId::N45).scale(scale), &mut out);
    out.push_str(
        "paper: LDPC 457x456 um, 3.806 m, 72.0 um avg net, wire 558 pF >> pin 134 pF;\n\
         DES 331x330 um, 0.611 m, 10.5 um avg net, wire 64 pF << pin 127 pF\n",
    );
    out
}

/// Node-selected form of [`fig3_circuit_character`]; non-paper nodes
/// render the same rows without the paper reference footer.
pub fn fig3_circuit_character_at(node: NodeId, scale: BenchScale) -> String {
    if node == NodeId::N45 {
        return fig3_circuit_character(scale);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 3 - LDPC vs DES layout character (2D designs, {} node)",
        node.label()
    );
    fig3_rows(&FlowConfig::new(node).scale(scale), &mut out);
    out
}

/// The shared Fig. 3 measurement rows at one configuration.
fn fig3_rows(cfg: &FlowConfig, out: &mut String) {
    for bench in CONTRAST_BENCHES {
        let r = crate::Flow::new(bench, DesignStyle::TwoD, cfg.clone()).run();
        let avg_net = r.wirelength_um / (r.cell_count as f64).max(1.0);
        let _ = writeln!(
            out,
            "{:5}: footprint {:7.0} um2 ({:5.1} x {:5.1} um), WL {:6.3} m, \
             ~{:5.1} um/cell, wire cap {:7.1} pF vs pin cap {:7.1} pF ({})",
            bench.name(),
            r.footprint_um2,
            r.core_um.0,
            r.core_um.1,
            r.wirelength_m(),
            avg_net,
            r.power.wire_cap_pf,
            r.power.pin_cap_pf,
            if r.power.wire_cap_pf > r.power.pin_cap_pf {
                "wire-dominated"
            } else {
                "pin-dominated"
            }
        );
    }
}

/// Table 12: the benchmark circuits and their synthesis statistics at
/// both nodes.
pub fn table12_benchmarks(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 12 - benchmark circuits and synthesis results\n\
         node circuit  clk(ns)  #cells   area(um2)   #nets   fanout  #flops"
    );
    for node_id in [NodeId::N45, NodeId::N7] {
        let lib = ArtifactCache::global()
            .library(node_id, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        for bench in Benchmark::ALL {
            let n = bench.generate(&lib, scale);
            let s = n.stats(&lib);
            let _ = writeln!(
                out,
                "{:4} {:7} {:7.2} {:8} {:11.1} {:7} {:7.2} {:7}",
                node_id,
                bench.name(),
                bench.target_clock_ps(node_id) * 1e-3,
                s.cell_count,
                s.cell_area_um2,
                s.net_count,
                s.average_fanout,
                s.flop_count
            );
        }
    }
    out.push_str(
        "paper 45nm: FPU 9694/19123, AES 13891/16756, LDPC 38289/60590, DES 51162/85526, M256 202877/293636\n\
         (generators are structurally faithful; counts match to first order)\n",
    );
    out
}

/// Table 16: wire vs pin capacitance/power decomposition of LDPC and DES
/// at 45 nm — the quantitative core of the paper's Section 4.3 argument.
pub fn table16_net_breakdown(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 16 - wire vs pin capacitance and power (whole circuit)\n\
         design     wire cap(pF)  pin cap(pF)  wire P(mW)  pin P(mW)"
    );
    table16_rows(&FlowConfig::new(NodeId::N45).scale(scale), &mut out);
    out.push_str(
        "paper: LDPC-2D 558.0/134.4 pF 30.73/9.04 mW -> 3D 310.3/123.6, 15.88/8.32;\n\
         DES-2D 64.4/127.4 pF 8.88/17.80 mW -> 3D 50.1/126.6, 6.87/17.76\n",
    );
    out
}

/// Node-selected form of [`table16_net_breakdown`]; non-paper nodes
/// render the same rows without the paper reference footer.
pub fn table16_net_breakdown_at(node: NodeId, scale: BenchScale) -> String {
    if node == NodeId::N45 {
        return table16_net_breakdown(scale);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 16 - wire vs pin capacitance and power (whole circuit, {} node)\n\
         design     wire cap(pF)  pin cap(pF)  wire P(mW)  pin P(mW)",
        node.label()
    );
    table16_rows(&FlowConfig::new(node).scale(scale), &mut out);
    out
}

/// The shared Table 16 measurement rows at one configuration.
fn table16_rows(cfg: &FlowConfig, out: &mut String) {
    for bench in CONTRAST_BENCHES {
        for style in [DesignStyle::TwoD, DesignStyle::Tmi] {
            let r = crate::Flow::new(bench, style, cfg.clone()).run();
            let _ = writeln!(
                out,
                "{:5}-{:3} {:12.1} {:12.1} {:11.2} {:10.2}",
                bench.name(),
                style.label(),
                r.power.wire_cap_pf,
                r.power.pin_cap_pf,
                r.power.wire_mw,
                r.power.pin_mw
            );
        }
    }
}

/// Fig. 6: the fanout-vs-wirelength wire-load-model curves per benchmark.
pub fn fig6_wlm_curves(scale: BenchScale) -> String {
    let lib = ArtifactCache::global()
        .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
        .expect("library builds");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 6 - fanout vs wirelength in the 2D wire load models (um)\n\
         fanout:      1      2      4      8     16"
    );
    for bench in Benchmark::ALL {
        let n = bench.generate(&lib, scale);
        let p = Placer::new(&lib)
            .utilization(bench.target_utilization())
            .iterations(16)
            .place(&n);
        let wlm = WireLoadModel::from_placement(&n, &p);
        let _ = writeln!(
            out,
            "{:5}  {:8.1} {:6.1} {:6.1} {:6.1} {:6.1}",
            bench.name(),
            wlm.estimate_um(1),
            wlm.estimate_um(2),
            wlm.estimate_um(4),
            wlm.estimate_um(8),
            wlm.estimate_um(16)
        );
    }
    out.push_str("paper shape: LDPC's curve is by far the steepest (up to ~400 um at fanout 20); DES the flattest\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_orders_ldpc_above_des() {
        let t = fig6_wlm_curves(BenchScale::Small);
        assert!(t.contains("LDPC"));
        assert!(t.contains("DES"));
    }

    #[test]
    fn table12_reports_both_nodes() {
        let t = table12_benchmarks(BenchScale::Small);
        assert!(t.contains("45nm"));
        assert!(t.contains("7nm"));
        assert!(t.contains("M256"));
    }
}
