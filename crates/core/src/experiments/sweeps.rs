//! Sensitivity sweeps and ablations (Tables 8, 9, 15, 17; Figs. 4, 10,
//! 11; supplement S5).

use std::fmt::Write as _;

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId, StackKind};

use crate::{Comparison, ExperimentPlan, Flow, FlowConfig};

/// Fig. 4 clock sweep points, chosen so both styles close at this
/// toolkit's library speed (the paper's absolute values are rescaled;
/// see `FlowConfig::clock_scale`).
const FIG4_SWEEPS: [(Benchmark, [f64; 3]); 2] = [
    (Benchmark::Aes, [900.0, 850.0, 800.0]),
    (Benchmark::M256, [2500.0, 2400.0, 2300.0]),
];

/// Table 8 pin-capacitance scales (paper: 1.0 / 0.8 / 0.6 / 0.4).
const TABLE8_PIN_SCALES: [f64; 4] = [1.0, 0.8, 0.6, 0.4];

/// Table 9 resistivity variants: `(label, halve local+intermediate ρ)`.
const TABLE9_VARIANTS: [(&str, bool); 2] = [("base", false), ("-m (rho/2)", true)];

/// Table 15 WLM variants: `(row suffix, synthesize with the T-MI WLM)`.
const TABLE15_WLM: [(&str, bool); 2] = [("", true), ("-n", false)];

/// Table 17 circuits and metal-stack variants.
const TABLE17_BENCHES: [Benchmark; 2] = [Benchmark::Ldpc, Benchmark::M256];
const TABLE17_STACKS: [(&str, Option<StackKind>); 2] =
    [("3D", None), ("3D+M", Some(StackKind::TmiPlusM))];

/// Fig. 10 metal-usage circuits.
const FIG10_BENCHES: [Benchmark; 2] = [Benchmark::Ldpc, Benchmark::M256];

/// Fig. 11 activity-sweep circuits and α values.
const FIG11_BENCHES: [Benchmark; 2] = [Benchmark::Aes, Benchmark::M256];
const FIG11_ALPHAS: [f64; 3] = [0.1, 0.2, 0.4];

/// S5 blockage variants: `(label, allow MB1/MIV routing escapes)`.
const S5_VARIANTS: [(&str, bool); 2] = [("with MB1/MIV", true), ("without", false)];

/// Enumerates the flow points the named driver of this module runs
/// (mirrors each driver's loops over the same constants); returns
/// whether the name belongs to this module.
pub(crate) fn add_plan(name: &str, scale: BenchScale, plan: &mut ExperimentPlan) -> bool {
    match name {
        "fig4" => {
            for (bench, clocks) in FIG4_SWEEPS {
                for clock in clocks {
                    plan.push_comparison(
                        bench,
                        &FlowConfig::new(NodeId::N45).scale(scale).clock(clock),
                    );
                }
            }
        }
        "table8" => {
            for pin_scale in TABLE8_PIN_SCALES {
                let mut cfg = FlowConfig::new(NodeId::N7).scale(scale);
                cfg.pin_cap_scale = pin_scale;
                plan.push_comparison(Benchmark::Des, &cfg);
            }
        }
        "table9" => {
            for (_, lower) in TABLE9_VARIANTS {
                let mut cfg = FlowConfig::new(NodeId::N7).scale(scale);
                cfg.lower_metal_rho = lower;
                plan.push_comparison(Benchmark::M256, &cfg);
            }
        }
        "table15" => {
            for bench in Benchmark::ALL {
                for (_, tmi_wlm) in TABLE15_WLM {
                    let mut cfg = FlowConfig::new(NodeId::N45).scale(scale);
                    cfg.tmi_wlm = tmi_wlm;
                    plan.push(bench, DesignStyle::Tmi, cfg);
                }
            }
        }
        "table17" => {
            for bench in TABLE17_BENCHES {
                for (_, stack) in TABLE17_STACKS {
                    let mut cfg = FlowConfig::new(NodeId::N7).scale(scale);
                    cfg.stack_kind = stack;
                    plan.push(bench, DesignStyle::Tmi, cfg);
                }
            }
        }
        "fig10" => {
            for bench in FIG10_BENCHES {
                plan.push(
                    bench,
                    DesignStyle::Tmi,
                    FlowConfig::new(NodeId::N45).scale(scale),
                );
            }
        }
        "fig11" => {
            for bench in FIG11_BENCHES {
                for alpha in FIG11_ALPHAS {
                    let mut cfg = FlowConfig::new(NodeId::N45).scale(scale);
                    cfg.alpha_ff = alpha;
                    plan.push_comparison(bench, &cfg);
                }
            }
        }
        "s5" => {
            for (_, mb1) in S5_VARIANTS {
                let mut cfg = FlowConfig::new(NodeId::N45).scale(scale);
                cfg.mb1_routing = mb1;
                plan.push(Benchmark::Aes, DesignStyle::Tmi, cfg);
            }
        }
        "summary" => {
            let cfg = FlowConfig::new(NodeId::N45).scale(scale);
            for bench in Benchmark::ALL {
                plan.push_comparison(bench, &cfg);
            }
        }
        _ => return false,
    }
    true
}

/// Node-selected form of [`add_plan`] for this module's smoke drivers
/// (the `--node` CLI path).
pub(crate) fn add_plan_at(
    name: &str,
    scale: BenchScale,
    node: NodeId,
    plan: &mut ExperimentPlan,
) -> bool {
    if node == NodeId::N45 {
        return add_plan(name, scale, plan);
    }
    match name {
        "fig10" => {
            for bench in FIG10_BENCHES {
                plan.push(bench, DesignStyle::Tmi, FlowConfig::new(node).scale(scale));
            }
        }
        _ => return false,
    }
    true
}

/// Fig. 4: the power benefit of T-MI versus target clock period for AES
/// (1.0 / 0.8 / 0.72 ns) and M256 (2.6 / 2.4 / 2.0 ns). The paper's
/// trend: the faster the clock, the bigger the benefit.
pub fn fig4_clock_sweep(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 4 - power reduction rate vs target clock (T-MI over 2D)\n\
         circuit  clock(ns)  total     cell      net     leakage"
    );
    // Rows where a side misses its clock are flagged and not part of
    // the trend.
    for (bench, clocks) in FIG4_SWEEPS {
        for clock in clocks {
            let cfg = FlowConfig::new(NodeId::N45).scale(scale).clock(clock);
            let cmp = Comparison::run(bench, &cfg);
            let flag = if cmp.two_d.wns_ps < 0.0 || cmp.tmi.wns_ps < 0.0 {
                "  [NOT MET - excluded from trend]"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:6} {:9.2} {:+8.1}% {:+8.1}% {:+8.1}% {:+8.1}%   (2D wns {:+.0}, 3D wns {:+.0}){}",
                bench.name(),
                clock * 1e-3,
                cmp.total_power_pct(),
                cmp.cell_power_pct(),
                cmp.net_power_pct(),
                cmp.leakage_pct(),
                cmp.two_d.wns_ps,
                cmp.tmi.wns_ps,
                flag,
            );
        }
    }
    out.push_str(
        "paper: AES slow->fast total reduction grows ~9% -> ~14%; M256 ~15% -> ~25%;\n\
         cell-power reduction grows most steeply as the clock tightens\n",
    );
    out
}

/// Table 8: the pin-capacitance reduction study on DES at 7 nm
/// (pin caps scaled by 1.0 / 0.8 / 0.6 / 0.4). Paper's surprise: a lower
/// pin cap does *not* increase the T-MI benefit.
pub fn table8_pin_cap(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 8 - impact of lower cell pin cap (DES, 7 nm)\n\
         pin-cap   WL-2D(m)  WL-3D(m)   P-2D(mW)  P-3D(mW)  reduction"
    );
    for pin_scale in TABLE8_PIN_SCALES {
        let mut cfg = FlowConfig::new(NodeId::N7).scale(scale);
        cfg.pin_cap_scale = pin_scale;
        let cmp = Comparison::run(Benchmark::Des, &cfg);
        let _ = writeln!(
            out,
            "x{:4.2} {:11.3} {:9.3} {:10.2} {:9.2} {:+9.1}%",
            pin_scale,
            cmp.two_d.wirelength_m(),
            cmp.tmi.wirelength_m(),
            cmp.two_d.total_power_mw(),
            cmp.tmi.total_power_mw(),
            cmp.total_power_pct()
        );
    }
    out.push_str(
        "paper: -3.4% at x1.0 -> -1.8/-2.7/-2.3% at x0.8/0.6/0.4 -- the benefit\n\
         does NOT grow: with smaller pins, cell power dominates instead\n",
    );
    out
}

/// Table 9: the lower-metal-resistivity study on M256 at 7 nm (local +
/// intermediate resistivity halved).
pub fn table9_resistivity(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 9 - impact of lower metal resistivity (M256, 7 nm)\n\
         variant   WL-2D(m)  WL-3D(m)   P-2D(mW)  P-3D(mW)  reduction"
    );
    for (label, lower) in TABLE9_VARIANTS {
        let mut cfg = FlowConfig::new(NodeId::N7).scale(scale);
        cfg.lower_metal_rho = lower;
        let cmp = Comparison::run(Benchmark::M256, &cfg);
        let _ = writeln!(
            out,
            "{:10} {:9.3} {:9.3} {:10.2} {:9.2} {:+9.1}%",
            label,
            cmp.two_d.wirelength_m(),
            cmp.tmi.wirelength_m(),
            cmp.two_d.total_power_mw(),
            cmp.tmi.total_power_mw(),
            cmp.total_power_pct()
        );
    }
    out.push_str(
        "paper: -17.8% both with and without the resistivity cut -- lower metal\n\
         resistivity does not shrink the T-MI power benefit\n",
    );
    out
}

/// Table 15: synthesizing the T-MI designs with the 2D wire-load model
/// ("-n") instead of their own.
pub fn table15_wlm_impact(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 15 - impact of the T-MI wire load model\n\
         design      WL(m)     WNS(ps)   total P(mW)"
    );
    for bench in Benchmark::ALL {
        for (suffix, tmi_wlm) in TABLE15_WLM {
            let mut cfg = FlowConfig::new(NodeId::N45).scale(scale);
            cfg.tmi_wlm = tmi_wlm;
            let r = Flow::new(bench, DesignStyle::Tmi, cfg).run();
            let _ = writeln!(
                out,
                "{:5}-3D{:2} {:8.3} {:+10.0} {:12.2}",
                bench.name(),
                suffix,
                r.wirelength_m(),
                r.wns_ps,
                r.total_power_mw()
            );
        }
    }
    out.push_str(
        "paper: negligible for FPU/AES/DES; LDPC +10.1% WL and +10.1% power\n\
         without its T-MI WLM; M256 +5.5% WL / +3.9% power\n",
    );
    out
}

/// Table 17: the modified T-MI+M metal stack (two extra local + two extra
/// intermediate layers instead of three local) on LDPC and M256 at 7 nm.
pub fn table17_metal_stack(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 17 - impact of the metal layer setup (7 nm, T-MI vs T-MI+M)\n\
         design        WL(m)    total P(mW)  cell     net     leak"
    );
    for bench in TABLE17_BENCHES {
        for (label, stack) in TABLE17_STACKS {
            let mut cfg = FlowConfig::new(NodeId::N7).scale(scale);
            cfg.stack_kind = stack;
            let r = Flow::new(bench, DesignStyle::Tmi, cfg).run();
            let _ = writeln!(
                out,
                "{:5}-{:4} {:9.3} {:12.2} {:8.2} {:8.2} {:7.3}",
                bench.name(),
                label,
                r.wirelength_m(),
                r.total_power_mw(),
                r.power.cell_mw,
                r.power.net_mw(),
                r.power.leakage_mw
            );
        }
    }
    out.push_str("paper: the +M stack cuts total power a further 2.4% (LDPC) / 2.8% (M256)\n");
    out
}

/// Fig. 10: per-class metal usage for LDPC and M256 (T-MI, 45 nm).
pub fn fig10_layer_usage(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 10 - metal layer usage (T-MI designs)");
    fig10_rows(NodeId::N45, scale, &mut out);
    out.push_str(
        "paper: both local and intermediate heavily used; LDPC uses more global metal than M256\n",
    );
    out
}

/// Node-selected form of [`fig10_layer_usage`]; non-paper nodes render
/// the same rows without the paper reference footer.
pub fn fig10_layer_usage_at(node: NodeId, scale: BenchScale) -> String {
    if node == NodeId::N45 {
        return fig10_layer_usage(scale);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 10 - metal layer usage (T-MI designs, {} node)",
        node.label()
    );
    fig10_rows(node, scale, &mut out);
    out
}

/// The shared Fig. 10 measurement rows at one node.
fn fig10_rows(node: NodeId, scale: BenchScale, out: &mut String) {
    for bench in FIG10_BENCHES {
        let cfg = FlowConfig::new(node).scale(scale);
        let r = Flow::new(bench, DesignStyle::Tmi, cfg).run();
        let u = &r.layer_usage;
        let _ = writeln!(out, "{}:\n{}", bench.name(), u.to_table());
    }
}

/// Fig. 11: power and reduction rate versus the sequential switching
/// activity factor (0.1 - 0.4).
pub fn fig11_activity_sweep(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 11 - switching activity sweep (45 nm)\n\
         circuit  alpha   P-2D(mW)   P-3D(mW)  reduction"
    );
    for bench in FIG11_BENCHES {
        for alpha in FIG11_ALPHAS {
            let mut cfg = FlowConfig::new(NodeId::N45).scale(scale);
            cfg.alpha_ff = alpha;
            let cmp = Comparison::run(bench, &cfg);
            let _ = writeln!(
                out,
                "{:6} {:6.2} {:10.2} {:10.2} {:+9.1}%",
                bench.name(),
                alpha,
                cmp.two_d.total_power_mw(),
                cmp.tmi.total_power_mw(),
                cmp.total_power_pct()
            );
        }
    }
    out.push_str(
        "paper: total power grows with activity but the reduction *rate* is\n\
         nearly flat across alpha = 0.1-0.4 for every circuit\n",
    );
    out
}

/// Supplement S5: MIV/MB1 routing blockage study — AES T-MI with and
/// without MB1/MIV routing escapes.
pub fn fig_s5_blockage(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "S5 - MIV/MB1 blockage impact (AES, T-MI, 45 nm)\n\
         variant        WL(m)    WNS(ps)   total P(mW)"
    );
    for (label, mb1) in S5_VARIANTS {
        let mut cfg = FlowConfig::new(NodeId::N45).scale(scale);
        cfg.mb1_routing = mb1;
        let r = Flow::new(Benchmark::Aes, DesignStyle::Tmi, cfg).run();
        let _ = writeln!(
            out,
            "{:13} {:7.3} {:+10.0} {:12.2}",
            label,
            r.wirelength_m(),
            r.wns_ps,
            r.total_power_mw()
        );
    }
    out.push_str(
        "paper: +0.1% wirelength, -0.1% power -- the in-cell blockages do not\n\
         degrade design quality at ~80% utilization\n",
    );
    out
}

/// One-screen reproduction scorecard: the paper's headline claims with
/// their pass/fail state, measured live at the given scale.
pub fn summary_scorecard(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Reproduction scorecard ({scale:?} scale)");
    let cfg45 = FlowConfig::new(NodeId::N45).scale(scale);
    let mut claims: Vec<(String, bool)> = Vec::new();

    // Claim 1: iso-performance power reduction for every circuit, with
    // DES the smallest benefit.
    let mut reductions: Vec<(Benchmark, f64, bool)> = Vec::new();
    for bench in Benchmark::ALL {
        let cmp = Comparison::run(bench, &cfg45);
        reductions.push((
            bench,
            cmp.total_power_pct(),
            cmp.two_d.wns_ps >= -0.02 * cmp.two_d.clock_ps
                && cmp.tmi.wns_ps >= -0.02 * cmp.tmi.clock_ps,
        ));
    }
    for (bench, pct, closed) in &reductions {
        let _ = writeln!(
            out,
            "  {:5} total power {:+6.1}%  (timing {})",
            bench.name(),
            pct,
            if *closed { "met" } else { "MISSED" }
        );
    }
    claims.push((
        "every circuit saves power at iso-performance".into(),
        reductions.iter().all(|(_, p, _)| *p < 0.0),
    ));
    let des = reductions
        .iter()
        .find(|(b, _, _)| *b == Benchmark::Des)
        .map(|(_, p, _)| *p)
        .unwrap_or(0.0);
    claims.push((
        "DES is the smallest benefit (Section 4.3)".into(),
        reductions
            .iter()
            .all(|(b, p, _)| *b == Benchmark::Des || *p <= des),
    ));

    // Claim 2: footprint reduction ~40%+ everywhere.
    let fp_ok = Benchmark::ALL.iter().all(|&b| {
        let cmp = Comparison::run(b, &cfg45);
        cmp.footprint_pct() < -30.0
    });
    claims.push(("footprint shrinks >30% in T-MI".into(), fp_ok));

    for (claim, ok) in &claims {
        let _ = writeln!(out, "  [{}] {}", if *ok { "PASS" } else { "FAIL" }, claim);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scorecard_runs_and_reports() {
        let t = summary_scorecard(BenchScale::Small);
        assert!(t.contains("scorecard"));
        assert!(t.contains("DES"));
        assert!(t.contains("PASS") || t.contains("FAIL"));
    }

    #[test]
    fn fig4_produces_both_circuits() {
        let t = fig4_clock_sweep(BenchScale::Small);
        assert!(t.contains("AES"));
        assert!(t.contains("M256"));
    }

    #[test]
    fn s5_runs_both_variants() {
        let t = fig_s5_blockage(BenchScale::Small);
        assert!(t.contains("with MB1/MIV"));
        assert!(t.contains("without"));
    }
}
