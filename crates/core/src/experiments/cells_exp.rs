//! Cell-level and technology-setup experiments (Tables 1, 2, 3, 6, 11;
//! Fig. 5).

use std::fmt::Write as _;

use m3d_cells::{
    characterize::{characterize_analytic, characterize_spice},
    layout::generate_layout,
    CellFunction, Signal, Topology,
};
use m3d_extract::{extract_cell, CellExtraction, TopSiliconModel};
use m3d_tech::{
    DesignStyle, MetalClass, MetalStack, PdkRegistry, ScaleFactors, StackKind, TechNode,
};

use crate::cache::ArtifactCache;

/// The four cells Tables 1/2 report on.
const TABLE_CELLS: [CellFunction; 4] = [
    CellFunction::Inv,
    CellFunction::Nand2,
    CellFunction::Mux2,
    CellFunction::Dff,
];

/// Paper Table 1 reference values: (cell, R 2D, R 3D, C 2D, C 3D, C 3D-c).
const TABLE1_PAPER: [(&str, f64, f64, f64, f64, f64); 4] = [
    ("INV", 0.186, 0.107, 0.363, 0.368, 0.349),
    ("NAND2", 0.372, 0.237, 0.561, 0.586, 0.547),
    ("MUX2", 1.133, 0.975, 1.823, 1.938, 1.796),
    ("DFF", 2.876, 3.045, 4.108, 5.101, 4.740),
];

fn signal_totals(e: &CellExtraction) -> (f64, f64) {
    let is_signal = |n: u32| n != Signal::Vdd.node_id() && n != Signal::Vss.node_id();
    let r = e
        .node_r
        .iter()
        .filter(|(&n, _)| is_signal(n))
        .map(|(_, v)| v)
        .sum();
    let c = e
        .node_c
        .iter()
        .filter(|(&n, _)| is_signal(n))
        .map(|(_, v)| v)
        .sum();
    (r, c)
}

/// Table 1: cell-internal parasitic RC of the 2D and folded T-MI cells
/// under the dielectric ("3D") and conductor ("3D-c") top-silicon models.
pub fn table1_cell_rc() -> String {
    let node = TechNode::n45();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 - cell internal parasitic RC (kOhm / fF, signal nodes)\n\
         cell     R-2D   R-3D   | C-2D   C-3D   C-3Dc  | paper (R2D R3D | C2D C3D C3Dc)"
    );
    for (f, paper) in TABLE_CELLS.iter().zip(TABLE1_PAPER) {
        let topo = Topology::for_function(*f);
        let g2 = generate_layout(&node, &topo, DesignStyle::TwoD, 1);
        let g3 = generate_layout(&node, &topo, DesignStyle::Tmi, 1);
        let (r2, c2) = signal_totals(&extract_cell(
            &node,
            &g2.shapes,
            TopSiliconModel::Dielectric,
        ));
        let (r3, c3) = signal_totals(&extract_cell(
            &node,
            &g3.shapes,
            TopSiliconModel::Dielectric,
        ));
        let (_, c3c) = signal_totals(&extract_cell(&node, &g3.shapes, TopSiliconModel::Conductor));
        let _ = writeln!(
            out,
            "{:8} {:5.3}  {:5.3}  | {:5.3}  {:5.3}  {:5.3}  | {:.3} {:.3} | {:.3} {:.3} {:.3}",
            f.base_name(),
            r2,
            r3,
            c2,
            c3,
            c3c,
            paper.1,
            paper.2,
            paper.3,
            paper.4,
            paper.5
        );
    }
    out.push_str(
        "observations reproduced: R(3D) < R(2D) for INV/NAND2/MUX2 (shorter\n\
         in-cell poly/metal), R(3D) > R(2D) for the DFF (poly jumpers forced\n\
         by the folded cell's track shortage), C(3D-c) < C(3D) always.\n",
    );
    out
}

/// Table 2: SPICE-characterized delay and internal energy of 2D vs T-MI
/// cells at the paper's fast/medium/slow slew-load corners.
///
/// Combinational cells run through the `m3d-spice` transient engine (the
/// ELC procedure); the sequential DFF uses the analytic characterization.
pub fn table2_cell_timing_power() -> String {
    let node = TechNode::n45();
    let corners = [
        ("fast", 7.5, 0.8),
        ("medium", 37.5, 3.2),
        ("slow", 150.0, 12.8),
    ];
    // Paper values: (cell, corner) -> (delay 2D, delay 3D, power 2D, power 3D).
    let paper: &[(&str, &str, f64, f64, f64, f64)] = &[
        ("INV", "fast", 17.2, 16.9, 0.383, 0.351),
        ("NAND2", "fast", 21.2, 20.9, 0.616, 0.583),
        ("MUX2", "fast", 59.8, 58.2, 2.113, 2.060),
        ("DFF", "fast", 108.8, 113.4, 6.341, 6.735),
        ("INV", "medium", 51.1, 50.8, 0.362, 0.343),
        ("NAND2", "medium", 56.2, 55.9, 0.604, 0.581),
        ("MUX2", "medium", 97.0, 95.3, 2.239, 2.168),
        ("DFF", "medium", 142.6, 147.0, 6.358, 6.756),
        ("INV", "slow", 188.3, 188.0, 0.449, 0.431),
        ("NAND2", "slow", 195.9, 195.5, 0.698, 0.675),
        ("MUX2", "slow", 215.1, 212.5, 2.555, 2.487),
        ("DFF", "slow", 237.4, 243.3, 7.303, 7.659),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 - cell delay (ps) / internal energy (fJ), SPICE-characterized\n\
         corner  cell     D-2D    D-3D (ratio)   E-2D    E-3D (ratio)  | paper D2D D3D E2D E3D"
    );
    for (cname, slew, load) in corners {
        for f in TABLE_CELLS {
            let topo = Topology::for_function(f);
            let per_style = |style: DesignStyle| -> (f64, f64) {
                let geom = generate_layout(&node, &topo, style, 1);
                if f.is_sequential() || f.output_count() > 1 {
                    let t = characterize_analytic(&node, style, f, 1, &topo, &geom);
                    (t.delay.lookup(slew, load), t.energy.lookup(slew, load))
                } else {
                    let t = characterize_spice(&node, f, 1, &topo, &geom, vec![slew], vec![load]);
                    (t.delay.lookup(slew, load), t.energy.lookup(slew, load))
                }
            };
            let (d2, e2) = per_style(DesignStyle::TwoD);
            let (d3, e3) = per_style(DesignStyle::Tmi);
            let p = paper
                .iter()
                .find(|(n, c, ..)| *n == f.base_name() && *c == cname)
                .expect("paper row exists");
            let _ = writeln!(
                out,
                "{:7} {:7} {:7.1} {:7.1} ({:5.1}%) {:7.3} {:7.3} ({:5.1}%) | {} {} {} {}",
                cname,
                f.base_name(),
                d2,
                d3,
                100.0 * d3 / d2,
                e2,
                e3,
                100.0 * e3 / e2,
                p.2,
                p.3,
                p.4,
                p.5
            );
        }
    }
    out
}

/// Table 3: the metal layer summary for the 2D and T-MI stacks.
pub fn table3_metal_layers() -> String {
    let node = TechNode::n45();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3 - metal layer summary, 45 nm (width/spacing/thickness, nm)"
    );
    for kind in [StackKind::TwoD, StackKind::Tmi, StackKind::TmiPlusM] {
        let stack = MetalStack::new(&node, kind);
        let _ = writeln!(out, "stack {kind}:");
        for class in [
            MetalClass::Global,
            MetalClass::Intermediate,
            MetalClass::Local,
            MetalClass::M1,
        ] {
            let names: Vec<&str> = stack.layers_of(class).map(|l| l.name.as_str()).collect();
            if names.is_empty() {
                continue;
            }
            let l = stack.layers_of(class).next().expect("class has layers");
            let _ = writeln!(
                out,
                "  {:12} {:18} {:4}/{:4}/{:4}",
                class.label(),
                names.join(","),
                l.width,
                l.spacing,
                l.thickness
            );
        }
    }
    out.push_str(
        "paper: global 400/400/800, intermediate 140/140/280, local 70/70/140, M1 70/65/130\n",
    );
    out
}

/// Table 6: 45 nm vs 7 nm technology setup.
pub fn table6_node_setup() -> String {
    let n45 = TechNode::n45();
    let n7 = TechNode::n7();
    let mut out = String::new();
    let _ = writeln!(out, "Table 6 - node setup comparison");
    let rows: [(&str, String, String); 8] = [
        ("transistor", "planar".into(), "multi-gate".into()),
        ("VDD (V)", format!("{}", n45.vdd), format!("{}", n7.vdd)),
        (
            "gate length (nm)",
            format!("{}", n45.gate_length),
            format!("{}", n7.gate_length),
        ),
        (
            "BEOL ILD k",
            format!("{}", n45.ild_k),
            format!("{}", n7.ild_k),
        ),
        (
            "M2 width (nm)",
            format!(
                "{}",
                MetalStack::new(&n45, StackKind::TwoD)
                    .by_name("M2")
                    .expect("M2")
                    .width
            ),
            format!(
                "{}",
                MetalStack::new(&n7, StackKind::TwoD)
                    .by_name("M2")
                    .expect("M2")
                    .width
            ),
        ),
        (
            "MIV diameter (nm)",
            format!("{}", n45.miv.diameter),
            format!("{}", n7.miv.diameter),
        ),
        (
            "ILD thickness (nm)",
            format!("{}", n45.ild_thickness),
            format!("{}", n7.ild_thickness),
        ),
        (
            "cell height (um)",
            format!("{:.3}", n45.cell_height_2d as f64 * 1e-3),
            format!("{:.3}", n7.cell_height_2d as f64 * 1e-3),
        ),
    ];
    for (name, a, b) in rows {
        let _ = writeln!(out, "  {name:22} {a:>10} {b:>10}");
    }
    out.push_str("paper: 1.1/0.7 V, 50/11 nm, k 2.5/2.2, M2 70/10.8, MIV 70/10.8, ILD 110/50, height 1.4/0.218 um\n");
    out
}

/// Table 11: 45 nm vs 7 nm cell characterization (input cap, delay, slew,
/// power, leakage) for INV, NAND2 and DFF at the paper's corner
/// (slew 19 ps, load 3.2 fF, scaled at 7 nm).
pub fn table11_7nm_cells() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 11 - 7 nm cell characterization (paper corner: slew 19 ps, load 3.2 fF)\n\
         cell    node  incap(fF)  delay(ps)  slew(ps)  energy(fJ)  leak(pW)"
    );
    let paper = "paper 45nm:  INV 0.463/44.3/31.4/0.446/2844  NAND2 0.523/49.2/35.9/0.680/4962  DFF 0.877/124.7/34.6/3.425/42965\n\
                 paper  7nm:  INV 0.125/25.6/15.1/0.020/2583  NAND2 0.082/30.5/19.3/0.020/2906  DFF 0.097/27.1/8.3/0.604/23241\n";
    for node in [TechNode::n45(), TechNode::n7()] {
        let lib = ArtifactCache::global()
            .library(node.id, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        // The paper's 19 ps / 3.2 fF corner, moved to where the node's
        // characterized grids live — the PDK's slew/load factors
        // (identity at 45 nm, the ITRS pair at 7 nm).
        let f = PdkRegistry::global()
            .get(node.id)
            .map(|p| p.scaling())
            .unwrap_or_else(ScaleFactors::identity);
        let (slew, load) = (19.0 * f.output_slew, 3.2 * f.input_cap);
        for name in ["INV_X1", "NAND2_X1", "DFF_X1"] {
            let c = lib.cell_named(name).expect("library cell");
            let _ = writeln!(
                out,
                "{:7} {:5} {:9.3} {:10.2} {:9.2} {:11.3} {:9.0}",
                name,
                node.id,
                c.max_input_cap(),
                c.delay.lookup(slew, load),
                c.out_slew.lookup(slew, load),
                c.energy.lookup(slew, load),
                c.leakage_mw * 1e9
            );
        }
    }
    out.push_str(paper);
    out
}

/// Fig. 5: the T-MI cell inventory — per-cell dimensions, device and MIV
/// counts for the whole library (the paper drew four of these layouts;
/// we tabulate all of them).
pub fn fig5_cell_inventory() -> String {
    let node = TechNode::n45();
    let lib = ArtifactCache::global()
        .library(node.id, DesignStyle::Tmi, false, 1.0)
        .expect("library builds");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 5 - T-MI cell library inventory ({} cells; the paper built 66)\n\
         cell        WxH (um)    devices  MIVs",
        lib.len()
    );
    for (_, cell) in lib.iter() {
        let topo = Topology::for_function(cell.function);
        let _ = writeln!(
            out,
            "{:11} {:4.2}x{:4.2}   {:7}  {:4}",
            cell.name,
            cell.width_nm as f64 * 1e-3,
            cell.height_nm as f64 * 1e-3,
            topo.device_count(),
            cell.miv_count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_rc_directions() {
        let t = table1_cell_rc();
        assert!(t.contains("INV"));
        assert!(t.contains("DFF"));
        assert!(t.contains("observations reproduced"));
    }

    #[test]
    fn table3_lists_all_stacks() {
        let t = table3_metal_layers();
        assert!(t.contains("stack 2D"));
        assert!(t.contains("stack T-MI+M"));
        assert!(t.contains("MB1"));
    }

    #[test]
    fn table6_and_11_mention_both_nodes() {
        assert!(table6_node_setup().contains("multi-gate"));
        let t11 = table11_7nm_cells();
        assert!(t11.contains("45nm"));
        assert!(t11.contains("7nm"));
    }

    #[test]
    fn fig5_counts_mivs() {
        let t = fig5_cell_inventory();
        assert!(t.contains("INV_X1"));
        assert!(t.contains("MIVs"));
    }
}
