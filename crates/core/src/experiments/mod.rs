//! Experiment drivers: one function per table/figure of the paper.
//!
//! Every driver regenerates its artifact from scratch — cell library,
//! layouts, extraction, full physical flows — and returns a formatted
//! report comparing the measured values against the paper's published
//! numbers. The `paper_tables` binary (in `m3d-bench`) exposes them on
//! the command line; `EXPERIMENTS.md` records a full run.
//!
//! | driver | paper artifact |
//! |---|---|
//! | [`table1_cell_rc`] | Table 1 — cell-internal parasitic RC |
//! | [`table2_cell_timing_power`] | Table 2 — SPICE cell delay/power |
//! | [`table3_metal_layers`] | Table 3 — metal layer summary |
//! | [`table4_layout_45nm`] | Tables 4 & 13 — 45 nm layout results |
//! | [`table5_prior_work`] | Table 5 — comparison with prior works |
//! | [`fig3_circuit_character`] | Fig. 3 — LDPC vs DES layout character |
//! | [`fig4_clock_sweep`] | Fig. 4 — power benefit vs target clock |
//! | [`table6_node_setup`] | Table 6 — 45 nm vs 7 nm setup |
//! | [`table7_layout_7nm`] | Tables 7 & 14 — 7 nm layout results |
//! | [`table8_pin_cap`] | Table 8 — pin-cap reduction study |
//! | [`table9_resistivity`] | Table 9 — lower metal resistivity |
//! | [`table11_7nm_cells`] | Table 11 — 7 nm cell characterization |
//! | [`table12_benchmarks`] | Table 12 — benchmark synthesis results |
//! | [`table15_wlm_impact`] | Table 15 — T-MI wire-load-model impact |
//! | [`table16_net_breakdown`] | Table 16 — wire vs pin capacitance |
//! | [`table17_metal_stack`] | Table 17 — T-MI+M metal stack |
//! | [`fig5_cell_inventory`] | Fig. 5 — the T-MI cell library |
//! | [`fig6_wlm_curves`] | Fig. 6 — fanout vs wirelength WLMs |
//! | [`fig10_layer_usage`] | Fig. 10 — per-class metal usage |
//! | [`fig11_activity_sweep`] | Fig. 11 — switching-activity sweep |
//! | [`fig_s5_blockage`] | S5 — MIV/MB1 blockage impact |

mod cells_exp;
mod layout_exp;
mod sweeps;

use m3d_netlist::BenchScale;
use m3d_tech::NodeId;

use crate::ExperimentPlan;

/// Enumerates the full-flow points the named driver will run, so the
/// [`crate::ParallelExecutor`] can pre-warm the shared
/// [`crate::ArtifactCache`] before the driver formats its table from
/// (bit-identical) cache hits. Drivers that run no full flows — the
/// cell-level experiments — return an empty plan, as does an unknown
/// name (the `paper_tables` registry owns name validation).
///
/// Merge the per-driver plans of a whole run into one
/// [`ExperimentPlan`]: the `FlowKey` dedup collapses the many points
/// the tables share (e.g. Table 4's baselines reappear in Table 5, the
/// scorecard and the G-MI study).
pub fn plan_for(name: &str, scale: BenchScale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new();
    let _ = layout_exp::add_plan(name, scale, &mut plan)
        || sweeps::add_plan(name, scale, &mut plan)
        || crate::gmi::add_plan(name, scale, &mut plan);
    plan
}

/// Node-selected form of [`plan_for`]: enumerates the flow points a
/// driver runs when retargeted to `node` via the CLI `--node` flag. At
/// the 45 nm default this is exactly [`plan_for`]; at any other
/// registered node only the node-generic smoke drivers (`table4`,
/// `fig3`, `table16`, `fig10`) enumerate points, matching what the
/// `*_at` driver functions actually run.
pub fn plan_for_at(name: &str, scale: BenchScale, node: NodeId) -> ExperimentPlan {
    if node == NodeId::N45 {
        return plan_for(name, scale);
    }
    let mut plan = ExperimentPlan::new();
    let _ = layout_exp::add_plan_at(name, scale, node, &mut plan)
        || sweeps::add_plan_at(name, scale, node, &mut plan);
    plan
}

#[cfg(test)]
mod plan_tests {
    use super::*;

    #[test]
    fn flow_drivers_have_nonempty_plans() {
        for name in [
            "table4", "table5", "table7", "table8", "table9", "table15", "table16", "table17",
            "fig3", "fig4", "fig10", "fig11", "s5", "summary", "gmi",
        ] {
            assert!(
                !plan_for(name, BenchScale::Small).is_empty(),
                "driver '{name}' should enumerate flow points"
            );
        }
    }

    #[test]
    fn cell_drivers_and_unknown_names_plan_nothing() {
        for name in [
            "table1", "table2", "table3", "table6", "table11", "table12", "fig5", "fig6", "nope",
        ] {
            assert!(
                plan_for(name, BenchScale::Small).is_empty(),
                "'{name}' plans no flows"
            );
        }
    }

    #[test]
    fn merged_plans_dedup_shared_points() {
        let mut merged = ExperimentPlan::new();
        merged.merge(plan_for("table4", BenchScale::Small));
        let table4 = merged.len();
        // Table 5, the scorecard and the G-MI study only re-run Table 4
        // baselines: merging them must add nothing.
        merged.merge(plan_for("table5", BenchScale::Small));
        merged.merge(plan_for("summary", BenchScale::Small));
        merged.merge(plan_for("gmi", BenchScale::Small));
        assert_eq!(merged.len(), table4);
        // A sensitivity sweep shares its base point but adds the rest.
        merged.merge(plan_for("fig11", BenchScale::Small));
        assert!(merged.len() > table4);
    }
}

pub use cells_exp::{
    fig5_cell_inventory, table11_7nm_cells, table1_cell_rc, table2_cell_timing_power,
    table3_metal_layers, table6_node_setup,
};
pub use layout_exp::{
    fig3_circuit_character, fig3_circuit_character_at, fig6_wlm_curves, layout_results_at,
    table12_benchmarks, table16_net_breakdown, table16_net_breakdown_at, table4_layout_45nm,
    table5_prior_work, table7_layout_7nm,
};
pub use sweeps::{
    fig10_layer_usage, fig10_layer_usage_at, fig11_activity_sweep, fig4_clock_sweep,
    fig_s5_blockage, summary_scorecard, table15_wlm_impact, table17_metal_stack, table8_pin_cap,
    table9_resistivity,
};
