//! Experiment drivers: one function per table/figure of the paper.
//!
//! Every driver regenerates its artifact from scratch — cell library,
//! layouts, extraction, full physical flows — and returns a formatted
//! report comparing the measured values against the paper's published
//! numbers. The `paper_tables` binary (in `m3d-bench`) exposes them on
//! the command line; `EXPERIMENTS.md` records a full run.
//!
//! | driver | paper artifact |
//! |---|---|
//! | [`table1_cell_rc`] | Table 1 — cell-internal parasitic RC |
//! | [`table2_cell_timing_power`] | Table 2 — SPICE cell delay/power |
//! | [`table3_metal_layers`] | Table 3 — metal layer summary |
//! | [`table4_layout_45nm`] | Tables 4 & 13 — 45 nm layout results |
//! | [`table5_prior_work`] | Table 5 — comparison with prior works |
//! | [`fig3_circuit_character`] | Fig. 3 — LDPC vs DES layout character |
//! | [`fig4_clock_sweep`] | Fig. 4 — power benefit vs target clock |
//! | [`table6_node_setup`] | Table 6 — 45 nm vs 7 nm setup |
//! | [`table7_layout_7nm`] | Tables 7 & 14 — 7 nm layout results |
//! | [`table8_pin_cap`] | Table 8 — pin-cap reduction study |
//! | [`table9_resistivity`] | Table 9 — lower metal resistivity |
//! | [`table11_7nm_cells`] | Table 11 — 7 nm cell characterization |
//! | [`table12_benchmarks`] | Table 12 — benchmark synthesis results |
//! | [`table15_wlm_impact`] | Table 15 — T-MI wire-load-model impact |
//! | [`table16_net_breakdown`] | Table 16 — wire vs pin capacitance |
//! | [`table17_metal_stack`] | Table 17 — T-MI+M metal stack |
//! | [`fig5_cell_inventory`] | Fig. 5 — the T-MI cell library |
//! | [`fig6_wlm_curves`] | Fig. 6 — fanout vs wirelength WLMs |
//! | [`fig10_layer_usage`] | Fig. 10 — per-class metal usage |
//! | [`fig11_activity_sweep`] | Fig. 11 — switching-activity sweep |
//! | [`fig_s5_blockage`] | S5 — MIV/MB1 blockage impact |

mod cells_exp;
mod layout_exp;
mod sweeps;

pub use cells_exp::{
    fig5_cell_inventory, table11_7nm_cells, table1_cell_rc, table2_cell_timing_power,
    table3_metal_layers, table6_node_setup,
};
pub use layout_exp::{
    fig3_circuit_character, fig6_wlm_curves, table12_benchmarks, table16_net_breakdown,
    table4_layout_45nm, table5_prior_work, table7_layout_7nm,
};
pub use sweeps::{
    fig10_layer_usage, fig11_activity_sweep, fig4_clock_sweep, fig_s5_blockage, summary_scorecard,
    table15_wlm_impact, table17_metal_stack, table8_pin_cap, table9_resistivity,
};
