//! The typed artifact store the stage graph reads and writes.
//!
//! A [`FlowContext`] carries one flow run: the immutable run request
//! (benchmark, style, config, cache handle) plus every artifact the
//! stages produce — the resolved environment, the working design state
//! ([`Artifacts`]) and the sign-off [`crate::FlowResult`]. Stages
//! communicate *only* through the context; a stage that asks for an
//! artifact no earlier stage produced gets a typed
//! [`FlowError::MissingArtifact`](crate::FlowError), not a panic.
//!
//! [`Artifacts`] is also the supervisor's checkpoint unit: cloning one
//! is cheap relative to a stage, so a retry restores the last good
//! snapshot instead of restarting the flow.

use std::sync::Arc;

use m3d_netlist::{Benchmark, Netlist};
use m3d_place::Placement;
use m3d_route::RoutedDesign;
use m3d_sta::NetModel;
use m3d_synth::WireLoadModel;
use m3d_tech::DesignStyle;

use crate::cache::ArtifactCache;
use crate::flow::{FlowConfig, FlowEnv, FlowResult};

/// The working design state: everything a stage produces that later
/// stages consume. One snapshot of this struct is one supervisor
/// checkpoint.
#[derive(Debug, Clone, Default)]
pub(crate) struct Artifacts {
    /// Synthesized (and later sized) netlist.
    pub(crate) netlist: Option<Netlist>,
    /// The wire-load model synthesis ran against (Fig. 6 data).
    pub(crate) wlm: Option<WireLoadModel>,
    /// Per-stage delay target for load-based sizing, ps.
    pub(crate) tau_ps: f64,
    /// Current placement.
    pub(crate) placement: Option<Placement>,
    /// Current routed design.
    pub(crate) routed: Option<RoutedDesign>,
    /// Extracted per-net RC models.
    pub(crate) models: Vec<NetModel>,
    /// WNS measured at the end of post-route optimization, ps — the
    /// floorplan-round accept/revert signal.
    pub(crate) wns_after_opt: f64,
}

/// Everything one flow run reads and writes: the run request, the
/// shared [`ArtifactCache`], and the artifacts the stages produce.
#[derive(Debug)]
pub struct FlowContext {
    /// Benchmark the run targets.
    pub(crate) bench: Benchmark,
    /// Design style the run targets.
    pub(crate) style: DesignStyle,
    /// The run's configuration knobs.
    pub(crate) config: FlowConfig,
    /// Shared memo layer for cell libraries (and, at the `Flow` level,
    /// completed results).
    pub(crate) cache: Arc<ArtifactCache>,
    /// Resolved run environment, produced by the library stage. The
    /// supervisor's degradation ladder mutates the effective
    /// `clock_ps` / `utilization` / `opt_passes` here.
    pub(crate) env: Option<FlowEnv>,
    /// The working design state (the checkpoint unit).
    pub(crate) art: Artifacts,
    /// The sign-off result, produced by the sign-off stage.
    pub(crate) result: Option<FlowResult>,
}

impl FlowContext {
    /// A fresh context for one run: no artifacts yet.
    pub fn new(
        bench: Benchmark,
        style: DesignStyle,
        config: FlowConfig,
        cache: Arc<ArtifactCache>,
    ) -> Self {
        FlowContext {
            bench,
            style,
            config,
            cache,
            env: None,
            art: Artifacts::default(),
            result: None,
        }
    }
}
