use serde::{Deserialize, Serialize};

use m3d_netlist::Benchmark;
use m3d_tech::DesignStyle;

use crate::{Flow, FlowConfig, FlowResult};

/// An iso-performance 2D vs T-MI pair: both styles, same benchmark, same
/// target clock — the comparison unit of the paper's Tables 4/7/13/14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// The planar baseline.
    pub two_d: FlowResult,
    /// The folded T-MI implementation.
    pub tmi: FlowResult,
}

fn pct(tmi: f64, two_d: f64) -> f64 {
    if two_d == 0.0 {
        0.0
    } else {
        (tmi / two_d - 1.0) * 100.0
    }
}

impl Comparison {
    /// Runs both flows.
    pub fn run(bench: Benchmark, config: &FlowConfig) -> Self {
        Comparison {
            two_d: Flow::new(bench, DesignStyle::TwoD, config.clone()).run(),
            tmi: Flow::new(bench, DesignStyle::Tmi, config.clone()).run(),
        }
    }

    /// Footprint delta, % (negative = T-MI smaller; paper: −40.9…−43.4 %).
    pub fn footprint_pct(&self) -> f64 {
        pct(self.tmi.footprint_um2, self.two_d.footprint_um2)
    }

    /// Total wirelength delta, % (paper: −21.5…−33.6 % at 45 nm).
    pub fn wirelength_pct(&self) -> f64 {
        pct(self.tmi.wirelength_um, self.two_d.wirelength_um)
    }

    /// Total power delta, % (paper headline: −4.1…−32.1 % at 45 nm).
    pub fn total_power_pct(&self) -> f64 {
        pct(self.tmi.total_power_mw(), self.two_d.total_power_mw())
    }

    /// Cell (internal) power delta, %.
    pub fn cell_power_pct(&self) -> f64 {
        pct(self.tmi.power.cell_mw, self.two_d.power.cell_mw)
    }

    /// Net (wire+pin) power delta, %.
    pub fn net_power_pct(&self) -> f64 {
        pct(self.tmi.power.net_mw(), self.two_d.power.net_mw())
    }

    /// Leakage delta, %.
    pub fn leakage_pct(&self) -> f64 {
        pct(self.tmi.power.leakage_mw, self.two_d.power.leakage_mw)
    }

    /// Buffer-count delta, % (paper: −48.6 % LDPC vs −3.2 % DES).
    pub fn buffer_pct(&self) -> f64 {
        pct(self.tmi.buffer_count as f64, self.two_d.buffer_count as f64)
    }

    /// One formatted row in the layout of the paper's Table 4/7.
    pub fn table_row(&self) -> String {
        format!(
            "{:5}  {:+7.1}%  {:+7.1}%  {:+7.1}%  {:+7.1}%  {:+7.1}%  {:+7.1}%",
            self.two_d.bench.name(),
            self.footprint_pct(),
            self.wirelength_pct(),
            self.total_power_pct(),
            self.cell_power_pct(),
            self.net_power_pct(),
            self.leakage_pct(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::BenchScale;
    use m3d_tech::NodeId;

    #[test]
    fn comparison_shows_tmi_benefits_on_small_aes() {
        let cfg = FlowConfig::new(NodeId::N45).scale(BenchScale::Small);
        let cmp = Comparison::run(Benchmark::Aes, &cfg);
        assert!(
            cmp.footprint_pct() < -25.0,
            "footprint {}",
            cmp.footprint_pct()
        );
        assert!(
            cmp.wirelength_pct() < -5.0,
            "wirelength {}",
            cmp.wirelength_pct()
        );
        assert!(
            cmp.total_power_pct() < 0.0,
            "power {}",
            cmp.total_power_pct()
        );
        let row = cmp.table_row();
        assert!(row.contains("AES"));
    }
}
