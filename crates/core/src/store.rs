//! Persistent, content-addressed artifact store — the disk tier below
//! [`crate::ArtifactCache`].
//!
//! The paper's sweeps re-derive the same expensive artifacts across
//! *processes*: every fresh `paper_tables` invocation re-characterizes
//! the same cell libraries and re-runs flows an earlier invocation
//! already signed off. [`DiskStore`] persists both artifact classes
//! under their existing cache keys so a warm directory turns a fresh
//! process into a cache hit:
//!
//! * **Layout** — entries are content-addressed by the FNV-1a 64 hash
//!   of the *encoded key bytes* (Rust's `std::hash` is not stable
//!   across processes), sharded by the hash's low byte:
//!   `<root>/lib/<2-hex>/<16-hex>.m3d` and
//!   `<root>/flow/<2-hex>/<16-hex>.m3d`, plus `<root>/quarantine/` and
//!   a recency journal `<root>/index.journal`.
//! * **Self-verification** — every entry carries the `M3DSTOR1` magic,
//!   a whole-payload FNV hash and per-section hashes (the
//!   [`crate::codec`] discipline shared with checkpoints), and embeds
//!   the encoded key so a read can confirm the entry answers the
//!   question that was asked. Every read re-verifies everything.
//! * **Quarantine, never a wrong answer** — a failed verification
//!   (torn file, flipped byte, semantic decode failure) moves the
//!   entry into `quarantine/` *preserving its key-hash filename* for
//!   post-mortems, counts it, emits
//!   [`EventKind::DiskQuarantined`], and reports a miss so the caller
//!   rebuilds. Corruption is never an error and never a hit.
//! * **Crash-only writes** — publishes write a pid-unique temp file in
//!   the destination shard, `sync_all`, then `rename`; a kill at any
//!   byte leaves either the old state or the new entry, never a
//!   half-written visible file ([`StoreFaultKind::TornStoreWrite`]
//!   pins this in the chaos harness).
//! * **Multi-process safety** — publishers take a per-entry `.lock`
//!   file (`create_new`, stolen after [`LOCK_STALE`]); losers *skip*
//!   the publish, which is sound because the flow is deterministic and
//!   both writers would publish byte-identical payloads
//!   (last-writer-wins idempotence).
//! * **Graceful degradation** — any entry-file I/O failure flips the
//!   store into a degraded mode (a one-way latch): a single
//!   [`EventKind::StoreDegraded`] is emitted with a stable reason and
//!   every later operation no-ops, so the memory tier carries the run
//!   to a correct (just slower) finish. Degradation is *never* an
//!   error.
//! * **Byte-budget LRU eviction** — an in-memory index (rebuilt from a
//!   directory scan at open, with recency replayed from the journal)
//!   tracks per-entry sizes; publishes that push the store over its
//!   budget evict least-recently-used entries and emit
//!   [`EventKind::DiskEvicted`]. The journal is an *optimization*:
//!   corrupt lines are skipped, append failures are swallowed, and the
//!   directory scan remains ground truth.

use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use m3d_cells::{Cell, CellFunction, CellLibrary, Nldm, Pin, PinDir, SeqSpec};
use m3d_power::PowerReport;
use m3d_route::LayerUsage;
use m3d_tech::{MetalClass, TechNode};

use crate::cache::{FlowKey, LibraryKey};
use crate::codec::{
    content_hash, dec_benchmark, dec_node, dec_style, enc_benchmark, enc_node, enc_scale,
    enc_stack_kind, enc_style, read_section, write_section, Dec, DecResult, DecodeError, Enc,
};
use crate::error::StoreFailure;
use crate::faultinject::{StoreFaultKind, StoreFaultPlan};
use crate::flow::FlowResult;
use crate::observe::{self, CacheKind, EventKind, Recorder};

/// Store entry magic — distinct from the checkpoint magic so a stray
/// checkpoint dropped into the store (or vice versa) is quarantined,
/// not misparsed.
const MAGIC: &[u8; 8] = b"M3DSTOR1";

/// Section tags inside an entry payload.
const SEC_KEY: u8 = 1;
const SEC_ARTIFACT: u8 = 2;

/// Default byte budget: generous for the full paper reproduction
/// (a characterized library encodes to a few hundred KiB, a flow
/// result to ~1 KiB) while still bounding a pathological sweep.
const DEFAULT_BYTE_BUDGET: u64 = 1 << 30;

/// A publisher's `.lock` older than this is presumed crashed and is
/// stolen.
const LOCK_STALE: Duration = Duration::from_secs(30);

/// Counter snapshot of one [`DiskStore`]'s traffic; the source the
/// cache's `disk_*` stats are read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskCounters {
    /// Reads served from a verified on-disk entry.
    pub hits: u64,
    /// Reads that found no (usable) entry.
    pub misses: u64,
    /// Entries published to disk.
    pub stores: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries that failed verification and were quarantined.
    pub quarantined: u64,
    /// 1 once the store has degraded to a no-op, else 0.
    pub degraded: u64,
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    bytes: u64,
    last_used: u64,
}

/// The in-memory picture of what is on disk: sizes for the byte budget,
/// a logical recency clock for LRU eviction, and the journal length
/// (for compaction). Rebuilt from a directory scan at open.
#[derive(Debug, Default)]
struct Index {
    entries: HashMap<(CacheKind, u64), IndexEntry>,
    total_bytes: u64,
    clock: u64,
    journal_lines: u64,
}

impl Index {
    fn touch(&mut self, kind: CacheKind, hash: u64) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&(kind, hash)) {
            e.last_used = clock;
        }
    }

    fn insert(&mut self, kind: CacheKind, hash: u64, bytes: u64) {
        self.clock += 1;
        if let Some(old) = self.entries.insert(
            (kind, hash),
            IndexEntry {
                bytes,
                last_used: self.clock,
            },
        ) {
            self.total_bytes = self.total_bytes.saturating_sub(old.bytes);
        }
        self.total_bytes += bytes;
    }

    fn remove(&mut self, kind: CacheKind, hash: u64) -> Option<IndexEntry> {
        let e = self.entries.remove(&(kind, hash));
        if let Some(e) = e {
            self.total_bytes = self.total_bytes.saturating_sub(e.bytes);
        }
        e
    }
}

/// The persistent artifact store. See the module docs for the layout,
/// locking and degradation contracts. Thread-safe; one instance is
/// meant to be shared (`Arc`) by every cache that fronts the same
/// directory, and *different processes* open their own instance over
/// the same directory.
pub struct DiskStore {
    root: PathBuf,
    byte_budget: u64,
    faults: StoreFaultPlan,
    publishes: AtomicU32,
    degraded: AtomicBool,
    recorder: RwLock<Arc<dyn Recorder>>,
    index: Mutex<Index>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    quarantined: AtomicU64,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("root", &self.root)
            .field("byte_budget", &self.byte_budget)
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl DiskStore {
    /// Opens (or initializes) a store rooted at `dir` with the default
    /// byte budget.
    ///
    /// Opening never fails: directories are created lazily on the
    /// first publish, so an unreadable or read-only `dir` surfaces as
    /// misses and (on the first write) graceful degradation — exactly
    /// the contract every other store operation follows.
    pub fn open(dir: impl Into<PathBuf>) -> Arc<DiskStore> {
        DiskStore::with_budget(dir, DEFAULT_BYTE_BUDGET)
    }

    /// Opens a store with an explicit byte budget (clamped to ≥ 1).
    pub fn with_budget(dir: impl Into<PathBuf>, byte_budget: u64) -> Arc<DiskStore> {
        DiskStore::with_faults(dir, byte_budget, StoreFaultPlan::new())
    }

    /// Opens a store with a fault-injection plan — the chaos harness's
    /// constructor. Faults fire on the Nth *publish* (1-based).
    pub fn with_faults(
        dir: impl Into<PathBuf>,
        byte_budget: u64,
        faults: StoreFaultPlan,
    ) -> Arc<DiskStore> {
        let root = dir.into();
        let index = scan(&root);
        Arc::new(DiskStore {
            root,
            byte_budget: byte_budget.max(1),
            faults,
            publishes: AtomicU32::new(0),
            degraded: AtomicBool::new(false),
            recorder: RwLock::new(observe::null()),
            index: Mutex::new(index),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where quarantined entries land.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// True once an I/O failure has degraded the store to a no-op.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Attaches the event sink for this store's traffic
    /// ([`EventKind::DiskHit`]-family events). Pass
    /// [`observe::null()`] to detach.
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>) {
        *self.recorder.write().expect("recorder slot") = recorder;
    }

    /// Counter snapshot.
    pub fn counters(&self) -> DiskCounters {
        DiskCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            degraded: self.is_degraded() as u64,
        }
    }

    /// Bytes currently accounted by the index (ground truth at the
    /// last open plus this instance's publishes/evictions).
    pub fn resident_bytes(&self) -> u64 {
        self.index.lock().expect("store index lock").total_bytes
    }

    // -- public artifact API ------------------------------------------

    /// The persisted library for `key`, if a verified entry exists.
    /// Never errors: corruption quarantines and reads as a miss; I/O
    /// failure degrades the store and reads as absent.
    pub fn load_library(&self, key: &LibraryKey) -> Option<CellLibrary> {
        let key_bytes = enc_library_key(key);
        let (node_id, style, rho) = (key.node_id, key.style, key.lower_metal_rho);
        self.load_verified(CacheKind::Library, &key_bytes, move |artifact| {
            let cells = dec_cells(artifact)?;
            let node = {
                let n = TechNode::try_for_id(node_id).ok_or_else(|| {
                    DecodeError(format!(
                        "library keyed to unregistered node '{}'",
                        node_id.label()
                    ))
                })?;
                if rho {
                    n.with_rho_scaled(&[MetalClass::Local, MetalClass::Intermediate], 0.5)
                } else {
                    n
                }
            };
            // The pin-cap scale is already baked into the persisted
            // cells; only the tech node is re-derived (it is pure
            // config, not a characterized artifact).
            CellLibrary::try_from_parts(node, style, cells)
                .map_err(|e| DecodeError(format!("library failed validation: {e}")))
        })
    }

    /// Publishes a characterized library under `key`. Never errors.
    pub fn store_library(&self, key: &LibraryKey, lib: &CellLibrary) {
        self.publish(CacheKind::Library, &enc_library_key(key), &enc_cells(lib));
    }

    /// The persisted flow result for `key`, if a verified entry
    /// exists. Same non-erroring contract as [`DiskStore::load_library`].
    pub fn load_flow(&self, key: &FlowKey) -> Option<FlowResult> {
        let key_bytes = enc_flow_key(key);
        self.load_verified(CacheKind::Flow, &key_bytes, dec_flow_result)
    }

    /// Publishes a completed flow result under `key`. Never errors.
    pub fn store_flow(&self, key: &FlowKey, result: &FlowResult) {
        self.publish(
            CacheKind::Flow,
            &enc_flow_key(key),
            &enc_flow_result(result),
        );
    }

    // -- read path ----------------------------------------------------

    /// The whole verify-on-read protocol: read, check magic + payload
    /// hash + section hashes, check the stored key equals the
    /// requested key, and semantically decode the artifact. Any
    /// failure past "file exists" quarantines the entry and reports a
    /// miss; the caller rebuilds.
    fn load_verified<T>(
        &self,
        kind: CacheKind,
        key_bytes: &[u8],
        decode: impl FnOnce(&[u8]) -> DecResult<T>,
    ) -> Option<T> {
        if self.is_degraded() {
            return None;
        }
        let hash = content_hash(key_bytes);
        let path = self.entry_path(kind, hash);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.miss(kind);
                return None;
            }
            Err(e) => {
                self.degrade(StoreFailure::io("read store entry", &e));
                return None;
            }
        };
        let decoded = decode_entry(&bytes).and_then(|(stored_key, artifact)| {
            if stored_key != key_bytes {
                return Err(DecodeError(
                    "entry answers a different key than requested".into(),
                ));
            }
            decode(artifact)
        });
        match decoded {
            Ok(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.emit(|| EventKind::DiskHit { kind });
                let mut idx = self.index.lock().expect("store index lock");
                idx.touch(kind, hash);
                self.journal(&mut idx, &format!("T {} {hash:016x}", kind.key()));
                Some(artifact)
            }
            Err(_) => {
                self.quarantine_entry(kind, hash, &path);
                self.miss(kind);
                None
            }
        }
    }

    fn miss(&self, kind: CacheKind) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.emit(|| EventKind::DiskMiss { kind });
    }

    // -- write path ---------------------------------------------------

    /// Publish umbrella: counts the publish for fault injection, runs
    /// the crash-only write, and converts any I/O failure into
    /// degradation instead of an error.
    fn publish(&self, kind: CacheKind, key_bytes: &[u8], artifact: &[u8]) {
        if self.is_degraded() {
            return;
        }
        let n = self.publishes.fetch_add(1, Ordering::Relaxed) + 1;
        let fault = self.faults.on_publish(n);
        match self.try_publish(kind, key_bytes, artifact, fault) {
            Ok(true) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                self.evict_to_budget(kind, content_hash(key_bytes));
            }
            Ok(false) => {} // lost the lock race, or a torn write
            Err(f) => self.degrade(f),
        }
    }

    /// The crash-only publish: lock, temp-write, sync, rename. Returns
    /// `Ok(true)` when the entry became visible, `Ok(false)` when the
    /// publish was skipped (lock held by a live peer) or torn by
    /// injection.
    fn try_publish(
        &self,
        kind: CacheKind,
        key_bytes: &[u8],
        artifact: &[u8],
        fault: Option<StoreFaultKind>,
    ) -> Result<bool, StoreFailure> {
        let hash = content_hash(key_bytes);
        let final_path = self.entry_path(kind, hash);
        let shard_dir = final_path
            .parent()
            .expect("entry path always has a shard parent")
            .to_path_buf();
        fs::create_dir_all(&shard_dir)
            .map_err(|e| StoreFailure::io("create store shard dir", &e))?;
        if fault == Some(StoreFaultKind::StoreDirUnwritable) {
            // Simulate losing write permission mid-run; routes through
            // the same classifier a real `EACCES` would.
            let e = io::Error::from(io::ErrorKind::PermissionDenied);
            return Err(StoreFailure::io("publish store entry", &e));
        }
        let lock_path = shard_dir.join(format!("{hash:016x}.lock"));
        if !acquire_lock(&lock_path).map_err(|e| StoreFailure::io("take store lock", &e))? {
            // A live peer is publishing this key. The flow is
            // deterministic, so its bytes equal ours: skipping is the
            // idempotent last-writer-wins outcome.
            return Ok(false);
        }
        let bytes = encode_entry(key_bytes, artifact);
        let tmp = shard_dir.join(format!(".{hash:016x}.{}.tmp", std::process::id()));
        let written = write_entry_file(&tmp, &bytes, fault);
        let outcome = match written {
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(StoreFailure::io("write store entry", &e))
            }
            Ok(false) => Ok(false), // torn by injection: no rename, tmp left behind
            Ok(true) => match fs::rename(&tmp, &final_path) {
                Err(e) => {
                    let _ = fs::remove_file(&tmp);
                    Err(StoreFailure::io("rename store entry", &e))
                }
                Ok(()) => {
                    if fault == Some(StoreFaultKind::CorruptStoreEntry) {
                        corrupt_one_byte(&final_path);
                    }
                    let mut idx = self.index.lock().expect("store index lock");
                    idx.insert(kind, hash, bytes.len() as u64);
                    self.journal(
                        &mut idx,
                        &format!("P {} {hash:016x} {}", kind.key(), bytes.len()),
                    );
                    Ok(true)
                }
            },
        };
        let _ = fs::remove_file(&lock_path);
        outcome
    }

    /// Evicts least-recently-used entries until the store fits its
    /// byte budget, never evicting the entry just published. File
    /// removal is best-effort; an entry that will not delete is
    /// dropped from the accounting anyway (the next open re-scans).
    fn evict_to_budget(&self, published_kind: CacheKind, published_hash: u64) {
        let mut idx = self.index.lock().expect("store index lock");
        if idx.total_bytes <= self.byte_budget {
            return;
        }
        let mut victims: Vec<((CacheKind, u64), IndexEntry)> = idx
            .entries
            .iter()
            .filter(|(&k, _)| k != (published_kind, published_hash))
            .map(|(&k, &e)| (k, e))
            .collect();
        victims.sort_by_key(|(_, e)| e.last_used);
        let mut freed: HashMap<CacheKind, (u64, u64)> = HashMap::new();
        for ((kind, hash), _) in victims {
            if idx.total_bytes <= self.byte_budget {
                break;
            }
            let _ = fs::remove_file(self.entry_path(kind, hash));
            if let Some(e) = idx.remove(kind, hash) {
                let f = freed.entry(kind).or_insert((0, 0));
                f.0 += 1;
                f.1 += e.bytes;
                self.journal(&mut idx, &format!("E {} {hash:016x}", kind.key()));
            }
        }
        drop(idx);
        for (kind, (count, bytes)) in freed {
            self.evictions.fetch_add(count, Ordering::Relaxed);
            self.emit(|| EventKind::DiskEvicted { kind, count, bytes });
        }
    }

    // -- corruption & degradation -------------------------------------

    /// Moves a failed entry into `quarantine/`, preserving its
    /// key-hash filename for post-mortems. When even the move fails
    /// the file is deleted outright — an unverifiable entry must never
    /// be served again.
    fn quarantine_entry(&self, kind: CacheKind, hash: u64, path: &Path) {
        if quarantine_file(path, &self.quarantine_dir()).is_err() {
            let _ = fs::remove_file(path);
        }
        let mut idx = self.index.lock().expect("store index lock");
        idx.remove(kind, hash);
        self.journal(&mut idx, &format!("Q {} {hash:016x}", kind.key()));
        drop(idx);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.emit(|| EventKind::DiskQuarantined { what: kind.key() });
    }

    /// One-way degradation latch: the first I/O failure emits a single
    /// [`EventKind::StoreDegraded`] with the classified reason; every
    /// later store operation no-ops. The run continues on the memory
    /// tier — degradation is never an error.
    fn degrade(&self, failure: StoreFailure) {
        if self
            .degraded
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.emit(|| EventKind::StoreDegraded {
                reason: failure.reason,
            });
        }
    }

    // -- plumbing -----------------------------------------------------

    fn entry_path(&self, kind: CacheKind, hash: u64) -> PathBuf {
        let sub = match kind {
            CacheKind::Library => "lib",
            CacheKind::Flow => "flow",
        };
        self.root
            .join(sub)
            .join(format!("{:02x}", hash & 0xff))
            .join(format!("{hash:016x}.m3d"))
    }

    /// Best-effort journal append (+ compaction). The journal only
    /// carries recency and byte accounting — losing a line degrades
    /// eviction *quality*, never correctness — so append failures are
    /// swallowed rather than degrading the store (which would turn a
    /// read-only warm directory from a hit source into a no-op).
    fn journal(&self, idx: &mut Index, line: &str) {
        idx.journal_lines += 1;
        let _ = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join("index.journal"))
            .and_then(|mut f| writeln!(f, "{line}"));
        let threshold = 1024u64.max(8 * idx.entries.len() as u64);
        if idx.journal_lines > threshold {
            self.compact_journal(idx);
        }
    }

    /// Rewrites the journal as one `P` line per live entry in recency
    /// order (so a replay reproduces the LRU order), via the same
    /// tmp+rename discipline as entries. Best-effort.
    fn compact_journal(&self, idx: &mut Index) {
        let mut live: Vec<((CacheKind, u64), IndexEntry)> =
            idx.entries.iter().map(|(&k, &e)| (k, e)).collect();
        live.sort_by_key(|(_, e)| e.last_used);
        let mut text = String::new();
        for ((kind, hash), e) in &live {
            text.push_str(&format!("P {} {hash:016x} {}\n", kind.key(), e.bytes));
        }
        let tmp = self.root.join(".index.journal.tmp");
        if fs::write(&tmp, text).is_ok()
            && fs::rename(&tmp, self.root.join("index.journal")).is_ok()
        {
            idx.journal_lines = live.len() as u64;
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Records one event iff a live recorder is attached (the same
    /// hot-path guard the cache uses).
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        let rec = self.recorder.read().expect("recorder slot");
        if rec.enabled() {
            rec.record(kind());
        }
    }
}

/// Rebuilds the index from the directory tree (ground truth for
/// existence and sizes), then replays the journal for recency. Any
/// unreadable directory or corrupt journal line is simply skipped: the
/// index is an optimization, and reads re-verify entries anyway.
fn scan(root: &Path) -> Index {
    let mut idx = Index::default();
    for (kind, sub) in [(CacheKind::Library, "lib"), (CacheKind::Flow, "flow")] {
        let Ok(shards) = fs::read_dir(root.join(sub)) else {
            continue;
        };
        for shard in shards.flatten() {
            let Ok(files) = fs::read_dir(shard.path()) else {
                continue;
            };
            for f in files.flatten() {
                let name = f.file_name();
                let name = name.to_string_lossy();
                let Some(hex) = name.strip_suffix(".m3d") else {
                    continue;
                };
                let Ok(hash) = u64::from_str_radix(hex, 16) else {
                    continue;
                };
                let bytes = f.metadata().map(|m| m.len()).unwrap_or(0);
                idx.entries.insert(
                    (kind, hash),
                    IndexEntry {
                        bytes,
                        last_used: 0,
                    },
                );
                idx.total_bytes += bytes;
            }
        }
    }
    if let Ok(text) = fs::read_to_string(root.join("index.journal")) {
        for line in text.lines() {
            idx.journal_lines += 1;
            let mut parts = line.split_whitespace();
            let (Some(op), Some(kind), Some(hash)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let kind = match kind {
                "library" => CacheKind::Library,
                "flow" => CacheKind::Flow,
                _ => continue,
            };
            let Ok(hash) = u64::from_str_radix(hash, 16) else {
                continue;
            };
            match op {
                // Publishes and touches both count as uses; eviction
                // and quarantine lines carry no recency (the scan
                // already decided existence).
                "P" | "T" => idx.touch(kind, hash),
                _ => {}
            }
        }
    }
    idx
}

/// Moves `src` into `quarantine_dir` preserving its filename (a
/// numeric suffix disambiguates collisions), creating the directory if
/// needed. Shared by the store and the checkpoint layer so every
/// quarantined durable file lands with the same naming discipline.
pub(crate) fn quarantine_file(src: &Path, quarantine_dir: &Path) -> io::Result<PathBuf> {
    fs::create_dir_all(quarantine_dir)?;
    let name = src
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "source has no file name"))?
        .to_string_lossy()
        .into_owned();
    let mut dest = quarantine_dir.join(&name);
    let mut n = 1u32;
    while dest.exists() && n < 1000 {
        dest = quarantine_dir.join(format!("{name}.{n}"));
        n += 1;
    }
    fs::rename(src, &dest)?;
    Ok(dest)
}

/// Tries to create the `.lock` file. `Ok(true)` — acquired. `Ok(false)`
/// — a live peer holds it. Stale locks (crashed holders) are stolen.
fn acquire_lock(path: &Path) -> io::Result<bool> {
    for _ in 0..4 {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut f) => {
                let _ = write!(f, "{}", std::process::id());
                return Ok(true);
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let stale = fs::metadata(path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age > LOCK_STALE);
                if stale {
                    let _ = fs::remove_file(path);
                    continue; // retry the create_new
                }
                return Ok(false);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(false)
}

/// Writes the entry bytes to `tmp` and syncs. Returns `Ok(false)` when
/// a [`StoreFaultKind::TornStoreWrite`] cut the write short (the torn
/// temp file is deliberately left behind — it is exactly what a crash
/// leaves, and it must never become visible).
fn write_entry_file(tmp: &Path, bytes: &[u8], fault: Option<StoreFaultKind>) -> io::Result<bool> {
    let mut f = fs::File::create(tmp)?;
    if fault == Some(StoreFaultKind::TornStoreWrite) {
        f.write_all(&bytes[..bytes.len() / 2])?;
        f.sync_all()?;
        return Ok(false);
    }
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(true)
}

/// Flips the last byte of the file in place — the injected bit-rot the
/// verify-on-read path must catch.
fn corrupt_one_byte(path: &Path) {
    if let Ok(mut bytes) = fs::read(path) {
        if let Some(last) = bytes.last_mut() {
            *last ^= 0xff;
            let _ = fs::write(path, bytes);
        }
    }
}

// ---------------------------------------------------------------------
// Entry framing
// ---------------------------------------------------------------------

/// `MAGIC || payload_len (u64 LE) || payload_hash (u64 LE) || payload`,
/// where the payload is a KEY section followed by an ARTIFACT section
/// (each with its own content hash).
fn encode_entry(key_bytes: &[u8], artifact: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(key_bytes.len() + artifact.len() + 36);
    write_section(&mut payload, SEC_KEY, key_bytes);
    write_section(&mut payload, SEC_ARTIFACT, artifact);
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&content_hash(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Verifies magic, length, whole-payload hash and both section hashes;
/// returns the raw `(key, artifact)` section bodies.
fn decode_entry(bytes: &[u8]) -> DecResult<(&[u8], &[u8])> {
    let mut d = Dec::new(bytes);
    let magic = d.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(DecodeError("bad store magic".into()));
    }
    let len = d.usize()?;
    let want = d.u64()?;
    let payload = d.take(len)?;
    d.finish()?;
    let got = content_hash(payload);
    if got != want {
        return Err(DecodeError(format!(
            "payload hash mismatch: stored {want:#018x}, computed {got:#018x}"
        )));
    }
    let mut p = Dec::new(payload);
    let key = read_section(&mut p, SEC_KEY)?;
    let artifact = read_section(&mut p, SEC_ARTIFACT)?;
    p.finish()?;
    Ok((key, artifact))
}

// ---------------------------------------------------------------------
// Key codecs — the encoded bytes both address the entry (their FNV
// hash names the file) and are embedded for the read-back equality
// check, so the encoding must stay stable.
// ---------------------------------------------------------------------

fn enc_library_key(k: &LibraryKey) -> Vec<u8> {
    let mut e = Enc::default();
    enc_node(&mut e, k.node_id);
    enc_style(&mut e, k.style);
    e.bool(k.lower_metal_rho);
    e.u64(k.pin_cap_scale_bits);
    e.buf
}

fn enc_flow_key(k: &FlowKey) -> Vec<u8> {
    let mut e = Enc::default();
    enc_benchmark(&mut e, k.bench);
    enc_style(&mut e, k.style);
    enc_node(&mut e, k.node_id);
    enc_scale(&mut e, k.bench_scale);
    enc_stack_kind(&mut e, k.stack_kind);
    e.opt(&k.clock_ps_bits, |e, v| e.u64(*v));
    e.opt(&k.utilization_bits, |e, v| e.u64(*v));
    e.bool(k.tmi_wlm);
    e.u64(k.pin_cap_scale_bits);
    e.bool(k.lower_metal_rho);
    e.u64(k.alpha_ff_bits);
    e.bool(k.mb1_routing);
    e.usize(k.opt_passes);
    e.usize(k.place_iterations);
    e.u64(k.clock_scale_bits);
    e.buf
}

// ---------------------------------------------------------------------
// Artifact codecs
// ---------------------------------------------------------------------

fn enc_f64s(e: &mut Enc, v: &[f64]) {
    e.usize(v.len());
    for &x in v {
        e.f64(x);
    }
}

fn dec_f64s(d: &mut Dec) -> DecResult<Vec<f64>> {
    let n = d.usize()?;
    if n > (1 << 24) {
        return Err(DecodeError(format!("implausible f64 vec length {n}")));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.f64()?);
    }
    Ok(v)
}

fn enc_function(e: &mut Enc, f: CellFunction) {
    let idx = CellFunction::ALL
        .iter()
        .position(|&x| x == f)
        .expect("CellFunction::ALL enumerates every variant");
    e.u8(idx as u8);
}

fn dec_function(d: &mut Dec) -> DecResult<CellFunction> {
    let t = d.u8()?;
    CellFunction::ALL
        .get(t as usize)
        .copied()
        .ok_or_else(|| DecodeError(format!("bad CellFunction tag {t}")))
}

fn enc_nldm(e: &mut Enc, t: &Nldm) {
    enc_f64s(e, t.slews());
    enc_f64s(e, t.loads());
    enc_f64s(e, t.values());
}

/// Decodes an NLDM, *pre-validating* the invariants [`Nldm::new`]
/// asserts — a corrupt grid must surface as a typed decode failure
/// (⇒ quarantine), never a panic.
fn dec_nldm(d: &mut Dec) -> DecResult<Nldm> {
    let slews = dec_f64s(d)?;
    let loads = dec_f64s(d)?;
    let values = dec_f64s(d)?;
    if slews.is_empty() || loads.is_empty() {
        return Err(DecodeError("empty NLDM axis".into()));
    }
    let increasing = |a: &[f64]| a.windows(2).all(|w| w[0] < w[1]);
    if !increasing(&slews) || !increasing(&loads) {
        return Err(DecodeError("NLDM axis not strictly increasing".into()));
    }
    if values.len() != slews.len() * loads.len() {
        return Err(DecodeError(format!(
            "NLDM grid size {} != {}x{}",
            values.len(),
            slews.len(),
            loads.len()
        )));
    }
    Ok(Nldm::new(slews, loads, values))
}

fn enc_pin(e: &mut Enc, p: &Pin) {
    e.str(&p.name);
    e.u8(match p.dir {
        PinDir::Input => 0,
        PinDir::Output => 1,
    });
    e.f64(p.cap_ff);
}

fn dec_pin(d: &mut Dec) -> DecResult<Pin> {
    let name = d.str()?;
    let dir = match d.u8()? {
        0 => PinDir::Input,
        1 => PinDir::Output,
        t => return Err(DecodeError(format!("bad PinDir tag {t}"))),
    };
    let cap_ff = d.f64()?;
    Ok(Pin { name, dir, cap_ff })
}

fn enc_cell(e: &mut Enc, c: &Cell) {
    e.str(&c.name);
    enc_function(e, c.function);
    e.u8(c.drive);
    e.i64(c.width_nm);
    e.i64(c.height_nm);
    e.usize(c.pins.len());
    for p in &c.pins {
        enc_pin(e, p);
    }
    enc_nldm(e, &c.delay);
    enc_nldm(e, &c.out_slew);
    enc_nldm(e, &c.energy);
    e.f64(c.leakage_mw);
    e.opt(&c.seq, |e, s| {
        e.f64(s.setup_ps);
        e.f64(s.hold_ps);
        e.f64(s.clk_energy_fj);
    });
    e.u32(c.miv_count);
    e.f64(c.r_drive);
}

fn dec_cell(d: &mut Dec) -> DecResult<Cell> {
    let name = d.str()?;
    let function = dec_function(d)?;
    let drive = d.u8()?;
    let width_nm = d.i64()?;
    let height_nm = d.i64()?;
    let n_pins = d.usize()?;
    if n_pins > 64 {
        return Err(DecodeError(format!("implausible pin count {n_pins}")));
    }
    let mut pins = Vec::with_capacity(n_pins);
    for _ in 0..n_pins {
        pins.push(dec_pin(d)?);
    }
    let delay = dec_nldm(d)?;
    let out_slew = dec_nldm(d)?;
    let energy = dec_nldm(d)?;
    let leakage_mw = d.f64()?;
    let seq = d.opt(|d| {
        Ok(SeqSpec {
            setup_ps: d.f64()?,
            hold_ps: d.f64()?,
            clk_energy_fj: d.f64()?,
        })
    })?;
    let miv_count = d.u32()?;
    let r_drive = d.f64()?;
    Ok(Cell {
        name,
        function,
        drive,
        width_nm,
        height_nm,
        pins,
        delay,
        out_slew,
        energy,
        leakage_mw,
        seq,
        miv_count,
        r_drive,
    })
}

/// Persists the library's cells in [`m3d_cells::CellId`] order, which
/// the rebuild preserves (the tech node is *not* persisted: it is pure
/// config and is re-derived from the key).
fn enc_cells(lib: &CellLibrary) -> Vec<u8> {
    let mut e = Enc::default();
    e.usize(lib.len());
    for (_, cell) in lib.iter() {
        enc_cell(&mut e, cell);
    }
    e.buf
}

fn dec_cells(bytes: &[u8]) -> DecResult<Vec<Cell>> {
    let mut d = Dec::new(bytes);
    let n = d.usize()?;
    if n > (1 << 16) {
        return Err(DecodeError(format!("implausible cell count {n}")));
    }
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        cells.push(dec_cell(&mut d)?);
    }
    d.finish()?;
    Ok(cells)
}

fn enc_flow_result(r: &FlowResult) -> Vec<u8> {
    let mut e = Enc::default();
    enc_benchmark(&mut e, r.bench);
    enc_style(&mut e, r.style);
    enc_node(&mut e, r.node_id);
    e.f64(r.clock_ps);
    e.f64(r.footprint_um2);
    e.f64(r.core_um.0);
    e.f64(r.core_um.1);
    e.usize(r.cell_count);
    e.usize(r.buffer_count);
    e.f64(r.utilization);
    e.f64(r.wirelength_um);
    e.f64(r.wns_ps);
    e.f64(r.hold_wns_ps);
    e.f64(r.power.cell_mw);
    e.f64(r.power.wire_mw);
    e.f64(r.power.pin_mw);
    e.f64(r.power.leakage_mw);
    e.f64(r.power.wire_cap_pf);
    e.f64(r.power.pin_cap_pf);
    e.f64(r.layer_usage.m1_um);
    e.f64(r.layer_usage.local_um);
    e.f64(r.layer_usage.intermediate_um);
    e.f64(r.layer_usage.global_um);
    for v in r.layer_usage.peak_utilization {
        e.f64(v);
    }
    for v in r.layer_usage.mean_utilization {
        e.f64(v);
    }
    e.f64(r.layer_usage.overflow_ratio);
    enc_f64s(&mut e, &r.wlm_curve);
    e.buf
}

fn dec_flow_result(bytes: &[u8]) -> DecResult<FlowResult> {
    let mut d = Dec::new(bytes);
    let bench = dec_benchmark(&mut d)?;
    let style = dec_style(&mut d)?;
    let node_id = dec_node(&mut d)?;
    let clock_ps = d.f64()?;
    let footprint_um2 = d.f64()?;
    let core_um = (d.f64()?, d.f64()?);
    let cell_count = d.usize()?;
    let buffer_count = d.usize()?;
    let utilization = d.f64()?;
    let wirelength_um = d.f64()?;
    let wns_ps = d.f64()?;
    let hold_wns_ps = d.f64()?;
    let power = PowerReport {
        cell_mw: d.f64()?,
        wire_mw: d.f64()?,
        pin_mw: d.f64()?,
        leakage_mw: d.f64()?,
        wire_cap_pf: d.f64()?,
        pin_cap_pf: d.f64()?,
    };
    let mut usage = LayerUsage {
        m1_um: d.f64()?,
        local_um: d.f64()?,
        intermediate_um: d.f64()?,
        global_um: d.f64()?,
        peak_utilization: [0.0; 3],
        mean_utilization: [0.0; 3],
        overflow_ratio: 0.0,
    };
    for v in usage.peak_utilization.iter_mut() {
        *v = d.f64()?;
    }
    for v in usage.mean_utilization.iter_mut() {
        *v = d.f64()?;
    }
    usage.overflow_ratio = d.f64()?;
    let wlm_curve = dec_f64s(&mut d)?;
    d.finish()?;
    Ok(FlowResult {
        bench,
        style,
        node_id,
        clock_ps,
        footprint_um2,
        core_um,
        cell_count,
        buffer_count,
        utilization,
        wirelength_um,
        wns_ps,
        hold_wns_ps,
        power,
        layer_usage: usage,
        wlm_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_tech::{DesignStyle, NodeId};
    use std::sync::atomic::AtomicU32 as TestCounter;

    fn temp_root(tag: &str) -> PathBuf {
        static N: TestCounter = TestCounter::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("m3d-store-unit-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_result() -> FlowResult {
        FlowResult {
            bench: Benchmark::Des,
            style: DesignStyle::Tmi,
            node_id: NodeId::N45,
            clock_ps: 1250.0,
            footprint_um2: 3321.5,
            core_um: (57.6, 57.66),
            cell_count: 4321,
            buffer_count: 87,
            utilization: 0.68,
            wirelength_um: 98_765.4,
            wns_ps: 3.25,
            hold_wns_ps: 1.5,
            power: PowerReport {
                cell_mw: 1.25,
                wire_mw: 0.75,
                pin_mw: 0.5,
                leakage_mw: 0.05,
                wire_cap_pf: 12.0,
                pin_cap_pf: 8.0,
            },
            layer_usage: LayerUsage {
                m1_um: 100.0,
                local_um: 5000.0,
                intermediate_um: 3000.0,
                global_um: 400.0,
                peak_utilization: [0.9, 0.7, 0.3],
                mean_utilization: [0.4, 0.3, 0.1],
                overflow_ratio: 0.0,
            },
            wlm_curve: vec![1.0, 1.5, 2.25, -0.0],
        }
    }

    fn flow_key() -> FlowKey {
        FlowKey::of(
            Benchmark::Des,
            DesignStyle::Tmi,
            &crate::flow::FlowConfig::new(NodeId::N45),
        )
    }

    #[test]
    fn flow_result_round_trips_bit_exactly() {
        let r = sample_result();
        let back = dec_flow_result(&enc_flow_result(&r)).expect("decodes");
        assert_eq!(back, r);
        // -0.0 survives as -0.0 (bit-exact, not value-equal).
        assert_eq!(back.wlm_curve[3].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn flow_store_round_trips_through_disk() {
        let root = temp_root("flowrt");
        let store = DiskStore::open(&root);
        let key = flow_key();
        assert_eq!(store.load_flow(&key), None, "cold store misses");
        store.store_flow(&key, &sample_result());
        assert_eq!(store.load_flow(&key), Some(sample_result()));
        // A *fresh instance over the same directory* — the cross-process
        // case — hits too.
        let reopened = DiskStore::open(&root);
        assert_eq!(reopened.load_flow(&key), Some(sample_result()));
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.stores), (1, 1, 1));
        let _ = fs::remove_dir_all(&root);
    }

    /// Even a *forged* cross-node entry — one PDK's artifact copied to
    /// the disk slot another PDK's key addresses, as a key-hash
    /// collision would produce — is rejected by the read-back key
    /// equality check and quarantined, for every registered pair.
    #[test]
    fn forged_cross_node_entry_is_quarantined_not_served() {
        let ids = m3d_tech::PdkRegistry::global().ids();
        for &a in &ids {
            for &b in &ids {
                if a == b {
                    continue;
                }
                let root = temp_root("forge");
                let store = DiskStore::open(&root);
                let key_a = FlowKey::of(
                    Benchmark::Des,
                    DesignStyle::Tmi,
                    &crate::flow::FlowConfig::new(a).scale(BenchScale::Small),
                );
                let key_b = FlowKey::of(
                    Benchmark::Des,
                    DesignStyle::Tmi,
                    &crate::flow::FlowConfig::new(b).scale(BenchScale::Small),
                );
                store.store_flow(&key_a, &sample_result());
                let path_a = store.entry_path(CacheKind::Flow, content_hash(&enc_flow_key(&key_a)));
                let path_b = store.entry_path(CacheKind::Flow, content_hash(&enc_flow_key(&key_b)));
                fs::create_dir_all(path_b.parent().expect("entry dir")).expect("mkdir");
                fs::copy(&path_a, &path_b).expect("forge the entry");
                assert_eq!(
                    store.load_flow(&key_b),
                    None,
                    "{} must not serve an entry forged from {}",
                    b.label(),
                    a.label()
                );
                assert_eq!(store.counters().quarantined, 1);
                let _ = fs::remove_dir_all(&root);
            }
        }
    }

    #[test]
    fn corrupt_entry_is_quarantined_with_its_key_hash_name() {
        let root = temp_root("quar");
        let key = flow_key();
        let store =
            DiskStore::with_faults(&root, u64::MAX, StoreFaultPlan::new().corrupt_entry_on(1));
        store.store_flow(&key, &sample_result());
        assert_eq!(store.load_flow(&key), None, "corrupt entry must miss");
        assert!(!store.is_degraded(), "corruption is not an I/O failure");
        let c = store.counters();
        assert_eq!((c.quarantined, c.misses, c.hits), (1, 1, 0));
        // The quarantined file preserves the key-hash filename.
        let hash = content_hash(&enc_flow_key(&key));
        let want = format!("{hash:016x}.m3d");
        let names: Vec<String> = fs::read_dir(store.quarantine_dir())
            .expect("quarantine dir exists")
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![want]);
        // The slot is rebuildable: a clean publish works again.
        store.store_flow(&key, &sample_result());
        assert_eq!(store.load_flow(&key), Some(sample_result()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_write_leaves_no_visible_entry_and_no_degradation() {
        let root = temp_root("torn");
        let key = flow_key();
        let store = DiskStore::with_faults(&root, u64::MAX, StoreFaultPlan::new().torn_write_on(1));
        store.store_flow(&key, &sample_result());
        assert_eq!(store.load_flow(&key), None);
        assert!(
            !store.is_degraded(),
            "a torn write is a crash, not an I/O error"
        );
        assert_eq!(store.counters().stores, 0);
        // The next publish (no fault) succeeds.
        store.store_flow(&key, &sample_result());
        assert_eq!(store.load_flow(&key), Some(sample_result()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unwritable_dir_degrades_once_and_never_errors() {
        let root = temp_root("degrade");
        let key = flow_key();
        let store = DiskStore::with_faults(&root, u64::MAX, StoreFaultPlan::new().unwritable_on(1));
        store.store_flow(&key, &sample_result());
        assert!(store.is_degraded());
        assert_eq!(store.counters().degraded, 1);
        // Degraded: every later operation no-ops.
        store.store_flow(&key, &sample_result());
        assert_eq!(store.load_flow(&key), None);
        assert_eq!(store.counters().stores, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let root = temp_root("evict");
        let keys: Vec<FlowKey> = [Benchmark::Des, Benchmark::Aes, Benchmark::Fpu]
            .iter()
            .map(|&b| {
                FlowKey::of(
                    b,
                    DesignStyle::TwoD,
                    &crate::flow::FlowConfig::new(NodeId::N45),
                )
            })
            .collect();
        let entry_bytes = {
            let probe = DiskStore::open(temp_root("evict-probe"));
            probe.store_flow(&keys[0], &sample_result());
            probe.resident_bytes()
        };
        // Budget for two entries, not three.
        let store = DiskStore::with_budget(&root, entry_bytes * 2 + entry_bytes / 2);
        store.store_flow(&keys[0], &sample_result());
        store.store_flow(&keys[1], &sample_result());
        // Touch key 0 so key 1 is the LRU victim.
        assert!(store.load_flow(&keys[0]).is_some());
        store.store_flow(&keys[2], &sample_result());
        assert_eq!(store.counters().evictions, 1);
        assert!(
            store.load_flow(&keys[0]).is_some(),
            "recently used survives"
        );
        assert!(store.load_flow(&keys[1]).is_none(), "LRU entry evicted");
        assert!(store.load_flow(&keys[2]).is_some(), "new entry survives");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn journal_replay_restores_recency_across_reopen() {
        let root = temp_root("journal");
        let keys: Vec<FlowKey> = [Benchmark::Des, Benchmark::Aes]
            .iter()
            .map(|&b| {
                FlowKey::of(
                    b,
                    DesignStyle::TwoD,
                    &crate::flow::FlowConfig::new(NodeId::N45),
                )
            })
            .collect();
        let entry_bytes = {
            let store = DiskStore::open(&root);
            store.store_flow(&keys[0], &sample_result());
            store.store_flow(&keys[1], &sample_result());
            // Make key 0 the most recent.
            assert!(store.load_flow(&keys[0]).is_some());
            store.resident_bytes() / 2
        };
        // A fresh process inherits the recency: publishing a third entry
        // under a two-entry budget must evict key 1, not key 0.
        let store = DiskStore::with_budget(&root, entry_bytes * 2 + entry_bytes / 2);
        let third = FlowKey::of(
            Benchmark::Fpu,
            DesignStyle::TwoD,
            &crate::flow::FlowConfig::new(NodeId::N45),
        );
        store.store_flow(&third, &sample_result());
        assert!(
            store.load_flow(&keys[0]).is_some(),
            "journal kept key 0 warm"
        );
        assert!(store.load_flow(&keys[1]).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn quarantine_file_disambiguates_collisions() {
        let root = temp_root("qf");
        fs::create_dir_all(&root).expect("temp root");
        let q = root.join("quarantine");
        for i in 0..3 {
            let src = root.join("entry.m3d");
            fs::write(&src, format!("payload {i}")).expect("write");
            quarantine_file(&src, &q).expect("quarantine");
        }
        let mut names: Vec<String> = fs::read_dir(&q)
            .expect("quarantine dir")
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec!["entry.m3d", "entry.m3d.1", "entry.m3d.2"]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_lock_is_stolen_fresh_lock_is_respected() {
        let root = temp_root("lock");
        fs::create_dir_all(&root).expect("temp root");
        let lock = root.join("0000000000000001.lock");
        fs::write(&lock, "held").expect("write lock");
        // Fresh lock: not acquired.
        assert!(!acquire_lock(&lock).expect("no io error"));
        // Backdate it past the stale horizon and it is stolen. (Uses
        // filetime via touch -d; fall back to skip if unavailable.)
        let old = std::time::SystemTime::now() - LOCK_STALE - Duration::from_secs(5);
        let ft = std::fs::File::options()
            .write(true)
            .open(&lock)
            .and_then(|f| f.set_modified(old));
        if ft.is_ok() {
            assert!(
                acquire_lock(&lock).expect("no io error"),
                "stale lock stolen"
            );
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn library_round_trips_through_disk() {
        let root = temp_root("librt");
        let key = LibraryKey::new(NodeId::N45, DesignStyle::TwoD, false, 1.0);
        let node = TechNode::for_id(NodeId::N45);
        let lib = CellLibrary::try_build(&node, DesignStyle::TwoD).expect("library builds");
        let store = DiskStore::open(&root);
        assert!(store.load_library(&key).is_none());
        store.store_library(&key, &lib);
        let back = store.load_library(&key).expect("disk hit");
        assert_eq!(back.len(), lib.len());
        for ((_, a), (_, b)) in back.iter().zip(lib.iter()) {
            assert_eq!(a, b, "persisted cell differs from characterized cell");
        }
        // A different key must not be answered by this entry.
        let other = LibraryKey::new(NodeId::N45, DesignStyle::TwoD, false, 0.6);
        assert!(store.load_library(&other).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scale_key_changes_flow_key_bytes() {
        // BenchScale is part of the on-disk key: Paper- and Small-scale
        // runs of the same point must never share an entry.
        let mut small = crate::flow::FlowConfig::new(NodeId::N45);
        small.bench_scale = BenchScale::Small;
        let mut paper = crate::flow::FlowConfig::new(NodeId::N45);
        paper.bench_scale = BenchScale::Paper;
        let a = enc_flow_key(&FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &small));
        let b = enc_flow_key(&FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &paper));
        assert_ne!(content_hash(&a), content_hash(&b));
    }
}
