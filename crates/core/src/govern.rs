//! Resource governance for the parallel flow engine: cooperative
//! cancellation, run/point deadline budgets, admission control with
//! per-client quotas, and graceful drain (DESIGN.md §14).
//!
//! The flow-as-a-service direction (ROADMAP) needs whole *runs* to be
//! governable the way PR 3 made individual stages crash-safe: a launched
//! [`crate::ExperimentPlan`] must be stoppable, boundable and drainable
//! without wedging a worker or tearing the caches. The pieces:
//!
//! * [`CancelToken`] — a shared cancellation point (atomic flag +
//!   condvar wakeup + optional deadline) threaded through the executor's
//!   worker loops, the supervisor's stage loop and watchdog, and the
//!   cache's `BuildCell` condvar waits, so a cancelled waiter never
//!   hangs behind a coalesced build or a wedged stage. Tokens form
//!   parent/child chains: cancelling a run token cancels every point and
//!   stage-attempt token derived from it, while a stage watchdog can
//!   cancel its own attempt without touching the run.
//! * [`RunGovernor`] — the per-run policy bundle: the run token, a
//!   whole-run deadline, a per-point deadline, per-stage budgets, and
//!   the drain switch. [`crate::ParallelExecutor::run_governed`]
//!   consumes one and returns partial results — completed slots intact,
//!   pending slots a typed [`PointOutcome`].
//! * [`AdmissionQueue`] — a bounded, priority-ordered intake with
//!   per-client quota counters and an explicit [`Backpressure`] policy
//!   (`Reject` returns a typed error, `Block` waits for space).
//! * Drain persistence — [`save_remainder`] / [`load_remainder`] carry
//!   the unstarted tail of a drained plan through the checkpoint codec,
//!   so a later process resumes exactly the points this one never
//!   started.
//!
//! **Cancellation purity.** A cancelled run publishes nothing torn: flow
//! results enter the caches only after sign-off, and a cancelled stage
//! attempt restores the pre-attempt artifact state, so re-running a
//! cancelled plan over the same memory+disk caches is bit-identical to
//! a run that was never cancelled (`tests/govern.rs` pins this).

use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::checkpoint::{dec_config, enc_config};
use crate::codec::{
    content_hash, dec_benchmark, dec_style, enc_benchmark, enc_style, read_section, write_section,
    Dec, Enc,
};
use crate::error::FlowError;
use crate::executor::{ExperimentPlan, PlanPoint};
use crate::flow::FlowResult;
use crate::observe::{self, EventKind, Recorder};

/// Why a token reports itself cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// Someone called [`CancelToken::cancel`] (on this token or an
    /// ancestor). An explicit cancel always wins over a deadline.
    Cancelled,
    /// An armed deadline passed (on this token or an ancestor).
    DeadlineExceeded,
}

/// How long a parked waiter sleeps between cancellation checks. A
/// same-token [`CancelToken::cancel`] wakes sleepers immediately via the
/// condvar; an ancestor's cancel is observed within one slice. This
/// bounds every cooperative wait's reaction latency.
const WAKE_SLICE: Duration = Duration::from_millis(15);

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Mutex<Option<Instant>>,
    wake_lock: Mutex<()>,
    wake: Condvar,
    parent: Option<CancelToken>,
}

/// A shared cancellation point: clone it anywhere, cancel it once, and
/// every cooperative wait holding a clone (or a [`CancelToken::child`])
/// wakes and unwinds with a typed error instead of hanging.
///
/// Deadlines ride on the same token ([`CancelToken::arm_deadline_in`]):
/// a passed deadline makes the token report cancelled with
/// [`CancelCause::DeadlineExceeded`], no watcher thread required —
/// waiters clip their sleeps and re-check.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token with no deadline and no parent.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Mutex::new(None),
                wake_lock: Mutex::new(()),
                wake: Condvar::new(),
                parent: None,
            }),
        }
    }

    /// A child token: cancelled whenever this token is, but cancellable
    /// (and deadline-armable) on its own without affecting the parent.
    /// The executor derives one per plan point; the supervisor derives
    /// one per stage attempt, which is what lets the watchdog abandon a
    /// single attempt while the run carries on.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Mutex::new(None),
                wake_lock: Mutex::new(()),
                wake: Condvar::new(),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Requests cancellation: sets the flag and wakes this token's
    /// sleepers. Idempotent. Children observe it within one wake slice.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
        let _guard = self.inner.wake_lock.lock().expect("cancel token lock");
        self.inner.wake.notify_all();
    }

    /// Arms (or tightens) a deadline `after` from now. The earlier of
    /// two armed deadlines wins.
    pub fn arm_deadline_in(&self, after: Duration) {
        let at = Instant::now() + after;
        let mut slot = self.inner.deadline.lock().expect("cancel token lock");
        *slot = Some(slot.map_or(at, |prev| prev.min(at)));
    }

    /// Whether the token (or any ancestor) is cancelled or past its
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }

    /// Why the token is cancelled, if it is. An explicit cancel anywhere
    /// in the ancestor chain wins over a passed deadline.
    pub fn cause(&self) -> Option<CancelCause> {
        let now = Instant::now();
        let mut deadline_hit = false;
        let mut cur = Some(self);
        while let Some(t) = cur {
            if t.inner.cancelled.load(Ordering::Acquire) {
                return Some(CancelCause::Cancelled);
            }
            if t.inner
                .deadline
                .lock()
                .expect("cancel token lock")
                .is_some_and(|d| now >= d)
            {
                deadline_hit = true;
            }
            cur = t.inner.parent.as_ref();
        }
        deadline_hit.then_some(CancelCause::DeadlineExceeded)
    }

    /// Parks for up to `max`, waking early on cancellation. Returns
    /// whether the token was cancelled. The sleep runs in bounded
    /// slices, so an ancestor's cancel (which only notifies its own
    /// condvar) is still observed promptly.
    pub fn wait_cancelled_for(&self, max: Duration) -> bool {
        let until = Instant::now() + max;
        let mut guard = self.inner.wake_lock.lock().expect("cancel token lock");
        loop {
            if self.is_cancelled() {
                return true;
            }
            let now = Instant::now();
            if now >= until {
                return false;
            }
            let slice = (until - now).min(WAKE_SLICE);
            let (g, _) = self
                .inner
                .wake
                .wait_timeout(guard, slice)
                .expect("cancel token lock");
            guard = g;
        }
    }

    /// Parks until cancelled — the cooperative "wedged stage" used by
    /// [`crate::FaultKind::StuckStage`]. Never returns un-cancelled.
    pub fn wait_cancelled(&self) {
        while !self.wait_cancelled_for(Duration::from_secs(3600)) {}
    }
}

// ---------------------------------------------------------------------
// Thread-local token propagation
// ---------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the previously installed token on drop.
#[derive(Debug)]
pub struct TokenGuard {
    prev: Option<CancelToken>,
}

impl Drop for TokenGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `token` as the calling thread's current cancellation point
/// until the returned guard drops. The supervisor installs each stage
/// attempt's token on its worker thread, which is how deep waits — the
/// cache's `BuildCell` coalescing wait in particular — become
/// cancellable without threading a token through every signature.
pub fn install(token: CancelToken) -> TokenGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token));
    TokenGuard { prev }
}

/// The calling thread's installed token, if any. Ungoverned threads see
/// `None` and pay nothing.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

// ---------------------------------------------------------------------
// Point outcomes
// ---------------------------------------------------------------------

/// How one plan point ended under a governed run: the partial-results
/// contract of [`crate::ParallelExecutor::run_governed`].
#[derive(Debug, Clone)]
pub enum PointOutcome {
    /// The flow closed; the result is cached exactly as an ungoverned
    /// run would have cached it. Boxed: a `FlowResult` dwarfs the other
    /// variants and outcomes live in per-slot vectors.
    Done(Box<FlowResult>),
    /// The flow failed on its own (the governor did not intervene).
    Failed(FlowError),
    /// The run was cancelled before or during this point.
    Cancelled,
    /// The whole-run or per-point deadline passed before this point
    /// completed.
    DeadlineExceeded,
    /// A drain stopped the run before this point started; the point is
    /// part of the persisted remainder.
    Drained,
}

impl PointOutcome {
    /// Stable lowercase key (trace payloads, bench JSON).
    pub fn key(&self) -> &'static str {
        match self {
            PointOutcome::Done(_) => "done",
            PointOutcome::Failed(_) => "failed",
            PointOutcome::Cancelled => "cancelled",
            PointOutcome::DeadlineExceeded => "deadline_exceeded",
            PointOutcome::Drained => "drained",
        }
    }

    /// The sign-off result, when the point closed.
    pub fn result(&self) -> Option<&FlowResult> {
        match self {
            PointOutcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// True for `Done`.
    pub fn is_done(&self) -> bool {
        matches!(self, PointOutcome::Done(_))
    }
}

// ---------------------------------------------------------------------
// Run governor
// ---------------------------------------------------------------------

/// The policy bundle one governed run executes under: cancellation,
/// deadline hierarchy (run > point > stage), drain, and an optional
/// fault plan for the chaos harness.
///
/// Clones share the live state (the token and the drain switch) and
/// copy the policy, so a service thread can hold a clone and
/// [`RunGovernor::cancel`] / [`RunGovernor::drain`] a run the executor
/// owns.
#[derive(Debug, Clone, Default)]
pub struct RunGovernor {
    token: CancelToken,
    draining: Arc<AtomicBool>,
    run_deadline: Option<Duration>,
    point_deadline: Option<Duration>,
    stage_deadlines: Option<crate::supervisor::StageDeadlines>,
    drain_dir: Option<std::path::PathBuf>,
    faults: crate::faultinject::FaultPlan,
}

impl RunGovernor {
    /// A governor with no deadlines armed: cancellation and drain only.
    pub fn new() -> Self {
        RunGovernor::default()
    }

    /// Bounds the whole run: the run token's deadline arms when
    /// `run_governed` starts, and every point still pending when it
    /// passes reports [`PointOutcome::DeadlineExceeded`].
    pub fn with_run_deadline(mut self, deadline: Duration) -> Self {
        self.run_deadline = Some(deadline);
        self
    }

    /// Bounds each point independently (measured from the point's own
    /// start), on top of any whole-run budget.
    pub fn with_point_deadline(mut self, deadline: Duration) -> Self {
        self.point_deadline = Some(deadline);
        self
    }

    /// Per-stage watchdog budgets for governed points (defaults to the
    /// supervisor's own defaults otherwise).
    pub fn with_stage_deadlines(mut self, deadlines: crate::supervisor::StageDeadlines) -> Self {
        self.stage_deadlines = Some(deadlines);
        self
    }

    /// Where a drain persists the unstarted plan remainder
    /// (`plan-remainder.m3d` under `dir`); without it the remainder is
    /// only reported in the [`crate::GovernedReport`].
    pub fn with_drain_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.drain_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Arms a deterministic fault plan applied to every governed point
    /// (test harness; see [`crate::FaultPlan`]).
    pub fn with_faults(mut self, faults: crate::faultinject::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The run token (clone it to share the cancellation point).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Cancels the run: in-flight points unwind cooperatively, pending
    /// points report [`PointOutcome::Cancelled`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Starts a graceful drain: workers finish their in-flight points,
    /// start nothing new, and the unstarted remainder is persisted when
    /// a drain directory is configured.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether the run is cancelled (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// Why the run is cancelled, if it is.
    pub fn cause(&self) -> Option<CancelCause> {
        self.token.cause()
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Arms the whole-run deadline; called once at `run_governed` entry.
    pub(crate) fn arm(&self) {
        if let Some(d) = self.run_deadline {
            self.token.arm_deadline_in(d);
        }
    }

    /// A token for one plan point: child of the run token, with the
    /// per-point deadline armed.
    pub(crate) fn point_token(&self) -> CancelToken {
        let tok = self.token.child();
        if let Some(d) = self.point_deadline {
            tok.arm_deadline_in(d);
        }
        tok
    }

    pub(crate) fn stage_deadlines(&self) -> Option<&crate::supervisor::StageDeadlines> {
        self.stage_deadlines.as_ref()
    }

    pub(crate) fn drain_dir(&self) -> Option<&Path> {
        self.drain_dir.as_deref()
    }

    pub(crate) fn faults(&self) -> &crate::faultinject::FaultPlan {
        &self.faults
    }
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/// Scheduling priority of an admitted point. Within a priority class,
/// admission order is preserved (FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Served before everything else.
    High,
    /// The default class.
    Normal,
    /// Served only when nothing higher waits.
    Low,
}

impl Priority {
    const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// What a full queue does to a submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// `submit` returns [`AdmissionError::QueueFull`] immediately.
    Reject,
    /// `submit` blocks until space frees up (or the queue drains, which
    /// unblocks as [`AdmissionError::Draining`]).
    Block,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at capacity and the policy is [`Backpressure::Reject`].
    QueueFull {
        /// The configured bound.
        capacity: usize,
    },
    /// The client has `quota` points queued already.
    QuotaExhausted {
        /// The rejected client.
        client: u64,
        /// The per-client bound.
        quota: u32,
    },
    /// The queue is draining and admits nothing new.
    Draining,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} points)")
            }
            AdmissionError::QuotaExhausted { client, quota } => {
                write!(
                    f,
                    "client {client} exhausted its quota of {quota} queued points"
                )
            }
            AdmissionError::Draining => write!(f, "admission queue is draining"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug)]
struct QueueState {
    /// One FIFO per priority class.
    classes: [VecDeque<(u64, PlanPoint)>; 3],
    /// Points currently queued per client (admitted, not yet popped).
    queued: HashMap<u64, u32>,
    draining: bool,
}

impl QueueState {
    fn total(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Releases exactly one quota slot for `client` — the inverse of
    /// the increment in [`AdmissionQueue::submit`]. A release with no
    /// admitted points is an accounting bug (each popped point must
    /// release exactly once); it panics in debug builds and returns
    /// `false` in release builds instead of silently saturating, so a
    /// double-release can never grant a client headroom it still
    /// occupies.
    fn release_quota(&mut self, client: u64) -> bool {
        match self.queued.entry(client) {
            Entry::Occupied(mut slot) => {
                *slot.get_mut() -= 1;
                if *slot.get() == 0 {
                    slot.remove();
                }
                true
            }
            Entry::Vacant(_) => {
                debug_assert!(
                    false,
                    "quota release for client {client} with no admitted points"
                );
                false
            }
        }
    }
}

/// A bounded, priority-ordered intake for flow points, with per-client
/// quota counters and an explicit backpressure policy — the admission
/// half of the flow-as-a-service substrate.
///
/// The quota bounds *queued* points per client: admitting increments
/// the client's counter, popping decrements it, so one greedy client
/// cannot monopolize the queue while others wait.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    quota: Option<u32>,
    policy: Backpressure,
    state: Mutex<QueueState>,
    space: Condvar,
    recorder: Arc<dyn Recorder>,
}

impl AdmissionQueue {
    /// A queue bounded to `capacity` points under `policy`.
    pub fn new(capacity: usize, policy: Backpressure) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            quota: None,
            policy,
            state: Mutex::new(QueueState {
                classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                queued: HashMap::new(),
                draining: false,
            }),
            space: Condvar::new(),
            recorder: observe::null(),
        }
    }

    /// Bounds each client to `per_client` queued points.
    pub fn with_quota(mut self, per_client: u32) -> Self {
        self.quota = Some(per_client.max(1));
        self
    }

    /// Attaches an event sink; admission decisions
    /// (`admission_rejected`, `quota_exhausted`) trace through it.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        if self.recorder.enabled() {
            self.recorder.record(kind());
        }
    }

    /// Admits one point for `client` at `priority`.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Draining`] once [`AdmissionQueue::drain`] ran,
    /// [`AdmissionError::QuotaExhausted`] when the client is at quota,
    /// and [`AdmissionError::QueueFull`] at capacity under
    /// [`Backpressure::Reject`] (under `Block` the call waits instead).
    pub fn submit(
        &self,
        client: u64,
        priority: Priority,
        point: PlanPoint,
    ) -> Result<(), AdmissionError> {
        let mut st = self.state.lock().expect("admission queue lock");
        loop {
            if st.draining {
                self.emit(|| EventKind::AdmissionRejected {
                    client,
                    reason: "draining",
                });
                return Err(AdmissionError::Draining);
            }
            if let Some(quota) = self.quota {
                if st.queued.get(&client).copied().unwrap_or(0) >= quota {
                    self.emit(|| EventKind::QuotaExhausted { client });
                    return Err(AdmissionError::QuotaExhausted { client, quota });
                }
            }
            if st.total() < self.capacity {
                break;
            }
            match self.policy {
                Backpressure::Reject => {
                    self.emit(|| EventKind::AdmissionRejected {
                        client,
                        reason: "queue_full",
                    });
                    return Err(AdmissionError::QueueFull {
                        capacity: self.capacity,
                    });
                }
                Backpressure::Block => {
                    st = self.space.wait(st).expect("admission queue lock");
                }
            }
        }
        st.classes[priority.index()].push_back((client, point));
        *st.queued.entry(client).or_insert(0) += 1;
        Ok(())
    }

    /// The next point: highest priority class first, FIFO within it.
    /// Frees the client's quota slot and wakes one blocked submitter.
    pub fn pop(&self) -> Option<(u64, PlanPoint)> {
        let mut st = self.state.lock().expect("admission queue lock");
        for pri in Priority::ALL {
            if let Some((client, point)) = st.classes[pri.index()].pop_front() {
                st.release_quota(client);
                drop(st);
                self.space.notify_one();
                return Some((client, point));
            }
        }
        None
    }

    /// Points currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("admission queue lock").total()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops admitting and empties the queue into an
    /// [`ExperimentPlan`] (priority order), waking every blocked
    /// submitter with [`AdmissionError::Draining`]. Subsequent `submit`
    /// calls are rejected; `pop` returns `None`.
    pub fn drain(&self) -> ExperimentPlan {
        let mut plan = ExperimentPlan::new();
        let mut st = self.state.lock().expect("admission queue lock");
        st.draining = true;
        for pri in Priority::ALL {
            while let Some((_, p)) = st.classes[pri.index()].pop_front() {
                plan.push(p.bench, p.style, p.config);
            }
        }
        st.queued.clear();
        drop(st);
        self.space.notify_all();
        plan
    }
}

// ---------------------------------------------------------------------
// Drain persistence
// ---------------------------------------------------------------------

/// File magic of a persisted plan remainder (version 1).
const PLAN_MAGIC: &[u8; 8] = b"M3DPLAN1";

/// Tag of the single remainder section.
const TAG_POINTS: u8 = 1;

/// The file name [`crate::ParallelExecutor::run_governed`] persists a
/// drain remainder under (inside the governor's drain directory).
pub const REMAINDER_FILE: &str = "plan-remainder.m3d";

fn corrupt(path: &Path, detail: impl Into<String>) -> FlowError {
    FlowError::CorruptCheckpoint {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

/// Persists the unstarted tail of a drained plan through the checkpoint
/// codec (same section framing and content hashing as supervisor
/// snapshots, under its own magic). Returns the encoded size in bytes.
/// The write is tmp+fsync+rename, so a crash mid-drain leaves either
/// the old remainder or the new one, never a torn file.
///
/// # Errors
///
/// [`FlowError::CorruptCheckpoint`] on any I/O failure.
pub fn save_remainder(path: &Path, points: &[PlanPoint]) -> Result<u64, FlowError> {
    let mut body = Enc::default();
    body.usize(points.len());
    for p in points {
        enc_benchmark(&mut body, p.bench);
        enc_style(&mut body, p.style);
        enc_config(&mut body, &p.config);
    }
    let mut payload = Vec::with_capacity(body.buf.len() + 32);
    write_section(&mut payload, TAG_POINTS, &body.buf);
    let mut file = Vec::with_capacity(payload.len() + 24);
    file.extend_from_slice(PLAN_MAGIC);
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&content_hash(&payload).to_le_bytes());
    file.extend_from_slice(&payload);

    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| corrupt(path, format!("create dir: {e}")))?;
    }
    let tmp = path.with_extension("m3d.tmp");
    {
        let mut f =
            fs::File::create(&tmp).map_err(|e| corrupt(&tmp, format!("create temp: {e}")))?;
        f.write_all(&file)
            .map_err(|e| corrupt(&tmp, format!("write: {e}")))?;
        f.sync_all()
            .map_err(|e| corrupt(&tmp, format!("sync: {e}")))?;
    }
    fs::rename(&tmp, path).map_err(|e| corrupt(path, format!("rename: {e}")))?;
    Ok(file.len() as u64)
}

/// Loads a persisted plan remainder back into an [`ExperimentPlan`]
/// (dedup still applies), verifying magic and content hashes.
///
/// # Errors
///
/// [`FlowError::CorruptCheckpoint`] when the file is missing, truncated
/// or fails verification.
pub fn load_remainder(path: &Path) -> Result<ExperimentPlan, FlowError> {
    let bytes = fs::read(path).map_err(|e| corrupt(path, format!("read: {e}")))?;
    let mut d = Dec::new(&bytes);
    let magic = d
        .take(PLAN_MAGIC.len())
        .map_err(|e| corrupt(path, e.0.clone()))?;
    if magic != PLAN_MAGIC {
        return Err(corrupt(path, "bad plan-remainder magic"));
    }
    let len = d.usize().map_err(|e| corrupt(path, e.0.clone()))?;
    let hash = d.u64().map_err(|e| corrupt(path, e.0.clone()))?;
    let payload = d.take(len).map_err(|e| corrupt(path, e.0.clone()))?;
    let actual = content_hash(payload);
    if actual != hash {
        return Err(corrupt(
            path,
            format!("payload hash mismatch: stored {hash:#018x}, computed {actual:#018x}"),
        ));
    }
    let mut pd = Dec::new(payload);
    let body = read_section(&mut pd, TAG_POINTS).map_err(|e| corrupt(path, e.0.clone()))?;
    let mut bd = Dec::new(body);
    let count = bd.usize().map_err(|e| corrupt(path, e.0.clone()))?;
    let mut plan = ExperimentPlan::new();
    for _ in 0..count {
        let bench = dec_benchmark(&mut bd).map_err(|e| corrupt(path, e.0.clone()))?;
        let style = dec_style(&mut bd).map_err(|e| corrupt(path, e.0.clone()))?;
        let config = dec_config(&mut bd).map_err(|e| corrupt(path, e.0.clone()))?;
        plan.push(bench, style, config);
    }
    bd.finish().map_err(|e| corrupt(path, e.0.clone()))?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_tech::{DesignStyle, NodeId};

    use crate::flow::FlowConfig;

    fn point(bench: Benchmark, style: DesignStyle) -> PlanPoint {
        PlanPoint {
            bench,
            style,
            config: FlowConfig::new(NodeId::N45).scale(BenchScale::Small),
        }
    }

    #[test]
    fn explicit_cancel_beats_deadline_and_reaches_children() {
        let root = CancelToken::new();
        let child = root.child();
        assert!(!child.is_cancelled());
        child.arm_deadline_in(Duration::from_secs(3600));
        assert_eq!(child.cause(), None, "future deadline is not a cancel");
        root.cancel();
        assert_eq!(child.cause(), Some(CancelCause::Cancelled));
        // A child's own cancel never propagates up.
        let sibling = CancelToken::new();
        let kid = sibling.child();
        kid.cancel();
        assert!(kid.is_cancelled());
        assert!(!sibling.is_cancelled());
    }

    #[test]
    fn passed_deadline_reports_deadline_exceeded() {
        let tok = CancelToken::new();
        tok.arm_deadline_in(Duration::ZERO);
        assert_eq!(tok.cause(), Some(CancelCause::DeadlineExceeded));
        // Explicit cancel upgrades the cause.
        tok.cancel();
        assert_eq!(tok.cause(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn wait_cancelled_for_wakes_on_cancel() {
        let tok = CancelToken::new();
        let waiter = tok.clone();
        let t0 = Instant::now();
        let h = std::thread::spawn(move || waiter.wait_cancelled_for(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        tok.cancel();
        assert!(h.join().expect("no panic"), "waiter saw the cancel");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "woke well before the 30 s bound"
        );
        // Un-cancelled waits time out false.
        assert!(!CancelToken::new().wait_cancelled_for(Duration::from_millis(1)));
    }

    #[test]
    fn installed_token_is_thread_local_and_restores() {
        assert!(current().is_none());
        let tok = CancelToken::new();
        {
            let _g = install(tok.clone());
            assert!(current().is_some());
            let inner = CancelToken::new();
            {
                let _g2 = install(inner);
                // innermost wins
                assert!(!current().expect("installed").is_cancelled());
            }
        }
        assert!(current().is_none(), "guard restored the empty slot");
        // Other threads never see it.
        let tok2 = CancelToken::new();
        let _g = install(tok2);
        let other = std::thread::spawn(|| current().is_none())
            .join()
            .expect("no panic");
        assert!(other);
    }

    #[test]
    fn admission_orders_by_priority_then_fifo() {
        let q = AdmissionQueue::new(8, Backpressure::Reject);
        q.submit(1, Priority::Low, point(Benchmark::Des, DesignStyle::TwoD))
            .expect("admits");
        q.submit(
            1,
            Priority::Normal,
            point(Benchmark::Aes, DesignStyle::TwoD),
        )
        .expect("admits");
        q.submit(2, Priority::High, point(Benchmark::Ldpc, DesignStyle::TwoD))
            .expect("admits");
        q.submit(
            2,
            Priority::Normal,
            point(Benchmark::Fpu, DesignStyle::TwoD),
        )
        .expect("admits");
        let order: Vec<Benchmark> = std::iter::from_fn(|| q.pop().map(|(_, p)| p.bench)).collect();
        assert_eq!(
            order,
            [
                Benchmark::Ldpc,
                Benchmark::Aes,
                Benchmark::Fpu,
                Benchmark::Des
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn quota_bounds_queued_points_per_client() {
        let q = AdmissionQueue::new(8, Backpressure::Reject).with_quota(2);
        q.submit(
            7,
            Priority::Normal,
            point(Benchmark::Des, DesignStyle::TwoD),
        )
        .expect("admits");
        q.submit(
            7,
            Priority::Normal,
            point(Benchmark::Aes, DesignStyle::TwoD),
        )
        .expect("admits");
        assert_eq!(
            q.submit(
                7,
                Priority::Normal,
                point(Benchmark::Fpu, DesignStyle::TwoD)
            ),
            Err(AdmissionError::QuotaExhausted {
                client: 7,
                quota: 2
            })
        );
        // Another client is unaffected.
        q.submit(
            8,
            Priority::Normal,
            point(Benchmark::Fpu, DesignStyle::TwoD),
        )
        .expect("admits");
        // Popping frees the slot.
        let _ = q.pop();
        q.submit(
            7,
            Priority::Normal,
            point(Benchmark::M256, DesignStyle::TwoD),
        )
        .expect("quota slot freed");
    }

    #[test]
    fn quota_release_is_exactly_once_across_pop_and_drain() {
        // Regression: release used to saturating_sub, so a double
        // release (an accounting bug) silently freed quota a client
        // still occupied. Pop/drain must release each admitted point
        // exactly once — counters reach exactly zero, never wrap.
        let q = AdmissionQueue::new(8, Backpressure::Reject).with_quota(2);
        for bench in [Benchmark::Des, Benchmark::Aes] {
            q.submit(7, Priority::Normal, point(bench, DesignStyle::TwoD))
                .expect("admits");
        }
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none(), "queue observed empty");
        // Exactly two slots came back: the client re-admits up to
        // quota and not past it.
        for bench in [Benchmark::Des, Benchmark::Aes] {
            q.submit(7, Priority::Normal, point(bench, DesignStyle::TwoD))
                .expect("slots freed exactly");
        }
        assert!(matches!(
            q.submit(
                7,
                Priority::Normal,
                point(Benchmark::Fpu, DesignStyle::TwoD)
            ),
            Err(AdmissionError::QuotaExhausted { .. })
        ));
        // Drain releases the remainder in aggregate.
        let remainder = q.drain();
        assert_eq!(remainder.len(), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "quota release"))]
    fn quota_release_without_admission_is_a_checked_error() {
        let mut st = QueueState {
            classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            queued: HashMap::new(),
            draining: false,
        };
        // Debug builds panic on the accounting bug; release builds
        // refuse the release and keep the map untouched.
        let released = st.release_quota(42);
        assert!(!released, "phantom release must not report success");
        assert!(st.queued.is_empty());
    }

    #[test]
    fn zero_deadline_cancels_before_the_first_wait_slice() {
        // A deadline of zero (or already past) must reject instantly,
        // not after one 15 ms wake slice — m3d-serve maps per-request
        // deadlines onto these tokens.
        let tok = CancelToken::new();
        tok.arm_deadline_in(Duration::ZERO);
        assert!(tok.is_cancelled(), "zero deadline is an immediate cancel");
        let t0 = Instant::now();
        assert!(tok.wait_cancelled_for(Duration::from_secs(30)));
        assert!(
            t0.elapsed() < WAKE_SLICE,
            "wait returned only after a wake slice: {:?}",
            t0.elapsed()
        );
        // Same through a child: the parent's elapsed deadline is
        // visible without waiting.
        let parent = CancelToken::new();
        parent.arm_deadline_in(Duration::ZERO);
        let child = parent.child();
        let t0 = Instant::now();
        assert!(child.wait_cancelled_for(Duration::from_secs(30)));
        assert!(t0.elapsed() < WAKE_SLICE);
        assert_eq!(child.cause(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn reject_policy_returns_queue_full_at_capacity() {
        let q = AdmissionQueue::new(1, Backpressure::Reject);
        q.submit(
            1,
            Priority::Normal,
            point(Benchmark::Des, DesignStyle::TwoD),
        )
        .expect("admits");
        assert_eq!(
            q.submit(
                1,
                Priority::Normal,
                point(Benchmark::Aes, DesignStyle::TwoD)
            ),
            Err(AdmissionError::QueueFull { capacity: 1 })
        );
    }

    #[test]
    fn block_policy_waits_for_space_and_drain_unblocks() {
        let q = Arc::new(AdmissionQueue::new(1, Backpressure::Block));
        q.submit(
            1,
            Priority::Normal,
            point(Benchmark::Des, DesignStyle::TwoD),
        )
        .expect("admits");
        // A blocked submitter admits as soon as a pop frees space.
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            q2.submit(
                2,
                Priority::Normal,
                point(Benchmark::Aes, DesignStyle::TwoD),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        let popped = q.pop().expect("pops the first point");
        assert_eq!(popped.1.bench, Benchmark::Des);
        assert_eq!(h.join().expect("no panic"), Ok(()));
        // A blocked submitter unblocks as Draining when the queue drains.
        let q3 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            q3.submit(
                3,
                Priority::Normal,
                point(Benchmark::Fpu, DesignStyle::TwoD),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        let remainder = q.drain();
        assert_eq!(remainder.len(), 1, "the queued point drains out");
        assert_eq!(h.join().expect("no panic"), Err(AdmissionError::Draining));
        assert_eq!(
            q.submit(
                4,
                Priority::Normal,
                point(Benchmark::Des, DesignStyle::TwoD)
            ),
            Err(AdmissionError::Draining)
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn remainder_round_trips_through_the_codec() {
        let dir = std::env::temp_dir().join(format!(
            "m3d-govern-remainder-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join(REMAINDER_FILE);
        let points = vec![
            point(Benchmark::Ldpc, DesignStyle::TwoD),
            point(Benchmark::Ldpc, DesignStyle::Tmi),
            point(Benchmark::Des, DesignStyle::TwoD),
        ];
        let bytes = save_remainder(&path, &points).expect("persists");
        assert!(bytes > 0);
        let plan = load_remainder(&path).expect("loads");
        assert_eq!(plan.len(), 3);
        for (got, want) in plan.points().iter().zip(&points) {
            assert_eq!(got, want, "points round-trip bit-exactly");
        }
        // A flipped payload byte is a typed error, not a panic.
        let mut bad = fs::read(&path).expect("read back");
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        fs::write(&path, &bad).expect("write corrupt");
        assert!(matches!(
            load_remainder(&path),
            Err(FlowError::CorruptCheckpoint { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_remainder_is_a_typed_error() {
        let path = Path::new("/nonexistent-m3d-govern/plan-remainder.m3d");
        assert!(matches!(
            load_remainder(path),
            Err(FlowError::CorruptCheckpoint { .. })
        ));
    }
}
