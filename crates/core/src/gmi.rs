//! Gate-level monolithic 3D integration (**G-MI**) — the alternative the
//! paper contrasts T-MI against in its introduction: *planar* cells placed
//! on two tiers, stitched by MIVs on the nets that cross tiers, instead of
//! folding every cell.
//!
//! This module is an extension beyond the paper's own experiments: it lets
//! the toolkit answer "how much of the T-MI benefit would the coarser
//! G-MI partitioning already capture?" The pipeline is
//!
//! 1. synthesize the 2D netlist as usual,
//! 2. bipartition it with a Fiduccia-Mattheyses pass minimizing cut nets
//!    under an area balance ([`fm_bipartition`]),
//! 3. place both tiers in a shared x/y space on a half-area core
//!    ([`m3d_place::Placer::tiers`]),
//! 4. route against the T-MI metal stack and add one MIV per cut net,
//! 5. sign off timing and power exactly like the main flow.

use std::fmt::Write as _;

use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark, NetDriver, Netlist};
use m3d_place::Placer;
use m3d_power::{analyze_power, PowerConfig};
use m3d_route::Router;
use m3d_sta::analyze;
use m3d_sta::TimingConfig;
use m3d_synth::{synthesize, SynthConfig, WireLoadModel};
use m3d_tech::{DesignStyle, MetalStack, NodeId, StackKind};

use crate::cache::ArtifactCache;
use crate::flow::{default_clock_scale_at, estimate_models, extraction_models};
use crate::{ExperimentPlan, Flow, FlowConfig};

/// The circuits the G-MI comparison study runs.
const GMI_BENCHES: [Benchmark; 2] = [Benchmark::Aes, Benchmark::Ldpc];

/// Enumerates the cacheable flow points of [`gmi_comparison`] — its 2D
/// and T-MI reference flows. The G-MI implementation itself
/// ([`run_gmi`]) is not a `Flow` and is not memoized, so it stays in
/// the driver. Returns whether the name belongs to this module.
pub(crate) fn add_plan(name: &str, scale: BenchScale, plan: &mut ExperimentPlan) -> bool {
    if name != "gmi" {
        return false;
    }
    let cfg = FlowConfig::new(NodeId::N45).scale(scale);
    for bench in GMI_BENCHES {
        plan.push_comparison(bench, &cfg);
    }
    true
}

/// Result of a Fiduccia-Mattheyses bipartition.
#[derive(Debug, Clone)]
pub struct Bipartition {
    /// Tier (0/1) per instance.
    pub assignment: Vec<u8>,
    /// Nets with pins on both tiers (each needs an MIV in G-MI).
    pub cut_nets: usize,
    /// Area fraction on tier 0.
    pub balance: f64,
}

/// Fiduccia-Mattheyses-style bipartitioning: single-cell moves with
/// net-cut gains, best-prefix acceptance, repeated for `passes` passes,
/// under a `balance_tolerance` area constraint (e.g. 0.1 keeps each side
/// within 40-60 %).
pub fn fm_bipartition(
    netlist: &Netlist,
    lib: &CellLibrary,
    passes: usize,
    balance_tolerance: f64,
) -> Bipartition {
    let n = netlist.instance_count();
    let areas: Vec<f64> = netlist
        .inst_ids()
        .map(|i| lib.cell(netlist.inst(i).cell).area_um2())
        .collect();
    let total_area: f64 = areas.iter().sum();
    // Initial split: even/odd by id keeps generator locality mixed, which
    // gives FM real work and a reproducible start.
    let mut side: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
    let mut area0: f64 = areas
        .iter()
        .enumerate()
        .filter(|(i, _)| side[*i] == 0)
        .map(|(_, a)| a)
        .sum();

    // Per-net pin lists (instances only; ports are tier-agnostic pads).
    let mut net_pins: Vec<Vec<u32>> = vec![Vec::new(); netlist.net_count()];
    for id in netlist.net_ids() {
        if Some(id) == netlist.clock {
            continue; // the clock reaches both tiers regardless
        }
        let net = netlist.net(id);
        if let NetDriver::Cell { inst, .. } = net.driver {
            net_pins[id.0 as usize].push(inst.0);
        }
        for s in &net.sinks {
            net_pins[id.0 as usize].push(s.inst.0);
        }
    }
    let mut inst_nets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (nid, pins) in net_pins.iter().enumerate() {
        for &i in pins {
            inst_nets[i as usize].push(nid as u32);
        }
    }
    for v in &mut inst_nets {
        v.sort_unstable();
        v.dedup();
    }

    let cut_count = |side: &[u8]| -> usize {
        net_pins
            .iter()
            .filter(|pins| {
                pins.len() > 1 && {
                    let first = side[pins[0] as usize];
                    pins.iter().any(|&p| side[p as usize] != first)
                }
            })
            .count()
    };

    let lo = total_area * (0.5 - balance_tolerance);
    let hi = total_area * (0.5 + balance_tolerance);
    for _pass in 0..passes {
        // Gain of moving instance i = (nets that become uncut) - (nets
        // that become cut).
        let mut moved = vec![false; n];
        let mut best_cut = cut_count(&side);
        let mut best_prefix = 0usize;
        let mut trail: Vec<u32> = Vec::new();
        let mut cur_cut = best_cut;
        for _step in 0..n.min(4000) {
            // Greedy: pick the unmoved cell with the best gain that keeps
            // balance.
            let mut best: Option<(i64, u32)> = None;
            for i in 0..n {
                if moved[i] {
                    continue;
                }
                let from = side[i];
                let new_area0 = if from == 0 {
                    area0 - areas[i]
                } else {
                    area0 + areas[i]
                };
                if new_area0 < lo || new_area0 > hi {
                    continue;
                }
                let mut gain = 0i64;
                for &nid in &inst_nets[i] {
                    let pins = &net_pins[nid as usize];
                    if pins.len() < 2 {
                        continue;
                    }
                    let mine = pins.iter().filter(|&&p| p as usize == i).count();
                    let same = pins.iter().filter(|&&p| side[p as usize] == from).count();
                    let other = pins.len() - same;
                    if other == 0 {
                        gain -= 1; // uncut net becomes cut
                    } else if same == mine {
                        gain += 1; // this move heals the cut
                    }
                }
                if best.map(|(g, _)| gain > g).unwrap_or(true) {
                    best = Some((gain, i as u32));
                }
            }
            let Some((gain, i)) = best else { break };
            let i_us = i as usize;
            moved[i_us] = true;
            if side[i_us] == 0 {
                area0 -= areas[i_us];
                side[i_us] = 1;
            } else {
                area0 += areas[i_us];
                side[i_us] = 0;
            }
            trail.push(i);
            cur_cut = (cur_cut as i64 - gain) as usize;
            if cur_cut < best_cut {
                best_cut = cur_cut;
                best_prefix = trail.len();
            }
            if gain <= 0 && trail.len() > best_prefix + 64 {
                break; // long negative tail: stop the pass early
            }
        }
        // Roll back past the best prefix.
        for &i in trail[best_prefix..].iter() {
            let i = i as usize;
            if side[i] == 0 {
                area0 -= areas[i];
                side[i] = 1;
            } else {
                area0 += areas[i];
                side[i] = 0;
            }
        }
        if best_prefix == 0 {
            break; // converged
        }
    }

    Bipartition {
        cut_nets: cut_count(&side),
        balance: area0 / total_area,
        assignment: side,
    }
}

/// Sign-off summary of a G-MI implementation.
#[derive(Debug, Clone)]
pub struct GmiResult {
    /// Core footprint, µm² (two stacked tiers).
    pub footprint_um2: f64,
    /// Total routed wirelength, µm.
    pub wirelength_um: f64,
    /// Nets crossing tiers (MIV count).
    pub miv_nets: usize,
    /// Worst slack, ps.
    pub wns_ps: f64,
    /// Total power, mW.
    pub total_power_mw: f64,
}

/// Runs the G-MI flow for a benchmark (2D library, two tiers).
pub fn run_gmi(bench: Benchmark, config: &FlowConfig) -> GmiResult {
    let node = config.tech_node();
    let lib = ArtifactCache::global()
        .library(
            config.node_id,
            DesignStyle::TwoD,
            config.lower_metal_rho,
            1.0,
        )
        .expect("library builds");
    let clock_ps = config
        .clock_ps
        .unwrap_or_else(|| bench.target_clock_ps(config.node_id))
        * if config.clock_scale > 0.0 {
            config.clock_scale
        } else {
            default_clock_scale_at(bench, config.node_id)
        };
    let utilization = config
        .utilization
        .unwrap_or_else(|| bench.target_utilization());

    let raw = bench.generate(&lib, config.bench_scale);
    let prelim = Placer::new(&lib)
        .utilization(utilization)
        .iterations(16)
        .place(&raw);
    let wlm = WireLoadModel::from_placement(&raw, &prelim);
    let netlist = synthesize(raw, &lib, &wlm, &SynthConfig::new(clock_ps));

    let part = fm_bipartition(&netlist, &lib, 4, 0.1);
    let placement = Placer::new(&lib)
        .utilization(utilization)
        .iterations(config.place_iterations)
        .tiers(part.assignment.clone(), 2)
        .place(&netlist);

    // G-MI routes over the T-MI stack (it needs MB1 + the extra layers
    // for the doubled pin density just like T-MI does).
    let stack = MetalStack::new(&node, StackKind::Tmi);
    let router = Router::new(&node, &stack);
    let routed = router.route(&netlist, &placement, &lib);
    let mut models = extraction_models(&netlist, &routed, &node);
    // Cut nets carry one MIV each.
    for id in netlist.net_ids() {
        let pins_tiers: Vec<u8> = {
            let net = netlist.net(id);
            let mut v: Vec<u8> = net
                .sinks
                .iter()
                .map(|s| part.assignment[s.inst.0 as usize])
                .collect();
            if let NetDriver::Cell { inst, .. } = net.driver {
                v.push(part.assignment[inst.0 as usize]);
            }
            v
        };
        if pins_tiers.windows(2).any(|w| w[0] != w[1]) {
            models[id.0 as usize].r_wire += node.miv.resistance;
            models[id.0 as usize].c_wire += node.miv.capacitance;
        }
    }
    let _ = estimate_models; // (shared import with the main flow)

    let report = analyze(&netlist, &lib, &models, &TimingConfig::new(clock_ps));
    let power = analyze_power(&netlist, &lib, &models, &PowerConfig::new(clock_ps));
    GmiResult {
        footprint_um2: placement.footprint_um2(),
        wirelength_um: routed.total_wirelength_um(),
        miv_nets: part.cut_nets,
        wns_ps: report.wns,
        total_power_mw: power.total_mw(),
    }
}

/// Extension experiment: 2D vs G-MI vs T-MI on AES and LDPC.
pub fn gmi_comparison(scale: BenchScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension - integration granularity: 2D vs gate-level (G-MI) vs transistor-level (T-MI)\n\
         design      footprint(um2)  WL(m)     power(mW)  MIV nets"
    );
    for bench in GMI_BENCHES {
        let cfg = FlowConfig::new(NodeId::N45).scale(scale);
        let two_d = Flow::new(bench, DesignStyle::TwoD, cfg.clone()).run();
        let tmi = Flow::new(bench, DesignStyle::Tmi, cfg.clone()).run();
        let gmi = run_gmi(bench, &cfg);
        let _ = writeln!(
            out,
            "{:5}-2D   {:13.0} {:9.3} {:10.2}        -",
            bench.name(),
            two_d.footprint_um2,
            two_d.wirelength_m(),
            two_d.total_power_mw()
        );
        let _ = writeln!(
            out,
            "{:5}-GMI  {:13.0} {:9.3} {:10.2} {:8}   (wns {:+.0} ps, pre-optimization estimate)",
            bench.name(),
            gmi.footprint_um2,
            gmi.wirelength_um * 1e-6,
            gmi.total_power_mw,
            gmi.miv_nets,
            gmi.wns_ps
        );
        let _ = writeln!(
            out,
            "{:5}-TMI  {:13.0} {:9.3} {:10.2}   in-cell",
            bench.name(),
            tmi.footprint_um2,
            tmi.wirelength_m(),
            tmi.total_power_mw()
        );
    }
    out.push_str(
        "note: the G-MI rows are synthesized + partitioned + placed + routed but not\n\
         run through the iso-performance optimization loop, so their power reads\n\
         optimistic; compare footprint/wirelength/MIV structure, not closed power.\n\
         literature context ([2], [8]): gate-level partitioning recovers part of the\n\
         footprint benefit but fewer of the wirelength gains than T-MI\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (CellLibrary, Netlist) {
        let node = m3d_tech::TechNode::n45();
        let lib = CellLibrary::build(&node, DesignStyle::TwoD);
        let n = Benchmark::Aes.generate(&lib, BenchScale::Small);
        (lib, n)
    }

    #[test]
    fn fm_respects_balance_and_reduces_cut() {
        let (lib, n) = small();
        let initial_cut = {
            // even/odd start
            let side: Vec<u8> = (0..n.instance_count()).map(|i| (i % 2) as u8).collect();
            let mut cut = 0;
            for id in n.net_ids() {
                if Some(id) == n.clock {
                    continue;
                }
                let net = n.net(id);
                let mut tiers: Vec<u8> =
                    net.sinks.iter().map(|s| side[s.inst.0 as usize]).collect();
                if let NetDriver::Cell { inst, .. } = net.driver {
                    tiers.push(side[inst.0 as usize]);
                }
                if tiers.windows(2).any(|w| w[0] != w[1]) {
                    cut += 1;
                }
            }
            cut
        };
        let p = fm_bipartition(&n, &lib, 3, 0.1);
        assert!(
            (0.4..=0.6).contains(&p.balance),
            "balance {} outside tolerance",
            p.balance
        );
        assert!(
            p.cut_nets < initial_cut,
            "FM should improve on the even/odd start ({} !< {})",
            p.cut_nets,
            initial_cut
        );
        assert_eq!(p.assignment.len(), n.instance_count());
    }

    #[test]
    fn gmi_footprint_sits_between_2d_and_halved() {
        let cfg = FlowConfig::new(NodeId::N45).scale(BenchScale::Small);
        let two_d = Flow::new(Benchmark::Aes, DesignStyle::TwoD, cfg.clone()).run();
        let gmi = run_gmi(Benchmark::Aes, &cfg);
        let ratio = gmi.footprint_um2 / two_d.footprint_um2;
        assert!(
            (0.3..0.75).contains(&ratio),
            "G-MI footprint ratio {ratio} (expect ~0.5)"
        );
        assert!(gmi.miv_nets > 0, "some nets must cross tiers");
        assert!(gmi.total_power_mw > 0.0);
    }
}
