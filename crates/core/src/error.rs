//! The workspace-wide error taxonomy for the sign-off flow.
//!
//! Every stage entry point ([`m3d_synth::try_synthesize`],
//! [`m3d_place::Placer::try_place`], [`m3d_route::Router::try_route`],
//! [`m3d_sta::try_analyze`], [`m3d_power::try_analyze_power`],
//! [`m3d_extract::try_extract_net`], the SPICE transient and library
//! construction) reports a typed, stage-specific error; [`FlowError`]
//! unifies them so `Flow::try_run` and the supervisor can report *which*
//! stage failed and *why* without a panic.

use m3d_cells::LibraryError;
use m3d_extract::ExtractError;
use m3d_place::PlaceError;
use m3d_power::PowerError;
use m3d_route::RouteError;
use m3d_spice::SpiceError;
use m3d_sta::StaError;
use m3d_synth::SynthError;

/// The stages of the sign-off pipeline, in execution order (paper Fig. 1).
///
/// Used to attribute failures, to key fault injection, and to label the
/// supervisor's checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowStage {
    /// Library characterization and preparation.
    Library,
    /// WLM-guided synthesis (including the preliminary WLM placement).
    Synthesis,
    /// Global placement plus placed load-based sizing.
    Placement,
    /// Pre-route accept/reject optimization passes.
    PreRouteOpt,
    /// Global routing plus extracted load-based sizing.
    Routing,
    /// Post-route optimization and power recovery.
    PostRouteOpt,
    /// Final route, extraction, timing and power sign-off.
    SignOff,
}

impl FlowStage {
    /// All stages in pipeline order.
    pub const ALL: [FlowStage; 7] = [
        FlowStage::Library,
        FlowStage::Synthesis,
        FlowStage::Placement,
        FlowStage::PreRouteOpt,
        FlowStage::Routing,
        FlowStage::PostRouteOpt,
        FlowStage::SignOff,
    ];

    /// Dense index (fault-injection counters, checkpoint tables).
    pub fn index(self) -> usize {
        match self {
            FlowStage::Library => 0,
            FlowStage::Synthesis => 1,
            FlowStage::Placement => 2,
            FlowStage::PreRouteOpt => 3,
            FlowStage::Routing => 4,
            FlowStage::PostRouteOpt => 5,
            FlowStage::SignOff => 6,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::Library => "library",
            FlowStage::Synthesis => "synthesis",
            FlowStage::Placement => "placement",
            FlowStage::PreRouteOpt => "pre-route optimization",
            FlowStage::Routing => "routing",
            FlowStage::PostRouteOpt => "post-route optimization",
            FlowStage::SignOff => "sign-off",
        }
    }

    /// Stable short key — the name the stage graph, fault plans and
    /// checkpoint tables address a stage by (`"route"`, `"signoff"`, …).
    pub fn key(self) -> &'static str {
        match self {
            FlowStage::Library => "library",
            FlowStage::Synthesis => "synth",
            FlowStage::Placement => "place",
            FlowStage::PreRouteOpt => "preroute",
            FlowStage::Routing => "route",
            FlowStage::PostRouteOpt => "postroute",
            FlowStage::SignOff => "signoff",
        }
    }

    /// Resolves a stage from its short key or display name.
    pub fn from_name(name: &str) -> Option<FlowStage> {
        FlowStage::ALL
            .iter()
            .copied()
            .find(|s| s.key() == name || s.name() == name)
    }
}

impl std::fmt::Display for FlowStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A rejected [`crate::FlowConfig`] knob.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `clock_ps` override non-finite or non-positive.
    BadClock(f64),
    /// `utilization` override outside `(0, 1]`.
    BadUtilization(f64),
    /// `pin_cap_scale` non-finite or non-positive.
    BadPinCapScale(f64),
    /// `alpha_ff` outside `[0, 1]`.
    BadAlphaFf(f64),
    /// `place_iterations == 0` — the placer would emit garbage positions.
    ZeroPlaceIterations,
    /// `clock_scale` negative or non-finite (`0.0` selects the
    /// per-benchmark calibration and is valid).
    BadClockScale(f64),
    /// `node_id` names no PDK in the registry, so no stage could build
    /// a library or resolve design rules for it.
    UnknownNode {
        /// The unresolvable node name.
        node: String,
        /// Names of the registered PDKs.
        known: Vec<String>,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::BadClock(c) => {
                write!(f, "clock_ps must be a positive finite period, got {c}")
            }
            ConfigError::BadUtilization(u) => {
                write!(f, "utilization must be in (0, 1], got {u}")
            }
            ConfigError::BadPinCapScale(s) => {
                write!(f, "pin_cap_scale must be positive, got {s}")
            }
            ConfigError::BadAlphaFf(a) => {
                write!(f, "alpha_ff must be in [0, 1], got {a}")
            }
            ConfigError::ZeroPlaceIterations => {
                write!(f, "place_iterations must be at least 1")
            }
            ConfigError::BadClockScale(s) => write!(
                f,
                "clock_scale must be 0 (auto-calibrate) or a positive factor, got {s}"
            ),
            ConfigError::UnknownNode { node, known } => write!(
                f,
                "node '{node}' names no registered PDK (registered: {})",
                known.join(", ")
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Unified failure type for the full flow: which stage failed, and the
/// stage's own typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Rejected configuration (pre-flight, before any stage runs).
    Config(ConfigError),
    /// Library characterization failure.
    Library(LibraryError),
    /// Synthesis failure.
    Synth(SynthError),
    /// Placement failure.
    Place(PlaceError),
    /// Routing failure.
    Route(RouteError),
    /// Timing-analysis failure.
    Sta(StaError),
    /// Power-analysis failure.
    Power(PowerError),
    /// Parasitic-extraction failure.
    Extract(ExtractError),
    /// SPICE characterization failure.
    Spice(SpiceError),
    /// A stage asked the artifact store for something no earlier stage
    /// produced — a stage-sequencing bug in the driver, not a data error.
    MissingArtifact {
        /// The artifact that was requested (`"netlist"`, `"placement"`, …).
        artifact: &'static str,
        /// The stage that needed it.
        stage: FlowStage,
    },
    /// A deterministic fault injected by the test harness.
    Injected {
        /// Stage the fault was planted in.
        stage: FlowStage,
        /// Human-readable fault description.
        detail: String,
    },
    /// The flow completed but sign-off timing is not closed.
    TimingNotClosed {
        /// Worst negative slack at sign-off, ps.
        wns_ps: f64,
        /// Clock period the run targeted, ps.
        clock_ps: f64,
    },
    /// A stage body panicked; the supervisor caught the unwind and feeds
    /// the failure into the normal retry/degradation ladder.
    StagePanicked {
        /// Stage whose body unwound.
        stage: FlowStage,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// A stage overran its wall-clock budget and was abandoned by the
    /// watchdog (the wedged worker thread is detached; its eventual
    /// result, if any, is discarded).
    DeadlineExceeded {
        /// Stage that overran.
        stage: FlowStage,
        /// The budget that was exceeded, milliseconds.
        budget_ms: u64,
    },
    /// A durable checkpoint file failed its integrity check (bad magic,
    /// truncation, or content-hash mismatch). The file is quarantined
    /// and resume falls back to the previous checkpoint, re-running the
    /// affected stage instead of crashing.
    CorruptCheckpoint {
        /// Path of the quarantined (or unreadable) file.
        path: String,
        /// What failed to verify.
        detail: String,
    },
    /// The process died at a stage entry (chaos-harness kill): nothing
    /// was recorded for the stage and no checkpoint was written, exactly
    /// like a SIGKILL between two stage completions.
    Interrupted {
        /// Stage whose entry the kill landed on.
        stage: FlowStage,
    },
    /// The run was cancelled cooperatively (a governor's cancel, or a
    /// run/point deadline observed through the [`crate::CancelToken`]
    /// chain). Not retried: the supervisor unwinds immediately and the
    /// executor maps it to a typed [`crate::PointOutcome`].
    Cancelled {
        /// The stage the cancellation was observed in (or at entry to).
        stage: FlowStage,
    },
    /// An error restored from a checkpointed attempt log. The typed
    /// original lived in the crashed process; only its rendering
    /// survives the round-trip.
    Restored {
        /// Stage the original error was attributed to, when recorded.
        stage: Option<FlowStage>,
        /// The original error's `Display` rendering.
        message: String,
    },
}

impl FlowError {
    /// Shorthand for [`FlowError::MissingArtifact`].
    pub(crate) fn missing(artifact: &'static str, stage: FlowStage) -> FlowError {
        FlowError::MissingArtifact { artifact, stage }
    }

    /// The stage this error is attributed to, when unambiguous from the
    /// error itself. `Config` pre-dates all stages and returns `None`.
    pub fn stage(&self) -> Option<FlowStage> {
        match self {
            FlowError::Config(_) => None,
            FlowError::Library(_) => Some(FlowStage::Library),
            FlowError::Synth(_) => Some(FlowStage::Synthesis),
            FlowError::Place(_) => Some(FlowStage::Placement),
            FlowError::Route(_) => Some(FlowStage::Routing),
            // STA/power/extraction/SPICE run inside several stages; the
            // supervisor's attempt records carry the precise stage.
            FlowError::Sta(_)
            | FlowError::Power(_)
            | FlowError::Extract(_)
            | FlowError::Spice(_) => None,
            FlowError::MissingArtifact { stage, .. } => Some(*stage),
            FlowError::Injected { stage, .. } => Some(*stage),
            FlowError::TimingNotClosed { .. } => Some(FlowStage::SignOff),
            FlowError::StagePanicked { stage, .. } => Some(*stage),
            FlowError::DeadlineExceeded { stage, .. } => Some(*stage),
            // A checkpoint is stage-agnostic on disk; the resume path
            // reports which stage re-runs through the attempt records.
            FlowError::CorruptCheckpoint { .. } => None,
            FlowError::Interrupted { stage } => Some(*stage),
            FlowError::Cancelled { stage } => Some(*stage),
            FlowError::Restored { stage, .. } => *stage,
        }
    }
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Config(e) => write!(f, "invalid flow config: {e}"),
            FlowError::Library(e) => write!(f, "library stage: {e}"),
            FlowError::Synth(e) => write!(f, "synthesis stage: {e}"),
            FlowError::Place(e) => write!(f, "placement stage: {e}"),
            FlowError::Route(e) => write!(f, "routing stage: {e}"),
            FlowError::Sta(e) => write!(f, "timing analysis: {e}"),
            FlowError::Power(e) => write!(f, "power analysis: {e}"),
            FlowError::Extract(e) => write!(f, "parasitic extraction: {e}"),
            FlowError::Spice(e) => write!(f, "spice characterization: {e}"),
            FlowError::MissingArtifact { artifact, stage } => write!(
                f,
                "stage {stage} needs artifact '{artifact}' that no earlier stage produced"
            ),
            FlowError::Injected { stage, detail } => {
                write!(f, "injected fault in {stage}: {detail}")
            }
            FlowError::TimingNotClosed { wns_ps, clock_ps } => write!(
                f,
                "timing not closed at sign-off: WNS {wns_ps:.1} ps against a {clock_ps:.1} ps clock"
            ),
            FlowError::StagePanicked { stage, payload } => {
                write!(f, "stage {stage} panicked: {payload}")
            }
            FlowError::DeadlineExceeded { stage, budget_ms } => {
                write!(f, "stage {stage} exceeded its {budget_ms} ms deadline")
            }
            FlowError::CorruptCheckpoint { path, detail } => {
                write!(f, "corrupt checkpoint '{path}': {detail}")
            }
            FlowError::Interrupted { stage } => {
                write!(f, "run interrupted at entry to stage {stage}")
            }
            FlowError::Cancelled { stage } => {
                write!(f, "run cancelled at stage {stage}")
            }
            FlowError::Restored { stage, message } => match stage {
                Some(s) => write!(f, "restored from checkpoint (stage {s}): {message}"),
                None => write!(f, "restored from checkpoint: {message}"),
            },
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Config(e) => Some(e),
            FlowError::Library(e) => Some(e),
            FlowError::Synth(e) => Some(e),
            FlowError::Place(e) => Some(e),
            FlowError::Route(e) => Some(e),
            FlowError::Sta(e) => Some(e),
            FlowError::Power(e) => Some(e),
            FlowError::Extract(e) => Some(e),
            FlowError::Spice(e) => Some(e),
            FlowError::MissingArtifact { .. }
            | FlowError::Injected { .. }
            | FlowError::TimingNotClosed { .. }
            | FlowError::StagePanicked { .. }
            | FlowError::DeadlineExceeded { .. }
            | FlowError::CorruptCheckpoint { .. }
            | FlowError::Interrupted { .. }
            | FlowError::Cancelled { .. }
            | FlowError::Restored { .. } => None,
        }
    }
}

macro_rules! from_stage_error {
    ($($src:ty => $variant:ident),* $(,)?) => {
        $(impl From<$src> for FlowError {
            fn from(e: $src) -> Self {
                FlowError::$variant(e)
            }
        })*
    };
}

from_stage_error!(
    ConfigError => Config,
    LibraryError => Library,
    SynthError => Synth,
    PlaceError => Place,
    RouteError => Route,
    StaError => Sta,
    PowerError => Power,
    ExtractError => Extract,
    SpiceError => Spice,
);

/// Why the persistent artifact store degraded to its in-memory tier.
///
/// Store failures are deliberately *not* [`FlowError`]s: the store's
/// contract is that no disk-tier failure ever fails a flow — any I/O
/// error flips the store into in-memory-only operation instead
/// (`crate::store`). This type classifies the failure once, pairing a
/// stable low-cardinality `reason` key (the `store_degraded` trace
/// event's payload) with the full detail for diagnostics on stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreFailure {
    /// Stable failure class: `"permission_denied"`, `"read_only"`,
    /// `"storage_full"`, `"injected"` or `"io_error"`.
    pub reason: &'static str,
    /// Free-form rendering of the underlying failure.
    pub detail: String,
}

impl StoreFailure {
    /// Classifies an I/O error from store operation `op`.
    pub fn io(op: &'static str, err: &std::io::Error) -> Self {
        let reason = match err.kind() {
            std::io::ErrorKind::PermissionDenied => "permission_denied",
            std::io::ErrorKind::ReadOnlyFilesystem => "read_only",
            std::io::ErrorKind::StorageFull | std::io::ErrorKind::QuotaExceeded => "storage_full",
            _ => "io_error",
        };
        StoreFailure {
            reason,
            detail: format!("{op}: {err}"),
        }
    }

    /// A fault planted by the chaos harness
    /// (`crate::faultinject::StoreFaultKind::StoreDirUnwritable`).
    pub fn injected(detail: impl Into<String>) -> Self {
        StoreFailure {
            reason: "injected",
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for StoreFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store degraded ({}): {}", self.reason, self.detail)
    }
}

impl std::error::Error for StoreFailure {}
