//! Deterministic fault injection for the flow supervisor.
//!
//! A [`FaultPlan`] lists faults keyed by `(stage, invocation)`: the
//! injector counts how many times each stage has been entered and fails
//! the matching invocation with [`FlowError::Injected`]. Because the
//! flow itself is deterministic, a plan makes an entire
//! retry/degradation scenario reproducible — "placement fails once, then
//! recovers" is `FaultPlan::new().fail_stage("place", 1)`.
//!
//! Stages are addressed by the stage graph's names (`"route"`,
//! `"signoff"`, … — see [`FlowStage::key`]) via
//! [`FaultPlan::fail_stage`] / [`FaultPlan::always_stage`]; the
//! enum-keyed [`FaultPlan::fail_on`] / [`FaultPlan::always`] remain for
//! callers that already hold a [`FlowStage`].

use crate::error::{FlowError, FlowStage};

/// One planned fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// Stage to fail.
    pub stage: FlowStage,
    /// Which entry into the stage fails, 1-based. `None` fails every
    /// entry (a persistent, unrecoverable fault).
    pub on_invocation: Option<u32>,
    /// Free-form description carried into the error.
    pub detail: String,
}

/// A set of planned faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fails `stage` on its `invocation`-th entry (1-based); other
    /// entries run normally.
    pub fn fail_on(mut self, stage: FlowStage, invocation: u32) -> Self {
        self.faults.push(PlannedFault {
            stage,
            on_invocation: Some(invocation.max(1)),
            detail: format!("planned fault on invocation {}", invocation.max(1)),
        });
        self
    }

    /// Fails `stage` on every entry — an unrecoverable fault.
    pub fn always(mut self, stage: FlowStage) -> Self {
        self.faults.push(PlannedFault {
            stage,
            on_invocation: None,
            detail: "persistent planned fault".to_string(),
        });
        self
    }

    /// Fails the stage named `stage` (stage-graph short name or display
    /// name, e.g. `"route"`) on its `invocation`-th entry, 1-based.
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to — a typo in a
    /// test plan, best caught loudly.
    pub fn fail_stage(self, stage: &str, invocation: u32) -> Self {
        self.fail_on(resolve(stage), invocation)
    }

    /// Fails the stage named `stage` on every entry — an unrecoverable
    /// fault.
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to.
    pub fn always_stage(self, stage: &str) -> Self {
        self.always(resolve(stage))
    }

    /// True when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Resolves a stage name, panicking on unknown names (test-harness API).
fn resolve(name: &str) -> FlowStage {
    FlowStage::from_name(name).unwrap_or_else(|| panic!("no flow stage is named '{name}'"))
}

/// Executes a [`FaultPlan`]: counts stage entries and reports the error
/// to inject, if any.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    counts: [u32; FlowStage::ALL.len()],
}

impl FaultInjector {
    /// An injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            counts: [0; FlowStage::ALL.len()],
        }
    }

    /// Records one entry into `stage` and returns the fault to inject
    /// for this invocation, if the plan has one.
    pub fn tick(&mut self, stage: FlowStage) -> Option<FlowError> {
        self.counts[stage.index()] += 1;
        let n = self.counts[stage.index()];
        self.plan
            .faults
            .iter()
            .find(|f| f.stage == stage && f.on_invocation.is_none_or(|at| at == n))
            .map(|f| FlowError::Injected {
                stage,
                detail: f.detail.clone(),
            })
    }

    /// How many times `stage` has been entered so far.
    pub fn invocations(&self, stage: FlowStage) -> u32 {
        self.counts[stage.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fails_exactly_the_planned_invocation() {
        let mut inj = FaultInjector::new(FaultPlan::new().fail_on(FlowStage::Routing, 2));
        assert!(inj.tick(FlowStage::Routing).is_none());
        let e = inj.tick(FlowStage::Routing).expect("second entry fails");
        assert_eq!(e.stage(), Some(FlowStage::Routing));
        assert!(inj.tick(FlowStage::Routing).is_none());
        // Other stages are unaffected.
        assert!(inj.tick(FlowStage::Placement).is_none());
    }

    #[test]
    fn named_plans_resolve_stage_graph_names() {
        let by_name = FaultPlan::new()
            .fail_stage("route", 2)
            .always_stage("signoff");
        let by_enum = FaultPlan::new()
            .fail_on(FlowStage::Routing, 2)
            .always(FlowStage::SignOff);
        assert_eq!(by_name, by_enum);
        // Display names resolve too.
        assert_eq!(
            FaultPlan::new().fail_stage("post-route optimization", 1),
            FaultPlan::new().fail_on(FlowStage::PostRouteOpt, 1)
        );
    }

    #[test]
    #[should_panic(expected = "no flow stage is named")]
    fn unknown_stage_name_panics() {
        let _ = FaultPlan::new().fail_stage("not-a-stage", 1);
    }

    #[test]
    fn persistent_fault_fails_every_entry() {
        let mut inj = FaultInjector::new(FaultPlan::new().always(FlowStage::SignOff));
        for _ in 0..4 {
            assert!(inj.tick(FlowStage::SignOff).is_some());
        }
        assert_eq!(inj.invocations(FlowStage::SignOff), 4);
    }
}
