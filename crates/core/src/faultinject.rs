//! Deterministic fault injection for the flow supervisor — the chaos
//! half of the crash-only flow engine.
//!
//! A [`FaultPlan`] lists faults keyed by `(stage, invocation)`: the
//! injector counts how many times each stage has been entered and fires
//! the matching fault on that entry. Because the flow itself is
//! deterministic, a plan makes an entire retry/degradation/recovery
//! scenario reproducible — "placement fails once, then recovers" is
//! `FaultPlan::new().fail_stage("place", 1)`.
//!
//! Beyond the original typed-error faults, a plan can now inject every
//! failure mode the containment machinery guards against
//! ([`FaultKind`]):
//!
//! * **`Error`** — the stage returns [`FlowError::Injected`] (the
//!   original behavior);
//! * **`Panic`** — the stage body panics; the supervisor's
//!   `catch_unwind` containment must convert it to
//!   [`FlowError::StagePanicked`];
//! * **`Delay`** — the stage sleeps before running; long delays drive
//!   the watchdog's [`FlowError::DeadlineExceeded`] path (a hang is a
//!   delay longer than the stage budget);
//! * **`StuckStage`** — the stage wedges forever but listens for
//!   cooperative cancellation; the governor's watchdog must win without
//!   abandoning a thread;
//! * **`SlowStage`** — the stage stalls for the duration (cancellably),
//!   then runs normally — a degraded-but-alive worker;
//! * **`CorruptCheckpoint`** — the stage runs normally, then the newest
//!   durable checkpoint file is bit-flipped, exercising hash-mismatch
//!   quarantine on the next resume;
//! * **`Kill`** — the run stops dead at the stage entry, with no attempt
//!   record and no checkpoint write — a SIGKILL between two stage
//!   completions, resumable via `FlowSupervisor::resume_from`.
//!
//! Stages are addressed by the stage graph's names (`"route"`,
//! `"signoff"`, … — see [`FlowStage::key`]) via [`FaultPlan::fail_stage`]
//! and friends; both short and display names resolve.

use std::time::Duration;

use crate::error::{FlowError, FlowStage};

/// What an injected fault does to the stage it fires on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The stage reports [`FlowError::Injected`] without running.
    Error,
    /// The stage body panics (contained by the supervisor).
    Panic,
    /// The stage sleeps for the duration, then runs normally. A delay
    /// longer than the stage's deadline budget models a hang.
    Delay(Duration),
    /// The stage runs normally; afterwards the newest checkpoint file is
    /// corrupted in place (detected by hash mismatch on resume).
    CorruptCheckpoint,
    /// The run stops at the stage entry as if the process died there.
    Kill,
    /// The stage wedges forever, but cooperatively: it parks on the
    /// installed cancel token and returns a cancelled verdict once the
    /// watchdog fires. Proves cancellation wins against a stuck worker
    /// without leaking a thread.
    StuckStage,
    /// The stage stalls (cancellably) for the duration, then runs
    /// normally — a slow-but-alive worker that a generous budget
    /// tolerates and a tight one cancels.
    SlowStage(Duration),
}

/// One planned fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// Stage to fire on.
    pub stage: FlowStage,
    /// Which entry into the stage fires, 1-based. `None` fires on every
    /// entry (a persistent, unrecoverable fault).
    pub on_invocation: Option<u32>,
    /// What the fault does.
    pub kind: FaultKind,
    /// Free-form description carried into the error.
    pub detail: String,
}

/// A set of planned faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    fn push(mut self, stage: FlowStage, on_invocation: Option<u32>, kind: FaultKind) -> Self {
        let detail = match (&kind, on_invocation) {
            (FaultKind::Error, Some(n)) => format!("planned fault on invocation {n}"),
            (FaultKind::Error, None) => "persistent planned fault".to_string(),
            (kind, Some(n)) => format!("planned {kind:?} fault on invocation {n}"),
            (kind, None) => format!("persistent planned {kind:?} fault"),
        };
        self.faults.push(PlannedFault {
            stage,
            on_invocation,
            kind,
            detail,
        });
        self
    }

    /// Fails the stage named `stage` (stage-graph short name or display
    /// name, e.g. `"route"`) on its `invocation`-th entry, 1-based.
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to — a typo in a
    /// test plan, best caught loudly.
    pub fn fail_stage(self, stage: &str, invocation: u32) -> Self {
        self.push(resolve(stage), Some(invocation.max(1)), FaultKind::Error)
    }

    /// Fails the stage named `stage` on every entry — an unrecoverable
    /// fault.
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to.
    pub fn always_stage(self, stage: &str) -> Self {
        self.push(resolve(stage), None, FaultKind::Error)
    }

    /// Panics inside the stage named `stage` on its `invocation`-th
    /// entry — the containment (`catch_unwind`) test vector.
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to.
    pub fn panic_stage(self, stage: &str, invocation: u32) -> Self {
        self.push(resolve(stage), Some(invocation.max(1)), FaultKind::Panic)
    }

    /// Delays the stage named `stage` by `delay` on its `invocation`-th
    /// entry before running it normally. A delay longer than the stage's
    /// deadline budget models a wedged stage (the watchdog abandons it).
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to.
    pub fn delay_stage(self, stage: &str, invocation: u32, delay: Duration) -> Self {
        self.push(
            resolve(stage),
            Some(invocation.max(1)),
            FaultKind::Delay(delay),
        )
    }

    /// Corrupts the newest durable checkpoint file right after the
    /// `invocation`-th entry of `stage` completes — the hash-mismatch
    /// quarantine test vector.
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to.
    pub fn corrupt_checkpoint_after(self, stage: &str, invocation: u32) -> Self {
        self.push(
            resolve(stage),
            Some(invocation.max(1)),
            FaultKind::CorruptCheckpoint,
        )
    }

    /// Wedges the stage named `stage` forever on its `invocation`-th
    /// entry: the worker parks on the installed cancel token and only
    /// returns once cancelled. Under a governed run the watchdog's
    /// cooperative cancel wins cleanly (no abandoned thread); without a
    /// governor the stage hangs, which is the point — don't use it
    /// ungoverned.
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to.
    pub fn stuck_stage(self, stage: &str, invocation: u32) -> Self {
        self.push(
            resolve(stage),
            Some(invocation.max(1)),
            FaultKind::StuckStage,
        )
    }

    /// Stalls the stage named `stage` by `delay` (cancellably) on its
    /// `invocation`-th entry, then runs it normally. Unlike
    /// [`FaultPlan::delay_stage`], the stall wakes promptly on
    /// cancellation instead of sleeping through it.
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to.
    pub fn slow_stage(self, stage: &str, invocation: u32, delay: Duration) -> Self {
        self.push(
            resolve(stage),
            Some(invocation.max(1)),
            FaultKind::SlowStage(delay),
        )
    }

    /// Kills the run at the `invocation`-th entry of `stage`: the
    /// supervisor returns immediately with `FlowError::Interrupted`,
    /// no attempt is recorded and no checkpoint is written — exactly the
    /// on-disk state a SIGKILL at that moment would leave.
    ///
    /// # Panics
    ///
    /// Panics on a name no stage in the graph answers to.
    pub fn kill_at(self, stage: &str, invocation: u32) -> Self {
        self.push(resolve(stage), Some(invocation.max(1)), FaultKind::Kill)
    }

    /// True when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }
}

/// Resolves a stage name, panicking on unknown names (test-harness API).
fn resolve(name: &str) -> FlowStage {
    FlowStage::from_name(name).unwrap_or_else(|| panic!("no flow stage is named '{name}'"))
}

/// A fault the injector decided to fire on the current stage entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Stage the fault fires in.
    pub stage: FlowStage,
    /// What the fault does.
    pub kind: FaultKind,
    /// Human-readable fault description.
    pub detail: String,
}

impl InjectedFault {
    /// The typed error an `Error`-kind fault injects.
    pub fn error(&self) -> FlowError {
        FlowError::Injected {
            stage: self.stage,
            detail: self.detail.clone(),
        }
    }
}

/// Executes a [`FaultPlan`]: counts stage entries and reports the fault
/// to fire on this invocation, if the plan has one.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    counts: [u32; FlowStage::ALL.len()],
}

impl FaultInjector {
    /// An injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            counts: [0; FlowStage::ALL.len()],
        }
    }

    /// Records one entry into `stage` and returns the fault to fire for
    /// this invocation, if the plan has one. When several faults match
    /// the same entry, the first planned wins.
    pub fn tick(&mut self, stage: FlowStage) -> Option<InjectedFault> {
        self.counts[stage.index()] += 1;
        let n = self.counts[stage.index()];
        self.plan
            .faults
            .iter()
            .find(|f| f.stage == stage && f.on_invocation.is_none_or(|at| at == n))
            .map(|f| InjectedFault {
                stage,
                kind: f.kind.clone(),
                detail: f.detail.clone(),
            })
    }

    /// How many times `stage` has been entered so far.
    pub fn invocations(&self, stage: FlowStage) -> u32 {
        self.counts[stage.index()]
    }
}

// ---------------------------------------------------------------------
// Store faults
// ---------------------------------------------------------------------

/// What an injected fault does to the persistent artifact store
/// ([`crate::store::DiskStore`]). Store faults are keyed by *publish
/// count* rather than flow stage: the store is below the stage graph,
/// and its failure modes (torn writes, bit rot, lost permissions) strike
/// at I/O boundaries, not stage boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFaultKind {
    /// The publish is torn: the temp file is cut off mid-write and never
    /// renamed — exactly the on-disk state a kill -9 during a publish
    /// leaves. The entry must simply be absent (a later miss), never a
    /// corrupt hit, and the store must not degrade (a crash is not an
    /// I/O error).
    TornStoreWrite,
    /// The publish completes, then one payload byte of the final entry
    /// file is flipped in place — the verify-on-read quarantine vector.
    CorruptStoreEntry,
    /// The publish reports a permission failure, driving the
    /// graceful-degradation path (`store_degraded`, then in-memory-only
    /// operation).
    StoreDirUnwritable,
}

/// One planned store fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedStoreFault {
    /// Which publish fires the fault, 1-based. `None` fires on every
    /// publish.
    pub on_publish: Option<u32>,
    /// What the fault does.
    pub kind: StoreFaultKind,
}

/// A deterministic set of planned store faults, keyed by the store's
/// publish counter — the store-level counterpart of [`FaultPlan`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreFaultPlan {
    faults: Vec<PlannedStoreFault>,
}

impl StoreFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        StoreFaultPlan::default()
    }

    fn push(mut self, on_publish: Option<u32>, kind: StoreFaultKind) -> Self {
        self.faults.push(PlannedStoreFault { on_publish, kind });
        self
    }

    /// Tears the `publish`-th publish (1-based): temp file truncated,
    /// never renamed.
    pub fn torn_write_on(self, publish: u32) -> Self {
        self.push(Some(publish.max(1)), StoreFaultKind::TornStoreWrite)
    }

    /// Flips one byte of the entry written by the `publish`-th publish.
    pub fn corrupt_entry_on(self, publish: u32) -> Self {
        self.push(Some(publish.max(1)), StoreFaultKind::CorruptStoreEntry)
    }

    /// Fails the `publish`-th publish with a permission error.
    pub fn unwritable_on(self, publish: u32) -> Self {
        self.push(Some(publish.max(1)), StoreFaultKind::StoreDirUnwritable)
    }

    /// True when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[PlannedStoreFault] {
        &self.faults
    }

    /// The fault to fire on the `n`-th publish (1-based), if any. When
    /// several faults match, the first planned wins.
    pub fn on_publish(&self, n: u32) -> Option<StoreFaultKind> {
        self.faults
            .iter()
            .find(|f| f.on_publish.is_none_or(|at| at == n))
            .map(|f| f.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fails_exactly_the_planned_invocation() {
        let mut inj = FaultInjector::new(FaultPlan::new().fail_stage("route", 2));
        assert!(inj.tick(FlowStage::Routing).is_none());
        let f = inj.tick(FlowStage::Routing).expect("second entry fails");
        assert_eq!(f.stage, FlowStage::Routing);
        assert_eq!(f.kind, FaultKind::Error);
        assert_eq!(f.error().stage(), Some(FlowStage::Routing));
        assert!(inj.tick(FlowStage::Routing).is_none());
        // Other stages are unaffected.
        assert!(inj.tick(FlowStage::Placement).is_none());
    }

    #[test]
    fn display_names_resolve_like_short_names() {
        assert_eq!(
            FaultPlan::new().fail_stage("post-route optimization", 1),
            FaultPlan::new().fail_stage("postroute", 1)
        );
    }

    #[test]
    fn governor_kinds_carry_through_the_injector() {
        let mut inj = FaultInjector::new(FaultPlan::new().stuck_stage("route", 1).slow_stage(
            "place",
            2,
            Duration::from_millis(9),
        ));
        assert_eq!(
            inj.tick(FlowStage::Routing).map(|f| f.kind),
            Some(FaultKind::StuckStage)
        );
        assert!(inj.tick(FlowStage::Placement).is_none());
        assert_eq!(
            inj.tick(FlowStage::Placement).map(|f| f.kind),
            Some(FaultKind::SlowStage(Duration::from_millis(9)))
        );
    }

    #[test]
    fn chaos_kinds_carry_through_the_injector() {
        let mut inj = FaultInjector::new(
            FaultPlan::new()
                .panic_stage("place", 1)
                .delay_stage("route", 1, Duration::from_millis(7))
                .corrupt_checkpoint_after("postroute", 1)
                .kill_at("signoff", 1),
        );
        assert_eq!(
            inj.tick(FlowStage::Placement).map(|f| f.kind),
            Some(FaultKind::Panic)
        );
        assert_eq!(
            inj.tick(FlowStage::Routing).map(|f| f.kind),
            Some(FaultKind::Delay(Duration::from_millis(7)))
        );
        assert_eq!(
            inj.tick(FlowStage::PostRouteOpt).map(|f| f.kind),
            Some(FaultKind::CorruptCheckpoint)
        );
        assert_eq!(
            inj.tick(FlowStage::SignOff).map(|f| f.kind),
            Some(FaultKind::Kill)
        );
    }

    #[test]
    #[should_panic(expected = "no flow stage is named")]
    fn unknown_stage_name_panics() {
        let _ = FaultPlan::new().fail_stage("not-a-stage", 1);
    }

    #[test]
    fn persistent_fault_fails_every_entry() {
        let mut inj = FaultInjector::new(FaultPlan::new().always_stage("signoff"));
        for _ in 0..4 {
            assert!(inj.tick(FlowStage::SignOff).is_some());
        }
        assert_eq!(inj.invocations(FlowStage::SignOff), 4);
    }

    #[test]
    fn store_plan_fires_on_the_planned_publish_only() {
        let plan = StoreFaultPlan::new()
            .torn_write_on(2)
            .corrupt_entry_on(3)
            .unwritable_on(5);
        assert!(!plan.is_empty());
        assert_eq!(plan.faults().len(), 3);
        assert_eq!(plan.on_publish(1), None);
        assert_eq!(plan.on_publish(2), Some(StoreFaultKind::TornStoreWrite));
        assert_eq!(plan.on_publish(3), Some(StoreFaultKind::CorruptStoreEntry));
        assert_eq!(plan.on_publish(4), None);
        assert_eq!(plan.on_publish(5), Some(StoreFaultKind::StoreDirUnwritable));
        assert!(StoreFaultPlan::new().is_empty());
        assert_eq!(StoreFaultPlan::new().on_publish(1), None);
    }

    #[test]
    fn first_planned_store_fault_wins_on_collision() {
        let plan = StoreFaultPlan::new().corrupt_entry_on(1).torn_write_on(1);
        assert_eq!(plan.on_publish(1), Some(StoreFaultKind::CorruptStoreEntry));
    }
}
