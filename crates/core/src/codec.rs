//! The self-verifying binary codec shared by the durable layers.
//!
//! [`crate::checkpoint`] (supervisor snapshots) and [`crate::store`]
//! (the persistent artifact store) persist different payloads but share
//! one wire discipline: little-endian integers, `f64` as IEEE-754 bit
//! patterns (so round-trips are bit-exact, NaN payloads included),
//! length-prefixed strings, and tagged sections that carry their own
//! FNV-1a 64 content hash in addition to a whole-payload hash. This
//! module is that shared substrate — the append-only [`Enc`] writer,
//! the cursor-based [`Dec`] reader with typed [`DecodeError`] failure,
//! the enum codecs with stable on-disk discriminants, and the
//! [`write_section`]/[`read_section`] framing.
//!
//! Nothing here touches the filesystem: callers own magic bytes, file
//! layout and corruption policy (quarantine vs. typed error).

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId, StackKind};

use crate::error::FlowStage;

/// FNV-1a 64 content hash — small, dependency-free, and stable across
/// platforms; collision resistance is not a goal (corruption detection
/// is).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------
// Codec primitives
// ---------------------------------------------------------------------

/// Append-only encoder over a byte buffer.
#[derive(Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Bit-exact f64 (NaN payloads included).
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
    pub(crate) fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }
}

/// Cursor-based decoder with typed failure.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// A malformed durable payload: what failed to parse.
#[derive(Debug)]
pub(crate) struct DecodeError(pub(crate) String);

pub(crate) type DecResult<T> = Result<T, DecodeError>;

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn bool(&mut self) -> DecResult<bool> {
        Ok(self.u8()? != 0)
    }
    pub(crate) fn u32(&mut self) -> DecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    pub(crate) fn u64(&mut self) -> DecResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    pub(crate) fn i64(&mut self) -> DecResult<i64> {
        Ok(self.u64()? as i64)
    }
    pub(crate) fn usize(&mut self) -> DecResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError(format!("length {v} overflows usize")))
    }
    pub(crate) fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub(crate) fn str(&mut self) -> DecResult<String> {
        let n = self.usize()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| DecodeError(format!("invalid utf-8: {e}")))
    }
    pub(crate) fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> DecResult<T>,
    ) -> DecResult<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            t => Err(DecodeError(format!("bad Option tag {t}"))),
        }
    }

    pub(crate) fn finish(&self) -> DecResult<()> {
        if self.pos != self.buf.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes after decode",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Enum codecs (stable on-disk discriminants — do not reorder)
// ---------------------------------------------------------------------

pub(crate) fn enc_benchmark(e: &mut Enc, v: Benchmark) {
    e.u8(match v {
        Benchmark::Fpu => 0,
        Benchmark::Aes => 1,
        Benchmark::Ldpc => 2,
        Benchmark::Des => 3,
        Benchmark::M256 => 4,
    });
}

pub(crate) fn dec_benchmark(d: &mut Dec) -> DecResult<Benchmark> {
    Ok(match d.u8()? {
        0 => Benchmark::Fpu,
        1 => Benchmark::Aes,
        2 => Benchmark::Ldpc,
        3 => Benchmark::Des,
        4 => Benchmark::M256,
        t => return Err(DecodeError(format!("bad Benchmark tag {t}"))),
    })
}

pub(crate) fn enc_style(e: &mut Enc, v: DesignStyle) {
    e.u8(match v {
        DesignStyle::TwoD => 0,
        DesignStyle::Tmi => 1,
    });
}

pub(crate) fn dec_style(d: &mut Dec) -> DecResult<DesignStyle> {
    Ok(match d.u8()? {
        0 => DesignStyle::TwoD,
        1 => DesignStyle::Tmi,
        t => return Err(DecodeError(format!("bad DesignStyle tag {t}"))),
    })
}

pub(crate) fn enc_node(e: &mut Enc, v: NodeId) {
    // Nodes are identified by their registry name, not an enum tag, so
    // a plug-in PDK round-trips without touching the codec — and two
    // PDKs can never collide on a tag.
    e.str(v.label());
}

pub(crate) fn dec_node(d: &mut Dec) -> DecResult<NodeId> {
    // Interning never fails: an id for a since-unregistered PDK still
    // decodes, and the stored-key equality / `TechNode::try_for_id`
    // checks downstream turn it into a miss or a decode error.
    Ok(NodeId::intern(&d.str()?))
}

pub(crate) fn enc_scale(e: &mut Enc, v: BenchScale) {
    e.u8(match v {
        BenchScale::Paper => 0,
        BenchScale::Small => 1,
    });
}

pub(crate) fn dec_scale(d: &mut Dec) -> DecResult<BenchScale> {
    Ok(match d.u8()? {
        0 => BenchScale::Paper,
        1 => BenchScale::Small,
        t => return Err(DecodeError(format!("bad BenchScale tag {t}"))),
    })
}

pub(crate) fn enc_stack_kind(e: &mut Enc, v: StackKind) {
    e.u8(match v {
        StackKind::TwoD => 0,
        StackKind::Tmi => 1,
        StackKind::TmiPlusM => 2,
    });
}

pub(crate) fn dec_stack_kind(d: &mut Dec) -> DecResult<StackKind> {
    Ok(match d.u8()? {
        0 => StackKind::TwoD,
        1 => StackKind::Tmi,
        2 => StackKind::TmiPlusM,
        t => return Err(DecodeError(format!("bad StackKind tag {t}"))),
    })
}

pub(crate) fn enc_stage(e: &mut Enc, v: FlowStage) {
    e.u8(v.index() as u8);
}

pub(crate) fn dec_stage(d: &mut Dec) -> DecResult<FlowStage> {
    let t = d.u8()?;
    FlowStage::ALL
        .get(t as usize)
        .copied()
        .ok_or_else(|| DecodeError(format!("bad FlowStage tag {t}")))
}

// ---------------------------------------------------------------------
// Section framing
// ---------------------------------------------------------------------

/// Appends one tagged section: `tag (u8) body_len (u64 LE) body_hash
/// (u64 LE, FNV-1a 64) body`.
pub(crate) fn write_section(out: &mut Vec<u8>, tag: u8, body: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&content_hash(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// Reads the section that must come next, verifying its tag and content
/// hash.
pub(crate) fn read_section<'a>(d: &mut Dec<'a>, want_tag: u8) -> DecResult<&'a [u8]> {
    let tag = d.u8()?;
    if tag != want_tag {
        return Err(DecodeError(format!(
            "expected section {want_tag}, found {tag}"
        )));
    }
    let len = d.usize()?;
    let hash = d.u64()?;
    let body = d.take(len)?;
    let actual = content_hash(body);
    if actual != hash {
        return Err(DecodeError(format!(
            "section {want_tag} content hash mismatch: stored {hash:#018x}, computed {actual:#018x}"
        )));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors_are_stable() {
        // Offset basis for the empty input; one-byte avalanche differs.
        assert_eq!(content_hash(b""), 0xcbf29ce484222325);
        assert_ne!(content_hash(b"a"), content_hash(b"b"));
    }

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut e = Enc::default();
        e.u8(7);
        e.bool(true);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.usize(1usize << 40);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.str("héllo");
        e.opt(&Some(3u8), |e, v| e.u8(*v));
        e.opt(&None::<u8>, |e, v| e.u8(*v));
        let mut d = Dec::new(&e.buf);
        assert_eq!(d.u8().expect("u8"), 7);
        assert!(d.bool().expect("bool"));
        assert_eq!(d.u32().expect("u32"), 0xDEAD_BEEF);
        assert_eq!(d.u64().expect("u64"), u64::MAX);
        assert_eq!(d.i64().expect("i64"), -42);
        assert_eq!(d.usize().expect("usize"), 1usize << 40);
        assert_eq!(d.f64().expect("f64").to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().expect("f64").is_nan());
        assert_eq!(d.str().expect("str"), "héllo");
        assert_eq!(d.opt(|d| d.u8()).expect("opt"), Some(3));
        assert_eq!(d.opt(|d| d.u8()).expect("opt"), None);
        d.finish().expect("no trailing bytes");
    }

    #[test]
    fn section_detects_tag_and_hash_mismatch() {
        let mut payload = Vec::new();
        write_section(&mut payload, 3, b"body bytes");
        // Happy path.
        let mut d = Dec::new(&payload);
        assert_eq!(read_section(&mut d, 3).expect("reads"), b"body bytes");
        // Wrong tag wanted.
        let mut d = Dec::new(&payload);
        assert!(read_section(&mut d, 4).is_err());
        // One flipped body byte breaks the section hash.
        let mut bad = payload.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let mut d = Dec::new(&bad);
        assert!(read_section(&mut d, 3).is_err());
    }

    #[test]
    fn every_enum_discriminant_round_trips() {
        for b in [
            Benchmark::Fpu,
            Benchmark::Aes,
            Benchmark::Ldpc,
            Benchmark::Des,
            Benchmark::M256,
        ] {
            let mut e = Enc::default();
            enc_benchmark(&mut e, b);
            assert_eq!(dec_benchmark(&mut Dec::new(&e.buf)).expect("dec"), b);
        }
        for s in [DesignStyle::TwoD, DesignStyle::Tmi] {
            let mut e = Enc::default();
            enc_style(&mut e, s);
            assert_eq!(dec_style(&mut Dec::new(&e.buf)).expect("dec"), s);
        }
        for n in [NodeId::N45, NodeId::N7] {
            let mut e = Enc::default();
            enc_node(&mut e, n);
            assert_eq!(dec_node(&mut Dec::new(&e.buf)).expect("dec"), n);
        }
        for sc in [BenchScale::Paper, BenchScale::Small] {
            let mut e = Enc::default();
            enc_scale(&mut e, sc);
            assert_eq!(dec_scale(&mut Dec::new(&e.buf)).expect("dec"), sc);
        }
        for k in [StackKind::TwoD, StackKind::Tmi, StackKind::TmiPlusM] {
            let mut e = Enc::default();
            enc_stack_kind(&mut e, k);
            assert_eq!(dec_stack_kind(&mut Dec::new(&e.buf)).expect("dec"), k);
        }
        for st in FlowStage::ALL {
            let mut e = Enc::default();
            enc_stage(&mut e, st);
            assert_eq!(dec_stage(&mut Dec::new(&e.buf)).expect("dec"), st);
        }
        // Unknown discriminants are typed errors, not panics.
        assert!(dec_benchmark(&mut Dec::new(&[99])).is_err());
        assert!(dec_stage(&mut Dec::new(&[99])).is_err());
    }
}
