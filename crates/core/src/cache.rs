//! Content-keyed memoization of flow artifacts.
//!
//! The paper's study is one pipeline evaluated under ~20 configuration
//! sweeps, and most sweeps share whole sub-problems: every 45 nm 2D run
//! characterizes the same cell library, and several tables re-run the
//! identical (benchmark, style, config) flow the previous table already
//! signed off. [`ArtifactCache`] shares those artifacts:
//!
//! * **Cell libraries** are built once per [`LibraryKey`] — the
//!   projection of a [`FlowConfig`] onto the fields a library build
//!   actually consumes: `(node_id, style, lower_metal_rho,
//!   pin_cap_scale)`.
//! * **Completed [`FlowResult`]s** are shared per [`FlowKey`] — the
//!   projection of `(benchmark, style, FlowConfig)` onto the knobs the
//!   stage graph consumes, with unconsumed knobs canonicalized away so
//!   they cannot split the key (a 2D flow never reads `tmi_wlm`;
//!   `stack_kind: None` resolves to the style default; `clock_scale: 0`
//!   resolves to the per-benchmark calibration).
//!
//! Keys canonicalize `f64` knobs to their bit patterns, so a cache hit
//! requires bit-equal configuration — there is no tolerance matching,
//! and a hit therefore returns a bit-identical result (the flow itself
//! is deterministic; `tests/flow_cache.rs` asserts both properties).
//!
//! One process-wide cache ([`ArtifactCache::global`]) serves
//! [`crate::Flow::run`], every `experiments::*` driver and the
//! `paper_tables` binary; fresh instances (`ArtifactCache::default`)
//! isolate tests and benchmarks that must measure cold runs.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};

use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, MetalClass, NodeId, StackKind, TechNode};

use crate::error::{FlowError, FlowStage};
use crate::flow::{default_clock_scale_at, FlowConfig, FlowResult};
use crate::observe::{self, CacheKind, EventKind, Recorder};
use crate::sharded::Sharded;
use crate::store::DiskStore;

/// Cache key of one characterized cell library: every [`FlowConfig`]
/// field the library build consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibraryKey {
    pub(crate) node_id: NodeId,
    pub(crate) style: DesignStyle,
    pub(crate) lower_metal_rho: bool,
    pub(crate) pin_cap_scale_bits: u64,
}

impl LibraryKey {
    /// Builds the key from the consumed fields.
    pub fn new(
        node_id: NodeId,
        style: DesignStyle,
        lower_metal_rho: bool,
        pin_cap_scale: f64,
    ) -> Self {
        LibraryKey {
            node_id,
            style,
            lower_metal_rho,
            pin_cap_scale_bits: pin_cap_scale.to_bits(),
        }
    }
}

/// Cache key of one completed flow: the projection of
/// `(benchmark, style, FlowConfig)` onto the knobs the stage graph
/// consumes. Knobs a given flow never reads are canonicalized so they
/// cannot split the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    pub(crate) bench: Benchmark,
    pub(crate) style: DesignStyle,
    pub(crate) node_id: NodeId,
    pub(crate) bench_scale: BenchScale,
    /// Resolved: `stack_kind.unwrap_or(style.default_stack())`.
    pub(crate) stack_kind: StackKind,
    pub(crate) clock_ps_bits: Option<u64>,
    pub(crate) utilization_bits: Option<u64>,
    /// Canonicalized to `true` for 2D flows — only the T-MI synthesis
    /// path reads this switch (Table 15 "-n").
    pub(crate) tmi_wlm: bool,
    pub(crate) pin_cap_scale_bits: u64,
    pub(crate) lower_metal_rho: bool,
    pub(crate) alpha_ff_bits: u64,
    pub(crate) mb1_routing: bool,
    pub(crate) opt_passes: usize,
    pub(crate) place_iterations: usize,
    /// Resolved: `0.0` selects the per-benchmark calibration, so an
    /// explicit equal factor shares the entry.
    pub(crate) clock_scale_bits: u64,
}

impl FlowKey {
    /// Projects `(bench, style, config)` onto the consumed knobs.
    pub fn of(bench: Benchmark, style: DesignStyle, cfg: &FlowConfig) -> Self {
        let clock_scale = if cfg.clock_scale > 0.0 {
            cfg.clock_scale
        } else {
            default_clock_scale_at(bench, cfg.node_id)
        };
        FlowKey {
            bench,
            style,
            node_id: cfg.node_id,
            bench_scale: cfg.bench_scale,
            stack_kind: cfg.stack_kind.unwrap_or(style.default_stack()),
            clock_ps_bits: cfg.clock_ps.map(f64::to_bits),
            utilization_bits: cfg.utilization.map(f64::to_bits),
            tmi_wlm: cfg.tmi_wlm || style == DesignStyle::TwoD,
            pin_cap_scale_bits: cfg.pin_cap_scale.to_bits(),
            lower_metal_rho: cfg.lower_metal_rho,
            alpha_ff_bits: cfg.alpha_ff.to_bits(),
            mb1_routing: cfg.mb1_routing,
            opt_passes: cfg.opt_passes,
            place_iterations: cfg.place_iterations,
            clock_scale_bits: clock_scale.to_bits(),
        }
    }
}

/// A snapshot of the cache's hit/build/eviction counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cell libraries characterized from scratch.
    pub library_builds: u64,
    /// Library requests served from the cache.
    pub library_hits: u64,
    /// Cached libraries evicted by the LRU bound.
    pub library_evictions: u64,
    /// Completed flow results stored.
    pub flow_stores: u64,
    /// Flow lookups served from the cache.
    pub flow_hits: u64,
    /// Flow lookups that missed (and therefore ran the pipeline).
    pub flow_misses: u64,
    /// Cached flow results evicted by the LRU bound.
    pub flow_evictions: u64,
    /// Disk-tier reads served from a verified on-disk entry.
    pub disk_hits: u64,
    /// Disk-tier reads that found no usable entry (including entries
    /// that failed verification and were quarantined).
    pub disk_misses: u64,
    /// Artifacts published to the disk tier.
    pub disk_stores: u64,
    /// Disk entries evicted by the store's byte budget.
    pub disk_evictions: u64,
    /// Disk entries that failed verification and were quarantined.
    pub disk_quarantined: u64,
    /// 1 once the disk tier has degraded to a no-op, else 0.
    pub store_degraded: u64,
}

impl CacheStats {
    /// The change since an `earlier` snapshot: every counter reduced by
    /// its earlier value (saturating, so a `clear()` between snapshots
    /// reads as zero rather than wrapping). This is what per-phase
    /// reporting must use — the raw counters are cumulative over the
    /// process, so attributing them to the most recent phase (as
    /// `flow_bench` once did for its warm leg) misreports every phase
    /// after the first.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        // Full destructuring, not field access: adding a CacheStats
        // counter without extending this subtraction (and `Display`)
        // refuses to compile instead of silently dropping the counter.
        let CacheStats {
            library_builds,
            library_hits,
            library_evictions,
            flow_stores,
            flow_hits,
            flow_misses,
            flow_evictions,
            disk_hits,
            disk_misses,
            disk_stores,
            disk_evictions,
            disk_quarantined,
            store_degraded,
        } = *self;
        CacheStats {
            library_builds: library_builds.saturating_sub(earlier.library_builds),
            library_hits: library_hits.saturating_sub(earlier.library_hits),
            library_evictions: library_evictions.saturating_sub(earlier.library_evictions),
            flow_stores: flow_stores.saturating_sub(earlier.flow_stores),
            flow_hits: flow_hits.saturating_sub(earlier.flow_hits),
            flow_misses: flow_misses.saturating_sub(earlier.flow_misses),
            flow_evictions: flow_evictions.saturating_sub(earlier.flow_evictions),
            disk_hits: disk_hits.saturating_sub(earlier.disk_hits),
            disk_misses: disk_misses.saturating_sub(earlier.disk_misses),
            disk_stores: disk_stores.saturating_sub(earlier.disk_stores),
            disk_evictions: disk_evictions.saturating_sub(earlier.disk_evictions),
            disk_quarantined: disk_quarantined.saturating_sub(earlier.disk_quarantined),
            store_degraded: store_degraded.saturating_sub(earlier.store_degraded),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Every counter of the struct, in declaration order, so the
        // logged summary always agrees with the JSON snapshot
        // (`cache::tests::display_round_trips_every_counter` pins
        // this). The destructuring makes a counter added without a
        // matching `write!` argument a compile error.
        let CacheStats {
            library_builds,
            library_hits,
            library_evictions,
            flow_stores,
            flow_hits,
            flow_misses,
            flow_evictions,
            disk_hits,
            disk_misses,
            disk_stores,
            disk_evictions,
            disk_quarantined,
            store_degraded,
        } = *self;
        write!(
            f,
            "libraries: {library_builds} built, {library_hits} hits, \
             {library_evictions} evicted; \
             flows: {flow_stores} stored, {flow_hits} hits, \
             {flow_misses} misses, {flow_evictions} evicted; \
             disk: {disk_hits} hits, {disk_misses} misses, \
             {disk_stores} stored, {disk_evictions} evicted, \
             {disk_quarantined} quarantined; store degraded: {store_degraded}"
        )
    }
}

/// A capacity-bounded map with least-recently-used eviction.
///
/// Recency is a monotonic use counter per entry; eviction scans for the
/// minimum — O(capacity), which is fine at the tens-to-hundreds of
/// entries the artifact cache holds (one entry is a whole characterized
/// library or sign-off result; the map is never large, the *values*
/// are).
#[derive(Debug)]
struct Lru<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
}

impl<K: std::hash::Hash + Eq + Copy, V> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Looks up and marks the entry most-recently used.
    fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, used)| {
            *used = tick;
            &*v
        })
    }

    /// Inserts (or replaces) an entry, evicting the least-recently-used
    /// one when at capacity. Returns how many entries were evicted.
    fn insert(&mut self, key: K, value: V) -> u64 {
        self.tick += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) {
            while self.map.len() >= self.capacity {
                let Some(oldest) = self
                    .map
                    .iter()
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(k, _)| *k)
                else {
                    break;
                };
                self.map.remove(&oldest);
                evicted += 1;
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A lock-sharded [`Lru`]: keys hash to one of several independently
/// locked shards (the generic [`Sharded`] striping, here over per-shard
/// LRU maps), so concurrent lookups on different keys proceed without
/// contending on one map-wide mutex.
///
/// The shard count grows with the capacity (one shard per eight
/// entries, at most [`MAX_SHARDS`]), so small bounded caches — the unit
/// tests' two-entry ones included — stay single-sharded and keep exact
/// global LRU order, while the defaults spread across several shards.
/// A sharded cache's eviction order is exact only *per shard*; the
/// capacity bound still holds globally (each shard holds at most
/// `ceil(capacity / shards)` entries).
#[derive(Debug)]
struct ShardedLru<K, V> {
    shards: Sharded<Lru<K, V>>,
}

const MAX_SHARDS: usize = 16;

impl<K: Hash + Eq + Copy, V> ShardedLru<K, V> {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let count = (capacity / 8).clamp(1, MAX_SHARDS);
        let per_shard = capacity.div_ceil(count);
        ShardedLru {
            shards: Sharded::new(count, || Lru::new(per_shard)),
        }
    }

    #[cfg(test)]
    fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// The shard a key lives in.
    fn shard(&self, key: &K) -> &Mutex<Lru<K, V>> {
        self.shards.shard(key)
    }

    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shard(key)
            .lock()
            .expect("cache lock")
            .get(key)
            .cloned()
    }

    /// Inserts, returning how many entries the owning shard evicted.
    fn insert(&self, key: K, value: V) -> u64 {
        self.shard(&key)
            .lock()
            .expect("cache lock")
            .insert(key, value)
    }

    fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().expect("cache lock").clear();
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").len())
            .sum()
    }
}

/// The coalescing slot for one [`LibraryKey`]: a hand-rolled once-cell
/// whose initializer can fail. The first thread to find the slot `Idle`
/// claims the build and runs characterization *outside every lock*;
/// threads arriving meanwhile wait on the condvar instead of
/// duplicating the (hundreds-of-milliseconds) build. On success the
/// slot becomes `Ready` forever; on failure it reverts to `Idle` and a
/// waiter takes over the attempt, so an error never wedges the key.
#[derive(Debug)]
struct BuildCell {
    state: Mutex<BuildState>,
    ready: Condvar,
}

#[derive(Debug)]
enum BuildState {
    Idle,
    Building,
    Ready(Arc<CellLibrary>),
}

impl BuildCell {
    fn new() -> Self {
        BuildCell {
            state: Mutex::new(BuildState::Idle),
            ready: Condvar::new(),
        }
    }
}

/// Default LRU capacities: sized for the full paper reproduction (a
/// handful of distinct libraries, a few hundred distinct flow points)
/// with headroom, while still bounding a pathological sweep.
/// How long a *governed* coalescing waiter sleeps between cancellation
/// checks while another thread builds the library it wants. Ungoverned
/// waiters block without slicing.
const BUILD_WAIT_SLICE: std::time::Duration = std::time::Duration::from_millis(15);

const DEFAULT_LIBRARY_CAPACITY: usize = 32;
const DEFAULT_RESULT_CAPACITY: usize = 512;

/// The shared memo layer for cell libraries and completed flow results.
///
/// Both maps are LRU-bounded ([`ArtifactCache::bounded`] sets the
/// capacities; [`ArtifactCache::default`] uses generous defaults), so an
/// unbounded sweep cannot grow the process without limit — evictions are
/// counted in [`CacheStats`]. Thread-safe and built for the parallel
/// executor's fan-out: both maps are lock-**sharded** ([`Sharded`]), and
/// each library entry is a per-key once-cell ([`BuildCell`]), so N
/// workers hitting the same cold [`LibraryKey`] perform exactly **one**
/// characterization — the first claims the build, the rest block on the
/// key's condvar and are served the shared artifact (counted as hits).
/// Flow results are *not* coalesced: concurrent misses on one
/// [`FlowKey`] each run the (deterministic) flow and store bit-identical
/// values — the [`crate::ExperimentPlan`] dedups by `FlowKey` precisely
/// so the executor never schedules that race.
#[derive(Debug)]
pub struct ArtifactCache {
    libraries: ShardedLru<LibraryKey, Arc<BuildCell>>,
    results: ShardedLru<FlowKey, Arc<FlowResult>>,
    /// The optional persistent tier ([`DiskStore`]): probed on memory
    /// misses, published to after builds/stores. `None` keeps the
    /// cache purely in-memory (the seed behavior).
    disk: RwLock<Option<Arc<DiskStore>>>,
    /// The event sink for this cache's traffic — and, by inheritance,
    /// for every supervisor and executor built over this cache (they
    /// resolve their recorder here unless explicitly overridden).
    /// Defaults to the disabled [`observe::NullRecorder`].
    recorder: RwLock<Arc<dyn Recorder>>,
    library_builds: AtomicU64,
    library_hits: AtomicU64,
    library_evictions: AtomicU64,
    flow_stores: AtomicU64,
    flow_hits: AtomicU64,
    flow_misses: AtomicU64,
    flow_evictions: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::bounded(DEFAULT_LIBRARY_CAPACITY, DEFAULT_RESULT_CAPACITY)
    }
}

impl ArtifactCache {
    /// The process-wide cache shared by [`crate::Flow::run`], the
    /// experiment drivers and `paper_tables`.
    pub fn global() -> Arc<ArtifactCache> {
        static GLOBAL: OnceLock<Arc<ArtifactCache>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(ArtifactCache::default())))
    }

    /// A cache bounded to at most `library_capacity` characterized
    /// libraries and `result_capacity` sign-off results (each clamped to
    /// at least 1). Least-recently-used entries are evicted on insert.
    pub fn bounded(library_capacity: usize, result_capacity: usize) -> ArtifactCache {
        ArtifactCache {
            libraries: ShardedLru::new(library_capacity),
            results: ShardedLru::new(result_capacity),
            disk: RwLock::new(None),
            recorder: RwLock::new(observe::null()),
            library_builds: AtomicU64::new(0),
            library_hits: AtomicU64::new(0),
            library_evictions: AtomicU64::new(0),
            flow_stores: AtomicU64::new(0),
            flow_hits: AtomicU64::new(0),
            flow_misses: AtomicU64::new(0),
            flow_evictions: AtomicU64::new(0),
        }
    }

    /// Attaches the event sink for this cache's traffic. Supervisors
    /// and executors built over this cache inherit it (unless they
    /// override with their own), so attaching here instruments a whole
    /// run. Pass [`observe::null()`] to detach.
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>) {
        *self.recorder.write().expect("recorder slot") = Arc::clone(&recorder);
        // The disk tier traces into the same sink.
        if let Some(d) = self.disk() {
            d.set_recorder(recorder);
        }
    }

    /// Attaches (or replaces) the persistent disk tier. The store
    /// inherits this cache's recorder, so its `disk_hit`/`disk_miss`/
    /// `store_degraded` traffic lands in the same trace as the memory
    /// tier's events.
    pub fn attach_disk(&self, store: Arc<DiskStore>) {
        store.set_recorder(self.recorder());
        *self.disk.write().expect("disk slot") = Some(store);
    }

    /// Detaches the disk tier; the memory tier keeps working and the
    /// store directory is left intact.
    pub fn detach_disk(&self) {
        *self.disk.write().expect("disk slot") = None;
    }

    /// The attached disk tier, if any.
    pub fn disk(&self) -> Option<Arc<DiskStore>> {
        self.disk.read().expect("disk slot").clone()
    }

    /// The currently attached recorder.
    pub fn recorder(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.recorder.read().expect("recorder slot"))
    }

    /// Records one event iff a live recorder is attached — the hot-path
    /// guard: with the default [`observe::NullRecorder`] this is one
    /// read-lock and one virtual call, no event construction.
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        let rec = self.recorder.read().expect("recorder slot");
        if rec.enabled() {
            rec.record(kind());
        }
    }

    /// Entries currently held: `(libraries, flow results)`. A library
    /// entry whose build is still in flight counts — the slot is
    /// resident even before its artifact is.
    pub fn len(&self) -> (usize, usize) {
        (self.libraries.len(), self.results.len())
    }

    /// True when both maps are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }

    /// The characterized library for the consumed knobs, built at most
    /// once per distinct [`LibraryKey`] — *including under concurrency*:
    /// racing requests on one cold key coalesce on the key's
    /// [`BuildCell`], so exactly one thread characterizes while the rest
    /// wait for (and share) its artifact. `library_builds` counts actual
    /// characterizations; every request served without building — warm
    /// or coalesced — counts as a `library_hits` increment, so
    /// `builds + hits` equals the number of successful requests.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Library`] when characterization or the
    /// pin-cap scaling fails. A failed build releases the key (waiters
    /// retry the build themselves); nothing is cached.
    pub fn library(
        &self,
        node_id: NodeId,
        style: DesignStyle,
        lower_metal_rho: bool,
        pin_cap_scale: f64,
    ) -> Result<Arc<CellLibrary>, FlowError> {
        let key = LibraryKey::new(node_id, style, lower_metal_rho, pin_cap_scale);
        // Fetch-or-insert the key's coalescing slot under the shard
        // lock; the build itself never runs under it. An LRU eviction
        // can drop a slot mid-build — waiters hold their own `Arc` to
        // it, so they still coalesce; only future requests rebuild.
        let cell = {
            let mut shard = self.libraries.shard(&key).lock().expect("cache lock");
            match shard.get(&key) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(BuildCell::new());
                    let evicted = shard.insert(key, Arc::clone(&c));
                    self.library_evictions.fetch_add(evicted, Ordering::Relaxed);
                    if evicted > 0 {
                        self.emit(|| EventKind::CacheEvicted {
                            kind: CacheKind::Library,
                            count: evicted,
                        });
                    }
                    c
                }
            }
        };
        // Whether this request blocked on another thread's in-flight
        // build — a coalesced hit, traced distinctly from a warm one.
        let mut waited = false;
        let mut state = cell.state.lock().expect("build cell lock");
        loop {
            match &*state {
                BuildState::Ready(lib) => {
                    self.library_hits.fetch_add(1, Ordering::Relaxed);
                    let lib = Arc::clone(lib);
                    drop(state);
                    self.emit(|| EventKind::CacheHit {
                        kind: CacheKind::Library,
                    });
                    if waited {
                        self.emit(|| EventKind::CacheCoalesced {
                            kind: CacheKind::Library,
                        });
                    }
                    return Ok(lib);
                }
                BuildState::Building => {
                    waited = true;
                    // A governed caller (its stage worker installed a
                    // CancelToken thread-locally) must never hang
                    // behind a coalesced build: wait in bounded slices
                    // and unwind with a typed error once cancelled.
                    // Ungoverned callers keep the plain blocking wait.
                    match crate::govern::current() {
                        Some(tok) => {
                            if tok.is_cancelled() {
                                return Err(FlowError::Cancelled {
                                    stage: FlowStage::Library,
                                });
                            }
                            let (s, _) = cell
                                .ready
                                .wait_timeout(state, BUILD_WAIT_SLICE)
                                .expect("build cell lock");
                            state = s;
                        }
                        None => {
                            state = cell.ready.wait(state).expect("build cell lock");
                        }
                    }
                }
                BuildState::Idle => {
                    *state = BuildState::Building;
                    drop(state);
                    // Two-level lookup: a verified disk entry skips
                    // characterization entirely. The store traces its
                    // own DiskHit; here it counts as a library hit —
                    // not a build, not a CacheMiss — so "zero
                    // `library_builds`" remains the warm-start
                    // acceptance signal.
                    if let Some(lib) = self.disk().and_then(|d| d.load_library(&key)) {
                        let lib = Arc::new(lib);
                        let mut done = cell.state.lock().expect("build cell lock");
                        *done = BuildState::Ready(Arc::clone(&lib));
                        cell.ready.notify_all();
                        drop(done);
                        self.library_hits.fetch_add(1, Ordering::Relaxed);
                        self.emit(|| EventKind::CacheHit {
                            kind: CacheKind::Library,
                        });
                        return Ok(lib);
                    }
                    let built = Self::build_library(node_id, style, lower_metal_rho, pin_cap_scale);
                    let mut done = cell.state.lock().expect("build cell lock");
                    match built {
                        Ok(lib) => {
                            self.library_builds.fetch_add(1, Ordering::Relaxed);
                            let lib = Arc::new(lib);
                            *done = BuildState::Ready(Arc::clone(&lib));
                            cell.ready.notify_all();
                            drop(done);
                            self.emit(|| EventKind::CacheMiss {
                                kind: CacheKind::Library,
                            });
                            // Publish outside every lock: waiters are
                            // already served; the disk write must not
                            // stall them.
                            if let Some(d) = self.disk() {
                                d.store_library(&key, &lib);
                            }
                            return Ok(lib);
                        }
                        Err(e) => {
                            *done = BuildState::Idle;
                            cell.ready.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// One actual characterization — the work the coalescing protocol
    /// exists to not duplicate.
    fn build_library(
        node_id: NodeId,
        style: DesignStyle,
        lower_metal_rho: bool,
        pin_cap_scale: f64,
    ) -> Result<CellLibrary, FlowError> {
        let node = {
            let n = TechNode::for_id(node_id);
            if lower_metal_rho {
                n.with_rho_scaled(&[MetalClass::Local, MetalClass::Intermediate], 0.5)
            } else {
                n
            }
        };
        let mut lib = CellLibrary::try_build(&node, style)?;
        if pin_cap_scale != 1.0 {
            lib = lib.try_with_pin_cap_scaled(pin_cap_scale)?;
        }
        Ok(lib)
    }

    /// The stored sign-off result for this flow point, if any.
    pub fn lookup_result(
        &self,
        bench: Benchmark,
        style: DesignStyle,
        cfg: &FlowConfig,
    ) -> Option<FlowResult> {
        let key = FlowKey::of(bench, style, cfg);
        if let Some(r) = self.results.get(&key) {
            self.flow_hits.fetch_add(1, Ordering::Relaxed);
            self.emit(|| EventKind::CacheHit {
                kind: CacheKind::Flow,
            });
            return Some((*r).clone());
        }
        // Memory miss: consult the disk tier before declaring a miss.
        // A verified entry is promoted into the memory tier so repeat
        // lookups stay in-process.
        if let Some(r) = self.disk().and_then(|d| d.load_flow(&key)) {
            let evicted = self.results.insert(key, Arc::new(r.clone()));
            self.flow_evictions.fetch_add(evicted, Ordering::Relaxed);
            if evicted > 0 {
                self.emit(|| EventKind::CacheEvicted {
                    kind: CacheKind::Flow,
                    count: evicted,
                });
            }
            self.flow_hits.fetch_add(1, Ordering::Relaxed);
            self.emit(|| EventKind::CacheHit {
                kind: CacheKind::Flow,
            });
            return Some(r);
        }
        self.flow_misses.fetch_add(1, Ordering::Relaxed);
        self.emit(|| EventKind::CacheMiss {
            kind: CacheKind::Flow,
        });
        None
    }

    /// Stores a completed sign-off result under its consumed-knob key.
    pub fn store_result(
        &self,
        bench: Benchmark,
        style: DesignStyle,
        cfg: &FlowConfig,
        result: &FlowResult,
    ) {
        self.flow_stores.fetch_add(1, Ordering::Relaxed);
        let key = FlowKey::of(bench, style, cfg);
        let evicted = self.results.insert(key, Arc::new(result.clone()));
        self.flow_evictions.fetch_add(evicted, Ordering::Relaxed);
        if evicted > 0 {
            self.emit(|| EventKind::CacheEvicted {
                kind: CacheKind::Flow,
                count: evicted,
            });
        }
        if let Some(d) = self.disk() {
            d.store_flow(&key, result);
        }
    }

    /// Drops every stored **memory-tier** artifact and resets the
    /// memory counters — the cold half of a cold/warm benchmark. The
    /// disk tier (if attached) is deliberately untouched: its entries
    /// and counters persist, so a post-`clear` lookup can still be a
    /// disk hit. Use [`ArtifactCache::detach_disk`] for a fully cold
    /// cache.
    pub fn clear(&self) {
        self.libraries.clear();
        self.results.clear();
        for c in [
            &self.library_builds,
            &self.library_hits,
            &self.library_evictions,
            &self.flow_stores,
            &self.flow_hits,
            &self.flow_misses,
            &self.flow_evictions,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Counter snapshot. The `disk_*` counters are read live from the
    /// attached [`DiskStore`] (all zero when none is attached), so one
    /// snapshot covers both tiers coherently.
    pub fn stats(&self) -> CacheStats {
        let disk = self.disk().map(|d| d.counters()).unwrap_or_default();
        CacheStats {
            library_builds: self.library_builds.load(Ordering::Relaxed),
            library_hits: self.library_hits.load(Ordering::Relaxed),
            library_evictions: self.library_evictions.load(Ordering::Relaxed),
            flow_stores: self.flow_stores.load(Ordering::Relaxed),
            flow_hits: self.flow_hits.load(Ordering::Relaxed),
            flow_misses: self.flow_misses.load(Ordering::Relaxed),
            flow_evictions: self.flow_evictions.load(Ordering::Relaxed),
            disk_hits: disk.hits,
            disk_misses: disk.misses,
            disk_stores: disk.stores,
            disk_evictions: disk.evictions,
            disk_quarantined: disk.quarantined,
            store_degraded: disk.degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg45() -> FlowConfig {
        FlowConfig::new(NodeId::N45)
    }

    #[test]
    fn consumed_knob_changes_the_flow_key() {
        let base = FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &cfg45());
        let mut scaled = cfg45();
        scaled.pin_cap_scale = 0.6;
        assert_ne!(
            base,
            FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &scaled)
        );
    }

    #[test]
    fn unconsumed_knob_shares_the_flow_key() {
        // A 2D flow never reads the T-MI WLM switch…
        let mut flipped = cfg45();
        flipped.tmi_wlm = false;
        assert_eq!(
            FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &cfg45()),
            FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &flipped)
        );
        // …while a T-MI flow does.
        assert_ne!(
            FlowKey::of(Benchmark::Des, DesignStyle::Tmi, &cfg45()),
            FlowKey::of(Benchmark::Des, DesignStyle::Tmi, &flipped)
        );
    }

    #[test]
    fn resolved_defaults_share_the_flow_key() {
        let mut explicit = cfg45();
        explicit.stack_kind = Some(DesignStyle::Tmi.default_stack());
        explicit.clock_scale = default_clock_scale_at(Benchmark::Aes, NodeId::N45);
        assert_eq!(
            FlowKey::of(Benchmark::Aes, DesignStyle::Tmi, &cfg45()),
            FlowKey::of(Benchmark::Aes, DesignStyle::Tmi, &explicit)
        );
    }

    #[test]
    fn library_is_built_once_per_key() {
        let cache = ArtifactCache::default();
        let a = cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        let b = cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        assert!(Arc::ptr_eq(&a, &b), "second request must be a cache hit");
        let stats = cache.stats();
        assert_eq!(stats.library_builds, 1);
        assert_eq!(stats.library_hits, 1);

        // A consumed-knob change builds a distinct artifact.
        let c = cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 0.6)
            .expect("library builds");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().library_builds, 2);
    }

    fn temp_store_root(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("m3d-cache-disk-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_tier_serves_a_fresh_cache_without_rebuilding() {
        let root = temp_store_root("warm");
        // First "process": builds once, publishing to disk.
        let warm = ArtifactCache::default();
        warm.attach_disk(DiskStore::open(&root));
        warm.library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        let s = warm.stats();
        assert_eq!((s.library_builds, s.disk_stores), (1, 1));

        // Second "process": a brand-new cache over a fresh store
        // instance on the same directory must serve the library from
        // disk — zero characterizations, and a hit (not a miss) in the
        // memory-tier accounting.
        let fresh = ArtifactCache::default();
        fresh.attach_disk(DiskStore::open(&root));
        fresh
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library loads");
        let s = fresh.stats();
        assert_eq!(s.library_builds, 0, "warm start must not characterize");
        assert_eq!((s.library_hits, s.disk_hits), (1, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn flow_results_promote_from_disk_into_memory() {
        let root = temp_store_root("flow");
        let bench = Benchmark::Des;
        let cfg = cfg45();
        let result = {
            // Fabricate a stored result via a first cache.
            let first = ArtifactCache::default();
            first.attach_disk(DiskStore::open(&root));
            let r = sample_flow_result(bench);
            first.store_result(bench, DesignStyle::TwoD, &cfg, &r);
            r
        };
        let fresh = ArtifactCache::default();
        fresh.attach_disk(DiskStore::open(&root));
        // First lookup: disk hit, promoted into memory.
        assert_eq!(
            fresh.lookup_result(bench, DesignStyle::TwoD, &cfg),
            Some(result.clone())
        );
        let s = fresh.stats();
        assert_eq!((s.flow_hits, s.flow_misses, s.disk_hits), (1, 0, 1));
        // Second lookup: memory tier, no further disk traffic.
        assert_eq!(
            fresh.lookup_result(bench, DesignStyle::TwoD, &cfg),
            Some(result)
        );
        let s = fresh.stats();
        assert_eq!((s.flow_hits, s.disk_hits), (2, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    fn sample_flow_result(bench: Benchmark) -> FlowResult {
        FlowResult {
            bench,
            style: DesignStyle::TwoD,
            node_id: NodeId::N45,
            clock_ps: 1000.0,
            footprint_um2: 100.0,
            core_um: (10.0, 10.0),
            cell_count: 100,
            buffer_count: 3,
            utilization: 0.7,
            wirelength_um: 1234.5,
            wns_ps: 1.0,
            hold_wns_ps: 0.5,
            power: Default::default(),
            layer_usage: m3d_route::LayerUsage {
                m1_um: 1.0,
                local_um: 2.0,
                intermediate_um: 3.0,
                global_um: 4.0,
                peak_utilization: [0.1, 0.2, 0.3],
                mean_utilization: [0.1, 0.1, 0.1],
                overflow_ratio: 0.0,
            },
            wlm_curve: vec![1.0, 2.0],
        }
    }

    #[test]
    fn display_prints_every_counter() {
        // The logged summary must agree with the JSON snapshot: every
        // CacheStats field, in declaration order. This pins the exact
        // format (the old one dropped flow_misses).
        let s = CacheStats {
            library_builds: 1,
            library_hits: 2,
            library_evictions: 3,
            flow_stores: 4,
            flow_hits: 5,
            flow_misses: 6,
            flow_evictions: 7,
            disk_hits: 8,
            disk_misses: 9,
            disk_stores: 10,
            disk_evictions: 11,
            disk_quarantined: 12,
            store_degraded: 13,
        };
        assert_eq!(
            s.to_string(),
            "libraries: 1 built, 2 hits, 3 evicted; \
             flows: 4 stored, 5 hits, 6 misses, 7 evicted; \
             disk: 8 hits, 9 misses, 10 stored, 11 evicted, \
             12 quarantined; store degraded: 13"
        );
    }

    #[test]
    fn delta_subtracts_counterwise_and_saturates() {
        let earlier = CacheStats {
            library_builds: 2,
            library_hits: 8,
            library_evictions: 0,
            flow_stores: 10,
            flow_hits: 8,
            flow_misses: 10,
            flow_evictions: 0,
            disk_hits: 3,
            disk_misses: 5,
            disk_stores: 2,
            disk_evictions: 0,
            disk_quarantined: 0,
            store_degraded: 0,
        };
        let later = CacheStats {
            library_builds: 2,
            library_hits: 16,
            library_evictions: 1,
            flow_stores: 10,
            flow_hits: 26,
            flow_misses: 10,
            flow_evictions: 2,
            disk_hits: 9,
            disk_misses: 5,
            disk_stores: 2,
            disk_evictions: 1,
            disk_quarantined: 1,
            store_degraded: 1,
        };
        let d = later.delta(&earlier);
        assert_eq!(d.library_builds, 0);
        assert_eq!(d.library_hits, 8);
        assert_eq!(d.library_evictions, 1);
        assert_eq!(d.flow_stores, 0);
        assert_eq!(d.flow_hits, 18);
        assert_eq!(d.flow_misses, 0, "a fully-warm phase shows zero misses");
        assert_eq!(d.flow_evictions, 2);
        assert_eq!(d.disk_hits, 6);
        assert_eq!(d.disk_misses, 0);
        assert_eq!(d.disk_stores, 0);
        assert_eq!(d.disk_evictions, 1);
        assert_eq!(d.disk_quarantined, 1);
        assert_eq!(d.store_degraded, 1, "degradation latched inside the window");
        // A clear() between snapshots drops counters below the earlier
        // snapshot; the delta saturates at zero instead of wrapping.
        assert_eq!(CacheStats::default().delta(&earlier), CacheStats::default());
    }

    #[test]
    fn delta_with_zero_elapsed_work_is_all_zero() {
        let cache = ArtifactCache::default();
        cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        let snap = cache.stats();
        // No work between the snapshots: the delta must be exactly the
        // default (all-zero) stats, not merely "small".
        assert_eq!(cache.stats().delta(&snap), CacheStats::default());
        // And a snapshot's delta against itself likewise.
        assert_eq!(snap.delta(&snap), CacheStats::default());
    }

    #[test]
    fn delta_across_a_clear_saturates_per_counter() {
        let cache = ArtifactCache::default();
        for scale in [1.0, 0.9] {
            cache
                .library(NodeId::N45, DesignStyle::TwoD, false, scale)
                .expect("library builds");
        }
        let before = cache.stats();
        assert_eq!(before.library_builds, 2);
        // clear() resets the live counters below the snapshot; the
        // post-clear work is smaller than the pre-clear tally, so a
        // naive subtraction would wrap. Each counter saturates
        // independently instead.
        cache.clear();
        cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        let d = cache.stats().delta(&before);
        assert_eq!(
            d.library_builds, 0,
            "1 post-clear build < 2 pre-clear: saturates"
        );
        assert_eq!(
            d.library_hits, 1,
            "1 post-clear hit > 0 pre-clear: survives"
        );
    }

    #[test]
    fn display_round_trips_every_counter() {
        let s = CacheStats {
            library_builds: 11,
            library_hits: 22,
            library_evictions: 33,
            flow_stores: 44,
            flow_hits: 55,
            flow_misses: 66,
            flow_evictions: 77,
            disk_hits: 88,
            disk_misses: 99,
            disk_stores: 111,
            disk_evictions: 222,
            disk_quarantined: 333,
            store_degraded: 444,
        };
        // Parse the rendering back: the numbers must appear in
        // declaration order and reconstruct the struct exactly, so no
        // counter can be dropped or reordered without failing here.
        let text = s.to_string();
        let nums: Vec<u64> = text
            .split(|c: char| !c.is_ascii_digit())
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().expect("counter parses"))
            .collect();
        assert_eq!(
            nums,
            vec![11, 22, 33, 44, 55, 66, 77, 88, 99, 111, 222, 333, 444],
            "display must carry all 13 counters in declaration order: {text}"
        );
        let round_tripped = CacheStats {
            library_builds: nums[0],
            library_hits: nums[1],
            library_evictions: nums[2],
            flow_stores: nums[3],
            flow_hits: nums[4],
            flow_misses: nums[5],
            flow_evictions: nums[6],
            disk_hits: nums[7],
            disk_misses: nums[8],
            disk_stores: nums[9],
            disk_evictions: nums[10],
            disk_quarantined: nums[11],
            store_degraded: nums[12],
        };
        assert_eq!(round_tripped, s);
    }

    #[test]
    fn cache_events_mirror_the_counters() {
        use crate::observe::MetricsRegistry;
        let cache = ArtifactCache::bounded(2, 2);
        let metrics = Arc::new(MetricsRegistry::new());
        cache.set_recorder(Arc::clone(&metrics) as Arc<dyn Recorder>);
        for scale in [1.0, 0.9, 0.8, 1.0] {
            cache
                .library(NodeId::N45, DesignStyle::TwoD, false, scale)
                .expect("library builds");
        }
        let stats = cache.stats();
        let report = metrics.report();
        assert_eq!(report.counter("cache_miss_library"), stats.library_builds);
        assert_eq!(report.counter("cache_hit_library"), stats.library_hits);
        assert_eq!(
            report.counter("cache_evicted_library"),
            stats.library_evictions
        );
        // Detaching restores the null recorder: traffic keeps counting
        // in stats but stops reaching the old sink.
        cache.set_recorder(observe::null());
        cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 0.8)
            .expect("library builds");
        assert_eq!(
            metrics.report().counter("cache_hit_library")
                + metrics.report().counter("cache_miss_library"),
            report.counter("cache_hit_library") + report.counter("cache_miss_library"),
            "detached recorder sees no further events"
        );
    }

    #[test]
    fn sharded_map_keeps_its_capacity_bound() {
        let map: ShardedLru<u64, u64> = ShardedLru::new(64);
        assert!(map.shard_count() > 1, "a 64-entry map should shard");
        for k in 0..1000u64 {
            map.insert(k, k);
        }
        let bound = map.shard_count() * 64usize.div_ceil(map.shard_count());
        assert!(
            map.len() <= bound,
            "{} entries resident, bound {bound}",
            map.len()
        );
        // A resident key is still retrievable after the churn.
        let present = (0..1000u64).filter(|k| map.get(k).is_some()).count();
        assert_eq!(present, map.len());
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        assert_eq!(lru.insert(1, "one"), 0);
        assert_eq!(lru.insert(2, "two"), 0);
        // Touch 1 so 2 becomes the coldest entry...
        assert_eq!(lru.get(&1), Some(&"one"));
        // ...then a third insert evicts exactly it.
        assert_eq!(lru.insert(3, "three"), 1);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&"one"));
        assert_eq!(lru.get(&3), Some(&"three"));
        assert_eq!(lru.len(), 2);
        // Replacing a resident key evicts nothing.
        assert_eq!(lru.insert(3, "III"), 0);
        assert_eq!(lru.get(&3), Some(&"III"));
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        let cache = ArtifactCache::bounded(2, 2);
        for scale in [1.0, 0.9, 0.8] {
            cache
                .library(NodeId::N45, DesignStyle::TwoD, false, scale)
                .expect("library builds");
        }
        let stats = cache.stats();
        assert_eq!(stats.library_builds, 3);
        assert_eq!(stats.library_evictions, 1);
        assert_eq!(cache.len().0, 2);

        // The evicted (coldest) key was the first one: requesting it
        // again is a rebuild, not a hit.
        cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        let stats = cache.stats();
        assert_eq!(stats.library_builds, 4);
        assert_eq!(stats.library_hits, 0);
        assert_eq!(stats.library_evictions, 2);

        // A resident key is still a hit.
        cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 0.8)
            .expect("library builds");
        assert_eq!(cache.stats().library_hits, 1);

        // clear() resets the eviction counters with the rest.
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
