//! Content-keyed memoization of flow artifacts.
//!
//! The paper's study is one pipeline evaluated under ~20 configuration
//! sweeps, and most sweeps share whole sub-problems: every 45 nm 2D run
//! characterizes the same cell library, and several tables re-run the
//! identical (benchmark, style, config) flow the previous table already
//! signed off. [`ArtifactCache`] shares those artifacts:
//!
//! * **Cell libraries** are built once per [`LibraryKey`] — the
//!   projection of a [`FlowConfig`] onto the fields a library build
//!   actually consumes: `(node_id, style, lower_metal_rho,
//!   pin_cap_scale)`.
//! * **Completed [`FlowResult`]s** are shared per [`FlowKey`] — the
//!   projection of `(benchmark, style, FlowConfig)` onto the knobs the
//!   stage graph consumes, with unconsumed knobs canonicalized away so
//!   they cannot split the key (a 2D flow never reads `tmi_wlm`;
//!   `stack_kind: None` resolves to the style default; `clock_scale: 0`
//!   resolves to the per-benchmark calibration).
//!
//! Keys canonicalize `f64` knobs to their bit patterns, so a cache hit
//! requires bit-equal configuration — there is no tolerance matching,
//! and a hit therefore returns a bit-identical result (the flow itself
//! is deterministic; `tests/flow_cache.rs` asserts both properties).
//!
//! One process-wide cache ([`ArtifactCache::global`]) serves
//! [`crate::Flow::run`], every `experiments::*` driver and the
//! `paper_tables` binary; fresh instances (`ArtifactCache::default`)
//! isolate tests and benchmarks that must measure cold runs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, MetalClass, NodeId, StackKind, TechNode};

use crate::error::FlowError;
use crate::flow::{default_clock_scale_at, FlowConfig, FlowResult};

/// Cache key of one characterized cell library: every [`FlowConfig`]
/// field the library build consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibraryKey {
    node_id: NodeId,
    style: DesignStyle,
    lower_metal_rho: bool,
    pin_cap_scale_bits: u64,
}

impl LibraryKey {
    /// Builds the key from the consumed fields.
    pub fn new(
        node_id: NodeId,
        style: DesignStyle,
        lower_metal_rho: bool,
        pin_cap_scale: f64,
    ) -> Self {
        LibraryKey {
            node_id,
            style,
            lower_metal_rho,
            pin_cap_scale_bits: pin_cap_scale.to_bits(),
        }
    }
}

/// Cache key of one completed flow: the projection of
/// `(benchmark, style, FlowConfig)` onto the knobs the stage graph
/// consumes. Knobs a given flow never reads are canonicalized so they
/// cannot split the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    bench: Benchmark,
    style: DesignStyle,
    node_id: NodeId,
    bench_scale: BenchScale,
    /// Resolved: `stack_kind.unwrap_or(style.default_stack())`.
    stack_kind: StackKind,
    clock_ps_bits: Option<u64>,
    utilization_bits: Option<u64>,
    /// Canonicalized to `true` for 2D flows — only the T-MI synthesis
    /// path reads this switch (Table 15 "-n").
    tmi_wlm: bool,
    pin_cap_scale_bits: u64,
    lower_metal_rho: bool,
    alpha_ff_bits: u64,
    mb1_routing: bool,
    opt_passes: usize,
    place_iterations: usize,
    /// Resolved: `0.0` selects the per-benchmark calibration, so an
    /// explicit equal factor shares the entry.
    clock_scale_bits: u64,
}

impl FlowKey {
    /// Projects `(bench, style, config)` onto the consumed knobs.
    pub fn of(bench: Benchmark, style: DesignStyle, cfg: &FlowConfig) -> Self {
        let clock_scale = if cfg.clock_scale > 0.0 {
            cfg.clock_scale
        } else {
            default_clock_scale_at(bench, cfg.node_id)
        };
        FlowKey {
            bench,
            style,
            node_id: cfg.node_id,
            bench_scale: cfg.bench_scale,
            stack_kind: cfg.stack_kind.unwrap_or(style.default_stack()),
            clock_ps_bits: cfg.clock_ps.map(f64::to_bits),
            utilization_bits: cfg.utilization.map(f64::to_bits),
            tmi_wlm: cfg.tmi_wlm || style == DesignStyle::TwoD,
            pin_cap_scale_bits: cfg.pin_cap_scale.to_bits(),
            lower_metal_rho: cfg.lower_metal_rho,
            alpha_ff_bits: cfg.alpha_ff.to_bits(),
            mb1_routing: cfg.mb1_routing,
            opt_passes: cfg.opt_passes,
            place_iterations: cfg.place_iterations,
            clock_scale_bits: clock_scale.to_bits(),
        }
    }
}

/// A snapshot of the cache's hit/build/eviction counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cell libraries characterized from scratch.
    pub library_builds: u64,
    /// Library requests served from the cache.
    pub library_hits: u64,
    /// Cached libraries evicted by the LRU bound.
    pub library_evictions: u64,
    /// Completed flow results stored.
    pub flow_stores: u64,
    /// Flow lookups served from the cache.
    pub flow_hits: u64,
    /// Flow lookups that missed (and therefore ran the pipeline).
    pub flow_misses: u64,
    /// Cached flow results evicted by the LRU bound.
    pub flow_evictions: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "libraries: {} built, {} served from cache, {} evicted; \
             flows: {} run, {} served from cache, {} evicted",
            self.library_builds,
            self.library_hits,
            self.library_evictions,
            self.flow_stores,
            self.flow_hits,
            self.flow_evictions
        )
    }
}

/// A capacity-bounded map with least-recently-used eviction.
///
/// Recency is a monotonic use counter per entry; eviction scans for the
/// minimum — O(capacity), which is fine at the tens-to-hundreds of
/// entries the artifact cache holds (one entry is a whole characterized
/// library or sign-off result; the map is never large, the *values*
/// are).
#[derive(Debug)]
struct Lru<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
}

impl<K: std::hash::Hash + Eq + Copy, V> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Looks up and marks the entry most-recently used.
    fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, used)| {
            *used = tick;
            &*v
        })
    }

    /// Inserts (or replaces) an entry, evicting the least-recently-used
    /// one when at capacity. Returns how many entries were evicted.
    fn insert(&mut self, key: K, value: V) -> u64 {
        self.tick += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) {
            while self.map.len() >= self.capacity {
                let Some(oldest) = self
                    .map
                    .iter()
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(k, _)| *k)
                else {
                    break;
                };
                self.map.remove(&oldest);
                evicted += 1;
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Default LRU capacities: sized for the full paper reproduction (a
/// handful of distinct libraries, a few hundred distinct flow points)
/// with headroom, while still bounding a pathological sweep.
const DEFAULT_LIBRARY_CAPACITY: usize = 32;
const DEFAULT_RESULT_CAPACITY: usize = 512;

/// The shared memo layer for cell libraries and completed flow results.
///
/// Both maps are LRU-bounded ([`ArtifactCache::bounded`] sets the
/// capacities; [`ArtifactCache::default`] uses generous defaults), so an
/// unbounded sweep cannot grow the process without limit — evictions are
/// counted in [`CacheStats`]. Thread-safe; lookups clone an `Arc`
/// (libraries) or the stored value (flow results). Library
/// characterization runs outside the lock, so two threads racing on the
/// same cold key may both build — the first insert wins and both observe
/// the same artifact.
#[derive(Debug)]
pub struct ArtifactCache {
    libraries: Mutex<Lru<LibraryKey, Arc<CellLibrary>>>,
    results: Mutex<Lru<FlowKey, Arc<FlowResult>>>,
    library_builds: AtomicU64,
    library_hits: AtomicU64,
    library_evictions: AtomicU64,
    flow_stores: AtomicU64,
    flow_hits: AtomicU64,
    flow_misses: AtomicU64,
    flow_evictions: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::bounded(DEFAULT_LIBRARY_CAPACITY, DEFAULT_RESULT_CAPACITY)
    }
}

impl ArtifactCache {
    /// The process-wide cache shared by [`crate::Flow::run`], the
    /// experiment drivers and `paper_tables`.
    pub fn global() -> Arc<ArtifactCache> {
        static GLOBAL: OnceLock<Arc<ArtifactCache>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(ArtifactCache::default())))
    }

    /// A cache bounded to at most `library_capacity` characterized
    /// libraries and `result_capacity` sign-off results (each clamped to
    /// at least 1). Least-recently-used entries are evicted on insert.
    pub fn bounded(library_capacity: usize, result_capacity: usize) -> ArtifactCache {
        ArtifactCache {
            libraries: Mutex::new(Lru::new(library_capacity)),
            results: Mutex::new(Lru::new(result_capacity)),
            library_builds: AtomicU64::new(0),
            library_hits: AtomicU64::new(0),
            library_evictions: AtomicU64::new(0),
            flow_stores: AtomicU64::new(0),
            flow_hits: AtomicU64::new(0),
            flow_misses: AtomicU64::new(0),
            flow_evictions: AtomicU64::new(0),
        }
    }

    /// Entries currently held: `(libraries, flow results)`.
    pub fn len(&self) -> (usize, usize) {
        (
            self.libraries.lock().expect("cache lock").len(),
            self.results.lock().expect("cache lock").len(),
        )
    }

    /// True when both maps are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }

    /// The characterized library for the consumed knobs, built at most
    /// once per distinct [`LibraryKey`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Library`] when characterization or the
    /// pin-cap scaling fails.
    pub fn library(
        &self,
        node_id: NodeId,
        style: DesignStyle,
        lower_metal_rho: bool,
        pin_cap_scale: f64,
    ) -> Result<Arc<CellLibrary>, FlowError> {
        let key = LibraryKey::new(node_id, style, lower_metal_rho, pin_cap_scale);
        if let Some(hit) = self.libraries.lock().expect("cache lock").get(&key) {
            self.library_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock: characterization dominates any
        // duplicate-build race, and the first insert wins below.
        let node = {
            let n = TechNode::for_id(node_id);
            if lower_metal_rho {
                n.with_rho_scaled(&[MetalClass::Local, MetalClass::Intermediate], 0.5)
            } else {
                n
            }
        };
        let mut lib = CellLibrary::try_build(&node, style)?;
        if pin_cap_scale != 1.0 {
            lib = lib.try_with_pin_cap_scaled(pin_cap_scale)?;
        }
        self.library_builds.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(lib);
        let mut libraries = self.libraries.lock().expect("cache lock");
        if let Some(winner) = libraries.get(&key) {
            // A racing thread inserted first; its artifact wins.
            return Ok(Arc::clone(winner));
        }
        let evicted = libraries.insert(key, Arc::clone(&entry));
        self.library_evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(entry)
    }

    /// The stored sign-off result for this flow point, if any.
    pub fn lookup_result(
        &self,
        bench: Benchmark,
        style: DesignStyle,
        cfg: &FlowConfig,
    ) -> Option<FlowResult> {
        let key = FlowKey::of(bench, style, cfg);
        let hit = self.results.lock().expect("cache lock").get(&key).cloned();
        match &hit {
            Some(_) => self.flow_hits.fetch_add(1, Ordering::Relaxed),
            None => self.flow_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit.map(|r| (*r).clone())
    }

    /// Stores a completed sign-off result under its consumed-knob key.
    pub fn store_result(
        &self,
        bench: Benchmark,
        style: DesignStyle,
        cfg: &FlowConfig,
        result: &FlowResult,
    ) {
        self.flow_stores.fetch_add(1, Ordering::Relaxed);
        let evicted = self
            .results
            .lock()
            .expect("cache lock")
            .insert(FlowKey::of(bench, style, cfg), Arc::new(result.clone()));
        self.flow_evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drops every stored artifact and resets the counters — the cold
    /// half of a cold/warm benchmark.
    pub fn clear(&self) {
        self.libraries.lock().expect("cache lock").clear();
        self.results.lock().expect("cache lock").clear();
        for c in [
            &self.library_builds,
            &self.library_hits,
            &self.library_evictions,
            &self.flow_stores,
            &self.flow_hits,
            &self.flow_misses,
            &self.flow_evictions,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            library_builds: self.library_builds.load(Ordering::Relaxed),
            library_hits: self.library_hits.load(Ordering::Relaxed),
            library_evictions: self.library_evictions.load(Ordering::Relaxed),
            flow_stores: self.flow_stores.load(Ordering::Relaxed),
            flow_hits: self.flow_hits.load(Ordering::Relaxed),
            flow_misses: self.flow_misses.load(Ordering::Relaxed),
            flow_evictions: self.flow_evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg45() -> FlowConfig {
        FlowConfig::new(NodeId::N45)
    }

    #[test]
    fn consumed_knob_changes_the_flow_key() {
        let base = FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &cfg45());
        let mut scaled = cfg45();
        scaled.pin_cap_scale = 0.6;
        assert_ne!(
            base,
            FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &scaled)
        );
    }

    #[test]
    fn unconsumed_knob_shares_the_flow_key() {
        // A 2D flow never reads the T-MI WLM switch…
        let mut flipped = cfg45();
        flipped.tmi_wlm = false;
        assert_eq!(
            FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &cfg45()),
            FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &flipped)
        );
        // …while a T-MI flow does.
        assert_ne!(
            FlowKey::of(Benchmark::Des, DesignStyle::Tmi, &cfg45()),
            FlowKey::of(Benchmark::Des, DesignStyle::Tmi, &flipped)
        );
    }

    #[test]
    fn resolved_defaults_share_the_flow_key() {
        let mut explicit = cfg45();
        explicit.stack_kind = Some(DesignStyle::Tmi.default_stack());
        explicit.clock_scale = default_clock_scale_at(Benchmark::Aes, NodeId::N45);
        assert_eq!(
            FlowKey::of(Benchmark::Aes, DesignStyle::Tmi, &cfg45()),
            FlowKey::of(Benchmark::Aes, DesignStyle::Tmi, &explicit)
        );
    }

    #[test]
    fn library_is_built_once_per_key() {
        let cache = ArtifactCache::default();
        let a = cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        let b = cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        assert!(Arc::ptr_eq(&a, &b), "second request must be a cache hit");
        let stats = cache.stats();
        assert_eq!(stats.library_builds, 1);
        assert_eq!(stats.library_hits, 1);

        // A consumed-knob change builds a distinct artifact.
        let c = cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 0.6)
            .expect("library builds");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().library_builds, 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        assert_eq!(lru.insert(1, "one"), 0);
        assert_eq!(lru.insert(2, "two"), 0);
        // Touch 1 so 2 becomes the coldest entry...
        assert_eq!(lru.get(&1), Some(&"one"));
        // ...then a third insert evicts exactly it.
        assert_eq!(lru.insert(3, "three"), 1);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&"one"));
        assert_eq!(lru.get(&3), Some(&"three"));
        assert_eq!(lru.len(), 2);
        // Replacing a resident key evicts nothing.
        assert_eq!(lru.insert(3, "III"), 0);
        assert_eq!(lru.get(&3), Some(&"III"));
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        let cache = ArtifactCache::bounded(2, 2);
        for scale in [1.0, 0.9, 0.8] {
            cache
                .library(NodeId::N45, DesignStyle::TwoD, false, scale)
                .expect("library builds");
        }
        let stats = cache.stats();
        assert_eq!(stats.library_builds, 3);
        assert_eq!(stats.library_evictions, 1);
        assert_eq!(cache.len().0, 2);

        // The evicted (coldest) key was the first one: requesting it
        // again is a rebuild, not a hit.
        cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        let stats = cache.stats();
        assert_eq!(stats.library_builds, 4);
        assert_eq!(stats.library_hits, 0);
        assert_eq!(stats.library_evictions, 2);

        // A resident key is still a hit.
        cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 0.8)
            .expect("library builds");
        assert_eq!(cache.stats().library_hits, 1);

        // clear() resets the eviction counters with the rest.
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
