//! Content-keyed memoization of flow artifacts.
//!
//! The paper's study is one pipeline evaluated under ~20 configuration
//! sweeps, and most sweeps share whole sub-problems: every 45 nm 2D run
//! characterizes the same cell library, and several tables re-run the
//! identical (benchmark, style, config) flow the previous table already
//! signed off. [`ArtifactCache`] shares those artifacts:
//!
//! * **Cell libraries** are built once per [`LibraryKey`] — the
//!   projection of a [`FlowConfig`] onto the fields a library build
//!   actually consumes: `(node_id, style, lower_metal_rho,
//!   pin_cap_scale)`.
//! * **Completed [`FlowResult`]s** are shared per [`FlowKey`] — the
//!   projection of `(benchmark, style, FlowConfig)` onto the knobs the
//!   stage graph consumes, with unconsumed knobs canonicalized away so
//!   they cannot split the key (a 2D flow never reads `tmi_wlm`;
//!   `stack_kind: None` resolves to the style default; `clock_scale: 0`
//!   resolves to the per-benchmark calibration).
//!
//! Keys canonicalize `f64` knobs to their bit patterns, so a cache hit
//! requires bit-equal configuration — there is no tolerance matching,
//! and a hit therefore returns a bit-identical result (the flow itself
//! is deterministic; `tests/flow_cache.rs` asserts both properties).
//!
//! One process-wide cache ([`ArtifactCache::global`]) serves
//! [`crate::Flow::run`], every `experiments::*` driver and the
//! `paper_tables` binary; fresh instances (`ArtifactCache::default`)
//! isolate tests and benchmarks that must measure cold runs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, MetalClass, NodeId, StackKind, TechNode};

use crate::error::FlowError;
use crate::flow::{default_clock_scale_at, FlowConfig, FlowResult};

/// Cache key of one characterized cell library: every [`FlowConfig`]
/// field the library build consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibraryKey {
    node_id: NodeId,
    style: DesignStyle,
    lower_metal_rho: bool,
    pin_cap_scale_bits: u64,
}

impl LibraryKey {
    /// Builds the key from the consumed fields.
    pub fn new(
        node_id: NodeId,
        style: DesignStyle,
        lower_metal_rho: bool,
        pin_cap_scale: f64,
    ) -> Self {
        LibraryKey {
            node_id,
            style,
            lower_metal_rho,
            pin_cap_scale_bits: pin_cap_scale.to_bits(),
        }
    }
}

/// Cache key of one completed flow: the projection of
/// `(benchmark, style, FlowConfig)` onto the knobs the stage graph
/// consumes. Knobs a given flow never reads are canonicalized so they
/// cannot split the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    bench: Benchmark,
    style: DesignStyle,
    node_id: NodeId,
    bench_scale: BenchScale,
    /// Resolved: `stack_kind.unwrap_or(style.default_stack())`.
    stack_kind: StackKind,
    clock_ps_bits: Option<u64>,
    utilization_bits: Option<u64>,
    /// Canonicalized to `true` for 2D flows — only the T-MI synthesis
    /// path reads this switch (Table 15 "-n").
    tmi_wlm: bool,
    pin_cap_scale_bits: u64,
    lower_metal_rho: bool,
    alpha_ff_bits: u64,
    mb1_routing: bool,
    opt_passes: usize,
    place_iterations: usize,
    /// Resolved: `0.0` selects the per-benchmark calibration, so an
    /// explicit equal factor shares the entry.
    clock_scale_bits: u64,
}

impl FlowKey {
    /// Projects `(bench, style, config)` onto the consumed knobs.
    pub fn of(bench: Benchmark, style: DesignStyle, cfg: &FlowConfig) -> Self {
        let clock_scale = if cfg.clock_scale > 0.0 {
            cfg.clock_scale
        } else {
            default_clock_scale_at(bench, cfg.node_id)
        };
        FlowKey {
            bench,
            style,
            node_id: cfg.node_id,
            bench_scale: cfg.bench_scale,
            stack_kind: cfg.stack_kind.unwrap_or(style.default_stack()),
            clock_ps_bits: cfg.clock_ps.map(f64::to_bits),
            utilization_bits: cfg.utilization.map(f64::to_bits),
            tmi_wlm: cfg.tmi_wlm || style == DesignStyle::TwoD,
            pin_cap_scale_bits: cfg.pin_cap_scale.to_bits(),
            lower_metal_rho: cfg.lower_metal_rho,
            alpha_ff_bits: cfg.alpha_ff.to_bits(),
            mb1_routing: cfg.mb1_routing,
            opt_passes: cfg.opt_passes,
            place_iterations: cfg.place_iterations,
            clock_scale_bits: clock_scale.to_bits(),
        }
    }
}

/// A snapshot of the cache's hit/build counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cell libraries characterized from scratch.
    pub library_builds: u64,
    /// Library requests served from the cache.
    pub library_hits: u64,
    /// Completed flow results stored.
    pub flow_stores: u64,
    /// Flow lookups served from the cache.
    pub flow_hits: u64,
    /// Flow lookups that missed (and therefore ran the pipeline).
    pub flow_misses: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "libraries: {} built, {} served from cache; flows: {} run, {} served from cache",
            self.library_builds, self.library_hits, self.flow_stores, self.flow_hits
        )
    }
}

/// The shared memo layer for cell libraries and completed flow results.
///
/// Thread-safe; lookups clone an `Arc` (libraries) or the stored value
/// (flow results). Library characterization runs outside the lock, so
/// two threads racing on the same cold key may both build — the first
/// insert wins and both observe the same artifact.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    libraries: Mutex<HashMap<LibraryKey, Arc<CellLibrary>>>,
    results: Mutex<HashMap<FlowKey, Arc<FlowResult>>>,
    library_builds: AtomicU64,
    library_hits: AtomicU64,
    flow_stores: AtomicU64,
    flow_hits: AtomicU64,
    flow_misses: AtomicU64,
}

impl ArtifactCache {
    /// The process-wide cache shared by [`crate::Flow::run`], the
    /// experiment drivers and `paper_tables`.
    pub fn global() -> Arc<ArtifactCache> {
        static GLOBAL: OnceLock<Arc<ArtifactCache>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(ArtifactCache::default())))
    }

    /// The characterized library for the consumed knobs, built at most
    /// once per distinct [`LibraryKey`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Library`] when characterization or the
    /// pin-cap scaling fails.
    pub fn library(
        &self,
        node_id: NodeId,
        style: DesignStyle,
        lower_metal_rho: bool,
        pin_cap_scale: f64,
    ) -> Result<Arc<CellLibrary>, FlowError> {
        let key = LibraryKey::new(node_id, style, lower_metal_rho, pin_cap_scale);
        if let Some(hit) = self.libraries.lock().expect("cache lock").get(&key) {
            self.library_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock: characterization dominates any
        // duplicate-build race, and the first insert wins below.
        let node = {
            let n = TechNode::for_id(node_id);
            if lower_metal_rho {
                n.with_rho_scaled(&[MetalClass::Local, MetalClass::Intermediate], 0.5)
            } else {
                n
            }
        };
        let mut lib = CellLibrary::try_build(&node, style)?;
        if pin_cap_scale != 1.0 {
            lib = lib.try_with_pin_cap_scaled(pin_cap_scale)?;
        }
        self.library_builds.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(lib);
        Ok(Arc::clone(
            self.libraries
                .lock()
                .expect("cache lock")
                .entry(key)
                .or_insert(entry),
        ))
    }

    /// The stored sign-off result for this flow point, if any.
    pub fn lookup_result(
        &self,
        bench: Benchmark,
        style: DesignStyle,
        cfg: &FlowConfig,
    ) -> Option<FlowResult> {
        let key = FlowKey::of(bench, style, cfg);
        let hit = self.results.lock().expect("cache lock").get(&key).cloned();
        match &hit {
            Some(_) => self.flow_hits.fetch_add(1, Ordering::Relaxed),
            None => self.flow_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit.map(|r| (*r).clone())
    }

    /// Stores a completed sign-off result under its consumed-knob key.
    pub fn store_result(
        &self,
        bench: Benchmark,
        style: DesignStyle,
        cfg: &FlowConfig,
        result: &FlowResult,
    ) {
        self.flow_stores.fetch_add(1, Ordering::Relaxed);
        self.results
            .lock()
            .expect("cache lock")
            .insert(FlowKey::of(bench, style, cfg), Arc::new(result.clone()));
    }

    /// Drops every stored artifact and resets the counters — the cold
    /// half of a cold/warm benchmark.
    pub fn clear(&self) {
        self.libraries.lock().expect("cache lock").clear();
        self.results.lock().expect("cache lock").clear();
        for c in [
            &self.library_builds,
            &self.library_hits,
            &self.flow_stores,
            &self.flow_hits,
            &self.flow_misses,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            library_builds: self.library_builds.load(Ordering::Relaxed),
            library_hits: self.library_hits.load(Ordering::Relaxed),
            flow_stores: self.flow_stores.load(Ordering::Relaxed),
            flow_hits: self.flow_hits.load(Ordering::Relaxed),
            flow_misses: self.flow_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg45() -> FlowConfig {
        FlowConfig::new(NodeId::N45)
    }

    #[test]
    fn consumed_knob_changes_the_flow_key() {
        let base = FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &cfg45());
        let mut scaled = cfg45();
        scaled.pin_cap_scale = 0.6;
        assert_ne!(
            base,
            FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &scaled)
        );
    }

    #[test]
    fn unconsumed_knob_shares_the_flow_key() {
        // A 2D flow never reads the T-MI WLM switch…
        let mut flipped = cfg45();
        flipped.tmi_wlm = false;
        assert_eq!(
            FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &cfg45()),
            FlowKey::of(Benchmark::Des, DesignStyle::TwoD, &flipped)
        );
        // …while a T-MI flow does.
        assert_ne!(
            FlowKey::of(Benchmark::Des, DesignStyle::Tmi, &cfg45()),
            FlowKey::of(Benchmark::Des, DesignStyle::Tmi, &flipped)
        );
    }

    #[test]
    fn resolved_defaults_share_the_flow_key() {
        let mut explicit = cfg45();
        explicit.stack_kind = Some(DesignStyle::Tmi.default_stack());
        explicit.clock_scale = default_clock_scale_at(Benchmark::Aes, NodeId::N45);
        assert_eq!(
            FlowKey::of(Benchmark::Aes, DesignStyle::Tmi, &cfg45()),
            FlowKey::of(Benchmark::Aes, DesignStyle::Tmi, &explicit)
        );
    }

    #[test]
    fn library_is_built_once_per_key() {
        let cache = ArtifactCache::default();
        let a = cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        let b = cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
            .expect("library builds");
        assert!(Arc::ptr_eq(&a, &b), "second request must be a cache hit");
        let stats = cache.stats();
        assert_eq!(stats.library_builds, 1);
        assert_eq!(stats.library_hits, 1);

        // A consumed-knob change builds a distinct artifact.
        let c = cache
            .library(NodeId::N45, DesignStyle::TwoD, false, 0.6)
            .expect("library builds");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().library_builds, 2);
    }
}
