use serde::{Deserialize, Serialize};

use m3d_cells::{CellFunction, CellLibrary};
use m3d_extract::extract_net;
use m3d_geom::Point;
use m3d_netlist::{BenchScale, Benchmark, NetDriver, NetId, Netlist};
use m3d_place::{Placement, Placer};
use m3d_power::{analyze_power, PowerConfig, PowerReport};
use m3d_route::{LayerUsage, RoutedDesign, Router};
use m3d_sta::{
    analyze, plan_load_sizing, plan_power_recovery, plan_timing_moves, NetModel, OptMove,
    TimingConfig,
};
use m3d_synth::{synthesize, SynthConfig, WireLoadModel};
use m3d_tech::{DesignStyle, MetalClass, MetalStack, NodeId, StackKind, TechNode, WireRc};

/// Configuration of one full-flow run — every knob the paper sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Process node.
    pub node_id: NodeId,
    /// Benchmark size (paper-scale or reduced).
    pub bench_scale: BenchScale,
    /// Metal stack override (`None` = the style's default; `TmiPlusM`
    /// reproduces Table 17).
    pub stack_kind: Option<StackKind>,
    /// Clock period override, ps (`None` = the benchmark's Table 12
    /// target; Fig. 4 sweeps this).
    pub clock_ps: Option<f64>,
    /// Placement utilization override.
    pub utilization: Option<f64>,
    /// Synthesize T-MI designs with their own (shorter) WLM. Setting this
    /// to `false` reproduces the "-n" rows of Table 15.
    pub tmi_wlm: bool,
    /// Input pin-capacitance scale (Table 8: 0.8 / 0.6 / 0.4).
    pub pin_cap_scale: f64,
    /// Halve local+intermediate resistivity (Table 9 "-m").
    pub lower_metal_rho: bool,
    /// Flop-output switching activity (Fig. 11 sweeps 0.1-0.4).
    pub alpha_ff: f64,
    /// Allow MB1/MIV routing escapes (the supplement's S5 blockage study
    /// turns these off).
    pub mb1_routing: bool,
    /// Post-route optimization pass budget.
    pub opt_passes: usize,
    /// Global-placement iterations.
    pub place_iterations: usize,
    /// Multiplier applied to all clock targets. `0.0` (the default) uses
    /// a per-benchmark calibration: the toolkit's library and optimizer
    /// differ from the paper's Nangate + Encounter setup, so each
    /// benchmark's paper clock is rescaled to the tightest period the 2D
    /// flow still closes — reproducing the paper's iso-performance
    /// *pressure*. Every relative (2D vs T-MI) result is measured at the
    /// same period. Documented in DESIGN.md/EXPERIMENTS.md.
    pub clock_scale: f64,
}

impl FlowConfig {
    /// Paper-default configuration for a node.
    pub fn new(node_id: NodeId) -> Self {
        FlowConfig {
            node_id,
            bench_scale: BenchScale::Paper,
            stack_kind: None,
            clock_ps: None,
            utilization: None,
            tmi_wlm: true,
            pin_cap_scale: 1.0,
            lower_metal_rho: false,
            alpha_ff: 0.1,
            mb1_routing: true,
            opt_passes: 4,
            place_iterations: 120,
            clock_scale: 0.0,
        }
    }

    /// Sets the benchmark scale.
    pub fn scale(mut self, scale: BenchScale) -> Self {
        self.bench_scale = scale;
        // Reduced designs settle with fewer placement iterations.
        if scale == BenchScale::Small {
            self.place_iterations = 40;
        }
        self
    }

    /// Overrides the target clock period, ps.
    pub fn clock(mut self, ps: f64) -> Self {
        self.clock_ps = Some(ps);
        self
    }

    /// Builds the technology node with this config's overrides applied.
    pub fn tech_node(&self) -> TechNode {
        let node = TechNode::for_id(self.node_id);
        if self.lower_metal_rho {
            node.with_rho_scaled(&[MetalClass::Local, MetalClass::Intermediate], 0.5)
        } else {
            node
        }
    }
}

/// The sign-off summary of one flow run — one row of the paper's
/// Tables 13/14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowResult {
    /// Benchmark name.
    pub bench: Benchmark,
    /// 2D or T-MI.
    pub style: DesignStyle,
    /// Node.
    pub node_id: NodeId,
    /// Clock period the run closed against, ps.
    pub clock_ps: f64,
    /// Core footprint, µm².
    pub footprint_um2: f64,
    /// Core width × height, µm.
    pub core_um: (f64, f64),
    /// Final cell count (including inserted repeaters).
    pub cell_count: usize,
    /// Repeater/buffer count (paper "#buffers").
    pub buffer_count: usize,
    /// Final placement utilization.
    pub utilization: f64,
    /// Total routed wirelength, µm.
    pub wirelength_um: f64,
    /// Worst negative slack at sign-off, ps (>= 0 means timing met).
    pub wns_ps: f64,
    /// Worst hold slack at sign-off, ps.
    pub hold_wns_ps: f64,
    /// Power breakdown.
    pub power: PowerReport,
    /// Per-class metal usage.
    pub layer_usage: LayerUsage,
    /// The WLM curve used at synthesis (Fig. 6 data).
    pub wlm_curve: Vec<f64>,
}

impl FlowResult {
    /// Total power, mW.
    pub fn total_power_mw(&self) -> f64 {
        self.power.total_mw()
    }

    /// Wirelength in metres (the paper's Table 5 unit).
    pub fn wirelength_m(&self) -> f64 {
        self.wirelength_um * 1e-6
    }

    /// Longest path delay, ns.
    pub fn longest_path_ns(&self) -> f64 {
        (self.clock_ps - self.wns_ps) * 1e-3
    }
}

/// The full design-and-analysis pipeline for one benchmark at one
/// (node, style) point: library preparation, WLM-guided synthesis,
/// placement, pre-route optimization, routing, post-route optimization,
/// power recovery, and sign-off timing/power (paper Fig. 1).
#[derive(Debug)]
pub struct Flow {
    bench: Benchmark,
    style: DesignStyle,
    config: FlowConfig,
}

impl Flow {
    /// Creates a flow for a benchmark and style.
    pub fn new(bench: Benchmark, style: DesignStyle, config: FlowConfig) -> Self {
        Flow {
            bench,
            style,
            config,
        }
    }

    /// Runs the pipeline end to end.
    pub fn run(&self) -> FlowResult {
        let cfg = &self.config;
        let node = cfg.tech_node();
        let stack_kind = cfg.stack_kind.unwrap_or(self.style.default_stack());
        let stack = MetalStack::new(&node, stack_kind);
        let mut lib = CellLibrary::build(&node, self.style);
        if cfg.pin_cap_scale != 1.0 {
            lib = lib.with_pin_cap_scaled(cfg.pin_cap_scale);
        }
        let scale = if cfg.clock_scale > 0.0 {
            cfg.clock_scale
        } else {
            default_clock_scale_at(self.bench, cfg.node_id)
        };
        let clock_ps = cfg
            .clock_ps
            .unwrap_or_else(|| self.bench.target_clock_ps(cfg.node_id))
            * scale;
        let utilization = cfg
            .utilization
            .unwrap_or_else(|| self.bench.target_utilization());

        // --- Synthesis with a measured wire-load model. ---
        let raw = self.bench.generate(&lib, cfg.bench_scale);
        let wlm = if cfg.tmi_wlm || self.style == DesignStyle::TwoD {
            let prelim = Placer::new(&lib)
                .utilization(utilization)
                .iterations(16)
                .place(&raw);
            WireLoadModel::from_placement(&raw, &prelim)
        } else {
            // Table 15 "-n": synthesize the T-MI design against the WLM
            // measured on the *2D* implementation.
            let lib2d = CellLibrary::build(&node, DesignStyle::TwoD);
            let raw2d = self.bench.generate(&lib2d, cfg.bench_scale);
            let prelim = Placer::new(&lib2d)
                .utilization(utilization)
                .iterations(16)
                .place(&raw2d);
            WireLoadModel::from_placement(&raw2d, &prelim)
        };
        let mut netlist = synthesize(raw, &lib, &wlm, &SynthConfig::new(clock_ps));

        let timing = TimingConfig::new(clock_ps);
        // Per-stage delay target for load-based sizing: a share of the
        // clock budget divided by the design's logic depth.
        let tau_ps = {
            let (levels, _) = m3d_netlist::levelize(&netlist, &lib)
                .expect("combinational cycle in design");
            let depth = levels.iter().copied().max().unwrap_or(1) as f64 + 3.0;
            (0.55 * clock_ps / depth).clamp(20.0, 200.0)
        };
        let router = if cfg.mb1_routing {
            Router::new(&node, &stack)
        } else {
            Router::new(&node, &stack).without_mb1()
        };

        // --- Physical implementation, run as up to two floorplan rounds:
        // the first round sizes the design; if optimization and power
        // recovery moved the cell area materially, a second round rebuilds
        // the core at the target utilization for the *final* netlist (the
        // footprint the paper reports is that final core) and re-closes
        // timing on it. ---
        let mut placement;
        #[allow(unused_assignments)] // re-routed at sign-off
        let mut routed;
        #[allow(unused_assignments)] // re-extracted at sign-off
        let mut models;
        let mut round = 0;
        let mut round1_best: Option<(Netlist, Placement, f64)> = None;
        loop {
            placement = Placer::new(&lib)
                .utilization(utilization)
                .iterations(cfg.place_iterations)
                .place(&netlist);

            // Load-based sizing, gated on need: map drivers to their
            // placed loads only while the design misses its clock
            // (iterated because sizing moves the loads).
            for _ in 0..3 {
                let est = estimate_models(&netlist, &placement, &node, &stack);
                let report = analyze(&netlist, &lib, &est, &timing);
                if report.met() {
                    break;
                }
                let moves = plan_load_sizing(&netlist, &lib, &est, tau_ps);
                if moves.is_empty() {
                    break;
                }
                apply_moves(&mut netlist, &mut placement, &lib, &moves);
            }

            // Pre-route optimization on placement-based estimates.
            // Passes are accept/reject: a pass that does not improve WNS
            // is rolled back and the loop stops.
            let mut last_wns = f64::NEG_INFINITY;
            for pass in 0..cfg.opt_passes {
                let est = estimate_models(&netlist, &placement, &node, &stack);
                let report = analyze(&netlist, &lib, &est, &timing);
                if report.met() {
                    break;
                }
                if pass > 0 && report.wns <= last_wns {
                    break;
                }
                last_wns = report.wns;
                let limit = 3000.max(netlist.net_count() / 4);
                let moves = plan_timing_moves(&netlist, &lib, &est, &report, limit);
                if moves.is_empty() {
                    break;
                }
                let saved = (netlist.clone(), placement.clone());
                apply_moves(&mut netlist, &mut placement, &lib, &moves);
                let est2 = estimate_models(&netlist, &placement, &node, &stack);
                let report2 = analyze(&netlist, &lib, &est2, &timing);
                if report2.wns < report.wns {
                    netlist = saved.0;
                    placement = saved.1;
                    break;
                }
            }

            // Routing, with one load-sizing round against extracted loads.
            routed = router.route(&netlist, &placement, &lib);
            models = extraction_models(&netlist, &routed, &node);
            for _ in 0..2 {
                let report = analyze(&netlist, &lib, &models, &timing);
                if report.met() {
                    break;
                }
                let moves = plan_load_sizing(&netlist, &lib, &models, tau_ps);
                if moves.is_empty() {
                    break;
                }
                apply_moves(&mut netlist, &mut placement, &lib, &moves);
            }
            routed = router.route(&netlist, &placement, &lib);
            models = extraction_models(&netlist, &routed, &node);

            // Post-route optimization (accept/reject passes).
            for _ in 0..cfg.opt_passes {
                let report = analyze(&netlist, &lib, &models, &timing);
                if report.met() {
                    break;
                }
                let limit = 2000.max(netlist.net_count() / 4);
                let moves = plan_timing_moves(&netlist, &lib, &models, &report, limit);
                if moves.is_empty() {
                    break;
                }
                let saved = (netlist.clone(), placement.clone());
                apply_moves(&mut netlist, &mut placement, &lib, &moves);
                let new_routed = router.route(&netlist, &placement, &lib);
                let new_models = extraction_models(&netlist, &new_routed, &node);
                let report2 = analyze(&netlist, &lib, &new_models, &timing);
                if report2.wns < report.wns {
                    netlist = saved.0;
                    placement = saved.1;
                    break;
                }
                models = new_models;
                drop(new_routed); // sign-off re-routes the final netlist
            }

            // Iso-performance power recovery: repeatedly downsize cells
            // with slack until nothing more fits ("with a better timing,
            // cells are downsized", Section 4.1), verified per round.
            let recovery_batch = 500.max(netlist.instance_count() / 6);
            for _ in 0..20 {
                let report = analyze(&netlist, &lib, &models, &timing);
                if !report.met() {
                    break;
                }
                let margin = 0.02 * clock_ps;
                let moves =
                    plan_power_recovery(&netlist, &lib, &report, margin, recovery_batch);
                if moves.is_empty() {
                    break;
                }
                let saved = netlist.clone();
                apply_moves(&mut netlist, &mut placement, &lib, &moves);
                let check = analyze(&netlist, &lib, &models, &timing);
                if !check.met() {
                    netlist = saved;
                    break;
                }
            }

            // Second round only when the area drifted from the core basis.
            round += 1;
            let wns_now = analyze(&netlist, &lib, &models, &timing).wns;
            if round >= 2 {
                // Keep whichever round closed better (round 2 can fail on
                // stubborn designs; fall back to the round-1 result).
                if let Some((n1, p1, w1)) = round1_best.take() {
                    if wns_now < w1.min(0.0) {
                        // Sign-off below re-routes and re-extracts.
                        netlist = n1;
                        placement = p1;
                    }
                }
                break;
            }
            let area_now: f64 = netlist.total_cell_area(&lib);
            let basis = area_now / placement.footprint_um2();
            if (basis / utilization - 1.0).abs() <= 0.10 {
                break;
            }
            round1_best = Some((netlist.clone(), placement.clone(), wns_now));
        }

        // --- Sign-off. ---
        routed = router.route(&netlist, &placement, &lib);
        models = extraction_models(&netlist, &routed, &node);
        let report = analyze(&netlist, &lib, &models, &timing);
        let power = analyze_power(
            &netlist,
            &lib,
            &models,
            &PowerConfig::new(clock_ps).with_alpha_ff(cfg.alpha_ff),
        );
        let stats = netlist.stats(&lib);
        FlowResult {
            bench: self.bench,
            style: self.style,
            node_id: cfg.node_id,
            clock_ps,
            hold_wns_ps: report.hold_wns,
            footprint_um2: placement.footprint_um2(),
            core_um: (
                placement.core.width() as f64 * 1e-3,
                placement.core.height() as f64 * 1e-3,
            ),
            cell_count: stats.cell_count,
            buffer_count: stats.buffer_count,
            utilization: placement.utilization,
            wirelength_um: routed.total_wirelength_um(),
            wns_ps: report.wns,
            power,
            layer_usage: LayerUsage::of(&routed),
            wlm_curve: wlm.curve().to_vec(),
        }
    }
}

/// The tightest-closing clock calibration per benchmark and node (see
/// [`FlowConfig::clock_scale`]). The 7 nm paper targets assume the full
/// ITRS device speed-up under a commercial optimizer; this toolkit's
/// optimizer needs more headroom there, so the 7 nm factors are larger.
pub fn default_clock_scale_at(bench: Benchmark, node: NodeId) -> f64 {
    let k45 = match bench {
        Benchmark::Fpu => 2.5,
        Benchmark::Aes => 4.0,
        Benchmark::Ldpc => 2.0,
        Benchmark::Des => 2.5,
        Benchmark::M256 => 4.5,
    };
    match node {
        NodeId::N45 => k45,
        NodeId::N7 => k45 * 2.0,
    }
}

/// The 45 nm calibration (kept for compatibility; see
/// [`default_clock_scale_at`]).
pub fn default_clock_scale(bench: Benchmark) -> f64 {
    default_clock_scale_at(bench, NodeId::N45)
}

/// Placement-based net models: HPWL with a routing detour, unit RC from
/// the metal class a net of that length rides.
pub fn estimate_models(
    netlist: &Netlist,
    placement: &Placement,
    node: &TechNode,
    stack: &MetalStack,
) -> Vec<NetModel> {
    let s = node.dimension_scale();
    let thresholds = (30.0 * s, 140.0 * s);
    let rc_of = |class: MetalClass| {
        let layer = stack
            .layers_of(class)
            .next()
            .expect("class in stack");
        WireRc::for_layer(node, layer)
    };
    let rcs = [
        rc_of(MetalClass::Local),
        rc_of(MetalClass::Intermediate),
        rc_of(MetalClass::Global),
    ];
    netlist
        .net_ids()
        .map(|id| {
            let len = placement.net_hpwl_um(netlist, id) * 1.1;
            let rc = if len <= thresholds.0 {
                rcs[0]
            } else if len <= thresholds.1 {
                rcs[1]
            } else {
                rcs[2]
            };
            NetModel {
                c_wire: rc.capacitance(len),
                r_wire: rc.resistance(len),
            }
        })
        .collect()
}

/// Sign-off net models from routed-segment extraction.
pub fn extraction_models(
    netlist: &Netlist,
    routed: &RoutedDesign,
    node: &TechNode,
) -> Vec<NetModel> {
    netlist
        .net_ids()
        .map(|id| {
            let rn = routed.net(id);
            let p = extract_net(node, &routed.stack, &rn.segments, rn.via_count);
            // extract_net sums all segments in series (trunk model); a
            // multi-sink net branches, so the driver-to-worst-sink
            // resistance is closer to total / sqrt(fanout).
            let sinks = netlist.net(id).sinks.len().max(1) as f64;
            NetModel {
                c_wire: p.c_wire,
                r_wire: p.r_wire / sinks.sqrt(),
            }
        })
        .collect()
}

/// Applies planned moves, keeping placement positions in sync (repeaters
/// land along the driver-to-sinks span).
pub(crate) fn apply_moves(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &CellLibrary,
    moves: &[OptMove],
) {
    let buf = lib.smallest(CellFunction::Buf);
    for &m in moves {
        match m {
            OptMove::Upsize(inst) => {
                if let Some((bigger, _)) = lib.upsize(netlist.inst(inst).cell) {
                    netlist.resize(inst, bigger, lib);
                }
            }
            OptMove::Downsize(inst) => {
                if let Some((smaller, _)) = lib.downsize(netlist.inst(inst).cell) {
                    netlist.resize(inst, smaller, lib);
                }
            }
            OptMove::BufferNet { net, repeaters } => {
                insert_repeater_chain(netlist, placement, lib, net, repeaters.min(3), buf);
            }
        }
    }
}

fn insert_repeater_chain(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &CellLibrary,
    net: NetId,
    stages: u32,
    buf: m3d_cells::CellId,
) {
    if stages == 0 {
        return;
    }
    let driver_pos = match netlist.net(net).driver {
        NetDriver::Cell { inst, .. } => placement.pos(inst),
        NetDriver::Port(p) => placement
            .port_positions
            .get(p as usize)
            .copied()
            .unwrap_or(Point::ORIGIN),
        NetDriver::None => return,
    };
    // High-fanout nets get a geometric split: one repeater per populated
    // quadrant around the sink centroid, each placed at its group's
    // centroid. Iterated over optimization passes this grows a balanced
    // fanout tree instead of a serial chain.
    {
        let sinks = &netlist.net(net).sinks;
        if sinks.len() >= 8 {
            let centroid = {
                let (mut sx, mut sy) = (0i64, 0i64);
                for s in sinks {
                    let p = placement.pos(s.inst);
                    sx += p.x;
                    sy += p.y;
                }
                Point::new(sx / sinks.len() as i64, sy / sinks.len() as i64)
            };
            let mut quadrants: [Vec<usize>; 4] = Default::default();
            let mut quad_sum: [(i64, i64); 4] = [(0, 0); 4];
            for (i, s) in sinks.iter().enumerate() {
                let p = placement.pos(s.inst);
                let q = (usize::from(p.x >= centroid.x)) | (usize::from(p.y >= centroid.y) << 1);
                quadrants[q].push(i);
                quad_sum[q].0 += p.x;
                quad_sum[q].1 += p.y;
            }
            // Insert from the highest sink index down so the stored sink
            // indices stay valid across insertions.
            let mut groups: Vec<(Vec<usize>, Point)> = quadrants
                .into_iter()
                .zip(quad_sum)
                .filter(|(g, _)| !g.is_empty())
                .map(|(g, (sx, sy))| {
                    let n = g.len() as i64;
                    (g, Point::new(sx / n, sy / n))
                })
                .collect();
            if groups.len() >= 2 {
                // Only meaningful when the net actually splits.
                groups.sort_by_key(|(g, _)| std::cmp::Reverse(g.iter().copied().max()));
                // Removing sinks from the net changes later indices; take
                // groups against a stable snapshot by processing the net
                // once per group with recomputed indices.
                for (_, gpos) in &groups {
                    // Recompute current sink indices belonging to this
                    // quadrant (those nearest gpos).
                    let cur = &netlist.net(net).sinks;
                    if cur.len() < 2 {
                        break;
                    }
                    let mut take: Vec<usize> = cur
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| {
                            let p = placement.pos(s.inst);
                            let q_x = p.x >= centroid.x;
                            let q_y = p.y >= centroid.y;
                            q_x == (gpos.x >= centroid.x) && q_y == (gpos.y >= centroid.y)
                        })
                        .map(|(i, _)| i)
                        .collect();
                    if take.is_empty() || take.len() == cur.len() {
                        continue;
                    }
                    take.sort_unstable();
                    let (_, _new_net) = netlist.insert_repeater(net, &take, buf, lib);
                    placement.push_pos(*gpos);
                }
                return;
            }
        }
    }
    // Split off the farther half of the sinks (at least one).
    let sinks = &netlist.net(net).sinks;
    if sinks.is_empty() {
        return;
    }
    let mut by_dist: Vec<(usize, i64)> = sinks
        .iter()
        .enumerate()
        .map(|(i, s)| (i, driver_pos.manhattan(placement.pos(s.inst))))
        .collect();
    by_dist.sort_by_key(|&(_, d)| d);
    let keep = if by_dist.len() == 1 { 0 } else { by_dist.len() / 2 };
    let far: Vec<usize> = by_dist[keep..].iter().map(|&(i, _)| i).collect();
    if far.is_empty() {
        return;
    }
    // Centroid of the far group.
    let far_centroid = {
        let (mut sx, mut sy) = (0i64, 0i64);
        for &(i, _) in &by_dist[keep..] {
            let p = placement.pos(sinks[i].inst);
            sx += p.x;
            sy += p.y;
        }
        let n = (by_dist.len() - keep) as i64;
        Point::new(sx / n, sy / n)
    };
    // Chain of `stages` repeaters evenly spaced driver -> centroid.
    let mut current = net;
    let mut moved = far;
    for k in 0..stages {
        let (_inst, new_net) = netlist.insert_repeater(current, &moved, buf, lib);
        let t = (k as f64 + 1.0) / (stages as f64 + 1.0);
        let pos = Point::new(
            driver_pos.x + ((far_centroid.x - driver_pos.x) as f64 * t) as i64,
            driver_pos.y + ((far_centroid.y - driver_pos.y) as f64 * t) as i64,
        );
        placement.push_pos(pos);
        current = new_net;
        // Subsequent stages drive the whole moved group.
        moved = (0..netlist.net(current).sinks.len()).collect();
        if netlist.net(current).sinks.len() < 2 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FlowConfig {
        FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
    }

    #[test]
    fn flow_runs_and_closes_timing_on_small_aes() {
        let r = Flow::new(Benchmark::Aes, DesignStyle::TwoD, small_cfg()).run();
        assert!(r.footprint_um2 > 0.0);
        assert!(r.wirelength_um > 0.0);
        assert!(r.total_power_mw() > 0.0);
        assert!(r.wns_ps > -0.05 * r.clock_ps, "timing badly violated: {} ps", r.wns_ps);
        assert!(r.cell_count > 100);
    }

    #[test]
    fn tmi_flow_shrinks_footprint_and_wirelength() {
        let two_d = Flow::new(Benchmark::Aes, DesignStyle::TwoD, small_cfg()).run();
        let tmi = Flow::new(Benchmark::Aes, DesignStyle::Tmi, small_cfg()).run();
        let fp = tmi.footprint_um2 / two_d.footprint_um2;
        assert!(fp < 0.75, "footprint ratio {fp}");
        let wl = tmi.wirelength_um / two_d.wirelength_um;
        assert!(wl < 0.95, "wirelength ratio {wl}");
    }

    #[test]
    fn faster_clock_costs_power() {
        let base = small_cfg();
        let slow = Flow::new(Benchmark::Aes, DesignStyle::TwoD, base.clone().clock(2000.0)).run();
        let fast = Flow::new(Benchmark::Aes, DesignStyle::TwoD, base.clock(900.0)).run();
        assert!(fast.total_power_mw() > slow.total_power_mw());
    }

    #[test]
    fn pin_cap_scale_reduces_pin_power() {
        let mut cfg = small_cfg();
        cfg.pin_cap_scale = 0.5;
        let scaled = Flow::new(Benchmark::Des, DesignStyle::TwoD, cfg).run();
        let base = Flow::new(Benchmark::Des, DesignStyle::TwoD, small_cfg()).run();
        assert!(scaled.power.pin_mw < base.power.pin_mw);
    }
}
