//! The flow façade: configuration, result type, and the thin [`Flow`]
//! wrapper over the stage graph.
//!
//! Stage bodies live in [`crate::stage`]; sequencing, retry and
//! degradation live in [`crate::supervisor`]; memoization lives in
//! [`crate::cache`]. This module keeps the public entry points
//! (`Flow::run` / `try_run`) plus the numerical helpers the stages
//! share (net-model estimation, extraction, move application).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use m3d_cells::{CellFunction, CellLibrary};
use m3d_extract::{try_extract_net, ExtractError};
use m3d_geom::Point;
use m3d_netlist::{BenchScale, Benchmark, NetDriver, NetId, Netlist};
use m3d_place::Placement;
use m3d_power::PowerReport;
use m3d_route::{LayerUsage, RoutedDesign};
use m3d_sta::{NetModel, OptMove, TimingConfig};
use m3d_tech::{DesignStyle, MetalClass, MetalStack, NodeId, StackKind, TechNode, WireRc};

use crate::cache::ArtifactCache;
use crate::error::{ConfigError, FlowError};
use crate::supervisor::{FlowSupervisor, SupervisorPolicy};

/// Configuration of one full-flow run — every knob the paper sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Process node.
    pub node_id: NodeId,
    /// Benchmark size (paper-scale or reduced).
    pub bench_scale: BenchScale,
    /// Metal stack override (`None` = the style's default; `TmiPlusM`
    /// reproduces Table 17).
    pub stack_kind: Option<StackKind>,
    /// Clock period override, ps (`None` = the benchmark's Table 12
    /// target; Fig. 4 sweeps this).
    pub clock_ps: Option<f64>,
    /// Placement utilization override.
    pub utilization: Option<f64>,
    /// Synthesize T-MI designs with their own (shorter) WLM. Setting this
    /// to `false` reproduces the "-n" rows of Table 15.
    pub tmi_wlm: bool,
    /// Input pin-capacitance scale (Table 8: 0.8 / 0.6 / 0.4).
    pub pin_cap_scale: f64,
    /// Halve local+intermediate resistivity (Table 9 "-m").
    pub lower_metal_rho: bool,
    /// Flop-output switching activity (Fig. 11 sweeps 0.1-0.4).
    pub alpha_ff: f64,
    /// Allow MB1/MIV routing escapes (the supplement's S5 blockage study
    /// turns these off).
    pub mb1_routing: bool,
    /// Post-route optimization pass budget.
    pub opt_passes: usize,
    /// Global-placement iterations.
    pub place_iterations: usize,
    /// Multiplier applied to all clock targets. `0.0` (the default) uses
    /// a per-benchmark calibration: the toolkit's library and optimizer
    /// differ from the paper's Nangate + Encounter setup, so each
    /// benchmark's paper clock is rescaled to the tightest period the 2D
    /// flow still closes — reproducing the paper's iso-performance
    /// *pressure*. Every relative (2D vs T-MI) result is measured at the
    /// same period. Documented in DESIGN.md/EXPERIMENTS.md.
    pub clock_scale: f64,
}

impl FlowConfig {
    /// Paper-default configuration for a node.
    pub fn new(node_id: NodeId) -> Self {
        FlowConfig {
            node_id,
            bench_scale: BenchScale::Paper,
            stack_kind: None,
            clock_ps: None,
            utilization: None,
            tmi_wlm: true,
            pin_cap_scale: 1.0,
            lower_metal_rho: false,
            alpha_ff: 0.1,
            mb1_routing: true,
            opt_passes: 4,
            place_iterations: 120,
            clock_scale: 0.0,
        }
    }

    /// Sets the benchmark scale.
    pub fn scale(mut self, scale: BenchScale) -> Self {
        self.bench_scale = scale;
        // Reduced designs settle with fewer placement iterations.
        if scale == BenchScale::Small {
            self.place_iterations = 40;
        }
        self
    }

    /// Overrides the target clock period, ps.
    pub fn clock(mut self, ps: f64) -> Self {
        self.clock_ps = Some(ps);
        self
    }

    /// Builds the technology node with this config's overrides applied.
    pub fn tech_node(&self) -> TechNode {
        let node = TechNode::for_id(self.node_id);
        if self.lower_metal_rho {
            node.with_rho_scaled(&[MetalClass::Local, MetalClass::Intermediate], 0.5)
        } else {
            node
        }
    }

    /// Rejects configurations no flow stage can run against. Called by
    /// [`Flow::try_run`] before any stage starts, so degenerate knobs
    /// surface as one typed error instead of NaN propagation or a panic
    /// deep inside a stage.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Config`] naming the offending knob.
    pub fn validate(&self) -> Result<(), FlowError> {
        let registry = m3d_tech::PdkRegistry::global();
        if !registry.contains(self.node_id) {
            return Err(ConfigError::UnknownNode {
                node: self.node_id.label().to_string(),
                known: registry.names().iter().map(|n| n.to_string()).collect(),
            }
            .into());
        }
        if let Some(c) = self.clock_ps {
            if !c.is_finite() || c <= 0.0 {
                return Err(ConfigError::BadClock(c).into());
            }
        }
        if let Some(u) = self.utilization {
            if !u.is_finite() || u <= 0.0 || u > 1.0 {
                return Err(ConfigError::BadUtilization(u).into());
            }
        }
        if !self.pin_cap_scale.is_finite() || self.pin_cap_scale <= 0.0 {
            return Err(ConfigError::BadPinCapScale(self.pin_cap_scale).into());
        }
        if !self.alpha_ff.is_finite() || !(0.0..=1.0).contains(&self.alpha_ff) {
            return Err(ConfigError::BadAlphaFf(self.alpha_ff).into());
        }
        if self.place_iterations == 0 {
            return Err(ConfigError::ZeroPlaceIterations.into());
        }
        if !self.clock_scale.is_finite() || self.clock_scale < 0.0 {
            return Err(ConfigError::BadClockScale(self.clock_scale).into());
        }
        Ok(())
    }
}

/// The sign-off summary of one flow run — one row of the paper's
/// Tables 13/14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowResult {
    /// Benchmark name.
    pub bench: Benchmark,
    /// 2D or T-MI.
    pub style: DesignStyle,
    /// Node.
    pub node_id: NodeId,
    /// Clock period the run closed against, ps.
    pub clock_ps: f64,
    /// Core footprint, µm².
    pub footprint_um2: f64,
    /// Core width × height, µm.
    pub core_um: (f64, f64),
    /// Final cell count (including inserted repeaters).
    pub cell_count: usize,
    /// Repeater/buffer count (paper "#buffers").
    pub buffer_count: usize,
    /// Final placement utilization.
    pub utilization: f64,
    /// Total routed wirelength, µm.
    pub wirelength_um: f64,
    /// Worst negative slack at sign-off, ps (>= 0 means timing met).
    pub wns_ps: f64,
    /// Worst hold slack at sign-off, ps.
    pub hold_wns_ps: f64,
    /// Power breakdown.
    pub power: PowerReport,
    /// Per-class metal usage.
    pub layer_usage: LayerUsage,
    /// The WLM curve used at synthesis (Fig. 6 data).
    pub wlm_curve: Vec<f64>,
}

impl FlowResult {
    /// Total power, mW.
    pub fn total_power_mw(&self) -> f64 {
        self.power.total_mw()
    }

    /// Wirelength in metres (the paper's Table 5 unit).
    pub fn wirelength_m(&self) -> f64 {
        self.wirelength_um * 1e-6
    }

    /// Longest path delay, ns.
    pub fn longest_path_ns(&self) -> f64 {
        (self.clock_ps - self.wns_ps) * 1e-3
    }
}

/// The resolved run environment: validated knobs, characterized library
/// (shared through the [`ArtifactCache`]), metal stack. Built once by
/// the library stage; the supervisor mutates the effective `clock_ps` /
/// `utilization` / `opt_passes` when walking its degradation ladder.
#[derive(Debug, Clone)]
pub(crate) struct FlowEnv {
    pub(crate) node: TechNode,
    pub(crate) stack: MetalStack,
    pub(crate) lib: Arc<CellLibrary>,
    /// Effective clock period, ps (override or calibrated target).
    pub(crate) clock_ps: f64,
    /// Effective placement utilization target.
    pub(crate) utilization: f64,
    /// Effective optimization pass budget.
    pub(crate) opt_passes: usize,
}

impl FlowEnv {
    /// Timing constraints at the effective clock.
    pub(crate) fn timing(&self) -> TimingConfig {
        TimingConfig::new(self.clock_ps)
    }
}

/// The full design-and-analysis pipeline for one benchmark at one
/// (node, style) point: library preparation, WLM-guided synthesis,
/// placement, pre-route optimization, routing, post-route optimization,
/// power recovery, and sign-off timing/power (paper Fig. 1).
///
/// `Flow` is a thin wrapper: the stage bodies live in the
/// [`crate::StageGraph`], sequencing lives in [`crate::FlowSupervisor`],
/// and completed results are shared through the [`ArtifactCache`].
#[derive(Debug)]
pub struct Flow {
    bench: Benchmark,
    style: DesignStyle,
    config: FlowConfig,
}

impl Flow {
    /// Creates a flow for a benchmark and style.
    pub fn new(bench: Benchmark, style: DesignStyle, config: FlowConfig) -> Self {
        Flow {
            bench,
            style,
            config,
        }
    }

    /// Runs the pipeline end to end.
    ///
    /// # Panics
    ///
    /// Panics when any stage fails; see [`Flow::try_run`] for the
    /// fallible form.
    pub fn run(&self) -> FlowResult {
        self.try_run()
            .unwrap_or_else(|e| panic!("flow failed: {e}"))
    }

    /// Runs the pipeline end to end, reporting the first stage failure
    /// instead of panicking.
    ///
    /// Checks the process-wide [`ArtifactCache`] first: a flow point
    /// already signed off under an equivalent configuration returns the
    /// stored (bit-identical) result without re-running any stage. On a
    /// miss, executes exactly the stage sequence [`Flow::run`] executes
    /// — one attempt per stage, no recovery — and stores the result.
    /// Supervised retry, checkpointed resume, and the degradation
    /// ladder live in [`crate::FlowSupervisor`], which drives the same
    /// stage graph.
    ///
    /// # Errors
    ///
    /// Returns the [`FlowError`] of the first failing stage.
    pub fn try_run(&self) -> Result<FlowResult, FlowError> {
        self.try_run_with_cache(&ArtifactCache::global())
    }

    /// [`Flow::try_run`] against an explicit cache — the process-wide
    /// one for sharing, or a fresh [`ArtifactCache::default`] for
    /// isolated cold runs.
    ///
    /// # Errors
    ///
    /// Returns the [`FlowError`] of the first failing stage.
    pub fn try_run_with_cache(&self, cache: &Arc<ArtifactCache>) -> Result<FlowResult, FlowError> {
        // Validate before the lookup so degenerate configs always
        // surface as errors and never touch the key space.
        self.config.validate()?;
        if let Some(hit) = cache.lookup_result(self.bench, self.style, &self.config) {
            return Ok(hit);
        }
        let result = FlowSupervisor::new(self.bench, self.style, self.config.clone())
            .policy(SupervisorPolicy::strict())
            .with_cache(Arc::clone(cache))
            .run()
            .into_result()?;
        cache.store_result(self.bench, self.style, &self.config, &result);
        Ok(result)
    }

    /// Runs the pipeline with no memoization at all: a private, empty
    /// cache, so every artifact (cell library included) is rebuilt.
    /// This is what criterion benchmarks call — a cached run would
    /// measure a hash lookup, not the flow.
    ///
    /// # Panics
    ///
    /// Panics when any stage fails.
    pub fn run_uncached(&self) -> FlowResult {
        self.try_run_with_cache(&Arc::new(ArtifactCache::default()))
            .unwrap_or_else(|e| panic!("flow failed: {e}"))
    }
}

/// The tightest-closing clock calibration per benchmark and node (see
/// [`FlowConfig::clock_scale`]). The per-benchmark 45 nm base factor is
/// multiplied by the node PDK's [`m3d_tech::Pdk::clock_scale_mult`] —
/// the 7 nm paper targets assume the full ITRS device speed-up under a
/// commercial optimizer; this toolkit's optimizer needs more headroom
/// there, so the 7 nm PDK doubles its factors.
pub fn default_clock_scale_at(bench: Benchmark, node: NodeId) -> f64 {
    let k45 = match bench {
        Benchmark::Fpu => 2.5,
        Benchmark::Aes => 4.0,
        Benchmark::Ldpc => 2.0,
        Benchmark::Des => 2.5,
        Benchmark::M256 => 4.5,
    };
    let mult = m3d_tech::PdkRegistry::global()
        .get(node)
        .map(|pdk| pdk.clock_scale_mult())
        .unwrap_or(1.0);
    k45 * mult
}

/// The 45 nm calibration (kept for compatibility; see
/// [`default_clock_scale_at`]).
pub fn default_clock_scale(bench: Benchmark) -> f64 {
    default_clock_scale_at(bench, NodeId::N45)
}

/// Placement-based net models: HPWL with a routing detour, unit RC from
/// the metal class a net of that length rides.
pub fn estimate_models(
    netlist: &Netlist,
    placement: &Placement,
    node: &TechNode,
    stack: &MetalStack,
) -> Vec<NetModel> {
    let s = node.dimension_scale();
    let thresholds = (30.0 * s, 140.0 * s);
    let rc_of = |class: MetalClass| {
        let layer = stack.layers_of(class).next().expect("class in stack");
        WireRc::for_layer(node, layer)
    };
    let rcs = [
        rc_of(MetalClass::Local),
        rc_of(MetalClass::Intermediate),
        rc_of(MetalClass::Global),
    ];
    netlist
        .net_ids()
        .map(|id| {
            let len = placement.net_hpwl_um(netlist, id) * 1.1;
            let rc = if len <= thresholds.0 {
                rcs[0]
            } else if len <= thresholds.1 {
                rcs[1]
            } else {
                rcs[2]
            };
            NetModel {
                c_wire: rc.capacitance(len),
                r_wire: rc.resistance(len),
            }
        })
        .collect()
}

/// Sign-off net models from routed-segment extraction.
///
/// # Panics
///
/// Panics on out-of-range segment layers; see [`try_extraction_models`]
/// for the fallible form used by the supervised flow.
pub fn extraction_models(
    netlist: &Netlist,
    routed: &RoutedDesign,
    node: &TechNode,
) -> Vec<NetModel> {
    match try_extraction_models(netlist, routed, node) {
        Ok(models) => models,
        Err(e) => panic!("sign-off extraction failed: {e}"),
    }
}

/// Fallible form of [`extraction_models`].
///
/// # Errors
///
/// Returns [`ExtractError`] when a routed segment references a layer
/// outside the stack or carries a degenerate length.
pub fn try_extraction_models(
    netlist: &Netlist,
    routed: &RoutedDesign,
    node: &TechNode,
) -> Result<Vec<NetModel>, ExtractError> {
    netlist
        .net_ids()
        .map(|id| {
            let rn = routed.net(id);
            let p = try_extract_net(node, &routed.stack, &rn.segments, rn.via_count)?;
            // extract_net sums all segments in series (trunk model); a
            // multi-sink net branches, so the driver-to-worst-sink
            // resistance is closer to total / sqrt(fanout).
            let sinks = netlist.net(id).sinks.len().max(1) as f64;
            Ok(NetModel {
                c_wire: p.c_wire,
                r_wire: p.r_wire / sinks.sqrt(),
            })
        })
        .collect()
}

/// Applies planned moves, keeping placement positions in sync (repeaters
/// land along the driver-to-sinks span).
pub(crate) fn apply_moves(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &CellLibrary,
    moves: &[OptMove],
) {
    let buf = lib.smallest(CellFunction::Buf);
    for &m in moves {
        match m {
            OptMove::Upsize(inst) => {
                if let Some((bigger, _)) = lib.upsize(netlist.inst(inst).cell) {
                    netlist.resize(inst, bigger, lib);
                }
            }
            OptMove::Downsize(inst) => {
                if let Some((smaller, _)) = lib.downsize(netlist.inst(inst).cell) {
                    netlist.resize(inst, smaller, lib);
                }
            }
            OptMove::BufferNet { net, repeaters } => {
                insert_repeater_chain(netlist, placement, lib, net, repeaters.min(3), buf);
            }
        }
    }
}

fn insert_repeater_chain(
    netlist: &mut Netlist,
    placement: &mut Placement,
    lib: &CellLibrary,
    net: NetId,
    stages: u32,
    buf: m3d_cells::CellId,
) {
    if stages == 0 {
        return;
    }
    let driver_pos = match netlist.net(net).driver {
        NetDriver::Cell { inst, .. } => placement.pos(inst),
        NetDriver::Port(p) => placement
            .port_positions
            .get(p as usize)
            .copied()
            .unwrap_or(Point::ORIGIN),
        NetDriver::None => return,
    };
    // High-fanout nets get a geometric split: one repeater per populated
    // quadrant around the sink centroid, each placed at its group's
    // centroid. Iterated over optimization passes this grows a balanced
    // fanout tree instead of a serial chain.
    {
        let sinks = &netlist.net(net).sinks;
        if sinks.len() >= 8 {
            let centroid = {
                let (mut sx, mut sy) = (0i64, 0i64);
                for s in sinks {
                    let p = placement.pos(s.inst);
                    sx += p.x;
                    sy += p.y;
                }
                Point::new(sx / sinks.len() as i64, sy / sinks.len() as i64)
            };
            let mut quadrants: [Vec<usize>; 4] = Default::default();
            let mut quad_sum: [(i64, i64); 4] = [(0, 0); 4];
            for (i, s) in sinks.iter().enumerate() {
                let p = placement.pos(s.inst);
                let q = (usize::from(p.x >= centroid.x)) | (usize::from(p.y >= centroid.y) << 1);
                quadrants[q].push(i);
                quad_sum[q].0 += p.x;
                quad_sum[q].1 += p.y;
            }
            // Insert from the highest sink index down so the stored sink
            // indices stay valid across insertions.
            let mut groups: Vec<(Vec<usize>, Point)> = quadrants
                .into_iter()
                .zip(quad_sum)
                .filter(|(g, _)| !g.is_empty())
                .map(|(g, (sx, sy))| {
                    let n = g.len() as i64;
                    (g, Point::new(sx / n, sy / n))
                })
                .collect();
            if groups.len() >= 2 {
                // Only meaningful when the net actually splits.
                groups.sort_by_key(|(g, _)| std::cmp::Reverse(g.iter().copied().max()));
                // Removing sinks from the net changes later indices; take
                // groups against a stable snapshot by processing the net
                // once per group with recomputed indices.
                for (_, gpos) in &groups {
                    // Recompute current sink indices belonging to this
                    // quadrant (those nearest gpos).
                    let cur = &netlist.net(net).sinks;
                    if cur.len() < 2 {
                        break;
                    }
                    let mut take: Vec<usize> = cur
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| {
                            let p = placement.pos(s.inst);
                            let q_x = p.x >= centroid.x;
                            let q_y = p.y >= centroid.y;
                            q_x == (gpos.x >= centroid.x) && q_y == (gpos.y >= centroid.y)
                        })
                        .map(|(i, _)| i)
                        .collect();
                    if take.is_empty() || take.len() == cur.len() {
                        continue;
                    }
                    take.sort_unstable();
                    let (_, _new_net) = netlist.insert_repeater(net, &take, buf, lib);
                    placement.push_pos(*gpos);
                }
                return;
            }
        }
    }
    // Split off the farther half of the sinks (at least one).
    let sinks = &netlist.net(net).sinks;
    if sinks.is_empty() {
        return;
    }
    let mut by_dist: Vec<(usize, i64)> = sinks
        .iter()
        .enumerate()
        .map(|(i, s)| (i, driver_pos.manhattan(placement.pos(s.inst))))
        .collect();
    by_dist.sort_by_key(|&(_, d)| d);
    let keep = if by_dist.len() == 1 {
        0
    } else {
        by_dist.len() / 2
    };
    let far: Vec<usize> = by_dist[keep..].iter().map(|&(i, _)| i).collect();
    if far.is_empty() {
        return;
    }
    // Centroid of the far group.
    let far_centroid = {
        let (mut sx, mut sy) = (0i64, 0i64);
        for &(i, _) in &by_dist[keep..] {
            let p = placement.pos(sinks[i].inst);
            sx += p.x;
            sy += p.y;
        }
        let n = (by_dist.len() - keep) as i64;
        Point::new(sx / n, sy / n)
    };
    // Chain of `stages` repeaters evenly spaced driver -> centroid.
    let mut current = net;
    let mut moved = far;
    for k in 0..stages {
        let (_inst, new_net) = netlist.insert_repeater(current, &moved, buf, lib);
        let t = (k as f64 + 1.0) / (stages as f64 + 1.0);
        let pos = Point::new(
            driver_pos.x + ((far_centroid.x - driver_pos.x) as f64 * t) as i64,
            driver_pos.y + ((far_centroid.y - driver_pos.y) as f64 * t) as i64,
        );
        placement.push_pos(pos);
        current = new_net;
        // Subsequent stages drive the whole moved group.
        moved = (0..netlist.net(current).sinks.len()).collect();
        if netlist.net(current).sinks.len() < 2 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FlowConfig {
        FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
    }

    #[test]
    fn flow_runs_and_closes_timing_on_small_aes() {
        let r = Flow::new(Benchmark::Aes, DesignStyle::TwoD, small_cfg()).run();
        assert!(r.footprint_um2 > 0.0);
        assert!(r.wirelength_um > 0.0);
        assert!(r.total_power_mw() > 0.0);
        assert!(
            r.wns_ps > -0.05 * r.clock_ps,
            "timing badly violated: {} ps",
            r.wns_ps
        );
        assert!(r.cell_count > 100);
    }

    #[test]
    fn tmi_flow_shrinks_footprint_and_wirelength() {
        let two_d = Flow::new(Benchmark::Aes, DesignStyle::TwoD, small_cfg()).run();
        let tmi = Flow::new(Benchmark::Aes, DesignStyle::Tmi, small_cfg()).run();
        let fp = tmi.footprint_um2 / two_d.footprint_um2;
        assert!(fp < 0.75, "footprint ratio {fp}");
        let wl = tmi.wirelength_um / two_d.wirelength_um;
        assert!(wl < 0.95, "wirelength ratio {wl}");
    }

    #[test]
    fn faster_clock_costs_power() {
        let base = small_cfg();
        let slow = Flow::new(
            Benchmark::Aes,
            DesignStyle::TwoD,
            base.clone().clock(2000.0),
        )
        .run();
        let fast = Flow::new(Benchmark::Aes, DesignStyle::TwoD, base.clock(900.0)).run();
        assert!(fast.total_power_mw() > slow.total_power_mw());
    }

    #[test]
    fn pin_cap_scale_reduces_pin_power() {
        let mut cfg = small_cfg();
        cfg.pin_cap_scale = 0.5;
        let scaled = Flow::new(Benchmark::Des, DesignStyle::TwoD, cfg).run();
        let base = Flow::new(Benchmark::Des, DesignStyle::TwoD, small_cfg()).run();
        assert!(scaled.power.pin_mw < base.power.pin_mw);
    }
}
