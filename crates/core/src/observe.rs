//! Structured observability for the flow engine: spans, metrics, JSONL
//! run reports (DESIGN.md §11).
//!
//! The supervisor, cache and executor emit typed [`EventKind`]s at every
//! decision point — stage spans, retries, degradation rungs, checkpoint
//! writes and resumes, cache traffic, work stealing — into whatever
//! [`Recorder`] the run attached. Recorders are deliberately dumb sinks:
//!
//! * [`NullRecorder`] — the default; `enabled()` is `false`, so emit
//!   sites skip even event construction. Zero overhead by construction.
//! * [`VecRecorder`] — in-memory, for tests. The golden-trace suite
//!   (`tests/observe.rs`) replays its event stream against the stage
//!   graph topology.
//! * [`JsonlRecorder`] — one event per line, each stamped with a
//!   monotonic sequence number, a stable thread ordinal and seconds
//!   since recorder creation. The format is pinned by
//!   [`validate_jsonl`], which CI runs over every trace it records.
//! * [`MetricsRegistry`] — aggregates events into sharded counters and
//!   per-stage wall-time histograms, summarized as a [`RunReport`] that
//!   the bench binaries serialize next to `BENCH_flow.json`.
//! * [`Tee`] — fans one event stream out to two recorders (e.g. JSONL
//!   trace + metrics in the same run).
//!
//! Hot-path discipline: [`EventKind`] is `Copy` and built from
//! `&'static str`s and small enums — constructing and recording one
//! event allocates nothing. Emit sites guard on [`Recorder::enabled`],
//! so a disabled recorder costs one virtual call.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use m3d_netlist::Benchmark;
use m3d_tech::DesignStyle;

use crate::error::{FlowError, FlowStage};
use crate::sharded::Sharded;

/// Which cache a [`EventKind::CacheHit`]-family event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// The characterized-cell-library cache.
    Library,
    /// The completed-flow-result cache.
    Flow,
}

impl CacheKind {
    /// Stable lowercase name used in JSONL and counter keys.
    pub fn key(self) -> &'static str {
        match self {
            CacheKind::Library => "library",
            CacheKind::Flow => "flow",
        }
    }
}

/// How a stage span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageOutcome {
    /// The stage ran to completion.
    Ok,
    /// The stage returned a flow error (retryable or not).
    Failed,
    /// The stage worker panicked and was contained.
    Panicked,
    /// The stage overran its deadline and was abandoned.
    TimedOut,
    /// The process "died" at stage entry (kill fault); never paired
    /// with a start — kills model SIGKILL, which leaves no trace.
    Interrupted,
    /// The stage was cancelled cooperatively (governor cancel or a
    /// run/point deadline): the span opened normally and closes here.
    Cancelled,
}

impl StageOutcome {
    /// Stable lowercase name used in JSONL and counter keys.
    pub fn key(self) -> &'static str {
        match self {
            StageOutcome::Ok => "ok",
            StageOutcome::Failed => "failed",
            StageOutcome::Panicked => "panicked",
            StageOutcome::TimedOut => "timed_out",
            StageOutcome::Interrupted => "interrupted",
            StageOutcome::Cancelled => "cancelled",
        }
    }

    /// Classifies a stage error for the span's terminal event.
    pub(crate) fn of_error(err: &FlowError) -> StageOutcome {
        match err {
            FlowError::StagePanicked { .. } => StageOutcome::Panicked,
            FlowError::DeadlineExceeded { .. } => StageOutcome::TimedOut,
            FlowError::Interrupted { .. } => StageOutcome::Interrupted,
            FlowError::Cancelled { .. } => StageOutcome::Cancelled,
            _ => StageOutcome::Failed,
        }
    }
}

/// One typed observation from the flow engine. `Copy`, built entirely
/// from `&'static str`s and small enums — recording allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A stage span opened: the supervisor is about to run `stage` for
    /// `(bench, style)` at degradation rung `rung`, attempt `attempt`
    /// (1-based). `consumes` lists the artifact names the stage
    /// declares it reads — the consumed-key fields of the span.
    StageStarted {
        bench: Benchmark,
        style: DesignStyle,
        stage: FlowStage,
        rung: u32,
        attempt: u32,
        consumes: &'static [&'static str],
    },
    /// The span's terminal event: same identity fields as the start,
    /// plus how it ended and both durations — `wall_s` as the
    /// supervisor saw it (includes watchdog/channel overhead),
    /// `busy_s` as measured inside the worker thread around the stage
    /// body.
    StageFinished {
        bench: Benchmark,
        style: DesignStyle,
        stage: FlowStage,
        rung: u32,
        attempt: u32,
        outcome: StageOutcome,
        wall_s: f64,
        busy_s: f64,
    },
    /// A failed attempt is eligible for retry: `next_attempt` will run
    /// after artifact-state restoration.
    RetryScheduled {
        bench: Benchmark,
        style: DesignStyle,
        stage: FlowStage,
        next_attempt: u32,
    },
    /// The supervisor exhausted a rung and is entering `rung` of the
    /// degradation ladder.
    DegradationRungEntered {
        bench: Benchmark,
        style: DesignStyle,
        rung: u32,
    },
    /// A durable checkpoint was persisted at `cursor` (`bytes` encoded).
    CheckpointWritten {
        bench: Benchmark,
        style: DesignStyle,
        cursor: &'static str,
        bytes: u64,
    },
    /// A run restored state from a checkpoint at `cursor`; emitted
    /// before any live stage of the resumed run.
    CheckpointResumed {
        bench: Benchmark,
        style: DesignStyle,
        cursor: &'static str,
    },
    /// A cache request was served from a resident (or freshly
    /// coalesced) artifact.
    CacheHit { kind: CacheKind },
    /// A cache request found nothing and the caller performed the work.
    CacheMiss { kind: CacheKind },
    /// A request coalesced onto another thread's in-flight build
    /// instead of duplicating it (always accompanied by a `CacheHit`;
    /// schedule-dependent, so trace normalization drops it).
    CacheCoalesced { kind: CacheKind },
    /// The LRU bound evicted `count` entries on one insert.
    CacheEvicted { kind: CacheKind, count: u64 },
    /// Executor worker `worker` ran out of local work and stole plan
    /// point `point` from `victim`'s stripe.
    WorkerStolen {
        worker: usize,
        victim: usize,
        point: usize,
    },
    /// A request missed the in-memory tier but was served from the
    /// persistent store's disk tier (entry re-verified on read).
    DiskHit { kind: CacheKind },
    /// The disk tier held no valid entry for the key (the caller
    /// rebuilds and publishes).
    DiskMiss { kind: CacheKind },
    /// The store's byte-budget LRU evicted `count` entries, freeing
    /// `bytes` on disk.
    DiskEvicted {
        kind: CacheKind,
        count: u64,
        bytes: u64,
    },
    /// A durable file failed verification and was moved into
    /// `quarantine/` instead of being served (`what` names the payload:
    /// `"library"`, `"flow"` or `"checkpoint"`).
    DiskQuarantined { what: &'static str },
    /// The persistent store hit an I/O failure and degraded to the
    /// in-memory tier for the rest of the run (emitted once per store;
    /// `reason` is a stable failure class, not free text).
    StoreDegraded { reason: &'static str },
    /// A governed run observed its cancellation: emitted once per run
    /// by the first worker (or the collector) to notice. `reason` is
    /// `"explicit"` (someone called cancel) or `"deadline"` (the
    /// whole-run budget passed).
    CancelRequested { reason: &'static str },
    /// A plan point the governor stopped before completion; `outcome`
    /// is the point's terminal key: `"cancelled"`,
    /// `"deadline_exceeded"` or `"drained"`.
    PointCancelled {
        bench: Benchmark,
        style: DesignStyle,
        outcome: &'static str,
    },
    /// The admission queue refused a submission (`reason` is
    /// `"queue_full"` or `"draining"`).
    AdmissionRejected { client: u64, reason: &'static str },
    /// A client hit its per-client quota of queued points.
    QuotaExhausted { client: u64 },
    /// A graceful drain began: workers finish in-flight points and
    /// start nothing new.
    DrainStarted,
    /// The drain completed; `pending` unstarted points form the
    /// persisted remainder.
    DrainFinished { pending: u64 },
    /// A stage worker ignored its cancellation for the whole abandon
    /// grace period and was detached — the one case where leaked work
    /// is possible, and it is always traced.
    StageAbandoned {
        bench: Benchmark,
        style: DesignStyle,
        stage: FlowStage,
        budget_ms: u64,
    },
}

impl EventKind {
    /// Stable snake_case discriminant name: the JSONL `kind` field and
    /// the [`MetricsRegistry`] counter key prefix.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::StageStarted { .. } => "stage_started",
            EventKind::StageFinished { .. } => "stage_finished",
            EventKind::RetryScheduled { .. } => "retry_scheduled",
            EventKind::DegradationRungEntered { .. } => "degradation_rung_entered",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::CheckpointResumed { .. } => "checkpoint_resumed",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheCoalesced { .. } => "cache_coalesced",
            EventKind::CacheEvicted { .. } => "cache_evicted",
            EventKind::WorkerStolen { .. } => "worker_stolen",
            EventKind::DiskHit { .. } => "disk_hit",
            EventKind::DiskMiss { .. } => "disk_miss",
            EventKind::DiskEvicted { .. } => "disk_evicted",
            EventKind::DiskQuarantined { .. } => "disk_quarantined",
            EventKind::StoreDegraded { .. } => "store_degraded",
            EventKind::CancelRequested { .. } => "cancel_requested",
            EventKind::PointCancelled { .. } => "point_cancelled",
            EventKind::AdmissionRejected { .. } => "admission_rejected",
            EventKind::QuotaExhausted { .. } => "quota_exhausted",
            EventKind::DrainStarted => "drain_started",
            EventKind::DrainFinished { .. } => "drain_finished",
            EventKind::StageAbandoned { .. } => "stage_abandoned",
        }
    }
}

/// A recorded event with its stamps: `seq` is monotonic per recorder,
/// `thread` a small stable ordinal of the emitting thread, `t_s`
/// seconds since the recorder was created.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    pub seq: u64,
    pub thread: u64,
    pub t_s: f64,
    pub kind: EventKind,
}

/// A sink for engine events.
///
/// Guarantees every implementation must keep:
/// * `record` is safe to call from any thread, concurrently.
/// * `record` never panics and never blocks on engine locks (it may
///   take its own).
/// * `enabled() == false` promises the recorder ignores events; emit
///   sites use it to skip event construction entirely.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether emit sites should bother constructing events.
    fn enabled(&self) -> bool {
        true
    }
    /// Accepts one event. Stamping (seq / thread / time) is the
    /// recorder's job so disabled recorders pay for none of it.
    fn record(&self, kind: EventKind);
}

/// The do-nothing default recorder.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _kind: EventKind) {}
}

/// A shared [`NullRecorder`] handle — the default for every cache.
pub fn null() -> Arc<dyn Recorder> {
    static NULL: std::sync::OnceLock<Arc<NullRecorder>> = std::sync::OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(NullRecorder))) as Arc<dyn Recorder>
}

/// Stamp source shared by the recording implementations: a monotonic
/// per-recorder sequence, a stable small ordinal per OS thread, and
/// seconds since recorder creation.
#[derive(Debug)]
struct Stamps {
    seq: AtomicU64,
    start: Instant,
}

impl Stamps {
    fn new() -> Self {
        Stamps {
            seq: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    fn stamp(&self, kind: EventKind) -> Event {
        Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            thread: thread_ordinal(),
            t_s: self.start.elapsed().as_secs_f64(),
            kind,
        }
    }
}

/// A process-stable small integer per OS thread (the main thread is
/// whichever asked first). Thread *names* are not stamped: the
/// supervisor's worker names embed flow keys, which would bloat every
/// event line for information the span fields already carry.
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
    }
    ORDINAL.with(|c| match c.get() {
        Some(n) => n,
        None => {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(Some(n));
            n
        }
    })
}

/// In-memory recorder for tests: collects stamped events in order.
#[derive(Debug)]
pub struct VecRecorder {
    stamps: Stamps,
    events: Mutex<Vec<Event>>,
}

impl Default for VecRecorder {
    fn default() -> Self {
        VecRecorder::new()
    }
}

impl VecRecorder {
    pub fn new() -> Self {
        VecRecorder {
            stamps: Stamps::new(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A snapshot of everything recorded so far, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        let mut evs = self.events.lock().expect("recorder lock").clone();
        evs.sort_by_key(|e| e.seq);
        evs
    }

    /// Drops everything recorded so far (stamps keep counting).
    pub fn clear(&self) {
        self.events.lock().expect("recorder lock").clear();
    }
}

impl Recorder for VecRecorder {
    fn record(&self, kind: EventKind) {
        let ev = self.stamps.stamp(kind);
        self.events.lock().expect("recorder lock").push(ev);
    }
}

/// Streams one JSON object per event to a writer, newline-delimited.
///
/// The schema is flat: the stamp fields (`seq`, `thread`, `t_s`), the
/// discriminant (`kind`), then the variant's fields. Every string the
/// engine emits is a static identifier (stage keys, bench names,
/// cursor tags), so values are written verbatim — [`validate_jsonl`]
/// and the `trace_check` binary parse this exact shape back.
pub struct JsonlRecorder {
    stamps: Stamps,
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Records into any writer (buffer it yourself if it matters).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlRecorder {
            stamps: Stamps::new(),
            out: Mutex::new(out),
        }
    }

    /// Creates (truncates) `path` and records into it, buffered.
    ///
    /// # Errors
    ///
    /// The underlying `File::create` error when the file cannot be
    /// created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlRecorder::new(Box::new(BufWriter::new(file))))
    }

    /// Flushes the underlying writer (also done on drop).
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("recorder lock").flush()
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, kind: EventKind) {
        // Stamp *under* the writer lock: the seq counter is atomic, so
        // stamping first would let two threads claim 104/105 and write
        // them in swapped order — validate_jsonl requires the file's
        // seq column to be strictly increasing.
        let mut out = self.out.lock().expect("recorder lock");
        let ev = self.stamps.stamp(kind);
        let mut line = String::with_capacity(160);
        write_event_json(&mut line, &ev);
        line.push('\n');
        // A torn write surfaces at validate time as a malformed line;
        // recorders must not panic, so the error is swallowed here.
        let _ = out.write_all(line.as_bytes());
    }
}

/// Appends `s` to `buf` as the *body* of a JSON string (no surrounding
/// quotes), escaping the minimal set JSON requires: `"` and `\` get a
/// backslash, the common control characters use their short forms
/// (`\n`, `\r`, `\t`), and every other control byte below 0x20 becomes
/// a `\u00XX` sequence. Everything else — including non-ASCII — passes
/// through verbatim.
///
/// This is the one escaping routine for every JSON string the engine
/// emits: the trace recorder, the run report, and the `m3d-serve` wire
/// protocol all write through it, and [`unescape_json`] is its exact
/// inverse ([`tests`] pin the round trip on hostile inputs).
pub fn escape_json_into(buf: &mut String, s: &str) {
    // Fast path: most values are clean static identifiers.
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        buf.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// Decodes a JSON string body (the text between the quotes) back to the
/// value [`escape_json_into`] encoded. Accepts the full JSON escape
/// repertoire (`\" \\ \/ \b \f \n \r \t \uXXXX`, including surrogate
/// pairs), so it also decodes strings other writers produced. Returns
/// `None` on a malformed escape — truncated, unknown, or a lone
/// surrogate — never panics.
pub fn unescape_json(s: &str) -> Option<String> {
    if !s.contains('\\') {
        return Some(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'b' => out.push('\u{0008}'),
            'f' => out.push('\u{000c}'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hi = hex4(&mut chars)?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low half must follow.
                    if chars.next()? != '\\' || chars.next()? != 'u' {
                        return None;
                    }
                    let lo = hex4(&mut chars)?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return None;
                    }
                    let v = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    out.push(char::from_u32(v)?);
                } else {
                    out.push(char::from_u32(hi)?);
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

fn hex4(chars: &mut std::str::Chars<'_>) -> Option<u32> {
    let mut v = 0u32;
    for _ in 0..4 {
        v = (v << 4) | chars.next()?.to_digit(16)?;
    }
    Some(v)
}

/// Writes `,"name":"value"` with the value escaped — the one way every
/// string payload field reaches an event line.
fn kv_str(buf: &mut String, name: &str, value: &str) {
    let _ = write!(buf, ",\"{name}\":\"");
    escape_json_into(buf, value);
    buf.push('"');
}

/// Serializes one stamped event as a single flat JSON object (no
/// trailing newline). Field order is fixed: stamps, kind, payload.
/// Every string value is escaped via [`escape_json_into`]; the engine's
/// own values are static identifiers today, but nothing here trusts
/// that — a bench name or cursor tag carrying `"`, `\` or a control
/// character serializes to a valid line instead of corrupting the
/// trace.
pub fn write_event_json(buf: &mut String, ev: &Event) {
    buf.push_str("{\"seq\":");
    let _ = write!(
        buf,
        "{},\"thread\":{},\"t_s\":{:.6}",
        ev.seq, ev.thread, ev.t_s
    );
    kv_str(buf, "kind", ev.kind.name());
    match ev.kind {
        EventKind::StageStarted {
            bench,
            style,
            stage,
            rung,
            attempt,
            consumes,
        } => {
            kv_str(buf, "bench", bench.name());
            kv_str(buf, "style", style.label());
            kv_str(buf, "stage", stage.key());
            let _ = write!(buf, ",\"rung\":{rung},\"attempt\":{attempt},\"consumes\":[");
            for (i, c) in consumes.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                buf.push('"');
                escape_json_into(buf, c);
                buf.push('"');
            }
            buf.push(']');
        }
        EventKind::StageFinished {
            bench,
            style,
            stage,
            rung,
            attempt,
            outcome,
            wall_s,
            busy_s,
        } => {
            kv_str(buf, "bench", bench.name());
            kv_str(buf, "style", style.label());
            kv_str(buf, "stage", stage.key());
            let _ = write!(buf, ",\"rung\":{rung},\"attempt\":{attempt}");
            kv_str(buf, "outcome", outcome.key());
            let _ = write!(buf, ",\"wall_s\":{wall_s:.6},\"busy_s\":{busy_s:.6}");
        }
        EventKind::RetryScheduled {
            bench,
            style,
            stage,
            next_attempt,
        } => {
            kv_str(buf, "bench", bench.name());
            kv_str(buf, "style", style.label());
            kv_str(buf, "stage", stage.key());
            let _ = write!(buf, ",\"next_attempt\":{next_attempt}");
        }
        EventKind::DegradationRungEntered { bench, style, rung } => {
            kv_str(buf, "bench", bench.name());
            kv_str(buf, "style", style.label());
            let _ = write!(buf, ",\"rung\":{rung}");
        }
        EventKind::CheckpointWritten {
            bench,
            style,
            cursor,
            bytes,
        } => {
            kv_str(buf, "bench", bench.name());
            kv_str(buf, "style", style.label());
            kv_str(buf, "cursor", cursor);
            let _ = write!(buf, ",\"bytes\":{bytes}");
        }
        EventKind::CheckpointResumed {
            bench,
            style,
            cursor,
        } => {
            kv_str(buf, "bench", bench.name());
            kv_str(buf, "style", style.label());
            kv_str(buf, "cursor", cursor);
        }
        EventKind::CacheHit { kind }
        | EventKind::CacheMiss { kind }
        | EventKind::CacheCoalesced { kind } => {
            kv_str(buf, "cache", kind.key());
        }
        EventKind::CacheEvicted { kind, count } => {
            kv_str(buf, "cache", kind.key());
            let _ = write!(buf, ",\"count\":{count}");
        }
        EventKind::WorkerStolen {
            worker,
            victim,
            point,
        } => {
            let _ = write!(
                buf,
                ",\"worker\":{worker},\"victim\":{victim},\"point\":{point}"
            );
        }
        EventKind::DiskHit { kind } | EventKind::DiskMiss { kind } => {
            kv_str(buf, "cache", kind.key());
        }
        EventKind::DiskEvicted { kind, count, bytes } => {
            kv_str(buf, "cache", kind.key());
            let _ = write!(buf, ",\"count\":{count},\"bytes\":{bytes}");
        }
        EventKind::DiskQuarantined { what } => {
            kv_str(buf, "what", what);
        }
        EventKind::StoreDegraded { reason } => {
            kv_str(buf, "reason", reason);
        }
        EventKind::CancelRequested { reason } => {
            kv_str(buf, "reason", reason);
        }
        EventKind::PointCancelled {
            bench,
            style,
            outcome,
        } => {
            kv_str(buf, "bench", bench.name());
            kv_str(buf, "style", style.label());
            kv_str(buf, "outcome", outcome);
        }
        EventKind::AdmissionRejected { client, reason } => {
            let _ = write!(buf, ",\"client\":{client}");
            kv_str(buf, "reason", reason);
        }
        EventKind::QuotaExhausted { client } => {
            let _ = write!(buf, ",\"client\":{client}");
        }
        EventKind::DrainStarted => {}
        EventKind::DrainFinished { pending } => {
            let _ = write!(buf, ",\"pending\":{pending}");
        }
        EventKind::StageAbandoned {
            bench,
            style,
            stage,
            budget_ms,
        } => {
            kv_str(buf, "bench", bench.name());
            kv_str(buf, "style", style.label());
            kv_str(buf, "stage", stage.key());
            let _ = write!(buf, ",\"budget_ms\":{budget_ms}");
        }
    }
    buf.push('}');
}

/// Fans one event stream out to two recorders (e.g. a JSONL trace and
/// a metrics registry over the same run). Enabled iff either side is.
pub struct Tee {
    pub a: Arc<dyn Recorder>,
    pub b: Arc<dyn Recorder>,
}

impl std::fmt::Debug for Tee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tee").finish_non_exhaustive()
    }
}

impl Tee {
    pub fn new(a: Arc<dyn Recorder>, b: Arc<dyn Recorder>) -> Self {
        Tee { a, b }
    }
}

impl Recorder for Tee {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }
    fn record(&self, kind: EventKind) {
        if self.a.enabled() {
            self.a.record(kind);
        }
        if self.b.enabled() {
            self.b.record(kind);
        }
    }
}

/// Histogram bucket upper bounds (seconds) for stage wall times: two
/// decades around the observed range — Small-scale stages land in the
/// leading buckets, Paper-scale routing in the trailing ones.
pub const WALL_BUCKET_BOUNDS_S: [f64; 8] = [1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1.0, 4.0, 16.0];

/// A fixed-bucket histogram: counts per bound in
/// [`WALL_BUCKET_BOUNDS_S`] plus one overflow bucket, with count/sum
/// for mean recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    pub count: u64,
    pub sum_s: f64,
    /// `buckets[i]` counts samples `<= WALL_BUCKET_BOUNDS_S[i]`; the
    /// final slot counts overflows.
    pub buckets: [u64; WALL_BUCKET_BOUNDS_S.len() + 1],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_s: 0.0,
            buckets: [0; WALL_BUCKET_BOUNDS_S.len() + 1],
        }
    }
}

impl Histogram {
    fn observe(&mut self, v_s: f64) {
        self.count += 1;
        self.sum_s += v_s;
        let slot = WALL_BUCKET_BOUNDS_S
            .iter()
            .position(|&b| v_s <= b)
            .unwrap_or(WALL_BUCKET_BOUNDS_S.len());
        self.buckets[slot] += 1;
    }
}

/// Aggregates the event stream into sharded counters (one per event
/// name / outcome / cache kind) and per-stage wall-time histograms.
/// Reuses the [`Sharded`] lock-striping the artifact cache shards its
/// LRU maps with, so concurrent workers rarely contend.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Sharded<HashMap<&'static str, u64>>,
    stage_wall: Sharded<HashMap<&'static str, Histogram>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

const METRIC_SHARDS: usize = 8;

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            counters: Sharded::new(METRIC_SHARDS, HashMap::new),
            stage_wall: Sharded::new(METRIC_SHARDS, HashMap::new),
        }
    }

    fn bump(&self, key: &'static str, by: u64) {
        *self
            .counters
            .shard(key)
            .lock()
            .expect("metrics lock")
            .entry(key)
            .or_insert(0) += by;
    }

    /// The counter key an event aggregates under: the event name,
    /// suffixed with the discriminating payload field where one exists
    /// (`stage_finished_ok`, `cache_hit_library`, …).
    fn counter_key(kind: &EventKind) -> &'static str {
        match kind {
            EventKind::StageStarted { .. } => "stage_started",
            EventKind::StageFinished { outcome, .. } => match outcome {
                StageOutcome::Ok => "stage_finished_ok",
                StageOutcome::Failed => "stage_finished_failed",
                StageOutcome::Panicked => "stage_finished_panicked",
                StageOutcome::TimedOut => "stage_finished_timed_out",
                StageOutcome::Interrupted => "stage_finished_interrupted",
                StageOutcome::Cancelled => "stage_finished_cancelled",
            },
            EventKind::RetryScheduled { .. } => "retry_scheduled",
            EventKind::DegradationRungEntered { .. } => "degradation_rung_entered",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::CheckpointResumed { .. } => "checkpoint_resumed",
            EventKind::CacheHit { kind } => match kind {
                CacheKind::Library => "cache_hit_library",
                CacheKind::Flow => "cache_hit_flow",
            },
            EventKind::CacheMiss { kind } => match kind {
                CacheKind::Library => "cache_miss_library",
                CacheKind::Flow => "cache_miss_flow",
            },
            EventKind::CacheCoalesced { kind } => match kind {
                CacheKind::Library => "cache_coalesced_library",
                CacheKind::Flow => "cache_coalesced_flow",
            },
            EventKind::CacheEvicted { kind, .. } => match kind {
                CacheKind::Library => "cache_evicted_library",
                CacheKind::Flow => "cache_evicted_flow",
            },
            EventKind::WorkerStolen { .. } => "worker_stolen",
            EventKind::DiskHit { kind } => match kind {
                CacheKind::Library => "disk_hit_library",
                CacheKind::Flow => "disk_hit_flow",
            },
            EventKind::DiskMiss { kind } => match kind {
                CacheKind::Library => "disk_miss_library",
                CacheKind::Flow => "disk_miss_flow",
            },
            EventKind::DiskEvicted { kind, .. } => match kind {
                CacheKind::Library => "disk_evicted_library",
                CacheKind::Flow => "disk_evicted_flow",
            },
            EventKind::DiskQuarantined { .. } => "disk_quarantined",
            EventKind::StoreDegraded { .. } => "store_degraded",
            EventKind::CancelRequested { .. } => "cancel_requested",
            EventKind::PointCancelled { .. } => "point_cancelled",
            EventKind::AdmissionRejected { .. } => "admission_rejected",
            EventKind::QuotaExhausted { .. } => "quota_exhausted",
            EventKind::DrainStarted => "drain_started",
            EventKind::DrainFinished { .. } => "drain_finished",
            EventKind::StageAbandoned { .. } => "stage_abandoned",
        }
    }

    /// Summarizes everything aggregated so far.
    pub fn report(&self) -> RunReport {
        let mut counters: Vec<(String, u64)> = Vec::new();
        for shard in self.counters.iter() {
            for (k, v) in shard.lock().expect("metrics lock").iter() {
                counters.push(((*k).to_string(), *v));
            }
        }
        counters.sort();
        let mut stage_wall: Vec<(String, Histogram)> = Vec::new();
        for shard in self.stage_wall.iter() {
            for (k, h) in shard.lock().expect("metrics lock").iter() {
                stage_wall.push(((*k).to_string(), *h));
            }
        }
        stage_wall.sort_by(|a, b| a.0.cmp(&b.0));
        RunReport {
            counters,
            stage_wall,
        }
    }
}

impl Recorder for MetricsRegistry {
    fn record(&self, kind: EventKind) {
        let by = match kind {
            EventKind::CacheEvicted { count, .. } | EventKind::DiskEvicted { count, .. } => count,
            _ => 1,
        };
        self.bump(Self::counter_key(&kind), by);
        if let EventKind::StageFinished { stage, wall_s, .. } = kind {
            self.stage_wall
                .shard(stage.key())
                .lock()
                .expect("metrics lock")
                .entry(stage.key())
                .or_default()
                .observe(wall_s);
        }
    }
}

/// A [`MetricsRegistry`] summary: sorted counters plus per-stage
/// wall-time histograms, serializable with [`RunReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// `(counter key, value)`, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// `(stage key, wall-time histogram)`, sorted by stage key.
    pub stage_wall: Vec<(String, Histogram)>,
}

impl RunReport {
    /// The value of one counter (0 when never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// Pretty-printed JSON document (hand-rolled; the workspace vendors
    /// no serde_json).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    \"{k}\": {v}");
        }
        if self.counters.is_empty() {
            s.push_str("},\n");
        } else {
            s.push_str("\n  },\n");
        }
        let _ = write!(s, "  \"wall_bucket_bounds_s\": [");
        for (i, b) in WALL_BUCKET_BOUNDS_S.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}{b}");
        }
        s.push_str("],\n  \"stage_wall_s\": {");
        for (i, (k, h)) in self.stage_wall.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    \"{k}\": {{\"count\": {}, \"sum_s\": {:.6}, \"buckets\": [",
                h.count, h.sum_s
            );
            for (j, c) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(s, "{sep}{c}");
            }
            s.push_str("]}");
        }
        if self.stage_wall.is_empty() {
            s.push_str("}\n}\n");
        } else {
            s.push_str("\n  }\n}\n");
        }
        s
    }
}

/// Why a JSONL trace failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Line is not one flat JSON object of the recorder's shape.
    Malformed { line: usize, reason: String },
    /// `seq` values must be strictly increasing line over line.
    SequenceNotIncreasing { line: usize, prev: u64, seq: u64 },
    /// `kind` is not one of the engine's event names.
    UnknownKind { line: usize, kind: String },
    /// A `stage_finished` with no matching open `stage_started`.
    UnbalancedFinish { line: usize, span: String },
    /// End of trace with stage spans still open.
    UnclosedSpans { spans: Vec<String> },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed { line, reason } => {
                write!(f, "line {line}: malformed event: {reason}")
            }
            TraceError::SequenceNotIncreasing { line, prev, seq } => {
                write!(f, "line {line}: seq {seq} not above previous {prev}")
            }
            TraceError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown event kind {kind:?}")
            }
            TraceError::UnbalancedFinish { line, span } => {
                write!(f, "line {line}: stage_finished without start: {span}")
            }
            TraceError::UnclosedSpans { spans } => {
                write!(f, "trace ended with open spans: {}", spans.join(", "))
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// What a validated trace contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total event lines.
    pub events: usize,
    /// Completed stage spans (started and finished).
    pub stage_spans: usize,
    /// `cache_hit` events (both kinds).
    pub cache_hits: u64,
    /// `cache_miss` events (both kinds).
    pub cache_misses: u64,
    /// `checkpoint_written` events.
    pub checkpoints_written: u64,
    /// `checkpoint_resumed` events.
    pub checkpoints_resumed: u64,
    /// `disk_hit` events (both kinds).
    pub disk_hits: u64,
    /// `disk_miss` events (both kinds).
    pub disk_misses: u64,
    /// `disk_quarantined` events (libraries, flows and checkpoints).
    pub disk_quarantined: u64,
    /// `store_degraded` events (at most one per store instance).
    pub store_degraded: u64,
}

/// Every event name the engine emits, for schema validation.
const KNOWN_KINDS: [&str; 23] = [
    "stage_started",
    "stage_finished",
    "retry_scheduled",
    "degradation_rung_entered",
    "checkpoint_written",
    "checkpoint_resumed",
    "cache_hit",
    "cache_miss",
    "cache_coalesced",
    "cache_evicted",
    "worker_stolen",
    "disk_hit",
    "disk_miss",
    "disk_evicted",
    "disk_quarantined",
    "store_degraded",
    "cancel_requested",
    "point_cancelled",
    "admission_rejected",
    "quota_exhausted",
    "drain_started",
    "drain_finished",
    "stage_abandoned",
];

/// Extracts the raw text of `"field":<value>` from a recorder-shaped
/// line: quoted values lose their quotes but keep their escapes
/// (decode with [`unescape_json`]), numbers/arrays come verbatim. The
/// quoted scan honors backslash escapes, so a value containing `\"`
/// extracts to the real closing quote instead of truncating at the
/// first escaped one.
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        scan_string_body(stripped)
    } else {
        let mut depth = 0usize;
        let mut end = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '[' => depth += 1,
                ']' if depth > 0 => depth -= 1,
                ',' | '}' | ']' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        Some(rest[..end].trim())
    }
}

/// Scans a JSON string body (text after the opening quote) to its
/// unescaped closing quote and returns the still-escaped body slice.
/// `None` when the line ends before the string closes.
fn scan_string_body(s: &str) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(&s[..i]),
            // Skip the escaped character; a backslash at end-of-input
            // runs off the slice and falls through to None.
            b'\\' => i += 2,
            _ => i += 1,
        }
    }
    None
}

/// Wire-protocol view of [`field`]: the raw text of `"name":<value>`
/// in a flat single-line JSON object. Quoted values lose their quotes
/// but keep their escapes; numbers/arrays come verbatim. `m3d-serve`
/// frames parse through this so the trace codec and the wire protocol
/// cannot drift apart.
pub fn json_raw_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    field(line, name)
}

/// Extracts and unescapes the quoted string field `"name":"…"` from a
/// flat single-line JSON object. `None` when the field is missing, not
/// a string, unterminated, or carries an invalid escape.
pub fn json_str_field(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\":");
    let at = line.find(&pat)? + pat.len();
    let body = scan_string_body(line[at..].strip_prefix('"')?)?;
    unescape_json(body)
}

fn u64_field(line: &str, name: &str, lineno: usize) -> Result<u64, TraceError> {
    let raw = field(line, name).ok_or_else(|| TraceError::Malformed {
        line: lineno,
        reason: format!("missing field {name:?}"),
    })?;
    raw.parse().map_err(|_| TraceError::Malformed {
        line: lineno,
        reason: format!("field {name:?} not an integer: {raw:?}"),
    })
}

fn str_field<'a>(line: &'a str, name: &str, lineno: usize) -> Result<&'a str, TraceError> {
    field(line, name).ok_or_else(|| TraceError::Malformed {
        line: lineno,
        reason: format!("missing field {name:?}"),
    })
}

/// [`str_field`] plus unescaping: the decoded value of a string field,
/// rejecting invalid escape sequences as [`TraceError::Malformed`].
fn string_field(line: &str, name: &str, lineno: usize) -> Result<String, TraceError> {
    let raw = str_field(line, name, lineno)?;
    unescape_json(raw).ok_or_else(|| TraceError::Malformed {
        line: lineno,
        reason: format!("field {name:?} has an invalid JSON escape: {raw:?}"),
    })
}

/// Validates a JSONL trace against the recorder's schema: every line
/// parses, `seq` strictly increases, every `kind` is known, required
/// per-kind fields are present, and stage spans balance — each
/// `stage_finished` closes a matching open `stage_started` (keyed by
/// bench/style/stage/rung/attempt) and nothing stays open at the end.
///
/// # Errors
///
/// The first violation, as a [`TraceError`].
pub fn validate_jsonl(trace: &str) -> Result<TraceSummary, TraceError> {
    let mut summary = TraceSummary::default();
    let mut prev_seq: Option<u64> = None;
    // Open span keys -> count (retries reuse attempt numbers only
    // across rungs, so a multiset keeps the check exact anyway).
    let mut open: HashMap<String, u64> = HashMap::new();
    for (i, line) in trace.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(TraceError::Malformed {
                line: lineno,
                reason: "not a JSON object".to_string(),
            });
        }
        summary.events += 1;
        let seq = u64_field(line, "seq", lineno)?;
        if let Some(prev) = prev_seq {
            if seq <= prev {
                return Err(TraceError::SequenceNotIncreasing {
                    line: lineno,
                    prev,
                    seq,
                });
            }
        }
        prev_seq = Some(seq);
        u64_field(line, "thread", lineno)?;
        let t_s = str_field(line, "t_s", lineno)?;
        if t_s.parse::<f64>().map_or(true, |v| v.is_nan() || v < 0.0) {
            return Err(TraceError::Malformed {
                line: lineno,
                reason: format!("field \"t_s\" not a non-negative number: {t_s:?}"),
            });
        }
        let kind = string_field(line, "kind", lineno)?;
        if !KNOWN_KINDS.contains(&kind.as_str()) {
            return Err(TraceError::UnknownKind { line: lineno, kind });
        }
        match kind.as_str() {
            "stage_started" | "stage_finished" => {
                let span = format!(
                    "{}/{}/{} rung {} attempt {}",
                    string_field(line, "bench", lineno)?,
                    string_field(line, "style", lineno)?,
                    string_field(line, "stage", lineno)?,
                    u64_field(line, "rung", lineno)?,
                    u64_field(line, "attempt", lineno)?,
                );
                if kind == "stage_started" {
                    str_field(line, "consumes", lineno)?;
                    *open.entry(span).or_insert(0) += 1;
                } else {
                    string_field(line, "outcome", lineno)?;
                    str_field(line, "wall_s", lineno)?;
                    str_field(line, "busy_s", lineno)?;
                    match open.get_mut(&span) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            if *n == 0 {
                                open.remove(&span);
                            }
                            summary.stage_spans += 1;
                        }
                        _ => return Err(TraceError::UnbalancedFinish { line: lineno, span }),
                    }
                }
            }
            "retry_scheduled" => {
                string_field(line, "stage", lineno)?;
                u64_field(line, "next_attempt", lineno)?;
            }
            "degradation_rung_entered" => {
                u64_field(line, "rung", lineno)?;
            }
            "checkpoint_written" => {
                string_field(line, "cursor", lineno)?;
                u64_field(line, "bytes", lineno)?;
                summary.checkpoints_written += 1;
            }
            "checkpoint_resumed" => {
                string_field(line, "cursor", lineno)?;
                summary.checkpoints_resumed += 1;
            }
            "cache_hit" | "cache_miss" | "cache_coalesced" => {
                string_field(line, "cache", lineno)?;
                match kind.as_str() {
                    "cache_hit" => summary.cache_hits += 1,
                    "cache_miss" => summary.cache_misses += 1,
                    _ => {}
                }
            }
            "cache_evicted" => {
                string_field(line, "cache", lineno)?;
                u64_field(line, "count", lineno)?;
            }
            "worker_stolen" => {
                u64_field(line, "worker", lineno)?;
                u64_field(line, "victim", lineno)?;
                u64_field(line, "point", lineno)?;
            }
            "disk_hit" | "disk_miss" => {
                string_field(line, "cache", lineno)?;
                match kind.as_str() {
                    "disk_hit" => summary.disk_hits += 1,
                    _ => summary.disk_misses += 1,
                }
            }
            "disk_evicted" => {
                string_field(line, "cache", lineno)?;
                u64_field(line, "count", lineno)?;
                u64_field(line, "bytes", lineno)?;
            }
            "disk_quarantined" => {
                string_field(line, "what", lineno)?;
                summary.disk_quarantined += 1;
            }
            "store_degraded" => {
                string_field(line, "reason", lineno)?;
                summary.store_degraded += 1;
            }
            "cancel_requested" => {
                string_field(line, "reason", lineno)?;
            }
            "point_cancelled" => {
                string_field(line, "bench", lineno)?;
                string_field(line, "style", lineno)?;
                string_field(line, "outcome", lineno)?;
            }
            "admission_rejected" => {
                u64_field(line, "client", lineno)?;
                string_field(line, "reason", lineno)?;
            }
            "quota_exhausted" => {
                u64_field(line, "client", lineno)?;
            }
            "drain_started" => {}
            "drain_finished" => {
                u64_field(line, "pending", lineno)?;
            }
            "stage_abandoned" => {
                string_field(line, "bench", lineno)?;
                string_field(line, "style", lineno)?;
                string_field(line, "stage", lineno)?;
                u64_field(line, "budget_ms", lineno)?;
            }
            _ => unreachable!("kind checked against KNOWN_KINDS"),
        }
    }
    if !open.is_empty() {
        let mut spans: Vec<String> = open.into_keys().collect();
        spans.sort();
        return Err(TraceError::UnclosedSpans { spans });
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(stage: FlowStage, attempt: u32) -> EventKind {
        EventKind::StageStarted {
            bench: Benchmark::Des,
            style: DesignStyle::TwoD,
            stage,
            rung: 0,
            attempt,
            consumes: &["netlist", "wlm"],
        }
    }

    fn finished(stage: FlowStage, attempt: u32, outcome: StageOutcome) -> EventKind {
        EventKind::StageFinished {
            bench: Benchmark::Des,
            style: DesignStyle::TwoD,
            stage,
            rung: 0,
            attempt,
            outcome,
            wall_s: 0.25,
            busy_s: 0.125,
        }
    }

    #[test]
    fn vec_recorder_stamps_monotonic_sequence() {
        let rec = VecRecorder::new();
        rec.record(started(FlowStage::Synthesis, 1));
        rec.record(EventKind::CacheHit {
            kind: CacheKind::Library,
        });
        rec.record(finished(FlowStage::Synthesis, 1, StageOutcome::Ok));
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert!(ev.t_s >= 0.0);
        }
        assert_eq!(evs[0].kind.name(), "stage_started");
        assert_eq!(evs[2].kind.name(), "stage_finished");
    }

    #[test]
    fn null_recorder_is_disabled() {
        assert!(!NullRecorder.enabled());
        assert!(!null().enabled());
        // Tee of two nulls stays disabled; any live side enables it.
        assert!(!Tee::new(null(), null()).enabled());
        assert!(Tee::new(null(), Arc::new(VecRecorder::new())).enabled());
    }

    #[test]
    fn tee_fans_out_to_both_sides() {
        let a = Arc::new(VecRecorder::new());
        let b = Arc::new(MetricsRegistry::new());
        let tee = Tee::new(Arc::clone(&a) as Arc<dyn Recorder>, Arc::clone(&b) as _);
        tee.record(started(FlowStage::Placement, 1));
        tee.record(finished(FlowStage::Placement, 1, StageOutcome::Ok));
        assert_eq!(a.events().len(), 2);
        let report = b.report();
        assert_eq!(report.counter("stage_started"), 1);
        assert_eq!(report.counter("stage_finished_ok"), 1);
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let rec = VecRecorder::new();
        rec.record(started(FlowStage::Synthesis, 1));
        rec.record(EventKind::CacheMiss {
            kind: CacheKind::Flow,
        });
        rec.record(finished(FlowStage::Synthesis, 1, StageOutcome::Failed));
        rec.record(EventKind::RetryScheduled {
            bench: Benchmark::Des,
            style: DesignStyle::TwoD,
            stage: FlowStage::Synthesis,
            next_attempt: 2,
        });
        rec.record(started(FlowStage::Synthesis, 2));
        rec.record(finished(FlowStage::Synthesis, 2, StageOutcome::Ok));
        rec.record(EventKind::DegradationRungEntered {
            bench: Benchmark::Des,
            style: DesignStyle::TwoD,
            rung: 1,
        });
        rec.record(EventKind::CheckpointWritten {
            bench: Benchmark::Des,
            style: DesignStyle::TwoD,
            cursor: "route",
            bytes: 4096,
        });
        rec.record(EventKind::CheckpointResumed {
            bench: Benchmark::Des,
            style: DesignStyle::TwoD,
            cursor: "route",
        });
        rec.record(EventKind::CacheEvicted {
            kind: CacheKind::Library,
            count: 2,
        });
        rec.record(EventKind::WorkerStolen {
            worker: 1,
            victim: 0,
            point: 3,
        });
        rec.record(EventKind::DiskHit {
            kind: CacheKind::Library,
        });
        rec.record(EventKind::DiskMiss {
            kind: CacheKind::Flow,
        });
        rec.record(EventKind::DiskEvicted {
            kind: CacheKind::Flow,
            count: 1,
            bytes: 8192,
        });
        rec.record(EventKind::DiskQuarantined { what: "library" });
        rec.record(EventKind::StoreDegraded {
            reason: "read_only",
        });
        rec.record(EventKind::CancelRequested { reason: "explicit" });
        rec.record(EventKind::PointCancelled {
            bench: Benchmark::Des,
            style: DesignStyle::TwoD,
            outcome: "cancelled",
        });
        rec.record(EventKind::AdmissionRejected {
            client: 7,
            reason: "queue_full",
        });
        rec.record(EventKind::QuotaExhausted { client: 7 });
        rec.record(EventKind::DrainStarted);
        rec.record(EventKind::DrainFinished { pending: 3 });
        rec.record(EventKind::StageAbandoned {
            bench: Benchmark::Des,
            style: DesignStyle::TwoD,
            stage: FlowStage::Routing,
            budget_ms: 40,
        });
        let mut trace = String::new();
        for ev in rec.events() {
            write_event_json(&mut trace, &ev);
            trace.push('\n');
        }
        let summary = validate_jsonl(&trace).expect("trace validates");
        assert_eq!(summary.events, 23);
        assert_eq!(summary.stage_spans, 2);
        assert_eq!(summary.cache_misses, 1);
        assert_eq!(summary.checkpoints_written, 1);
        assert_eq!(summary.checkpoints_resumed, 1);
        assert_eq!(summary.disk_hits, 1);
        assert_eq!(summary.disk_misses, 1);
        assert_eq!(summary.disk_quarantined, 1);
        assert_eq!(summary.store_degraded, 1);
    }

    #[test]
    fn disk_events_aggregate_under_their_counter_keys() {
        let m = MetricsRegistry::new();
        m.record(EventKind::DiskHit {
            kind: CacheKind::Library,
        });
        m.record(EventKind::DiskMiss {
            kind: CacheKind::Library,
        });
        m.record(EventKind::DiskMiss {
            kind: CacheKind::Flow,
        });
        m.record(EventKind::DiskEvicted {
            kind: CacheKind::Library,
            count: 3,
            bytes: 1 << 20,
        });
        m.record(EventKind::DiskQuarantined { what: "checkpoint" });
        m.record(EventKind::StoreDegraded { reason: "io_error" });
        let report = m.report();
        assert_eq!(report.counter("disk_hit_library"), 1);
        assert_eq!(report.counter("disk_miss_library"), 1);
        assert_eq!(report.counter("disk_miss_flow"), 1);
        assert_eq!(
            report.counter("disk_evicted_library"),
            3,
            "disk evictions add their count"
        );
        assert_eq!(report.counter("disk_quarantined"), 1);
        assert_eq!(report.counter("store_degraded"), 1);
    }

    #[test]
    fn validator_rejects_schema_violations() {
        // Non-increasing seq.
        let trace = "\
{\"seq\":0,\"thread\":0,\"t_s\":0.000001,\"kind\":\"cache_hit\",\"cache\":\"library\"}
{\"seq\":0,\"thread\":0,\"t_s\":0.000002,\"kind\":\"cache_hit\",\"cache\":\"library\"}
";
        assert!(matches!(
            validate_jsonl(trace),
            Err(TraceError::SequenceNotIncreasing {
                prev: 0,
                seq: 0,
                ..
            })
        ));
        // Unknown kind.
        let trace = "{\"seq\":0,\"thread\":0,\"t_s\":0.0,\"kind\":\"rebooted\"}\n";
        assert!(matches!(
            validate_jsonl(trace),
            Err(TraceError::UnknownKind { .. })
        ));
        // Finish without start.
        let rec = VecRecorder::new();
        rec.record(finished(FlowStage::Routing, 1, StageOutcome::Ok));
        let mut trace = String::new();
        write_event_json(&mut trace, &rec.events()[0]);
        trace.push('\n');
        assert!(matches!(
            validate_jsonl(&trace),
            Err(TraceError::UnbalancedFinish { .. })
        ));
        // Start without finish.
        let rec = VecRecorder::new();
        rec.record(started(FlowStage::Routing, 1));
        let mut trace = String::new();
        write_event_json(&mut trace, &rec.events()[0]);
        trace.push('\n');
        assert!(matches!(
            validate_jsonl(&trace),
            Err(TraceError::UnclosedSpans { .. })
        ));
        // Not JSON at all.
        assert!(matches!(
            validate_jsonl("stage_started synth\n"),
            Err(TraceError::Malformed { .. })
        ));
    }

    /// The corpus every escaping test drives: quotes, backslashes, the
    /// named control shorts, raw control bytes, non-ASCII, and the
    /// pathological combinations (trailing backslash-ish shapes,
    /// escape-like literals).
    const HOSTILE: &[&str] = &[
        "plain",
        "",
        "with \"quotes\" inside",
        "back\\slash",
        "trailing backslash \\",
        "\\\"",
        "line\nbreak\r\ttab",
        "\u{0000}\u{0001}\u{001f}",
        "unicode: caf\u{e9} \u{65e5}\u{672c} \u{1f600}",
        "looks like an escape: \\n \\u0041",
        "\"}{\"seq\":999,\"kind\":\"fake\"",
    ];

    #[test]
    fn escape_unescape_round_trips_hostile_strings() {
        for &s in HOSTILE {
            let mut buf = String::new();
            escape_json_into(&mut buf, s);
            // The encoded body is safe to embed: no raw control
            // byte, and every quote sits behind a backslash.
            assert!(buf.bytes().all(|b| b >= 0x20), "raw control in {buf:?}");
            assert_eq!(
                scan_string_body(&format!("{buf}\"")),
                Some(buf.as_str()),
                "a quote terminates the string early for {s:?}: {buf:?}"
            );
            assert_eq!(
                unescape_json(&buf).as_deref(),
                Some(s),
                "round trip broke for {s:?} via {buf:?}"
            );
        }
    }

    #[test]
    fn unescape_accepts_full_json_repertoire_and_rejects_garbage() {
        // Escapes our writer never emits but JSON allows.
        assert_eq!(unescape_json("a\\/b").as_deref(), Some("a/b"));
        assert_eq!(
            unescape_json("\\b\\f\\u0041").as_deref(),
            Some("\u{0008}\u{000c}A")
        );
        assert_eq!(
            unescape_json("\\ud83d\\ude00").as_deref(),
            Some("\u{1f600}")
        );
        // Malformed escapes decode to None, never panic.
        for bad in [
            "\\",
            "\\q",
            "\\u",
            "\\u12",
            "\\u12g4",
            "\\ud800",
            "\\ud800x",
            "\\ud800\\u0041",
            "\\udc00",
            "tail\\",
        ] {
            assert_eq!(unescape_json(bad), None, "accepted invalid escape {bad:?}");
        }
    }

    #[test]
    fn hostile_payload_strings_round_trip_through_writer_and_validator() {
        for &s in HOSTILE {
            // Payload strings are &'static str by design; leak per
            // iteration to exercise the writer with hostile values.
            let reason: &'static str = Box::leak(s.to_string().into_boxed_str());
            let rec = VecRecorder::new();
            rec.record(EventKind::StoreDegraded { reason });
            rec.record(EventKind::DiskQuarantined { what: reason });
            let mut trace = String::new();
            for ev in rec.events() {
                write_event_json(&mut trace, &ev);
                trace.push('\n');
            }
            let (line_a, rest) = trace.split_once('\n').unwrap();
            let line_b = rest.trim_end();
            // Each event is one line no matter what the payload held.
            assert_eq!(trace.lines().count(), 2, "payload {s:?} split a line");
            // The validator accepts the trace and the readers recover
            // the exact original value.
            let summary = validate_jsonl(&trace).unwrap_or_else(|e| {
                panic!("validator rejected hostile payload {s:?}: {e}");
            });
            assert_eq!(summary.events, 2);
            assert_eq!(json_str_field(line_a, "reason").as_deref(), Some(s));
            assert_eq!(json_str_field(line_b, "what").as_deref(), Some(s));
        }
    }

    #[test]
    fn validator_rejects_invalid_escapes_in_string_fields() {
        let trace = "{\"seq\":0,\"thread\":0,\"t_s\":0.0,\"kind\":\"store_degraded\",\"reason\":\"bad\\q\"}\n";
        assert!(matches!(
            validate_jsonl(trace),
            Err(TraceError::Malformed { .. })
        ));
        // An unterminated string (escaped closing quote) is a missing
        // field, not a bogus extraction.
        let trace = "{\"seq\":0,\"thread\":0,\"t_s\":0.0,\"kind\":\"store_degraded\",\"reason\":\"oops\\\"}\n";
        assert!(matches!(
            validate_jsonl(trace),
            Err(TraceError::Malformed { .. })
        ));
    }

    #[test]
    fn json_field_accessors_honor_escapes() {
        let line = "{\"n\":7,\"name\":\"a\\\"b\\\\c\",\"arr\":[1,2]}";
        assert_eq!(json_raw_field(line, "n"), Some("7"));
        assert_eq!(json_raw_field(line, "name"), Some("a\\\"b\\\\c"));
        assert_eq!(json_str_field(line, "name").as_deref(), Some("a\"b\\c"));
        assert_eq!(json_raw_field(line, "arr"), Some("[1,2]"));
        assert_eq!(json_str_field(line, "arr"), None);
        assert_eq!(json_str_field(line, "missing"), None);
    }

    #[test]
    fn metrics_histogram_buckets_and_json() {
        let m = MetricsRegistry::new();
        for (wall, outcome) in [
            (0.0005, StageOutcome::Ok),
            (0.01, StageOutcome::Ok),
            (100.0, StageOutcome::Failed),
        ] {
            m.record(EventKind::StageFinished {
                bench: Benchmark::Des,
                style: DesignStyle::TwoD,
                stage: FlowStage::Routing,
                rung: 0,
                attempt: 1,
                outcome,
                wall_s: wall,
                busy_s: wall,
            });
        }
        m.record(EventKind::CacheEvicted {
            kind: CacheKind::Flow,
            count: 3,
        });
        let report = m.report();
        assert_eq!(report.counter("stage_finished_ok"), 2);
        assert_eq!(report.counter("stage_finished_failed"), 1);
        assert_eq!(
            report.counter("cache_evicted_flow"),
            3,
            "evictions add their count"
        );
        let (stage, hist) = &report.stage_wall[0];
        assert_eq!(stage, "route");
        assert_eq!(hist.count, 3);
        assert_eq!(hist.buckets[0], 1, "0.5 ms lands in the 1 ms bucket");
        assert_eq!(hist.buckets[2], 1, "10 ms lands in the 16 ms bucket");
        assert_eq!(
            hist.buckets[WALL_BUCKET_BOUNDS_S.len()],
            1,
            "100 s overflows"
        );
        let json = report.to_json();
        assert!(json.contains("\"stage_finished_ok\": 2"));
        assert!(json.contains("\"route\": {\"count\": 3"));
        assert!(json.contains("\"wall_bucket_bounds_s\": [0.001, "));
    }

    #[test]
    fn thread_ordinals_are_stable_and_distinct() {
        let here = super::thread_ordinal();
        assert_eq!(here, super::thread_ordinal(), "stable within a thread");
        let other = std::thread::spawn(super::thread_ordinal)
            .join()
            .expect("no panic");
        assert_ne!(here, other, "distinct across threads");
    }
}
