//! Durable, crash-only checkpoints for the flow supervisor.
//!
//! A supervised run with checkpointing enabled writes one self-contained
//! snapshot file after every completed stage (and at every degradation-
//! ladder escalation). A snapshot carries everything
//! `FlowSupervisor::resume_from` needs to restart a killed process at
//! the first incomplete stage: the run identity (benchmark, style, full
//! [`FlowConfig`]), the supervisor cursor (rung, round, next stage), the
//! effective environment knobs after any ladder relaxations, the full
//! attempt log, and the durable design artifacts (netlist, wire-load
//! model, placement, extracted RC models).
//!
//! # File format
//!
//! ```text
//! ckpt-<seq>.m3d := MAGIC ("M3DCKPT1", 8 bytes)
//!                   payload_len  (u64 LE)
//!                   payload_hash (u64 LE, FNV-1a 64 over the payload)
//!                   payload      (sections)
//! section        := tag (u8) body_len (u64 LE) body_hash (u64 LE) body
//! ```
//!
//! Every artifact section carries its own FNV-1a 64 content hash in
//! addition to the whole-file hash, so corruption is attributed to the
//! artifact it hit. All integers are little-endian; `f64` values are
//! stored as their IEEE-754 bit patterns, which is what makes a resumed
//! run *bit-identical* to an uninterrupted one — there is no text
//! round-trip anywhere.
//!
//! Writes go to a temp file in the same directory followed by a rename,
//! so a crash mid-write leaves either the old set of checkpoints or the
//! new one, never a half-written file under a checkpoint name. A file
//! that still fails verification (truncation by the filesystem, bit rot,
//! or the chaos harness's planted corruption) is moved to the
//! `quarantine/` subdirectory and surfaced as
//! [`FlowError::CorruptCheckpoint`]; resume then falls back to the next
//! older snapshot, which simply re-runs the affected stage.
//!
//! The cell library is deliberately *not* serialized: it is a pure,
//! memoized function of the config (see [`crate::ArtifactCache`]), so
//! resume re-derives it from its content key instead of storing
//! megabytes of characterization tables. Likewise the routed design is
//! dropped from snapshots — no stage consumes a predecessor's
//! `routed` artifact across a stage boundary (sign-off re-routes the
//! final netlist), so persisting it would be dead weight.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use m3d_netlist::{Benchmark, Instance, Net, NetDriver, NetId, Netlist, PinRef};
use m3d_place::Placement;
use m3d_sta::NetModel;
use m3d_synth::WireLoadModel;
use m3d_tech::DesignStyle;

use m3d_cells::CellId;
use m3d_geom::{Point, Rect};
use m3d_netlist::InstId;

use crate::artifacts::Artifacts;
use crate::codec::{
    dec_benchmark, dec_node, dec_scale, dec_stack_kind, dec_stage, dec_style, enc_benchmark,
    enc_node, enc_scale, enc_stack_kind, enc_stage, enc_style, read_section, write_section, Dec,
    DecResult, DecodeError, Enc,
};
use crate::error::FlowError;
use crate::flow::FlowConfig;
use crate::observe::{self, EventKind, Recorder};
use crate::store::quarantine_file;
use crate::supervisor::{AttemptRecord, Relaxation};

pub use crate::codec::content_hash;

/// File magic of a checkpoint snapshot (version 1).
const MAGIC: &[u8; 8] = b"M3DCKPT1";

// ---------------------------------------------------------------------
// Struct codecs
// ---------------------------------------------------------------------

/// Shared with `govern`'s plan-remainder codec, so a drained plan's
/// points round-trip through the exact same field order as supervisor
/// checkpoints.
pub(crate) fn enc_config(e: &mut Enc, c: &FlowConfig) {
    enc_node(e, c.node_id);
    enc_scale(e, c.bench_scale);
    e.opt(&c.stack_kind, |e, s| enc_stack_kind(e, *s));
    e.opt(&c.clock_ps, |e, v| e.f64(*v));
    e.opt(&c.utilization, |e, v| e.f64(*v));
    e.bool(c.tmi_wlm);
    e.f64(c.pin_cap_scale);
    e.bool(c.lower_metal_rho);
    e.f64(c.alpha_ff);
    e.bool(c.mb1_routing);
    e.usize(c.opt_passes);
    e.usize(c.place_iterations);
    e.f64(c.clock_scale);
}

pub(crate) fn dec_config(d: &mut Dec) -> DecResult<FlowConfig> {
    let node_id = dec_node(d)?;
    let mut cfg = FlowConfig::new(node_id);
    cfg.bench_scale = dec_scale(d)?;
    cfg.stack_kind = d.opt(dec_stack_kind)?;
    cfg.clock_ps = d.opt(|d| d.f64())?;
    cfg.utilization = d.opt(|d| d.f64())?;
    cfg.tmi_wlm = d.bool()?;
    cfg.pin_cap_scale = d.f64()?;
    cfg.lower_metal_rho = d.bool()?;
    cfg.alpha_ff = d.f64()?;
    cfg.mb1_routing = d.bool()?;
    cfg.opt_passes = d.usize()?;
    cfg.place_iterations = d.usize()?;
    cfg.clock_scale = d.f64()?;
    Ok(cfg)
}

fn enc_netlist(e: &mut Enc, n: &Netlist) {
    e.str(&n.name);
    e.usize(n.instances().len());
    for i in n.instances() {
        e.u32(i.cell.0);
        e.usize(i.pins.len());
        for p in &i.pins {
            e.u32(p.0);
        }
        e.bool(i.is_repeater);
    }
    e.usize(n.nets().len());
    for net in n.nets() {
        match net.driver {
            NetDriver::Port(p) => {
                e.u8(0);
                e.u32(p);
            }
            NetDriver::Cell { inst, pin } => {
                e.u8(1);
                e.u32(inst.0);
                e.u8(pin);
            }
            NetDriver::None => e.u8(2),
        }
        e.usize(net.sinks.len());
        for s in &net.sinks {
            e.u32(s.inst.0);
            e.u8(s.pin);
        }
        e.bool(net.is_output);
    }
    e.usize(n.primary_inputs.len());
    for p in &n.primary_inputs {
        e.u32(p.0);
    }
    e.usize(n.primary_outputs.len());
    for p in &n.primary_outputs {
        e.u32(p.0);
    }
    e.opt(&n.clock, |e, c| e.u32(c.0));
}

fn dec_netlist(d: &mut Dec) -> DecResult<Netlist> {
    let name = d.str()?;
    let n_inst = d.usize()?;
    let mut instances = Vec::with_capacity(n_inst.min(1 << 24));
    for _ in 0..n_inst {
        let cell = CellId(d.u32()?);
        let n_pins = d.usize()?;
        let mut pins = Vec::with_capacity(n_pins.min(1 << 16));
        for _ in 0..n_pins {
            pins.push(NetId(d.u32()?));
        }
        let is_repeater = d.bool()?;
        instances.push(Instance {
            cell,
            pins,
            is_repeater,
        });
    }
    let n_nets = d.usize()?;
    let mut nets = Vec::with_capacity(n_nets.min(1 << 24));
    for _ in 0..n_nets {
        let driver = match d.u8()? {
            0 => NetDriver::Port(d.u32()?),
            1 => NetDriver::Cell {
                inst: InstId(d.u32()?),
                pin: d.u8()?,
            },
            2 => NetDriver::None,
            t => return Err(DecodeError(format!("bad NetDriver tag {t}"))),
        };
        let n_sinks = d.usize()?;
        let mut sinks = Vec::with_capacity(n_sinks.min(1 << 16));
        for _ in 0..n_sinks {
            sinks.push(PinRef {
                inst: InstId(d.u32()?),
                pin: d.u8()?,
            });
        }
        let is_output = d.bool()?;
        nets.push(Net {
            driver,
            sinks,
            is_output,
        });
    }
    let n_pi = d.usize()?;
    let mut primary_inputs = Vec::with_capacity(n_pi.min(1 << 20));
    for _ in 0..n_pi {
        primary_inputs.push(NetId(d.u32()?));
    }
    let n_po = d.usize()?;
    let mut primary_outputs = Vec::with_capacity(n_po.min(1 << 20));
    for _ in 0..n_po {
        primary_outputs.push(NetId(d.u32()?));
    }
    let clock = d.opt(|d| Ok(NetId(d.u32()?)))?;
    Ok(Netlist::from_parts(
        name,
        instances,
        nets,
        primary_inputs,
        primary_outputs,
        clock,
    ))
}

fn enc_point(e: &mut Enc, p: Point) {
    e.i64(p.x);
    e.i64(p.y);
}

fn dec_point(d: &mut Dec) -> DecResult<Point> {
    Ok(Point {
        x: d.i64()?,
        y: d.i64()?,
    })
}

fn enc_placement(e: &mut Enc, p: &Placement) {
    enc_point(e, p.core.lo());
    enc_point(e, p.core.hi());
    e.usize(p.positions.len());
    for pt in &p.positions {
        enc_point(e, *pt);
    }
    e.usize(p.port_positions.len());
    for pt in &p.port_positions {
        enc_point(e, *pt);
    }
    e.i64(p.row_height);
    e.f64(p.utilization);
}

fn dec_placement(d: &mut Dec) -> DecResult<Placement> {
    let lo = dec_point(d)?;
    let hi = dec_point(d)?;
    let n_pos = d.usize()?;
    let mut positions = Vec::with_capacity(n_pos.min(1 << 24));
    for _ in 0..n_pos {
        positions.push(dec_point(d)?);
    }
    let n_port = d.usize()?;
    let mut port_positions = Vec::with_capacity(n_port.min(1 << 20));
    for _ in 0..n_port {
        port_positions.push(dec_point(d)?);
    }
    let row_height = d.i64()?;
    let utilization = d.f64()?;
    Ok(Placement {
        core: Rect::new(lo, hi),
        positions,
        port_positions,
        row_height,
        utilization,
    })
}

fn enc_wlm(e: &mut Enc, w: &WireLoadModel) {
    let curve = w.curve();
    e.usize(curve.len());
    for v in curve {
        e.f64(*v);
    }
    e.f64(w.slope_um());
}

fn dec_wlm(d: &mut Dec) -> DecResult<WireLoadModel> {
    let n = d.usize()?;
    let mut curve = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        curve.push(d.f64()?);
    }
    let slope = d.f64()?;
    Ok(WireLoadModel::from_parts(curve, slope))
}

/// Encodes the durable subset of [`Artifacts`]. The routed design is
/// dropped by design (module docs): no stage consumes it across a stage
/// boundary.
fn enc_artifacts(e: &mut Enc, a: &Artifacts) {
    e.opt(&a.netlist, enc_netlist);
    e.opt(&a.wlm, enc_wlm);
    e.f64(a.tau_ps);
    e.opt(&a.placement, enc_placement);
    e.usize(a.models.len());
    for m in &a.models {
        e.f64(m.c_wire);
        e.f64(m.r_wire);
    }
    e.f64(a.wns_after_opt);
}

fn dec_artifacts(d: &mut Dec) -> DecResult<Artifacts> {
    let netlist = d.opt(dec_netlist)?;
    let wlm = d.opt(dec_wlm)?;
    let tau_ps = d.f64()?;
    let placement = d.opt(dec_placement)?;
    let n_models = d.usize()?;
    let mut models = Vec::with_capacity(n_models.min(1 << 24));
    for _ in 0..n_models {
        models.push(NetModel {
            c_wire: d.f64()?,
            r_wire: d.f64()?,
        });
    }
    let wns_after_opt = d.f64()?;
    Ok(Artifacts {
        netlist,
        wlm,
        tau_ps,
        placement,
        routed: None,
        models,
        wns_after_opt,
    })
}

fn enc_relaxation(e: &mut Enc, r: &Relaxation) {
    match r {
        Relaxation::ExtraOptPasses { added } => {
            e.u8(0);
            e.usize(*added);
        }
        Relaxation::RelaxedUtilization { from, to } => {
            e.u8(1);
            e.f64(*from);
            e.f64(*to);
        }
        Relaxation::ClockBackoff { from_ps, to_ps } => {
            e.u8(2);
            e.f64(*from_ps);
            e.f64(*to_ps);
        }
    }
}

fn dec_relaxation(d: &mut Dec) -> DecResult<Relaxation> {
    Ok(match d.u8()? {
        0 => Relaxation::ExtraOptPasses { added: d.usize()? },
        1 => Relaxation::RelaxedUtilization {
            from: d.f64()?,
            to: d.f64()?,
        },
        2 => Relaxation::ClockBackoff {
            from_ps: d.f64()?,
            to_ps: d.f64()?,
        },
        t => return Err(DecodeError(format!("bad Relaxation tag {t}"))),
    })
}

fn enc_records(e: &mut Enc, records: &[AttemptRecord]) {
    e.usize(records.len());
    for r in records {
        enc_stage(e, r.stage);
        e.u32(r.rung);
        e.u32(r.attempt);
        // The typed error does not round-trip; its attribution and
        // rendering do (FlowError::Restored).
        e.opt(&r.error, |e, err| {
            e.opt(&err.stage(), |e, s| enc_stage(e, *s));
            e.str(&err.to_string());
        });
    }
}

fn dec_records(d: &mut Dec) -> DecResult<Vec<AttemptRecord>> {
    let n = d.usize()?;
    let mut records = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let stage = dec_stage(d)?;
        let rung = d.u32()?;
        let attempt = d.u32()?;
        let error = d.opt(|d| {
            let stage = d.opt(|d| dec_stage(d))?;
            let message = d.str()?;
            Ok(FlowError::Restored { stage, message })
        })?;
        records.push(AttemptRecord {
            stage,
            rung,
            attempt,
            error,
        });
    }
    Ok(records)
}

// ---------------------------------------------------------------------
// Persisted supervisor state
// ---------------------------------------------------------------------

/// Where a resumed run re-enters the current degradation rung: the next
/// step to execute. `Decide` is the pure floorplan-round decision after
/// post-route optimization — it re-runs on resume (it is a deterministic
/// function of the checkpointed artifacts), so only stage executions
/// consume wall-clock on the resume path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cursor {
    /// Run synthesis next (start of a non-resumed rung).
    Synth,
    /// Run placement next (start of floorplan round `state.round`).
    Place,
    /// Run pre-route optimization next.
    Preroute,
    /// Run routing next.
    Route,
    /// Run post-route optimization next.
    Postroute,
    /// Re-run the floorplan-round decision next.
    Decide,
    /// Run sign-off next.
    Signoff,
}

impl Cursor {
    /// Stable short name for event traces (the stage the resumed run
    /// executes next; `"decide"` is the pure floorplan-round decision).
    pub(crate) fn key(self) -> &'static str {
        match self {
            Cursor::Synth => "synth",
            Cursor::Place => "place",
            Cursor::Preroute => "preroute",
            Cursor::Route => "route",
            Cursor::Postroute => "postroute",
            Cursor::Decide => "decide",
            Cursor::Signoff => "signoff",
        }
    }

    fn tag(self) -> u8 {
        match self {
            Cursor::Synth => 0,
            Cursor::Place => 1,
            Cursor::Preroute => 2,
            Cursor::Route => 3,
            Cursor::Postroute => 4,
            Cursor::Decide => 5,
            Cursor::Signoff => 6,
        }
    }

    fn from_tag(t: u8) -> DecResult<Self> {
        Ok(match t {
            0 => Cursor::Synth,
            1 => Cursor::Place,
            2 => Cursor::Preroute,
            3 => Cursor::Route,
            4 => Cursor::Postroute,
            5 => Cursor::Decide,
            6 => Cursor::Signoff,
            t => return Err(DecodeError(format!("bad Cursor tag {t}"))),
        })
    }
}

/// The effective environment knobs the degradation ladder mutates —
/// checkpointed bit-exactly so a resumed rung runs under identical
/// pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct EnvKnobs {
    pub(crate) clock_ps: f64,
    pub(crate) utilization: f64,
    pub(crate) opt_passes: usize,
}

/// One complete supervisor snapshot: everything `resume_from` needs.
#[derive(Debug, Clone)]
pub(crate) struct PersistedState {
    /// Monotonic snapshot number within the run (file name key).
    pub(crate) seq: u64,
    pub(crate) bench: Benchmark,
    pub(crate) style: DesignStyle,
    pub(crate) config: FlowConfig,
    /// Degradation rung in progress.
    pub(crate) rung: u32,
    /// Floorplan round in progress within the rung.
    pub(crate) round: u32,
    /// Whether this rung was entered via the routing-checkpoint resume
    /// (ladder rung 1): it skips straight to post-route work.
    pub(crate) resumed_rung: bool,
    /// The next step to execute.
    pub(crate) cursor: Cursor,
    /// Effective knobs after ladder relaxations (`None` until the
    /// library stage has run).
    pub(crate) env: Option<EnvKnobs>,
    pub(crate) relaxations: Vec<Relaxation>,
    pub(crate) records: Vec<AttemptRecord>,
    /// Working design state (durable subset).
    pub(crate) art: Artifacts,
    /// Round-1 best netlist/placement/WNS, kept across the floorplan
    /// round boundary.
    pub(crate) round1_best: Option<(Netlist, Placement, f64)>,
    /// The post-routing snapshot the ladder's first rung resumes from.
    pub(crate) routing_ckpt: Option<Artifacts>,
}

/// Section tags inside a snapshot payload.
const SEC_IDENTITY: u8 = 1;
const SEC_SUPERVISOR: u8 = 2;
const SEC_ARTIFACTS: u8 = 3;
const SEC_ROUND1_BEST: u8 = 4;
const SEC_ROUTING_CKPT: u8 = 5;

impl PersistedState {
    /// Serializes the snapshot to the full file image (magic + hashes +
    /// sections).
    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        let mut identity = Enc::default();
        identity.u64(self.seq);
        enc_benchmark(&mut identity, self.bench);
        enc_style(&mut identity, self.style);
        enc_config(&mut identity, &self.config);

        let mut sup = Enc::default();
        sup.u32(self.rung);
        sup.u32(self.round);
        sup.bool(self.resumed_rung);
        sup.u8(self.cursor.tag());
        sup.opt(&self.env, |e, k| {
            e.f64(k.clock_ps);
            e.f64(k.utilization);
            e.usize(k.opt_passes);
        });
        sup.usize(self.relaxations.len());
        for r in &self.relaxations {
            enc_relaxation(&mut sup, r);
        }
        enc_records(&mut sup, &self.records);

        let mut art = Enc::default();
        enc_artifacts(&mut art, &self.art);

        let mut best = Enc::default();
        best.opt(&self.round1_best, |e, (n, p, w)| {
            enc_netlist(e, n);
            enc_placement(e, p);
            e.f64(*w);
        });

        let mut rckpt = Enc::default();
        rckpt.opt(&self.routing_ckpt, enc_artifacts);

        let mut payload = Vec::new();
        write_section(&mut payload, SEC_IDENTITY, &identity.buf);
        write_section(&mut payload, SEC_SUPERVISOR, &sup.buf);
        write_section(&mut payload, SEC_ARTIFACTS, &art.buf);
        write_section(&mut payload, SEC_ROUND1_BEST, &best.buf);
        write_section(&mut payload, SEC_ROUTING_CKPT, &rckpt.buf);

        let mut file = Vec::with_capacity(payload.len() + 24);
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&content_hash(&payload).to_le_bytes());
        file.extend_from_slice(&payload);
        file
    }

    fn from_bytes(bytes: &[u8]) -> DecResult<Self> {
        if bytes.len() < 24 {
            return Err(DecodeError(format!(
                "file too short: {} bytes",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(DecodeError("bad magic".to_string()));
        }
        let mut head = Dec::new(&bytes[8..24]);
        let len = head.usize()?;
        let hash = head.u64()?;
        let payload = &bytes[24..];
        if payload.len() != len {
            return Err(DecodeError(format!(
                "payload truncated: header says {len} bytes, file carries {}",
                payload.len()
            )));
        }
        let actual = content_hash(payload);
        if actual != hash {
            return Err(DecodeError(format!(
                "payload hash mismatch: stored {hash:#018x}, computed {actual:#018x}"
            )));
        }

        let mut d = Dec::new(payload);
        let identity = read_section(&mut d, SEC_IDENTITY)?;
        let sup = read_section(&mut d, SEC_SUPERVISOR)?;
        let art = read_section(&mut d, SEC_ARTIFACTS)?;
        let best = read_section(&mut d, SEC_ROUND1_BEST)?;
        let rckpt = read_section(&mut d, SEC_ROUTING_CKPT)?;
        d.finish()?;

        let mut di = Dec::new(identity);
        let seq = di.u64()?;
        let bench = dec_benchmark(&mut di)?;
        let style = dec_style(&mut di)?;
        let config = dec_config(&mut di)?;
        di.finish()?;

        let mut ds = Dec::new(sup);
        let rung = ds.u32()?;
        let round = ds.u32()?;
        let resumed_rung = ds.bool()?;
        let cursor = Cursor::from_tag(ds.u8()?)?;
        let env = ds.opt(|d| {
            Ok(EnvKnobs {
                clock_ps: d.f64()?,
                utilization: d.f64()?,
                opt_passes: d.usize()?,
            })
        })?;
        let n_relax = ds.usize()?;
        let mut relaxations = Vec::with_capacity(n_relax.min(16));
        for _ in 0..n_relax {
            relaxations.push(dec_relaxation(&mut ds)?);
        }
        let records = dec_records(&mut ds)?;
        ds.finish()?;

        let mut da = Dec::new(art);
        let art = dec_artifacts(&mut da)?;
        da.finish()?;

        let mut db = Dec::new(best);
        let round1_best = db.opt(|d| {
            let n = dec_netlist(d)?;
            let p = dec_placement(d)?;
            let w = d.f64()?;
            Ok((n, p, w))
        })?;
        db.finish()?;

        let mut dr = Dec::new(rckpt);
        let routing_ckpt = dr.opt(dec_artifacts)?;
        dr.finish()?;

        Ok(PersistedState {
            seq,
            bench,
            style,
            config,
            rung,
            round,
            resumed_rung,
            cursor,
            env,
            relaxations,
            records,
            art,
            round1_best,
            routing_ckpt,
        })
    }
}

// ---------------------------------------------------------------------
// On-disk store
// ---------------------------------------------------------------------

/// A per-run checkpoint directory: snapshot files, plus a `quarantine/`
/// subdirectory for files that failed verification.
#[derive(Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// Files moved to quarantine — shared across clones so every
    /// handle counts into one tally. A quarantine is an *observed*
    /// incident, never a silently swallowed one.
    quarantines: Arc<AtomicU64>,
    /// The sink quarantine events are reported to (defaults to the
    /// disabled null recorder; the supervisor attaches its resolved
    /// recorder at run start).
    recorder: Arc<RwLock<Arc<dyn Recorder>>>,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("quarantines", &self.quarantines.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::CorruptCheckpoint`] when the directory
    /// cannot be created (the only checkpoint error type; the path names
    /// the directory).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, FlowError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| FlowError::CorruptCheckpoint {
            path: dir.display().to_string(),
            detail: format!("cannot create checkpoint directory: {e}"),
        })?;
        Ok(CheckpointStore {
            dir,
            quarantines: Arc::new(AtomicU64::new(0)),
            recorder: Arc::new(RwLock::new(observe::null())),
        })
    }

    /// Attaches the event sink quarantines are reported to (shared
    /// with every clone of this store). Pass [`observe::null()`] to
    /// detach.
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>) {
        *self.recorder.write().expect("recorder slot") = recorder;
    }

    /// How many files this store (and its clones) moved to quarantine.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    /// The directory this store writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where corrupt files are moved.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:08}.m3d"))
    }

    /// Snapshot files currently present, sorted by ascending sequence
    /// number.
    pub fn snapshot_paths(&self) -> Vec<PathBuf> {
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(seq) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".m3d"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                found.push((seq, path));
            }
        }
        found.sort_by_key(|(seq, _)| *seq);
        found.into_iter().map(|(_, p)| p).collect()
    }

    /// Writes one snapshot durably: temp file in the same directory,
    /// then rename, so no crash leaves a half-written file under a
    /// checkpoint name. Returns the final path and the encoded size
    /// (what a `checkpoint_written` trace event reports).
    pub(crate) fn save(&self, state: &PersistedState) -> Result<(PathBuf, u64), FlowError> {
        let bytes = state.to_bytes();
        let final_path = self.path_for(state.seq);
        let tmp_path = self.dir.join(format!(".ckpt-{:08}.tmp", state.seq));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp_path, &final_path)?;
            Ok(())
        };
        write().map_err(|e| FlowError::CorruptCheckpoint {
            path: final_path.display().to_string(),
            detail: format!("checkpoint write failed: {e}"),
        })?;
        Ok((final_path, bytes.len() as u64))
    }

    /// Moves a failed file into `quarantine/` via the artifact store's
    /// shared helper (filename preserved, numeric suffix on
    /// collision). When even the move fails the file is removed
    /// instead, so it cannot shadow older, valid snapshots. Either
    /// way the incident is *counted and traced* — a quarantine must
    /// never be silent.
    fn quarantine(&self, path: &Path) {
        if quarantine_file(path, &self.quarantine_dir()).is_err() {
            let _ = fs::remove_file(path);
        }
        self.quarantines.fetch_add(1, Ordering::Relaxed);
        let rec = self.recorder.read().expect("recorder slot");
        if rec.enabled() {
            rec.record(EventKind::DiskQuarantined { what: "checkpoint" });
        }
    }

    /// Loads the newest snapshot that verifies, quarantining every newer
    /// file that does not. Returns the state plus one
    /// [`FlowError::CorruptCheckpoint`] per quarantined file (for the
    /// caller's report); `Ok(None)` when the directory holds no
    /// snapshot files at all.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::CorruptCheckpoint`] when snapshots exist but
    /// none verifies — the caller should start the run from scratch.
    pub(crate) fn load_latest(
        &self,
    ) -> Result<Option<(PersistedState, Vec<FlowError>)>, FlowError> {
        let mut paths = self.snapshot_paths();
        if paths.is_empty() {
            return Ok(None);
        }
        let mut corruptions: Vec<FlowError> = Vec::new();
        while let Some(path) = paths.pop() {
            let verdict = match fs::read(&path) {
                Err(e) => Err(DecodeError(format!("unreadable: {e}"))),
                Ok(bytes) => PersistedState::from_bytes(&bytes),
            };
            match verdict {
                Ok(state) => return Ok(Some((state, corruptions))),
                Err(DecodeError(detail)) => {
                    self.quarantine(&path);
                    corruptions.push(FlowError::CorruptCheckpoint {
                        path: path.display().to_string(),
                        detail,
                    });
                }
            }
        }
        // Every snapshot failed; surface the newest failure.
        Err(corruptions
            .into_iter()
            .next()
            .unwrap_or(FlowError::CorruptCheckpoint {
                path: self.dir.display().to_string(),
                detail: "no snapshot survived verification".to_string(),
            }))
    }

    /// Flips one payload byte of the newest snapshot in place — the
    /// chaos harness's checkpoint-corruption fault.
    pub fn corrupt_newest(&self) {
        if let Some(path) = self.snapshot_paths().pop() {
            if let Ok(mut bytes) = fs::read(&path) {
                if bytes.len() > 24 {
                    let mid = 24 + (bytes.len() - 24) / 2;
                    bytes[mid] ^= 0xFF;
                    let _ = fs::write(&path, &bytes);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FlowStage;
    use m3d_tech::NodeId;

    fn state() -> PersistedState {
        let mut netlist = Netlist::new("t");
        // A tiny but non-trivial netlist exercising every codec branch.
        let nets = vec![
            Net {
                driver: NetDriver::Port(0),
                sinks: vec![PinRef {
                    inst: InstId(0),
                    pin: 0,
                }],
                is_output: false,
            },
            Net {
                driver: NetDriver::Cell {
                    inst: InstId(0),
                    pin: 0,
                },
                sinks: vec![],
                is_output: true,
            },
            Net {
                driver: NetDriver::None,
                sinks: vec![],
                is_output: false,
            },
        ];
        let instances = vec![Instance {
            cell: CellId(3),
            pins: vec![NetId(0), NetId(1)],
            is_repeater: true,
        }];
        netlist = Netlist::from_parts(
            netlist.name,
            instances,
            nets,
            vec![NetId(0)],
            vec![NetId(1)],
            Some(NetId(2)),
        );
        let placement = Placement {
            core: Rect::new(Point::new(0, 0), Point::new(1000, 2000)),
            positions: vec![Point::new(5, 7)],
            port_positions: vec![Point::new(0, 9)],
            row_height: 140,
            utilization: 0.73,
        };
        PersistedState {
            seq: 4,
            bench: Benchmark::Aes,
            style: DesignStyle::Tmi,
            config: FlowConfig::new(NodeId::N45),
            rung: 1,
            round: 1,
            resumed_rung: true,
            cursor: Cursor::Postroute,
            env: Some(EnvKnobs {
                clock_ps: 1234.5,
                utilization: 0.6,
                opt_passes: 6,
            }),
            relaxations: vec![
                Relaxation::ExtraOptPasses { added: 2 },
                Relaxation::ClockBackoff {
                    from_ps: 100.0,
                    to_ps: 125.0,
                },
            ],
            records: vec![
                AttemptRecord {
                    stage: FlowStage::Library,
                    rung: 0,
                    attempt: 1,
                    error: None,
                },
                AttemptRecord {
                    stage: FlowStage::Routing,
                    rung: 0,
                    attempt: 1,
                    error: Some(FlowError::Injected {
                        stage: FlowStage::Routing,
                        detail: "planted".to_string(),
                    }),
                },
            ],
            art: Artifacts {
                netlist: Some(netlist.clone()),
                wlm: Some(WireLoadModel::uniform(3.0, 0.5)),
                tau_ps: 42.0,
                placement: Some(placement.clone()),
                routed: None,
                models: vec![
                    NetModel {
                        c_wire: 1.5,
                        r_wire: 0.25,
                    },
                    NetModel {
                        c_wire: 0.0,
                        r_wire: -0.0,
                    },
                ],
                wns_after_opt: -3.25,
            },
            round1_best: Some((netlist, placement, -1.0)),
            routing_ckpt: Some(Artifacts::default()),
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let s = state();
        let bytes = s.to_bytes();
        let back = PersistedState::from_bytes(&bytes).expect("decodes");
        // Spot-check the pieces that carry numerics; Netlist/Placement
        // derive PartialEq so the comparison is exact.
        assert_eq!(back.seq, s.seq);
        assert_eq!(back.bench, s.bench);
        assert_eq!(back.style, s.style);
        assert_eq!(back.config, s.config);
        assert_eq!(back.cursor, s.cursor);
        assert_eq!(back.env, s.env);
        assert_eq!(back.relaxations, s.relaxations);
        assert_eq!(back.art.netlist, s.art.netlist);
        assert_eq!(back.art.placement, s.art.placement);
        assert_eq!(
            back.art.wlm.as_ref().map(|w| w.curve().to_vec()),
            s.art.wlm.as_ref().map(|w| w.curve().to_vec())
        );
        assert_eq!(back.art.models, s.art.models);
        assert_eq!(back.art.tau_ps.to_bits(), s.art.tau_ps.to_bits());
        assert_eq!(
            back.art.wns_after_opt.to_bits(),
            s.art.wns_after_opt.to_bits()
        );
        // -0.0 survives as -0.0 (bit-exact, not value-equal).
        assert_eq!(back.art.models[1].r_wire.to_bits(), (-0.0f64).to_bits());
        assert!(back.round1_best.is_some());
        assert!(back.routing_ckpt.is_some());
        // Errors degrade to their rendering, attribution intact.
        match &back.records[1].error {
            Some(FlowError::Restored { stage, message }) => {
                assert_eq!(*stage, Some(FlowStage::Routing));
                assert!(message.contains("planted"), "message: {message}");
            }
            other => panic!("expected Restored, got {other:?}"),
        }
    }

    #[test]
    fn any_flipped_payload_byte_is_detected() {
        let bytes = state().to_bytes();
        // Flip a handful of positions across the file (every byte would
        // be slow); header, section hash, and artifact bytes included.
        for pos in [8, 16, 24, 40, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert!(
                PersistedState::from_bytes(&bad).is_err(),
                "flip at {pos} went undetected"
            );
        }
        // Truncation at any boundary is detected too.
        for cut in [0, 7, 23, bytes.len() / 3, bytes.len() - 1] {
            assert!(
                PersistedState::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn store_quarantines_corrupt_files_and_falls_back() {
        let dir = std::env::temp_dir().join(format!("m3d-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("store opens");
        let mut s = state();
        s.seq = 1;
        store.save(&s).expect("saves");
        s.seq = 2;
        s.rung = 3;
        store.save(&s).expect("saves");
        assert_eq!(store.snapshot_paths().len(), 2);

        // Corrupt the newest; load must fall back to seq 1 and
        // quarantine the bad file.
        store.corrupt_newest();
        let (loaded, corruptions) = store
            .load_latest()
            .expect("load succeeds via fallback")
            .expect("a snapshot exists");
        assert_eq!(loaded.seq, 1);
        assert_eq!(corruptions.len(), 1);
        assert!(matches!(
            corruptions[0],
            FlowError::CorruptCheckpoint { .. }
        ));
        assert_eq!(store.snapshot_paths().len(), 1);
        let quarantined: Vec<_> = fs::read_dir(store.quarantine_dir())
            .expect("quarantine dir exists")
            .collect();
        assert_eq!(quarantined.len(), 1);

        // Corrupt the survivor too: now loading errs.
        store.corrupt_newest();
        assert!(matches!(
            store.load_latest(),
            Err(FlowError::CorruptCheckpoint { .. })
        ));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_is_counted_and_traced_never_silent() {
        use crate::observe::VecRecorder;
        let dir = std::env::temp_dir().join(format!("m3d-ckpt-qtrace-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("store opens");
        let sink = Arc::new(VecRecorder::new());
        // A clone shares the counter and sink with the original — the
        // supervisor hands clones around.
        let handle = store.clone();
        handle.set_recorder(Arc::clone(&sink) as Arc<dyn Recorder>);
        let mut s = state();
        s.seq = 1;
        store.save(&s).expect("saves");
        store.corrupt_newest();
        assert!(store.load_latest().is_err(), "only snapshot is corrupt");
        assert_eq!(store.quarantines(), 1, "quarantine counted");
        assert_eq!(handle.quarantines(), 1, "count shared across clones");
        let events = sink.events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::DiskQuarantined { what: "checkpoint" })),
            "quarantine traced, not swallowed: {events:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_loads_nothing() {
        let dir = std::env::temp_dir().join(format!("m3d-ckpt-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("store opens");
        assert!(store.load_latest().expect("ok").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
