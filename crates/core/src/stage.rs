//! The stage graph: one [`Stage`] per paper pipeline step (Fig. 1),
//! each reading and writing the typed [`FlowContext`] artifact store.
//!
//! The graph replaces the old monolithic `Flow::try_run`: stage bodies
//! are addressable by [`FlowStage`] id or by short name (`"route"`,
//! `"signoff"`, …), so the supervisor's checkpoints, retries and the
//! fault-injection harness all target *named* stages instead of
//! positions in a hard-coded call sequence. Each stage also declares
//! which [`crate::FlowConfig`] knobs it consumes — the contract behind
//! the [`crate::ArtifactCache`] key: a knob no stage consumes must not
//! split a cache entry (`tests` below tie the two together).

use m3d_place::Placer;
use m3d_power::{try_analyze_power, PowerConfig};
use m3d_route::{LayerUsage, Router};
use m3d_sta::{plan_load_sizing, plan_power_recovery, plan_timing_moves, try_analyze, StaError};
use m3d_synth::{try_synthesize, SynthConfig, WireLoadModel};
use m3d_tech::{DesignStyle, MetalStack};

use crate::artifacts::FlowContext;
use crate::error::{FlowError, FlowStage};
use crate::flow::{
    apply_moves, default_clock_scale_at, estimate_models, try_extraction_models, FlowEnv,
    FlowResult,
};

/// One step of the sign-off pipeline, operating on the shared
/// [`FlowContext`].
///
/// Stages are stateless: all inputs come from the context (artifacts of
/// earlier stages, the run config, the shared cache) and all outputs go
/// back into it, which is what lets the supervisor checkpoint, retry
/// and resume them generically.
pub trait Stage: std::fmt::Debug + Send + Sync {
    /// The pipeline position this stage implements.
    fn id(&self) -> FlowStage;

    /// Stable short name (`"route"`, `"signoff"`, …) — how fault plans
    /// and checkpoint tables address the stage.
    fn name(&self) -> &'static str {
        self.id().key()
    }

    /// The [`crate::FlowConfig`] field names this stage reads, directly
    /// or via the environment it builds. The union across the graph is
    /// the [`crate::ArtifactCache`] flow-key contract.
    fn consumes(&self) -> &'static [&'static str];

    /// Runs the stage against the context.
    ///
    /// # Errors
    ///
    /// Returns the stage's typed [`FlowError`]; a
    /// [`FlowError::MissingArtifact`] indicates a sequencing bug in the
    /// driver, not bad data.
    fn run(&self, cx: &mut FlowContext) -> Result<(), FlowError>;
}

/// Borrows the resolved environment, or reports which stage ran too
/// early.
fn need_env(env: &Option<FlowEnv>, stage: FlowStage) -> Result<&FlowEnv, FlowError> {
    env.as_ref().ok_or(FlowError::missing("environment", stage))
}

/// The router configured for this flow, borrowing the environment.
fn router(env: &FlowEnv, mb1_routing: bool) -> Router<'_> {
    let r = Router::new(&env.node, &env.stack);
    if mb1_routing {
        r
    } else {
        r.without_mb1()
    }
}

/// Library preparation: validated config, characterized (cached)
/// library, metal stack, and the effective clock / utilization /
/// pass-budget targets.
#[derive(Debug)]
pub struct LibraryStage;

impl Stage for LibraryStage {
    fn id(&self) -> FlowStage {
        FlowStage::Library
    }

    fn consumes(&self) -> &'static [&'static str] {
        &[
            "node_id",
            "stack_kind",
            "clock_ps",
            "clock_scale",
            "utilization",
            "opt_passes",
            "pin_cap_scale",
            "lower_metal_rho",
        ]
    }

    fn run(&self, cx: &mut FlowContext) -> Result<(), FlowError> {
        let cfg = &cx.config;
        cfg.validate()?;
        let node = cfg.tech_node();
        let stack_kind = cfg.stack_kind.unwrap_or(cx.style.default_stack());
        let stack = MetalStack::new(&node, stack_kind);
        let lib = cx.cache.library(
            cfg.node_id,
            cx.style,
            cfg.lower_metal_rho,
            cfg.pin_cap_scale,
        )?;
        let scale = if cfg.clock_scale > 0.0 {
            cfg.clock_scale
        } else {
            default_clock_scale_at(cx.bench, cfg.node_id)
        };
        let clock_ps = cfg
            .clock_ps
            .unwrap_or_else(|| cx.bench.target_clock_ps(cfg.node_id))
            * scale;
        let utilization = cfg
            .utilization
            .unwrap_or_else(|| cx.bench.target_utilization());
        cx.env = Some(FlowEnv {
            node,
            stack,
            lib,
            clock_ps,
            utilization,
            opt_passes: cfg.opt_passes,
        });
        Ok(())
    }
}

/// Synthesis: wire-load model measured on a preliminary placement,
/// WLM-guided synthesis, and the per-stage delay target derived from
/// the synthesized logic depth.
#[derive(Debug)]
pub struct SynthesisStage;

impl Stage for SynthesisStage {
    fn id(&self) -> FlowStage {
        FlowStage::Synthesis
    }

    fn consumes(&self) -> &'static [&'static str] {
        &["bench_scale", "tmi_wlm", "node_id", "lower_metal_rho"]
    }

    fn run(&self, cx: &mut FlowContext) -> Result<(), FlowError> {
        let FlowContext {
            bench,
            style,
            config: cfg,
            cache,
            env,
            art,
            ..
        } = cx;
        let env = need_env(env, FlowStage::Synthesis)?;
        let raw = bench.generate(&env.lib, cfg.bench_scale);
        let wlm = if cfg.tmi_wlm || *style == DesignStyle::TwoD {
            let prelim = Placer::new(&env.lib)
                .utilization(env.utilization)
                .iterations(16)
                .try_place(&raw)?;
            WireLoadModel::from_placement(&raw, &prelim)
        } else {
            // Table 15 "-n": synthesize the T-MI design against the WLM
            // measured on the *2D* implementation.
            let lib2d = cache.library(cfg.node_id, DesignStyle::TwoD, cfg.lower_metal_rho, 1.0)?;
            let raw2d = bench.generate(&lib2d, cfg.bench_scale);
            let prelim = Placer::new(&lib2d)
                .utilization(env.utilization)
                .iterations(16)
                .try_place(&raw2d)?;
            WireLoadModel::from_placement(&raw2d, &prelim)
        };
        let netlist = try_synthesize(raw, &env.lib, &wlm, &SynthConfig::new(env.clock_ps))?;

        // Per-stage delay target for load-based sizing: a share of the
        // clock budget divided by the design's logic depth.
        let tau_ps = {
            let (levels, _) = m3d_netlist::levelize(&netlist, &env.lib).map_err(|cycle| {
                StaError::CombinationalCycle {
                    involved: cycle.len(),
                }
            })?;
            let depth = levels.iter().copied().max().unwrap_or(1) as f64 + 3.0;
            (0.55 * env.clock_ps / depth).clamp(20.0, 200.0)
        };
        art.netlist = Some(netlist);
        art.wlm = Some(wlm);
        art.tau_ps = tau_ps;
        art.placement = None;
        art.routed = None;
        art.models = Vec::new();
        art.wns_after_opt = 0.0;
        Ok(())
    }
}

/// Placement: global placement, then load-based sizing gated on need —
/// drivers are mapped to their placed loads only while the design
/// misses its clock (iterated because sizing moves the loads).
#[derive(Debug)]
pub struct PlacementStage;

impl Stage for PlacementStage {
    fn id(&self) -> FlowStage {
        FlowStage::Placement
    }

    fn consumes(&self) -> &'static [&'static str] {
        &["place_iterations"]
    }

    fn run(&self, cx: &mut FlowContext) -> Result<(), FlowError> {
        let FlowContext {
            config: cfg,
            env,
            art,
            ..
        } = cx;
        let env = need_env(env, FlowStage::Placement)?;
        let timing = env.timing();
        let tau_ps = art.tau_ps;
        let netlist = art
            .netlist
            .as_mut()
            .ok_or(FlowError::missing("netlist", FlowStage::Placement))?;
        let mut placement = Placer::new(&env.lib)
            .utilization(env.utilization)
            .iterations(cfg.place_iterations)
            .try_place(netlist)?;
        for _ in 0..3 {
            let est = estimate_models(netlist, &placement, &env.node, &env.stack);
            let report = try_analyze(netlist, &env.lib, &est, &timing)?;
            if report.met() {
                break;
            }
            let moves = plan_load_sizing(netlist, &env.lib, &est, tau_ps);
            if moves.is_empty() {
                break;
            }
            apply_moves(netlist, &mut placement, &env.lib, &moves);
        }
        art.placement = Some(placement);
        Ok(())
    }
}

/// Pre-route optimization on placement-based estimates. Passes are
/// accept/reject: a pass that does not improve WNS is rolled back and
/// the loop stops.
#[derive(Debug)]
pub struct PreRouteOptStage;

impl Stage for PreRouteOptStage {
    fn id(&self) -> FlowStage {
        FlowStage::PreRouteOpt
    }

    fn consumes(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, cx: &mut FlowContext) -> Result<(), FlowError> {
        let FlowContext { env, art, .. } = cx;
        let env = need_env(env, FlowStage::PreRouteOpt)?;
        let timing = env.timing();
        let netlist = art
            .netlist
            .as_mut()
            .ok_or(FlowError::missing("netlist", FlowStage::PreRouteOpt))?;
        let mut placement = art
            .placement
            .take()
            .ok_or(FlowError::missing("placement", FlowStage::PreRouteOpt))?;
        let mut last_wns = f64::NEG_INFINITY;
        for pass in 0..env.opt_passes {
            let est = estimate_models(netlist, &placement, &env.node, &env.stack);
            let report = try_analyze(netlist, &env.lib, &est, &timing)?;
            if report.met() {
                break;
            }
            if pass > 0 && report.wns <= last_wns {
                break;
            }
            last_wns = report.wns;
            let limit = 3000.max(netlist.net_count() / 4);
            let moves = plan_timing_moves(netlist, &env.lib, &est, &report, limit);
            if moves.is_empty() {
                break;
            }
            let saved = (netlist.clone(), placement.clone());
            apply_moves(netlist, &mut placement, &env.lib, &moves);
            let est2 = estimate_models(netlist, &placement, &env.node, &env.stack);
            let report2 = try_analyze(netlist, &env.lib, &est2, &timing)?;
            if report2.wns < report.wns {
                *netlist = saved.0;
                placement = saved.1;
                break;
            }
        }
        art.placement = Some(placement);
        Ok(())
    }
}

/// Routing: global route, one load-sizing round against extracted
/// loads, and the final re-route / re-extract.
#[derive(Debug)]
pub struct RoutingStage;

impl Stage for RoutingStage {
    fn id(&self) -> FlowStage {
        FlowStage::Routing
    }

    fn consumes(&self) -> &'static [&'static str] {
        &["mb1_routing"]
    }

    fn run(&self, cx: &mut FlowContext) -> Result<(), FlowError> {
        let FlowContext {
            config: cfg,
            env,
            art,
            ..
        } = cx;
        let env = need_env(env, FlowStage::Routing)?;
        let timing = env.timing();
        let router = router(env, cfg.mb1_routing);
        let netlist = art
            .netlist
            .as_mut()
            .ok_or(FlowError::missing("netlist", FlowStage::Routing))?;
        let mut placement = art
            .placement
            .take()
            .ok_or(FlowError::missing("placement", FlowStage::Routing))?;
        let mut routed = router.try_route(netlist, &placement, &env.lib)?;
        let mut models = try_extraction_models(netlist, &routed, &env.node)?;
        for _ in 0..2 {
            let report = try_analyze(netlist, &env.lib, &models, &timing)?;
            if report.met() {
                break;
            }
            let moves = plan_load_sizing(netlist, &env.lib, &models, art.tau_ps);
            if moves.is_empty() {
                break;
            }
            apply_moves(netlist, &mut placement, &env.lib, &moves);
        }
        routed = router.try_route(netlist, &placement, &env.lib)?;
        models = try_extraction_models(netlist, &routed, &env.node)?;
        art.placement = Some(placement);
        art.routed = Some(routed);
        art.models = models;
        Ok(())
    }
}

/// Post-route optimization (accept/reject passes) followed by
/// iso-performance power recovery: cells with slack are repeatedly
/// downsized until nothing more fits ("with a better timing, cells are
/// downsized", Section 4.1), verified per round.
#[derive(Debug)]
pub struct PostRouteOptStage;

impl Stage for PostRouteOptStage {
    fn id(&self) -> FlowStage {
        FlowStage::PostRouteOpt
    }

    fn consumes(&self) -> &'static [&'static str] {
        &["mb1_routing"]
    }

    fn run(&self, cx: &mut FlowContext) -> Result<(), FlowError> {
        let FlowContext {
            config: cfg,
            env,
            art,
            ..
        } = cx;
        let env = need_env(env, FlowStage::PostRouteOpt)?;
        let timing = env.timing();
        let router = router(env, cfg.mb1_routing);
        let netlist = art
            .netlist
            .as_mut()
            .ok_or(FlowError::missing("netlist", FlowStage::PostRouteOpt))?;
        let mut placement = art
            .placement
            .take()
            .ok_or(FlowError::missing("placement", FlowStage::PostRouteOpt))?;
        for _ in 0..env.opt_passes {
            let report = try_analyze(netlist, &env.lib, &art.models, &timing)?;
            if report.met() {
                break;
            }
            let limit = 2000.max(netlist.net_count() / 4);
            let moves = plan_timing_moves(netlist, &env.lib, &art.models, &report, limit);
            if moves.is_empty() {
                break;
            }
            let saved = (netlist.clone(), placement.clone());
            apply_moves(netlist, &mut placement, &env.lib, &moves);
            let new_routed = router.try_route(netlist, &placement, &env.lib)?;
            let new_models = try_extraction_models(netlist, &new_routed, &env.node)?;
            let report2 = try_analyze(netlist, &env.lib, &new_models, &timing)?;
            if report2.wns < report.wns {
                *netlist = saved.0;
                placement = saved.1;
                break;
            }
            art.models = new_models;
            drop(new_routed); // sign-off re-routes the final netlist
        }

        let recovery_batch = 500.max(netlist.instance_count() / 6);
        for _ in 0..20 {
            let report = try_analyze(netlist, &env.lib, &art.models, &timing)?;
            if !report.met() {
                break;
            }
            let margin = 0.02 * env.clock_ps;
            let moves = plan_power_recovery(netlist, &env.lib, &report, margin, recovery_batch);
            if moves.is_empty() {
                break;
            }
            let saved = netlist.clone();
            apply_moves(netlist, &mut placement, &env.lib, &moves);
            let check = try_analyze(netlist, &env.lib, &art.models, &timing)?;
            if !check.met() {
                *netlist = saved;
                break;
            }
        }
        art.wns_after_opt = try_analyze(netlist, &env.lib, &art.models, &timing)?.wns;
        art.placement = Some(placement);
        Ok(())
    }
}

/// Sign-off: final route and extraction of the final netlist, timing
/// and power analysis, result assembly into the context.
#[derive(Debug)]
pub struct SignOffStage;

impl Stage for SignOffStage {
    fn id(&self) -> FlowStage {
        FlowStage::SignOff
    }

    fn consumes(&self) -> &'static [&'static str] {
        &["mb1_routing", "alpha_ff", "node_id"]
    }

    fn run(&self, cx: &mut FlowContext) -> Result<(), FlowError> {
        let FlowContext {
            bench,
            style,
            config: cfg,
            env,
            art,
            result,
            ..
        } = cx;
        let env = need_env(env, FlowStage::SignOff)?;
        let timing = env.timing();
        let router = router(env, cfg.mb1_routing);
        let netlist = art
            .netlist
            .as_ref()
            .ok_or(FlowError::missing("netlist", FlowStage::SignOff))?;
        let wlm = art
            .wlm
            .as_ref()
            .ok_or(FlowError::missing("wire-load model", FlowStage::SignOff))?;
        let placement = art
            .placement
            .as_ref()
            .ok_or(FlowError::missing("placement", FlowStage::SignOff))?;
        let routed = router.try_route(netlist, placement, &env.lib)?;
        let models = try_extraction_models(netlist, &routed, &env.node)?;
        let report = try_analyze(netlist, &env.lib, &models, &timing)?;
        let power = try_analyze_power(
            netlist,
            &env.lib,
            &models,
            &PowerConfig::new(env.clock_ps).with_alpha_ff(cfg.alpha_ff),
        )?;
        let stats = netlist.stats(&env.lib);
        let res = FlowResult {
            bench: *bench,
            style: *style,
            node_id: cfg.node_id,
            clock_ps: env.clock_ps,
            hold_wns_ps: report.hold_wns,
            footprint_um2: placement.footprint_um2(),
            core_um: (
                placement.core.width() as f64 * 1e-3,
                placement.core.height() as f64 * 1e-3,
            ),
            cell_count: stats.cell_count,
            buffer_count: stats.buffer_count,
            utilization: placement.utilization,
            wirelength_um: routed.total_wirelength_um(),
            wns_ps: report.wns,
            power,
            layer_usage: LayerUsage::of(&routed),
            wlm_curve: wlm.curve().to_vec(),
        };
        art.routed = Some(routed);
        art.models = models;
        *result = Some(res);
        Ok(())
    }
}

/// The paper's pipeline as an ordered, name-addressable stage graph.
///
/// Stages are held behind [`std::sync::Arc`] so the supervisor's
/// containment machinery can move a stage onto a watchdogged worker
/// thread ([`crate::FlowSupervisor`]) while the graph keeps its handle.
#[derive(Debug)]
pub struct StageGraph {
    stages: Vec<std::sync::Arc<dyn Stage>>,
}

impl StageGraph {
    /// The seven-stage pipeline of paper Fig. 1, in execution order.
    pub fn paper_pipeline() -> Self {
        StageGraph {
            stages: vec![
                std::sync::Arc::new(LibraryStage),
                std::sync::Arc::new(SynthesisStage),
                std::sync::Arc::new(PlacementStage),
                std::sync::Arc::new(PreRouteOptStage),
                std::sync::Arc::new(RoutingStage),
                std::sync::Arc::new(PostRouteOptStage),
                std::sync::Arc::new(SignOffStage),
            ],
        }
    }

    /// The stage implementing a pipeline position.
    ///
    /// # Panics
    ///
    /// Panics when the graph is missing the stage — impossible for
    /// [`StageGraph::paper_pipeline`], which carries all of
    /// [`FlowStage::ALL`].
    pub fn stage(&self, id: FlowStage) -> &dyn Stage {
        self.stages
            .iter()
            .map(|s| &**s)
            .find(|s| s.id() == id)
            .unwrap_or_else(|| panic!("stage graph is missing stage '{}'", id.key()))
    }

    /// An owning handle to the stage implementing a pipeline position —
    /// what the supervisor moves onto a worker thread for contained,
    /// deadline-watched execution.
    ///
    /// # Panics
    ///
    /// Panics when the graph is missing the stage, like
    /// [`StageGraph::stage`].
    pub fn stage_arc(&self, id: FlowStage) -> std::sync::Arc<dyn Stage> {
        self.stages
            .iter()
            .find(|s| s.id() == id)
            .cloned()
            .unwrap_or_else(|| panic!("stage graph is missing stage '{}'", id.key()))
    }

    /// Resolves a stage by short name or display name.
    pub fn by_name(&self, name: &str) -> Option<&dyn Stage> {
        FlowStage::from_name(name).map(|id| self.stage(id))
    }

    /// The stages in execution order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Stage> {
        self.stages.iter().map(|s| &**s)
    }

    /// The stage short names in execution order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.iter().map(|s| s.name())
    }

    /// The stage a fault-free flow enters at.
    pub fn entry_stage(&self) -> FlowStage {
        FlowStage::Library
    }

    /// The stage a closed flow exits from.
    pub fn exit_stage(&self) -> FlowStage {
        FlowStage::SignOff
    }

    /// Whether `from -> to` is a legal transition between *successful*
    /// stage completions of one flow: the pipeline's forward edges,
    /// plus the floorplan back edge — post-route optimization may
    /// return to placement when the cell area drifted from the
    /// floorplan basis (the two-round loop of paper Fig. 1). The
    /// golden-trace suite (`tests/observe.rs`) replays recorded event
    /// streams against exactly this relation.
    pub fn legal_transition(&self, from: FlowStage, to: FlowStage) -> bool {
        use FlowStage::*;
        matches!(
            (from, to),
            (Library, Synthesis)
                | (Synthesis, Placement)
                | (Placement, PreRouteOpt)
                | (PreRouteOpt, Routing)
                | (Routing, PostRouteOpt)
                | (PostRouteOpt, SignOff)
                | (PostRouteOpt, Placement)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_covers_all_stages_in_order() {
        let graph = StageGraph::paper_pipeline();
        let ids: Vec<FlowStage> = graph.iter().map(|s| s.id()).collect();
        assert_eq!(ids, FlowStage::ALL.to_vec());
        let names: Vec<&str> = graph.names().collect();
        assert_eq!(
            names,
            [
                "library",
                "synth",
                "place",
                "preroute",
                "route",
                "postroute",
                "signoff"
            ]
        );
    }

    #[test]
    fn stages_resolve_by_short_and_display_name() {
        let graph = StageGraph::paper_pipeline();
        assert_eq!(
            graph.by_name("route").map(|s| s.id()),
            Some(FlowStage::Routing)
        );
        assert_eq!(
            graph.by_name("post-route optimization").map(|s| s.id()),
            Some(FlowStage::PostRouteOpt)
        );
        assert!(graph.by_name("no-such-stage").is_none());
    }

    #[test]
    fn legal_transitions_are_the_pipeline_plus_floorplan_back_edge() {
        let graph = StageGraph::paper_pipeline();
        assert_eq!(graph.entry_stage(), FlowStage::Library);
        assert_eq!(graph.exit_stage(), FlowStage::SignOff);
        // Every adjacent pipeline pair is legal…
        for pair in FlowStage::ALL.windows(2) {
            assert!(
                graph.legal_transition(pair[0], pair[1]),
                "{} -> {} must be legal",
                pair[0].key(),
                pair[1].key()
            );
        }
        // …plus exactly one back edge (the floorplan round).
        assert!(graph.legal_transition(FlowStage::PostRouteOpt, FlowStage::Placement));
        let mut legal = 0;
        for from in FlowStage::ALL {
            for to in FlowStage::ALL {
                legal += usize::from(graph.legal_transition(from, to));
            }
        }
        assert_eq!(legal, 7, "6 forward edges + 1 back edge, nothing else");
        assert!(!graph.legal_transition(FlowStage::SignOff, FlowStage::Library));
        assert!(!graph.legal_transition(FlowStage::Library, FlowStage::Placement));
    }

    #[test]
    fn consumed_knobs_cover_every_flow_config_field() {
        // The cache-key contract: every FlowConfig field must be
        // consumed by some stage (else the flow key over-splits), and
        // nothing a stage consumes may be missing from the config.
        let all_fields = [
            "node_id",
            "bench_scale",
            "stack_kind",
            "clock_ps",
            "utilization",
            "tmi_wlm",
            "pin_cap_scale",
            "lower_metal_rho",
            "alpha_ff",
            "mb1_routing",
            "opt_passes",
            "place_iterations",
            "clock_scale",
        ];
        let graph = StageGraph::paper_pipeline();
        let consumed: std::collections::BTreeSet<&str> = graph
            .iter()
            .flat_map(|s| s.consumes().iter().copied())
            .collect();
        for field in all_fields {
            assert!(consumed.contains(field), "no stage consumes '{field}'");
        }
        for knob in &consumed {
            assert!(
                all_fields.contains(knob),
                "stage consumes unknown knob '{knob}'"
            );
        }
    }
}
