use m3d_netlist::Benchmark;
use m3d_tech::NodeId;
use monolith3d::{Comparison, FlowConfig};
use std::time::Instant;
fn main() {
    let cfg = FlowConfig::new(NodeId::N45);
    println!("circuit  footprint wirelen   total    cell     net    leakage  (wns2d wns3d)");
    for bench in Benchmark::ALL {
        let t = Instant::now();
        let cmp = Comparison::run(bench, &cfg);
        println!(
            "{}  (2D wns {:.0}, 3D wns {:.0}, buffers {} -> {})  [{:.1?}]",
            cmp.table_row(),
            cmp.two_d.wns_ps,
            cmp.tmi.wns_ps,
            cmp.two_d.buffer_count,
            cmp.tmi.buffer_count,
            t.elapsed()
        );
    }
    println!(
        "paper:  FPU -41.7 -26.3 -14.5 -9.4 -19.5 -11.1 | AES -42.4 -23.6 -10.9 -7.6 -13.9 -9.5"
    );
    println!("        LDPC -43.2 -33.6 -32.1 -12.8 -39.2 -21.7 | DES -40.9 -21.5 -4.1 -1.6 -7.7 -1.4 | M256 -43.4 -28.4 -17.5 -10.7 -22.2 -12.9");
}
