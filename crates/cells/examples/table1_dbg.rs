use m3d_cells::{layout::generate_layout, CellFunction, Signal, Topology};
use m3d_extract::{extract_cell, TopSiliconModel};
use m3d_tech::{DesignStyle, TechNode};

fn main() {
    let node = TechNode::n45();
    println!("cell      2D_R    3D_R  | 2D_C    3D_C   3Dc_C   (kOhm / fF, signal nodes only)");
    for f in [
        CellFunction::Inv,
        CellFunction::Nand2,
        CellFunction::Mux2,
        CellFunction::Dff,
    ] {
        let topo = Topology::for_function(f);
        let mut row = format!("{:8}", f.base_name());
        let mut r = vec![];
        let mut c = vec![];
        for style in [DesignStyle::TwoD, DesignStyle::Tmi] {
            let g = generate_layout(&node, &topo, style, 1);
            for model in [TopSiliconModel::Dielectric, TopSiliconModel::Conductor] {
                let e = extract_cell(&node, &g.shapes, model);
                let sum_r: f64 = e
                    .node_r
                    .iter()
                    .filter(|(&n, _)| n != Signal::Vdd.node_id() && n != Signal::Vss.node_id())
                    .map(|(_, v)| v)
                    .sum();
                let sum_c: f64 = e
                    .node_c
                    .iter()
                    .filter(|(&n, _)| n != Signal::Vdd.node_id() && n != Signal::Vss.node_id())
                    .map(|(_, v)| v)
                    .sum();
                if model == TopSiliconModel::Dielectric {
                    r.push(sum_r);
                    c.push(sum_c);
                } else if style == DesignStyle::Tmi {
                    c.push(sum_c);
                }
            }
        }
        row += &format!(
            "  {:.3}  {:.3} | {:.3}  {:.3}  {:.3}",
            r[0], r[1], c[0], c[1], c[2]
        );
        println!("{row}");
    }
    println!("paper:  INV 0.186/0.107 | 0.363 0.368 0.349");
    println!("        NAND2 0.372/0.237 | 0.561 0.586 0.547");
    println!("        MUX2 1.133/0.975 | 1.823 1.938 1.796");
    println!("        DFF 2.876/3.045 | 4.108 5.101 4.740");
}
