use m3d_cells::{
    characterize::characterize_spice, layout::generate_layout, CellFunction, Topology,
};
use m3d_tech::{DesignStyle, TechNode};
fn main() {
    let node = TechNode::n45();
    let topo = Topology::for_function(CellFunction::Inv);
    let geom = generate_layout(&node, &topo, DesignStyle::TwoD, 1);
    let t = characterize_spice(
        &node,
        CellFunction::Inv,
        1,
        &topo,
        &geom,
        vec![7.5, 37.5, 150.0],
        vec![0.8, 3.2, 12.8],
    );
    for (s, l, tgt) in [(7.5, 0.8, 17.2), (37.5, 3.2, 51.1), (150.0, 12.8, 188.3)] {
        println!("slew {s:6} load {l:5}: delay {:7.1} (paper {tgt}), slew_out {:6.1}, energy {:.3} (paper ~0.36-0.45)",
            t.delay.lookup(s, l), t.out_slew.lookup(s, l), t.energy.lookup(s, l));
    }
}
