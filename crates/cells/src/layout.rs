//! Programmatic transistor-level layout generation.
//!
//! One generator renders every [`Topology`] in both styles:
//!
//! * **2D**: classic planar cell — PMOS diffusion row at the top, NMOS row
//!   at the bottom, shared vertical poly gates spanning both rows, M1
//!   straps stitching the source/drain taps (1.4 µm cell height at 45 nm).
//! * **T-MI**: the folded cell of the paper's Fig. 2 — the PMOS row moves
//!   to the bottom tier (DiffP/PolyBottom/ContactBottom/MetalB1), the NMOS
//!   row stays on the top tier, and every signal present on both tiers
//!   gets a monolithic inter-tier via (MIV). The fold cuts cell height to
//!   0.84 µm (40 %) because the rows stack instead of sitting side by
//!   side; the residual 0.24 µm comes from P/N size mismatch and MIV
//!   keep-out (paper Section 3.2).
//!
//! The geometry is deliberately simple (rectangles on a column grid) but
//! dimensionally faithful, so the RC extractor sees realistic wire lengths:
//! in 2D an input poly runs ~1.2 µm to cross both rows; in T-MI each
//! tier's poly is ~0.4 µm plus an MIV.

use m3d_geom::{LayerShape, Nm, Point, Rect, ShapeSet};
use m3d_spice::MosKind;
use m3d_tech::{CellLayer, DesignStyle, TechNode};
use serde::{Deserialize, Serialize};

use crate::{Signal, Topology};

/// Generated cell geometry plus summary figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellGeometry {
    /// All drawn shapes, tagged with [`Signal::node_id`]s.
    pub shapes: ShapeSet,
    /// Cell width (placement footprint), nm.
    pub width_nm: Nm,
    /// Cell height (row height), nm.
    pub height_nm: Nm,
    /// Number of MIVs in the cell (0 for 2D).
    pub miv_count: u32,
}

impl CellGeometry {
    /// Footprint area in µm².
    pub fn area_um2(&self) -> f64 {
        self.width_nm as f64 * self.height_nm as f64 * 1e-6
    }
}

/// Column assignment: device index -> first finger column.
fn assign_columns(topo: &Topology, fingers: usize) -> (Vec<usize>, Vec<usize>, usize) {
    let mut p_cols = Vec::new();
    let mut n_cols = Vec::new();
    let mut next_p = 0usize;
    let mut next_n = 0usize;
    for d in &topo.devices {
        match d.kind {
            MosKind::Pmos => {
                p_cols.push(next_p);
                next_p += fingers;
            }
            MosKind::Nmos => {
                n_cols.push(next_n);
                next_n += fingers;
            }
        }
    }
    let cols = next_p.max(next_n).max(1);
    (p_cols, n_cols, cols)
}

/// Generates the layout of `topo` at `drive` strength (1, 2, 4, ... poly
/// fingers per device) in the requested style.
pub fn generate_layout(
    node: &TechNode,
    topo: &Topology,
    style: DesignStyle,
    drive: u8,
) -> CellGeometry {
    let s = node.dimension_scale();
    let sc = |v: f64| -> Nm { ((v * s).round() as Nm).max(1) };
    // Base 45 nm dimensions.
    let poly_pitch = sc(190.0);
    let poly_w = sc(50.0);
    let cut = sc(70.0);
    let m1_w = sc(70.0);
    let track = sc(140.0);
    let diff_h = sc(320.0); // diffusion strip height (device width direction)
    let diff_ext = sc(100.0);
    let height = node.cell_height(style);

    let fingers = drive.max(1) as usize;
    let (p_cols, n_cols, cols) = assign_columns(topo, fingers);
    let width = (cols as Nm + 1) * poly_pitch;
    let col_x = |c: usize| poly_pitch / 2 + c as Nm * poly_pitch;

    let mut shapes = ShapeSet::new();
    let mut miv_count = 0u32;

    // Row geometry.
    let (n_diff_y, p_diff_y, fold) = match style {
        DesignStyle::TwoD => {
            // NMOS strip near the bottom rail, PMOS near the top rail.
            let n_y = sc(200.0);
            let p_y = height - sc(200.0) - diff_h;
            (n_y, p_y, false)
        }
        DesignStyle::Tmi => {
            // Both strips sit low in their own tier; same y band.
            let y = sc(180.0);
            (y, y, true)
        }
    };

    let (diff_p_layer, poly_p_layer, ct_p_layer) = if fold {
        (
            CellLayer::DiffP,
            CellLayer::PolyBottom,
            CellLayer::ContactBottom,
        )
    } else {
        (CellLayer::DiffP, CellLayer::Poly, CellLayer::Contact)
    };

    // Diffusion strips (one rect per device span, per polarity).
    let mut push = |layer: CellLayer, rect: Rect, sig: Signal| {
        shapes.push(LayerShape::new(layer.index(), rect, sig.node_id()));
    };

    // Track allocator for horizontal straps, per tier.
    let strap_band_lo = if fold { sc(540.0) } else { sc(600.0) };

    // Emit device stacks.
    struct Tap {
        sig: Signal,
        x: Nm,
        top_tier: bool,
    }
    let mut taps: Vec<Tap> = Vec::new();
    let mut poly_done: std::collections::BTreeSet<(Signal, Nm)> = std::collections::BTreeSet::new();
    let mut p_i = 0usize;
    let mut n_i = 0usize;
    for d in &topo.devices {
        let (c0, diff_y, diff_layer, poly_layer, ct_layer, is_top) = match d.kind {
            MosKind::Pmos => {
                let c = p_cols[p_i];
                p_i += 1;
                (c, p_diff_y, diff_p_layer, poly_p_layer, ct_p_layer, !fold)
            }
            MosKind::Nmos => {
                let c = n_cols[n_i];
                n_i += 1;
                (
                    c,
                    n_diff_y,
                    CellLayer::DiffN,
                    CellLayer::Poly,
                    CellLayer::Contact,
                    true,
                )
            }
        };
        // Diffusion spanning all fingers plus tap landings.
        let x0 = col_x(c0) - poly_pitch / 2;
        let x1 = col_x(c0 + fingers - 1) + poly_pitch / 2;
        push(
            diff_layer,
            Rect::new(Point::new(x0, diff_y), Point::new(x1, diff_y + diff_h)),
            if d.a.is_supply() { d.a } else { d.b }, // diffusion body: tag with a terminal
        );
        for f in 0..fingers {
            let x = col_x(c0 + f);
            // Poly gate. In 2D a shared gate is ONE column spanning from the
            // NMOS row across the middle routing gap to the PMOS row (the
            // classic standard-cell gate, ~1.1 µm at 45 nm); emit it once
            // per (gate, x). In T-MI each tier keeps a short private poly
            // over its own diffusion -- the length reduction the paper
            // credits for the lower 3D cell-internal R.
            if fold {
                let (py0, py1) = (diff_y - diff_ext, diff_y + diff_h + sc(100.0));
                push(
                    poly_layer,
                    Rect::new(
                        Point::new(x - poly_w / 2, py0),
                        Point::new(x + poly_w / 2, py1),
                    ),
                    d.gate,
                );
            } else if poly_done.insert((d.gate, x)) {
                let py0 = n_diff_y - diff_ext;
                let py1 = p_diff_y + diff_h + diff_ext;
                push(
                    CellLayer::Poly,
                    Rect::new(
                        Point::new(x - poly_w / 2, py0),
                        Point::new(x + poly_w / 2, py1),
                    ),
                    d.gate,
                );
            }
            // Source/drain taps alternate a, b, a, b...
            let left_sig = if f % 2 == 0 { d.a } else { d.b };
            taps.push(Tap {
                sig: left_sig,
                x: x - poly_pitch / 2 + cut / 2,
                top_tier: is_top,
            });
            if f == fingers - 1 {
                let right_sig = if fingers % 2 == 1 { d.b } else { d.a };
                taps.push(Tap {
                    sig: right_sig,
                    x: x + poly_pitch / 2 - cut / 2,
                    top_tier: is_top,
                });
            }
            // Contacts for both taps of this finger.
            for dx in [-poly_pitch / 2 + cut / 2, poly_pitch / 2 - cut / 2] {
                let sig = if dx < 0 { left_sig } else { d.b };
                push(
                    ct_layer,
                    Rect::from_size(
                        Point::new(x + dx - cut / 2, diff_y + diff_h / 2 - cut / 2),
                        cut,
                        cut,
                    ),
                    sig,
                );
            }
            // Gate contact at the poly end (to M1/MB1 for strap access).
            let gate_ct_y = diff_y + diff_h + sc(60.0);
            push(
                ct_layer,
                Rect::from_size(Point::new(x - cut / 2, gate_ct_y), cut, cut),
                d.gate,
            );
        }
    }

    // Horizontal straps per signal per tier, with vertical stubs.
    let mut signals = topo.signals();
    signals.retain(|s| !s.is_supply());
    let mut track_top = 0usize;
    let mut track_bot = 0usize;
    for sig in &signals {
        for top in [true, false] {
            let xs: Vec<Nm> = taps
                .iter()
                .filter(|t| t.sig == *sig && (t.top_tier == top || !fold))
                .map(|t| t.x)
                .collect();
            // Gate taps: poly columns of devices gated by sig on this tier.
            let gate_xs: Vec<Nm> = {
                let mut v = Vec::new();
                let mut pi = 0usize;
                let mut ni = 0usize;
                for d in &topo.devices {
                    let (c0, on_top) = match d.kind {
                        MosKind::Pmos => {
                            let c = p_cols[pi];
                            pi += 1;
                            (c, !fold)
                        }
                        MosKind::Nmos => {
                            let c = n_cols[ni];
                            ni += 1;
                            (c, true)
                        }
                    };
                    if d.gate == *sig && (on_top == top || !fold) {
                        for f in 0..fingers {
                            v.push(col_x(c0 + f));
                        }
                    }
                }
                v
            };
            let mut all_x = xs;
            all_x.extend(gate_xs);
            if all_x.is_empty() {
                continue;
            }
            // A folded tier with a single connection point needs no strap:
            // it ties straight into the MIV landing pad (paper Fig. 2(b) --
            // the inverter's A and Z nets have no in-tier metal at all).
            if fold && all_x.len() < 2 {
                continue;
            }
            all_x.sort_unstable();
            let (mut metal, ct, tr) = if top || !fold {
                let t = track_top;
                track_top += 1;
                (CellLayer::Metal1, CellLayer::Contact, t)
            } else {
                let t = track_bot;
                track_bot += 1;
                (CellLayer::MetalB1, CellLayer::ContactBottom, t)
            };
            let tracks = if fold { 3 } else { 4 };
            // Folded cells have only two horizontal metal tracks per tier
            // (the fold halves the cell height). Cells with rich internal
            // connectivity (DFF, MUX) overflow them and must jumper the
            // extra nets in resistive poly -- the reason the paper's DFF
            // internal RC comes out *worse* in 3D (Table 1 discussion).
            if fold && tr > tracks as usize {
                metal = if top {
                    CellLayer::Poly
                } else {
                    CellLayer::PolyBottom
                };
            }
            let pitch = if fold { sc(100.0) } else { track };
            let y = strap_band_lo + (tr as Nm % tracks) * pitch;
            let x_lo = *all_x.first().expect("non-empty") - m1_w / 2;
            let x_hi = *all_x.last().expect("non-empty") + m1_w / 2;
            push(
                metal,
                Rect::new(
                    Point::new(x_lo, y),
                    Point::new(x_hi.max(x_lo + m1_w), y + m1_w),
                ),
                *sig,
            );
            // Vertical stubs from the diffusion band up to the strap.
            let stub_y0 = if fold || top {
                n_diff_y + diff_h / 2
            } else {
                p_diff_y + diff_h / 2
            };
            for &x in &all_x {
                let r = Rect::new(
                    Point::new(x - m1_w / 2, stub_y0.min(y)),
                    Point::new(x + m1_w / 2, (y + m1_w).max(stub_y0)),
                );
                push(metal, r, *sig);
                push(
                    ct,
                    Rect::from_size(Point::new(x - cut / 2, y + (m1_w - cut) / 2), cut, cut),
                    *sig,
                );
            }
            if !fold {
                // 2D uses a single strap serving both rows.
                break;
            }
        }
        // MIV stitching for folded cells: one per signal present on both tiers.
        if fold {
            let on_top = taps.iter().any(|t| t.sig == *sig && t.top_tier)
                || topo
                    .devices
                    .iter()
                    .zip(0..)
                    .any(|(d, _)| d.gate == *sig && d.kind == MosKind::Nmos);
            let on_bot = taps.iter().any(|t| t.sig == *sig && !t.top_tier)
                || topo
                    .devices
                    .iter()
                    .any(|d| d.gate == *sig && d.kind == MosKind::Pmos);
            if on_top && on_bot {
                let mean_x: Nm = {
                    let xs: Vec<Nm> = taps.iter().filter(|t| t.sig == *sig).map(|t| t.x).collect();
                    if xs.is_empty() {
                        width / 2
                    } else {
                        xs.iter().sum::<Nm>() / xs.len() as Nm
                    }
                };
                let d = node.miv.diameter;
                let y = strap_band_lo + sc(160.0);
                push(
                    CellLayer::Miv,
                    Rect::from_size(Point::new(mean_x - d / 2, y), d, d),
                    *sig,
                );
                // Landing metal on MB1 and M1. I/O signals get pin rails on
                // *both* tiers ("by folding, each input/output pin is on
                // both tiers", Section 3.1) so the router can reach either;
                // internal nets only need compact landing pads.
                let is_io = matches!(sig, Signal::Input(_) | Signal::Output(_));
                let pad_len = if is_io {
                    width.min(sc(450.0)).max(2 * m1_w)
                } else {
                    2 * m1_w
                };
                for layer in [CellLayer::MetalB1, CellLayer::Metal1] {
                    push(
                        layer,
                        Rect::from_size(
                            Point::new(mean_x - pad_len / 2, y - m1_w / 2),
                            pad_len,
                            m1_w,
                        ),
                        *sig,
                    );
                }
                miv_count += 1;
            }
        }
    }

    // Power rails: VDD top, VSS bottom (both tiers overlap in T-MI,
    // paper Fig. 2(b)).
    let rail_h = sc(140.0);
    push(
        CellLayer::Metal1,
        Rect::from_size(Point::new(0, height - rail_h), width, rail_h),
        Signal::Vdd,
    );
    push(
        CellLayer::Metal1,
        Rect::from_size(Point::new(0, 0), width, rail_h),
        Signal::Vss,
    );
    if fold {
        push(
            CellLayer::MetalB1,
            Rect::from_size(Point::new(0, height - rail_h), width, rail_h),
            Signal::Vdd,
        );
    }

    CellGeometry {
        shapes,
        width_nm: width,
        height_nm: height,
        miv_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellFunction;
    use m3d_extract::{extract_cell, TopSiliconModel};

    fn geom(f: CellFunction, style: DesignStyle) -> CellGeometry {
        let node = TechNode::n45();
        generate_layout(&node, &Topology::for_function(f), style, 1)
    }

    #[test]
    fn inverter_widths_match_nangate() {
        let g = geom(CellFunction::Inv, DesignStyle::TwoD);
        assert_eq!(g.width_nm, 380); // INV_X1 is two poly pitches wide
        assert_eq!(g.height_nm, 1400);
        assert_eq!(g.miv_count, 0);
        let g3 = geom(CellFunction::Inv, DesignStyle::Tmi);
        assert_eq!(g3.height_nm, 840);
        assert_eq!(g3.width_nm, 380);
    }

    #[test]
    fn folded_inverter_has_input_and_output_mivs() {
        let g = geom(CellFunction::Inv, DesignStyle::Tmi);
        // Paper Fig. 2(b): the A and Z nets each cross tiers once.
        assert_eq!(g.miv_count, 2);
    }

    #[test]
    fn footprint_reduction_is_40_percent() {
        for f in [CellFunction::Inv, CellFunction::Nand2, CellFunction::Dff] {
            let a2 = geom(f, DesignStyle::TwoD).area_um2();
            let a3 = geom(f, DesignStyle::Tmi).area_um2();
            assert!(((1.0 - a3 / a2) - 0.4).abs() < 1e-9, "{f:?}");
        }
    }

    #[test]
    fn dff_needs_many_mivs() {
        // Complex internal connectivity: most internal nets cross tiers
        // (the reason the paper's DFF has *worse* internal RC in 3D).
        let g = geom(CellFunction::Dff, DesignStyle::Tmi);
        assert!(g.miv_count >= 8, "got {} MIVs", g.miv_count);
    }

    #[test]
    fn drive_scaling_multiplies_width() {
        let node = TechNode::n45();
        let topo = Topology::for_function(CellFunction::Inv);
        let x1 = generate_layout(&node, &topo, DesignStyle::TwoD, 1);
        let x4 = generate_layout(&node, &topo, DesignStyle::TwoD, 4);
        // Width is (cols + 1) * pitch: X1 = 2 pitches, X4 = 5 pitches.
        assert!(x4.width_nm > 2 * x1.width_nm);
        assert_eq!(x4.height_nm, x1.height_nm);
    }

    #[test]
    fn extraction_sees_lower_r_in_folded_simple_cells() {
        // Table 1 headline: INV/NAND2 3D resistance < 2D because the
        // in-cell poly and metal runs shrink.
        let node = TechNode::n45();
        for f in [CellFunction::Inv, CellFunction::Nand2] {
            let topo = Topology::for_function(f);
            let g2 = generate_layout(&node, &topo, DesignStyle::TwoD, 1);
            let g3 = generate_layout(&node, &topo, DesignStyle::Tmi, 1);
            let sum_signal = |e: &m3d_extract::CellExtraction| -> f64 {
                e.node_r
                    .iter()
                    .filter(|(&n, _)| n != Signal::Vdd.node_id() && n != Signal::Vss.node_id())
                    .map(|(_, r)| r)
                    .sum()
            };
            let r2 = sum_signal(&extract_cell(
                &node,
                &g2.shapes,
                TopSiliconModel::Dielectric,
            ));
            let r3 = sum_signal(&extract_cell(
                &node,
                &g3.shapes,
                TopSiliconModel::Dielectric,
            ));
            assert!(r3 < r2, "{f:?}: r3 {r3} !< r2 {r2}");
        }
    }

    #[test]
    fn seven_nm_layout_shrinks_geometrically() {
        let n7 = TechNode::n7();
        let topo = Topology::for_function(CellFunction::Nand2);
        let g = generate_layout(&n7, &topo, DesignStyle::TwoD, 1);
        assert_eq!(g.height_nm, 218);
        assert!(g.width_nm < 100); // 570 * 0.156 ~ 89
    }
}
