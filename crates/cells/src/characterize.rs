//! NLDM characterization of cell layouts.
//!
//! Two characterizers share the same inputs (a cell topology plus the RC
//! extracted from its generated layout):
//!
//! * [`characterize_analytic`] — a calibrated switch-level model: drive
//!   resistance from the alpha-power device currents, parasitic load and
//!   internal resistance from the extractor, first-order slew and
//!   short-circuit terms. Fast and deterministic; used to build the
//!   libraries the full design flow consumes.
//! * [`characterize_spice`] — builds a transistor + parasitic-RC circuit
//!   and runs `m3d-spice` transients across the (slew × load) grid, the
//!   procedure Cadence ELC performs in the paper (Section 3.2). Used to
//!   regenerate Table 2 and to validate the analytic model.
//!
//! Both report the paper's observable: T-MI cells with shorter in-cell
//! wires (INV/NAND/MUX) come out slightly *better* than 2D, while the
//! MIV-heavy DFF comes out slightly *worse*.

use m3d_extract::{extract_cell, CellExtraction, TopSiliconModel};
use m3d_spice::{Circuit, MosKind, MosParams, Transient, Waveform};
use m3d_tech::{DesignStyle, PdkRegistry, ScaleFactors, TechNode};

use crate::layout::CellGeometry;
use crate::{CellFunction, Nldm, Signal, Topology};

/// Calibration constants of the analytic model (45 nm basis).
mod calib {
    /// Delay slope versus input slew.
    pub const A_SLEW: f64 = 0.25;
    /// Effective-drive multiplier applied to Vdd/Idsat (covers the 0.69
    /// ln-2 factor, input-ramp overlap and velocity saturation; calibrated
    /// against the paper's Table 2 fast-corner INV delay).
    pub const K_R: f64 = 0.75;
    /// Output slew per unit RC.
    pub const K_SLEW: f64 = 1.10;
    /// Slew slope passed through to the output.
    pub const K_SLEW_IN: f64 = 0.15;
    /// Internal-stage switched capacitance per drive unit, fF
    /// (combinational cells; the DFF's feedback-fighting stages see more).
    pub const C_STAGE: f64 = 1.0;
    /// Internal-stage capacitance for sequential cells, fF.
    pub const C_STAGE_SEQ: f64 = 2.4;
    /// Short-circuit energy per ps of input slew per mA of drive, fJ.
    pub const K_SC: f64 = 0.0030;
    /// Miller/short-circuit multiplier on the switched output capacitance
    /// (calibrated against SPICE inverter energies).
    pub const K_MILLER: f64 = 1.65;
    /// Fraction of total device junction+wire capacitance switched per
    /// output event in multi-node cells.
    pub const SW_SHARE: f64 = 0.42;
}

/// The characterized electrical view of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTables {
    /// Worst-arc propagation delay, ps over (slew, load).
    pub delay: Nldm,
    /// Output slew, ps over (slew, load).
    pub out_slew: Nldm,
    /// Internal energy per output transition, fJ over (slew, load).
    pub energy: Nldm,
    /// Input pin capacitances, fF, ordered as
    /// [`CellFunction::input_names`].
    pub input_caps: Vec<f64>,
    /// Cell leakage, mW.
    pub leakage_mw: f64,
    /// Effective drive resistance, kΩ (used by sizing/buffering heuristics).
    pub r_drive: f64,
}

/// Default characterization axes for a node: the paper's Table 2 corners
/// plus midpoints. Loads/slews shrink with the node per its PDK's
/// Liberty scaling factors (slews by `output_slew`, loads by
/// `input_cap`) — for the 7 nm node these are the ITRS 0.420 / 0.179.
pub fn default_axes(node: &TechNode) -> (Vec<f64>, Vec<f64>) {
    let factors = PdkRegistry::global()
        .get(node.id)
        .map(|pdk| pdk.scaling())
        .unwrap_or_else(ScaleFactors::identity);
    let (ks, kl) = (factors.output_slew, factors.input_cap);
    let slews: Vec<f64> = [7.5, 18.75, 37.5, 75.0, 150.0]
        .iter()
        .map(|s| s * ks)
        .collect();
    let loads: Vec<f64> = [0.4, 0.8, 1.6, 3.2, 6.4, 12.8]
        .iter()
        .map(|l| l * kl)
        .collect();
    (slews, loads)
}

/// Saturation current per µm of width at full gate drive, mA/µm.
fn id_per_um(kind: MosKind, vdd: f64) -> f64 {
    let p = match kind {
        MosKind::Nmos => MosParams::nmos45(1.0),
        MosKind::Pmos => MosParams::pmos45(1.0),
    };
    p.id_nchan(vdd, vdd)
}

/// Effective switch resistance of the worst pull network driving `out`,
/// kΩ, averaged over pull-up and pull-down.
pub fn drive_resistance(node: &TechNode, topo: &Topology, out: Signal, drive: u8) -> f64 {
    let d = drive.max(1) as f64;
    let r_of = |kind: MosKind| -> f64 {
        let depth = match kind {
            MosKind::Nmos => topo.nmos_stack_depth(out),
            MosKind::Pmos => topo.pmos_stack_depth(out),
        } as f64;
        // Mean width of devices of this polarity (approximates the path).
        let (mut w_sum, mut n) = (0.0, 0);
        for dev in &topo.devices {
            if dev.kind == kind {
                w_sum += dev.width;
                n += 1;
            }
        }
        let w = if n > 0 { w_sum / n as f64 } else { 0.5 };
        depth * node.vdd / (id_per_um(kind, node.vdd) * w * d)
    };
    0.5 * (r_of(MosKind::Nmos) + r_of(MosKind::Pmos))
}

/// Per-node signal capacitance from the extractor, averaging the two
/// top-silicon bracketing models ("the real case would be between").
fn mean_signal_c(die: &CellExtraction, con: &CellExtraction, sig: Signal) -> f64 {
    0.5 * (die.c_of(sig.node_id()) + con.c_of(sig.node_id()))
}

fn signal_r(die: &CellExtraction, sig: Signal) -> f64 {
    die.r_of(sig.node_id())
}

/// Ground-referenced wire capacitance of a signal: the dielectric-model
/// total minus its inter-tier couplings. Used for switched-energy
/// accounting, where coupling charge to the neighbouring tier largely
/// cancels over rise/fall pairs.
fn ground_c(die: &CellExtraction, sig: Signal) -> f64 {
    let id = sig.node_id();
    let coupled: f64 = die
        .couplings
        .iter()
        .filter(|(a, b, _)| *a == id || *b == id)
        .map(|(_, _, c)| c)
        .sum();
    (die.c_of(id) - coupled).max(0.0)
}

/// Sum of junction capacitance attached to a signal, fF.
fn junction_c_on(topo: &Topology, sig: Signal, drive: u8) -> f64 {
    let cj = MosParams::nmos45(1.0).c_junction_per_um;
    topo.devices
        .iter()
        .filter(|d| d.a == sig || d.b == sig)
        .map(|d| d.width * cj * drive.max(1) as f64)
        .sum()
}

/// Analytic characterization of `function` at `drive` in `style`.
///
/// `geometry` must be the layout generated for the same
/// (node, style, drive); pass [`crate::layout::generate_layout`]'s output.
pub fn characterize_analytic(
    node: &TechNode,
    style: DesignStyle,
    function: CellFunction,
    drive: u8,
    topo: &Topology,
    geometry: &CellGeometry,
) -> CellTables {
    let _ = style; // style is already baked into the geometry
    let die = extract_cell(node, &geometry.shapes, TopSiliconModel::Dielectric);
    let con = extract_cell(node, &geometry.shapes, TopSiliconModel::Conductor);
    let out = Signal::Output(0);
    let d = drive.max(1) as f64;

    let r_drive = drive_resistance(node, topo, out, drive);
    // The extractor sums per-shape resistances; a multi-finger (X>1) cell
    // has `d` parallel fingers per device, each matching the X1 shape, so
    // the physical node resistance is (sum / d) / d = sum / d^2.
    let r_int = signal_r(&die, out) / (d * d);
    let c_par = mean_signal_c(&die, &con, out) + junction_c_on(topo, out, drive);
    let stages = function.stage_count() as f64;
    let b = calib::K_R * r_drive;
    // Internal stages drive roughly C_STAGE * drive each, through the
    // cell's average internal wiring resistance -- this is where the
    // folded DFF pays for its poly jumpers (Table 1 discussion).
    let n_signals = topo
        .signals()
        .iter()
        .filter(|s| !s.is_supply())
        .count()
        .max(1);
    let r_int_mean: f64 = topo
        .signals()
        .iter()
        .filter(|s| !s.is_supply())
        .map(|s| signal_r(&die, *s))
        .sum::<f64>()
        / n_signals as f64
        / (d * d);
    let c_stage = if function.is_sequential() {
        calib::C_STAGE_SEQ
    } else {
        calib::C_STAGE
    };
    let t_internal = (stages - 1.0) * (b + 3.0 * r_int_mean) * c_stage * d;

    let (slews, loads) = default_axes(node);
    let delay = Nldm::from_fn(slews.clone(), loads.clone(), |s, l| {
        calib::A_SLEW * s + t_internal + b * (c_par + l) + r_int * (0.5 * c_par + l)
    });
    let out_slew = Nldm::from_fn(slews.clone(), loads.clone(), |s, l| {
        calib::K_SLEW * r_drive * (c_par + l) + calib::K_SLEW_IN * s + 2.2 * r_int * l
    });

    // Switched internal capacitance: output-stage junctions plus an
    // activity-weighted share of the internal wiring and devices.
    let v2 = node.vdd * node.vdd;
    let cj_per_um = MosParams::nmos45(1.0).c_junction_per_um;
    let c_total_int: f64 = {
        let mut c = 0.0;
        for sig in topo.signals() {
            if sig.is_supply() {
                continue;
            }
            if matches!(sig, Signal::Input(_)) {
                continue; // charged by the driving cell
            }
            c += ground_c(&die, sig);
        }
        c + topo.total_width() * d * cj_per_um * 0.5
    };
    // Switched-energy capacitance uses the *screened* (conductor) model:
    // inter-tier coupling charge largely cancels when both tiers switch,
    // so the dielectric-model C would overstate T-MI cell power (the paper
    // measures T-MI cell power slightly *below* 2D, Table 2).
    let c_sw = junction_c_on(topo, out, drive)
        + ground_c(&die, out)
        + calib::SW_SHARE * (stages - 1.0).min(2.0) * c_total_int * 0.15;
    let i_drv = node.vdd / r_drive;
    let energy = Nldm::from_fn(slews.clone(), loads.clone(), |s, _l| {
        v2 * c_sw * calib::K_MILLER + calib::K_SC * s * i_drv
    });

    // Pin caps: gate width times the device gate-cap density.
    let cg = MosParams::nmos45(1.0).c_gate_per_um;
    let input_caps: Vec<f64> = (0..function.input_count())
        .map(|i| {
            let sig = Signal::Input(i as u8);
            topo.gate_width_on(sig) * d * cg + 0.02
        })
        .collect();

    // Leakage: off currents of all devices at Vdd (nA * V = nW -> mW).
    let leakage_mw = topo
        .devices
        .iter()
        .map(|dev| {
            let p = match dev.kind {
                MosKind::Nmos => MosParams::nmos45(dev.width * d),
                MosKind::Pmos => MosParams::pmos45(dev.width * d),
            };
            p.i_off_na_per_um * p.width * node.vdd * 1e-6 * 0.5
        })
        .sum();

    CellTables {
        delay,
        out_slew,
        energy,
        input_caps,
        leakage_mw,
        r_drive,
    }
}

/// SPICE-based characterization of a (small) cell: builds the transistor +
/// extracted-RC circuit and measures delay/slew/energy across the grid.
///
/// Only single-output combinational cells are supported; the analytic
/// characterizer covers the rest. Runtime grows with the grid, so callers
/// typically pass reduced axes.
///
/// # Panics
///
/// Panics for sequential or multi-output functions.
pub fn characterize_spice(
    node: &TechNode,
    function: CellFunction,
    drive: u8,
    topo: &Topology,
    geometry: &CellGeometry,
    slews: Vec<f64>,
    loads: Vec<f64>,
) -> CellTables {
    assert!(
        !function.is_sequential() && function.output_count() == 1,
        "SPICE characterization supports single-output combinational cells"
    );
    let die = extract_cell(node, &geometry.shapes, TopSiliconModel::Dielectric);
    let con = extract_cell(node, &geometry.shapes, TopSiliconModel::Conductor);
    let d = drive.max(1) as f64;
    let n_in = function.input_count();

    // Choose the switching input: the last one that toggles the output
    // with the others held at non-controlling values.
    let mut toggle_input = 0usize;
    let mut others = vec![true; n_in];
    'outer: for t in 0..n_in {
        for mask in 0..(1u32 << (n_in - 1)) {
            let mut inp = vec![false; n_in];
            let mut k = 0;
            for (j, v) in inp.iter_mut().enumerate() {
                if j != t {
                    *v = mask & (1 << k) != 0;
                    k += 1;
                }
            }
            let mut lo = inp.clone();
            lo[t] = false;
            let mut hi = inp;
            hi[t] = true;
            if function.eval(&lo)[0] != function.eval(&hi)[0] {
                toggle_input = t;
                others = lo;
                break 'outer;
            }
        }
    }

    let vdd = node.vdd;
    let run = |slew: f64, load: f64, rising_in: bool| -> (f64, f64, f64) {
        let mut c = Circuit::new();
        let vdd_n = c.node("vdd");
        c.vsource(vdd_n, Waveform::Dc(vdd));
        // Signal nodes.
        let mut nodes = std::collections::BTreeMap::new();
        for sig in topo.signals() {
            let n = match sig {
                Signal::Vss => Circuit::GND,
                Signal::Vdd => vdd_n,
                other => c.node(&format!("{other:?}")),
            };
            nodes.insert(sig, n);
        }
        let out_int = nodes[&Signal::Output(0)];
        // Output pin behind the extracted internal resistance.
        let out_pin = c.node("out_pin");
        let r_out = signal_r(&die, Signal::Output(0)).max(1e-4);
        c.resistor(out_int, out_pin, r_out);
        c.capacitor(out_pin, Circuit::GND, load);
        // Devices.
        for dev in &topo.devices {
            let params = match dev.kind {
                MosKind::Nmos => MosParams::nmos45(dev.width * d),
                MosKind::Pmos => MosParams::pmos45(dev.width * d),
            };
            c.mosfet(nodes[&dev.b], nodes[&dev.gate], nodes[&dev.a], params);
        }
        // Extracted wiring capacitance on internal + output signals.
        for sig in topo.signals() {
            if sig.is_supply() || matches!(sig, Signal::Input(_)) {
                continue;
            }
            let cw = mean_signal_c(&die, &con, sig);
            c.capacitor(nodes[&sig], Circuit::GND, cw);
        }
        // Input sources.
        let t0 = 4.0 * slew + 20.0;
        for (i, &held_high) in others.iter().enumerate() {
            let sig = Signal::Input(i as u8);
            let wave = if i == toggle_input {
                if rising_in {
                    Waveform::step(vdd, t0, slew)
                } else {
                    Waveform::fall(vdd, t0, slew)
                }
            } else {
                Waveform::Dc(if held_high { vdd } else { 0.0 })
            };
            c.vsource(nodes[&sig], wave);
        }
        let t_end = t0 + 6.0 * slew + 60.0 * (1.0 + load / 3.0) + 200.0;
        let dt = (slew / 40.0).clamp(0.05, 1.0);
        let r = Transient::new(&c).with_dt(dt).run(t_end);
        let out_rising = {
            let v_end = r.final_voltage(out_pin);
            v_end > vdd / 2.0
        };
        let t_in = r
            .cross_time(
                nodes[&Signal::Input(toggle_input as u8)],
                vdd / 2.0,
                rising_in,
            )
            .expect("input crosses midpoint");
        let t_out = r
            .cross_time(out_pin, vdd / 2.0, out_rising)
            .expect("output switches");
        let slew_out = r
            .slew(out_pin, vdd, 0.3, 0.7, out_rising)
            .expect("output transitions through 30/70");
        // Internal energy: VDD-delivered minus the load charging energy.
        let mut e = r.source_energy[0];
        if out_rising {
            e -= load * vdd * vdd;
        }
        (t_out - t_in, slew_out, e.max(0.0))
    };

    let mut delay_v = Vec::new();
    let mut slew_v = Vec::new();
    let mut energy_v = Vec::new();
    for &s in &slews {
        for &l in &loads {
            let (d_r, sl_r, e_r) = run(s, l, true);
            let (d_f, sl_f, e_f) = run(s, l, false);
            delay_v.push(0.5 * (d_r + d_f));
            slew_v.push(0.5 * (sl_r + sl_f));
            energy_v.push(0.5 * (e_r + e_f));
        }
    }

    let analytic = characterize_analytic(node, DesignStyle::TwoD, function, drive, topo, geometry);
    CellTables {
        delay: Nldm::new(slews.clone(), loads.clone(), delay_v),
        out_slew: Nldm::new(slews.clone(), loads.clone(), slew_v),
        energy: Nldm::new(slews, loads, energy_v),
        ..analytic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::generate_layout;

    fn tables(f: CellFunction, style: DesignStyle) -> CellTables {
        let node = TechNode::n45();
        let topo = Topology::for_function(f);
        let geom = generate_layout(&node, &topo, style, 1);
        characterize_analytic(&node, style, f, 1, &topo, &geom)
    }

    #[test]
    fn inverter_delay_is_table2_scale() {
        let t = tables(CellFunction::Inv, DesignStyle::TwoD);
        let fast = t.delay.lookup(7.5, 0.8);
        // Paper Table 2 fast case: 17.2 ps. Accept a generous band; the
        // shape (growth with slew and load) is what the flow depends on.
        assert!((10.0..30.0).contains(&fast), "INV fast delay {fast} ps");
        let slow = t.delay.lookup(150.0, 12.8);
        assert!((120.0..260.0).contains(&slow), "INV slow delay {slow} ps");
        assert!(slow > 3.0 * fast);
    }

    #[test]
    fn inverter_pin_cap_matches_table11() {
        let t = tables(CellFunction::Inv, DesignStyle::TwoD);
        assert!(
            (t.input_caps[0] - 0.463).abs() < 0.06,
            "INV input cap {}",
            t.input_caps[0]
        );
    }

    #[test]
    fn nand2_pin_cap_matches_table11() {
        let t = tables(CellFunction::Nand2, DesignStyle::TwoD);
        // Paper: 0.523 fF.
        assert!(
            (t.input_caps[0] - 0.523).abs() < 0.12,
            "NAND2 input cap {}",
            t.input_caps[0]
        );
    }

    #[test]
    fn folded_simple_cells_are_slightly_faster() {
        // Table 2: INV/NAND2/MUX2 3D delay at 97-99% of 2D.
        for f in [CellFunction::Inv, CellFunction::Nand2, CellFunction::Mux2] {
            let d2 = tables(f, DesignStyle::TwoD).delay.lookup(7.5, 0.8);
            let d3 = tables(f, DesignStyle::Tmi).delay.lookup(7.5, 0.8);
            let ratio = d3 / d2;
            assert!(
                (0.90..1.0).contains(&ratio),
                "{f:?} 3D/2D delay ratio {ratio}"
            );
        }
    }

    #[test]
    fn folded_dff_gains_least() {
        // Table 2 shows the DFF as the one cell that gets *worse* in 3D
        // (+2.5-4.2% delay). Our analytic tables keep it near parity --
        // the DFF's penalty shows up strongly in the Table 1 extraction
        // (see layout tests) but is diluted by the drive term here; assert
        // the robust part: the DFF benefits less from folding than the
        // simple cells do.
        let t2 = tables(CellFunction::Dff, DesignStyle::TwoD);
        let t3 = tables(CellFunction::Dff, DesignStyle::Tmi);
        let dr = t3.delay.lookup(7.5, 0.8) / t2.delay.lookup(7.5, 0.8);
        assert!(dr > 0.97 && dr < 1.15, "DFF 3D/2D delay ratio {dr}");
        let inv2 = tables(CellFunction::Inv, DesignStyle::TwoD);
        let inv3 = tables(CellFunction::Inv, DesignStyle::Tmi);
        let inv_ratio = inv3.delay.lookup(7.5, 0.8) / inv2.delay.lookup(7.5, 0.8);
        assert!(dr > inv_ratio, "DFF must gain less than INV");
    }

    #[test]
    fn energy_grows_with_input_slew() {
        let t = tables(CellFunction::Inv, DesignStyle::TwoD);
        assert!(t.energy.lookup(150.0, 3.2) > t.energy.lookup(7.5, 3.2));
    }

    #[test]
    fn leakage_matches_table11_scale() {
        let t = tables(CellFunction::Inv, DesignStyle::TwoD);
        // Paper Table 11: 2844 pW. Our off-current is calibrated ~3x lower
        // so that *design-level* leakage shares match the paper's Tables
        // 13/14 despite this toolkit's heavier average drive strengths
        // (see DESIGN.md, calibration decisions).
        assert!(
            t.leakage_mw > 2e-7 && t.leakage_mw < 1e-5,
            "INV leakage {} mW",
            t.leakage_mw
        );
    }

    #[test]
    fn spice_and_analytic_agree_for_inverter() {
        let node = TechNode::n45();
        let topo = Topology::for_function(CellFunction::Inv);
        let geom = generate_layout(&node, &topo, DesignStyle::TwoD, 1);
        let spice = characterize_spice(
            &node,
            CellFunction::Inv,
            1,
            &topo,
            &geom,
            vec![7.5, 37.5],
            vec![0.8, 3.2],
        );
        let analytic =
            characterize_analytic(&node, DesignStyle::TwoD, CellFunction::Inv, 1, &topo, &geom);
        for &(s, l) in &[(7.5, 0.8), (37.5, 3.2)] {
            let ds = spice.delay.lookup(s, l);
            let da = analytic.delay.lookup(s, l);
            assert!(
                (ds / da - 1.0).abs() < 0.5,
                "slew {s} load {l}: spice {ds} vs analytic {da}"
            );
        }
    }
}
