use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use m3d_geom::Nm;
use m3d_tech::{DesignStyle, LibraryRecipe, PdkRegistry, ScaleFactors, TechNode};

use crate::characterize::{characterize_analytic, CellTables};
use crate::layout::generate_layout;
use crate::{CellFunction, Nldm, Topology};

/// Pin direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinDir {
    /// Cell input.
    Input,
    /// Cell output.
    Output,
}

/// One pin of a library cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pin {
    /// Pin name ("A", "ZN", "CK", ...).
    pub name: String,
    /// Direction.
    pub dir: PinDir,
    /// Input capacitance, fF (0 for outputs).
    pub cap_ff: f64,
}

/// Sequential-cell constraints and clocking data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeqSpec {
    /// Setup time at the D pin, ps.
    pub setup_ps: f64,
    /// Hold time, ps.
    pub hold_ps: f64,
    /// Internal energy dissipated per clock cycle even without output
    /// activity (clock buffers, transmission gates), fJ.
    pub clk_energy_fj: f64,
}

/// A characterized library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Library name, e.g. `"NAND2_X2"`.
    pub name: String,
    /// Logic function.
    pub function: CellFunction,
    /// Drive strength (1, 2, 4, 8).
    pub drive: u8,
    /// Placement width, nm.
    pub width_nm: Nm,
    /// Row height, nm.
    pub height_nm: Nm,
    /// Pins: inputs in [`CellFunction::input_names`] order, then outputs.
    pub pins: Vec<Pin>,
    /// Worst-arc propagation delay, ps over (input slew, load fF).
    pub delay: Nldm,
    /// Output slew, ps.
    pub out_slew: Nldm,
    /// Internal energy per output transition, fJ.
    pub energy: Nldm,
    /// Leakage power, mW.
    pub leakage_mw: f64,
    /// Sequential data for flip-flops.
    pub seq: Option<SeqSpec>,
    /// MIVs inside the cell (0 in 2D libraries).
    pub miv_count: u32,
    /// Effective drive resistance, kΩ (sizing/buffering heuristics).
    pub r_drive: f64,
}

impl Cell {
    /// Footprint area, µm².
    pub fn area_um2(&self) -> f64 {
        self.width_nm as f64 * self.height_nm as f64 * 1e-6
    }

    /// Looks up a pin by name.
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// Capacitance of input pin `idx` (input ordering), fF.
    pub fn input_cap(&self, idx: usize) -> f64 {
        self.pins[idx].cap_ff
    }

    /// Largest input pin cap, fF.
    pub fn max_input_cap(&self) -> f64 {
        self.pins
            .iter()
            .filter(|p| p.dir == PinDir::Input)
            .map(|p| p.cap_ff)
            .fold(0.0, f64::max)
    }

    /// Number of input pins.
    pub fn input_count(&self) -> usize {
        self.function.input_count()
    }
}

/// Index of a cell inside a [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

/// Library construction or validation failure.
///
/// Produced by [`CellLibrary::try_build`] and
/// [`CellLibrary::try_with_pin_cap_scaled`]; a malformed library must
/// surface here instead of poisoning synthesis and sign-off downstream.
#[derive(Debug, Clone, PartialEq)]
pub enum LibraryError {
    /// A characterized electrical table produced a non-finite or
    /// out-of-range value.
    BadCharacterization {
        /// Offending cell name.
        cell: String,
        /// What was wrong (table and value).
        detail: String,
    },
    /// A generated layout had a non-positive footprint.
    DegenerateGeometry {
        /// Offending cell name.
        cell: String,
        /// Generated width, nm.
        width_nm: i64,
        /// Generated height, nm.
        height_nm: i64,
    },
    /// A pin-capacitance scale factor was non-positive or non-finite
    /// (the paper's Table 8 study uses 0.8 / 0.6 / 0.4).
    InvalidPinCapScale(f64),
    /// A logic function ended up with no drive variants.
    MissingVariants {
        /// The function missing from the library.
        function: String,
    },
    /// The node (or the base node its recipe scales from) names no
    /// registered PDK, so no library recipe exists for it.
    UnregisteredNode {
        /// The unresolvable node name.
        node: String,
    },
}

impl std::fmt::Display for LibraryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibraryError::BadCharacterization { cell, detail } => {
                write!(f, "cell {cell}: bad characterization: {detail}")
            }
            LibraryError::DegenerateGeometry {
                cell,
                width_nm,
                height_nm,
            } => write!(
                f,
                "cell {cell}: degenerate layout {width_nm} x {height_nm} nm"
            ),
            LibraryError::InvalidPinCapScale(s) => {
                write!(f, "pin-cap scale must be finite and > 0, got {s}")
            }
            LibraryError::MissingVariants { function } => {
                write!(f, "function {function} has no drive variants")
            }
            LibraryError::UnregisteredNode { node } => {
                write!(f, "node {node} names no registered PDK")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

/// A complete characterized library for one (node, design-style) pair.
///
/// # Example
///
/// ```
/// use m3d_cells::CellLibrary;
/// use m3d_tech::{DesignStyle, TechNode};
///
/// let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
/// assert!(lib.len() >= 50); // comparable to the paper's 66-cell library
/// let (id, nand) = lib.id_named("NAND2_X1").expect("NAND2_X1 exists");
/// assert_eq!(lib.upsize(id).map(|(_, c)| c.drive), Some(2));
/// assert!(nand.delay.lookup(7.5, 0.8) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    node: TechNode,
    style: DesignStyle,
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
}

/// Drive strengths built per function.
fn drives_for(function: CellFunction) -> &'static [u8] {
    match function {
        CellFunction::Inv | CellFunction::Buf => &[1, 2, 4, 8, 16],
        CellFunction::Dff => &[1, 2, 4],
        _ => &[1, 2, 4, 8],
    }
}

impl CellLibrary {
    /// Builds the library for `node` and `style`, generating every cell's
    /// layout, extracting its parasitics and characterizing it.
    ///
    /// How a node's library is constructed is data owned by its PDK: a
    /// [`LibraryRecipe::Native`] node is characterized directly from its
    /// own parameters, while a [`LibraryRecipe::ScaledFrom`] node derives
    /// its electrical tables from the base node's characterization
    /// through the PDK's scaling factors — exactly as the paper
    /// constructs its 7 nm Liberty library from the 45 nm one (Section 5
    /// / S3). Physical dimensions always come from layouts regenerated
    /// at the target node's geometry.
    /// # Panics
    ///
    /// Panics when the generated library fails validation — see
    /// [`CellLibrary::try_build`] for the fallible form used by the
    /// supervised flow.
    pub fn build(node: &TechNode, style: DesignStyle) -> Self {
        match Self::try_build(node, style) {
            Ok(lib) => lib,
            Err(e) => panic!("library construction failed: {e}"),
        }
    }

    /// Builds the library and validates every cell: finite, in-range
    /// electrical tables, positive footprints, and a full drive ladder
    /// per function.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError`] naming the first offending cell.
    pub fn try_build(node: &TechNode, style: DesignStyle) -> Result<Self, LibraryError> {
        let pdk =
            PdkRegistry::global()
                .get(node.id)
                .ok_or_else(|| LibraryError::UnregisteredNode {
                    node: node.id.label().to_string(),
                })?;
        let lib = match pdk.library_recipe() {
            LibraryRecipe::Native => Self::build_native(node, style),
            LibraryRecipe::ScaledFrom { base } => {
                let base_node =
                    TechNode::try_for_id(base).ok_or_else(|| LibraryError::UnregisteredNode {
                        node: base.label().to_string(),
                    })?;
                Self::build_native(&base_node, style).into_scaled(node, &pdk.scaling())
            }
        };
        lib.validate()?;
        Ok(lib)
    }

    /// Checks every cell for physical and electrical sanity.
    fn validate(&self) -> Result<(), LibraryError> {
        for cell in &self.cells {
            if cell.width_nm <= 0 || cell.height_nm <= 0 {
                return Err(LibraryError::DegenerateGeometry {
                    cell: cell.name.clone(),
                    width_nm: cell.width_nm,
                    height_nm: cell.height_nm,
                });
            }
            let bad = |table: &str, v: f64| LibraryError::BadCharacterization {
                cell: cell.name.clone(),
                detail: format!("{table} = {v}"),
            };
            // Probe each NLDM at a representative (slew, load) corner.
            let delay = cell.delay.lookup(20.0, 1.0);
            if !delay.is_finite() || delay <= 0.0 {
                return Err(bad("delay(20ps, 1fF)", delay));
            }
            let slew = cell.out_slew.lookup(20.0, 1.0);
            if !slew.is_finite() || slew <= 0.0 {
                return Err(bad("out_slew(20ps, 1fF)", slew));
            }
            let energy = cell.energy.lookup(20.0, 1.0);
            if !energy.is_finite() || energy < 0.0 {
                return Err(bad("energy(20ps, 1fF)", energy));
            }
            if !cell.leakage_mw.is_finite() || cell.leakage_mw < 0.0 {
                return Err(bad("leakage_mw", cell.leakage_mw));
            }
            if !cell.r_drive.is_finite() || cell.r_drive <= 0.0 {
                return Err(bad("r_drive", cell.r_drive));
            }
            for pin in &cell.pins {
                if !pin.cap_ff.is_finite() || pin.cap_ff < 0.0 {
                    return Err(bad(&format!("pin {} cap_ff", pin.name), pin.cap_ff));
                }
            }
        }
        for function in CellFunction::ALL {
            if self.variants(function).is_empty() {
                return Err(LibraryError::MissingVariants {
                    function: format!("{function:?}"),
                });
            }
        }
        Ok(())
    }

    fn build_native(node: &TechNode, style: DesignStyle) -> Self {
        let mut cells = Vec::new();
        for function in CellFunction::ALL {
            let topo = Topology::for_function(function);
            for &drive in drives_for(function) {
                let geom = generate_layout(node, &topo, style, drive);
                let tables = characterize_analytic(node, style, function, drive, &topo, &geom);
                cells.push(assemble_cell(node, function, drive, &geom, tables));
            }
        }
        Self::from_cells(node.clone(), style, cells)
    }

    fn from_cells(node: TechNode, style: DesignStyle, cells: Vec<Cell>) -> Self {
        let by_name = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), CellId(i as u32)))
            .collect();
        CellLibrary {
            node,
            style,
            cells,
            by_name,
        }
    }

    /// Derives a scaled node's library from this (base-node) one via the
    /// target PDK's Liberty scaling factors — for the 7 nm node these
    /// are the paper's ITRS factors of Table 6 / Section S3.
    fn into_scaled(self, node: &TechNode, f: &ScaleFactors) -> Self {
        let style = self.style;
        let cells = self
            .cells
            .into_iter()
            .map(|c| {
                let topo = Topology::for_function(c.function);
                let geom = generate_layout(node, &topo, style, c.drive);
                Cell {
                    width_nm: geom.width_nm,
                    height_nm: geom.height_nm,
                    miv_count: geom.miv_count,
                    pins: c
                        .pins
                        .iter()
                        .map(|p| Pin {
                            name: p.name.clone(),
                            dir: p.dir,
                            cap_ff: p.cap_ff * f.input_cap,
                        })
                        .collect(),
                    delay: c
                        .delay
                        .scaled(f.cell_delay)
                        .with_axes_scaled(f.output_slew, f.input_cap),
                    out_slew: c
                        .out_slew
                        .scaled(f.output_slew)
                        .with_axes_scaled(f.output_slew, f.input_cap),
                    energy: c
                        .energy
                        .scaled(f.cell_power)
                        .with_axes_scaled(f.output_slew, f.input_cap),
                    leakage_mw: c.leakage_mw * f.leakage,
                    seq: c.seq.map(|s| SeqSpec {
                        setup_ps: s.setup_ps * f.cell_delay,
                        hold_ps: s.hold_ps * f.cell_delay,
                        clk_energy_fj: s.clk_energy_fj * f.cell_power,
                    }),
                    // Delay per fF scales as delay/cap.
                    r_drive: c.r_drive * f.cell_delay / f.input_cap,
                    ..c
                }
            })
            .collect();
        Self::from_cells(node.clone(), style, cells)
    }

    /// Reassembles a library from externally persisted parts — the
    /// reload half of a disk-resident artifact store. Runs the same
    /// validation as [`CellLibrary::try_build`], so a corrupt or
    /// hand-edited payload that decodes structurally can still not
    /// smuggle a malformed library (non-finite tables, degenerate
    /// geometry, missing drive variants) past synthesis.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError`] naming the first offending cell.
    pub fn try_from_parts(
        node: TechNode,
        style: DesignStyle,
        cells: Vec<Cell>,
    ) -> Result<Self, LibraryError> {
        let lib = Self::from_cells(node, style, cells);
        lib.validate()?;
        Ok(lib)
    }

    /// Fallible form of [`CellLibrary::with_pin_cap_scaled`], rejecting
    /// non-finite and non-positive factors.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::InvalidPinCapScale`] when `factor` is not
    /// a positive finite number.
    pub fn try_with_pin_cap_scaled(&self, factor: f64) -> Result<Self, LibraryError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(LibraryError::InvalidPinCapScale(factor));
        }
        Ok(self.with_pin_cap_scaled(factor))
    }

    /// Returns a copy with every input pin capacitance scaled by `factor`
    /// — the paper's Table 8 pin-cap sensitivity study.
    pub fn with_pin_cap_scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        for c in &mut out.cells {
            for p in &mut c.pins {
                if p.dir == PinDir::Input {
                    p.cap_ff *= factor;
                }
            }
        }
        out
    }

    /// The technology node the library was built for.
    pub fn node(&self) -> &TechNode {
        &self.node
    }

    /// The design style (2D or T-MI).
    pub fn style(&self) -> DesignStyle {
        self.style
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the library is empty (never, for built libraries).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell by id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Cell by name.
    pub fn cell_named(&self, name: &str) -> Option<&Cell> {
        self.by_name.get(name).map(|&id| self.cell(id))
    }

    /// Id and cell by name.
    pub fn id_named(&self, name: &str) -> Option<(CellId, &Cell)> {
        self.by_name.get(name).map(|&id| (id, self.cell(id)))
    }

    /// All drive variants of a function, weakest first.
    pub fn variants(&self, function: CellFunction) -> Vec<CellId> {
        let mut v: Vec<CellId> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.function == function)
            .map(|(i, _)| CellId(i as u32))
            .collect();
        v.sort_by_key(|&id| self.cell(id).drive);
        v
    }

    /// The weakest variant of a function.
    ///
    /// # Panics
    ///
    /// Panics if the function has no variants (cannot happen for built
    /// libraries).
    pub fn smallest(&self, function: CellFunction) -> CellId {
        self.variants(function)[0]
    }

    /// The next-stronger variant, if any.
    pub fn upsize(&self, id: CellId) -> Option<(CellId, &Cell)> {
        let c = self.cell(id);
        self.variants(c.function)
            .into_iter()
            .find(|&v| self.cell(v).drive > c.drive)
            .map(|v| (v, self.cell(v)))
    }

    /// The next-weaker variant, if any.
    pub fn downsize(&self, id: CellId) -> Option<(CellId, &Cell)> {
        let c = self.cell(id);
        self.variants(c.function)
            .into_iter()
            .rev()
            .find(|&v| self.cell(v).drive < c.drive)
            .map(|v| (v, self.cell(v)))
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }
}

fn assemble_cell(
    _node: &TechNode,
    function: CellFunction,
    drive: u8,
    geom: &crate::layout::CellGeometry,
    tables: CellTables,
) -> Cell {
    let mut pins = Vec::new();
    for (i, name) in function.input_names().iter().enumerate() {
        pins.push(Pin {
            name: (*name).to_string(),
            dir: PinDir::Input,
            cap_ff: tables.input_caps[i],
        });
    }
    for name in function.output_names() {
        pins.push(Pin {
            name: (*name).to_string(),
            dir: PinDir::Output,
            cap_ff: 0.0,
        });
    }
    let seq = function.is_sequential().then(|| {
        // Setup: the master latch must settle (two internal stages) before
        // the clock edge; hold is near zero for transmission-gate DFFs.
        let stage = tables.delay.lookup(20.0, 1.0) / function.stage_count() as f64;
        SeqSpec {
            setup_ps: 1.6 * stage,
            hold_ps: 2.0,
            // Clock buffers + tgate gates toggle every cycle.
            clk_energy_fj: 0.35 * tables.energy.lookup(20.0, 1.0),
        }
    });
    Cell {
        name: format!("{}_X{}", function.base_name(), drive),
        function,
        drive,
        width_nm: geom.width_nm,
        height_nm: geom.height_nm,
        pins,
        delay: tables.delay,
        out_slew: tables.out_slew,
        energy: tables.energy,
        leakage_mw: tables.leakage_mw,
        seq,
        miv_count: geom.miv_count,
        r_drive: tables.r_drive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib45() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    #[test]
    fn library_has_all_functions_and_drives() {
        let lib = lib45();
        for f in CellFunction::ALL {
            let v = lib.variants(f);
            assert_eq!(v.len(), drives_for(f).len(), "{f:?}");
            // Upsizing from the smallest eventually reaches the largest.
            let mut id = lib.smallest(f);
            let mut steps = 0;
            while let Some((next, _)) = lib.upsize(id) {
                id = next;
                steps += 1;
            }
            assert_eq!(steps, v.len() - 1, "{f:?}");
        }
    }

    #[test]
    fn upsizing_lowers_drive_resistance_and_raises_cap() {
        let lib = lib45();
        let (x1, c1) = lib.id_named("INV_X1").expect("INV_X1");
        let (_, c4) = lib.id_named("INV_X4").expect("INV_X4");
        assert!(c4.r_drive < c1.r_drive / 2.0);
        assert!(c4.max_input_cap() > 2.0 * c1.max_input_cap());
        assert!(lib.downsize(x1).is_none());
    }

    #[test]
    fn dff_has_sequential_spec() {
        let lib = lib45();
        let dff = lib.cell_named("DFF_X1").expect("DFF_X1");
        let seq = dff.seq.expect("sequential");
        assert!(seq.setup_ps > 10.0 && seq.setup_ps < 300.0);
        assert!(seq.clk_energy_fj > 0.0);
        assert!(lib.cell_named("INV_X1").expect("INV").seq.is_none());
    }

    #[test]
    fn seven_nm_library_scales_per_itrs() {
        let lib45 = lib45();
        let lib7 = CellLibrary::build(&TechNode::n7(), DesignStyle::TwoD);
        let i45 = lib45.cell_named("INV_X1").expect("INV45");
        let i7 = lib7.cell_named("INV_X1").expect("INV7");
        // Input cap: 0.179x (Table 11: 0.463 -> 0.125 fF).
        let cap_ratio = i7.max_input_cap() / i45.max_input_cap();
        assert!((cap_ratio - 0.179).abs() < 0.01, "cap ratio {cap_ratio}");
        // Delay at the scaled corner: 0.471x.
        let d45 = i45.delay.lookup(37.5, 3.2);
        let d7 = i7.delay.lookup(37.5 * 0.42, 3.2 * 0.179);
        assert!((d7 / d45 - 0.471).abs() < 0.01, "delay ratio {}", d7 / d45);
        // Leakage: 0.678x; energy: 0.084x.
        assert!((i7.leakage_mw / i45.leakage_mw - 0.678).abs() < 0.01);
        // Cell height scales to 218 nm.
        assert_eq!(i7.height_nm, 218);
    }

    #[test]
    fn tmi_library_cells_are_40_percent_shorter() {
        let lib3 = CellLibrary::build(&TechNode::n45(), DesignStyle::Tmi);
        let lib2 = lib45();
        for (_, c3) in lib3.iter() {
            let c2 = lib2.cell_named(&c3.name).expect("same names");
            assert_eq!(c3.height_nm * 10, c2.height_nm * 6, "{}", c3.name);
            assert!(c3.miv_count > 0, "{} has no MIVs", c3.name);
        }
    }

    #[test]
    fn pin_cap_scaling_only_touches_inputs() {
        let lib = lib45().with_pin_cap_scaled(0.6);
        let base = lib45();
        let a = lib.cell_named("NAND2_X1").expect("scaled");
        let b = base.cell_named("NAND2_X1").expect("base");
        assert!((a.input_cap(0) / b.input_cap(0) - 0.6).abs() < 1e-9);
        assert_eq!(a.delay, b.delay);
    }

    #[test]
    fn names_resolve_round_trip() {
        let lib = lib45();
        for (id, cell) in lib.iter() {
            let (id2, _) = lib.id_named(&cell.name).expect("by name");
            assert_eq!(id, id2);
        }
        assert!(lib.cell_named("NOPE_X9").is_none());
    }
}
