//! Transistor-level standard-cell library for the `monolith3d` toolkit.
//!
//! This crate is the T-MI study's "cell library construction and
//! characterization" step (paper Section 3.1-3.2):
//!
//! * [`CellFunction`] / [`Topology`] — the logic functions of a
//!   Nangate-45-class library with explicit transistor-level topologies
//!   (every device's gate and channel connections), including a 28T mirror
//!   full adder and a transmission-gate master-slave DFF.
//! * [`layout`] — a programmatic layout generator that renders each
//!   topology either as a planar 2D cell or as a *folded* T-MI cell with
//!   PMOS devices on the bottom tier, NMOS on the top tier, and MIVs
//!   stitching the tiers (paper Fig. 2/5). The T-MI cell height is 0.84 µm
//!   vs 1.4 µm in 2D: a 40 % footprint reduction.
//! * [`Nldm`] — non-linear delay/power tables over (input slew × load)
//!   grids, the Liberty table model.
//! * [`characterize`] — builds the NLDM tables from the extracted layout
//!   parasitics, either analytically (fast, used by the full design flow)
//!   or by transient SPICE simulation via `m3d-spice` (used to regenerate
//!   the paper's Table 2 and to validate the analytic model).
//! * [`CellLibrary`] — the assembled library for a (node, style) pair,
//!   plus the ITRS scaling path that derives the 7 nm library from the
//!   45 nm one exactly as the paper does (Section 5 / S3).
//!
//! # Example
//!
//! ```
//! use m3d_cells::{CellFunction, CellLibrary};
//! use m3d_tech::{DesignStyle, TechNode};
//!
//! let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::Tmi);
//! let inv = lib.cell_named("INV_X1").expect("INV_X1 exists");
//! assert_eq!(inv.function, CellFunction::Inv);
//! // Folded cell: 40% lower height than the 1.4 um 2D cell.
//! assert_eq!(inv.height_nm, 840);
//! ```

pub mod characterize;
mod function;
pub mod gds;
pub mod layout;
pub mod liberty;
mod library;
mod nldm;
mod topology;

pub use function::CellFunction;
pub use library::{Cell, CellId, CellLibrary, LibraryError, Pin, PinDir, SeqSpec};
pub use nldm::Nldm;
pub use topology::{DeviceSpec, Signal, Topology};
