use serde::{Deserialize, Serialize};

/// A non-linear delay/power model table: values over an
/// (input slew × output load) grid with bilinear interpolation, the
/// Liberty `table_lookup` model.
///
/// # Example
///
/// ```
/// use m3d_cells::Nldm;
///
/// let t = Nldm::new(
///     vec![10.0, 100.0],
///     vec![1.0, 2.0],
///     vec![5.0, 8.0, 14.0, 17.0],
/// );
/// // Exact grid points.
/// assert_eq!(t.lookup(10.0, 1.0), 5.0);
/// assert_eq!(t.lookup(100.0, 2.0), 17.0);
/// // Bilinear midpoint.
/// assert!((t.lookup(55.0, 1.5) - 11.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nldm {
    slews: Vec<f64>,
    loads: Vec<f64>,
    /// Row-major `values[slew_idx * loads.len() + load_idx]`.
    values: Vec<f64>,
}

impl Nldm {
    /// Creates a table.
    ///
    /// # Panics
    ///
    /// Panics when axes are empty/unsorted or `values` has the wrong size.
    pub fn new(slews: Vec<f64>, loads: Vec<f64>, values: Vec<f64>) -> Self {
        assert!(!slews.is_empty() && !loads.is_empty(), "empty axis");
        assert!(
            slews.windows(2).all(|w| w[0] < w[1]) && loads.windows(2).all(|w| w[0] < w[1]),
            "axes must be strictly increasing"
        );
        assert_eq!(values.len(), slews.len() * loads.len(), "value grid size");
        Nldm {
            slews,
            loads,
            values,
        }
    }

    /// Builds a table by evaluating `f(slew, load)` on the grid.
    pub fn from_fn(slews: Vec<f64>, loads: Vec<f64>, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        let mut values = Vec::with_capacity(slews.len() * loads.len());
        for &s in &slews {
            for &l in &loads {
                values.push(f(s, l));
            }
        }
        Nldm::new(slews, loads, values)
    }

    /// The slew axis.
    pub fn slews(&self) -> &[f64] {
        &self.slews
    }

    /// The load axis.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// The value grid, row-major over `(slew, load)` — what an external
    /// serializer must persist alongside the axes to reconstruct the
    /// table via [`Nldm::new`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Bilinear lookup with linear extrapolation beyond the grid edges
    /// (matching Liberty semantics).
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (si, sf) = axis_pos(&self.slews, slew);
        let (li, lf) = axis_pos(&self.loads, load);
        let n = self.loads.len();
        // Single-point axes pin both corners to the same row/column.
        let si1 = (si + 1).min(self.slews.len() - 1);
        let li1 = (li + 1).min(n - 1);
        let v = |s: usize, l: usize| self.values[s * n + l];
        let v0 = v(si, li) * (1.0 - lf) + v(si, li1) * lf;
        let v1 = v(si1, li) * (1.0 - lf) + v(si1, li1) * lf;
        v0 * (1.0 - sf) + v1 * sf
    }

    /// Returns a copy with every value multiplied by `factor` — the
    /// mechanism used to derive the 7 nm library from the 45 nm one.
    pub fn scaled(&self, factor: f64) -> Nldm {
        Nldm {
            slews: self.slews.clone(),
            loads: self.loads.clone(),
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }

    /// Returns a copy with both axes scaled (slew axis by `slew_factor`,
    /// load axis by `load_factor`) so that lookups address the same table
    /// corners in scaled units.
    pub fn with_axes_scaled(&self, slew_factor: f64, load_factor: f64) -> Nldm {
        Nldm {
            slews: self.slews.iter().map(|s| s * slew_factor).collect(),
            loads: self.loads.iter().map(|l| l * load_factor).collect(),
            values: self.values.clone(),
        }
    }
}

/// Lower index plus fractional position of `x` on `axis`; the fraction can
/// leave [0, 1] for extrapolation. Single-point axes pin to the point.
fn axis_pos(axis: &[f64], x: f64) -> (usize, f64) {
    if axis.len() == 1 {
        return (0, 0.0);
    }
    let mut i = axis.len() - 2;
    for (k, pair) in axis.windows(2).enumerate() {
        if x <= pair[1] {
            i = k;
            break;
        }
    }
    let (a, b) = (axis[i], axis[i + 1]);
    (i, (x - a) / (b - a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> Nldm {
        Nldm::from_fn(vec![7.5, 37.5, 150.0], vec![0.8, 3.2, 12.8], |s, l| {
            0.5 * s + 8.0 * l
        })
    }

    #[test]
    fn exact_points_round_trip() {
        let t = table();
        for &s in &[7.5, 37.5, 150.0] {
            for &l in &[0.8, 3.2, 12.8] {
                assert!((t.lookup(s, l) - (0.5 * s + 8.0 * l)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn extrapolation_follows_edge_slope() {
        let t = table();
        // The generator is affine, so extrapolation is exact.
        assert!((t.lookup(300.0, 20.0) - (150.0 + 160.0)).abs() < 1e-9);
        assert!((t.lookup(1.0, 0.1) - (0.5 + 0.8)).abs() < 1e-9);
    }

    #[test]
    fn scaling_multiplies_values() {
        let t = table().scaled(0.471);
        assert!((t.lookup(37.5, 3.2) - 0.471 * (18.75 + 25.6)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_axis_rejected() {
        let _ = Nldm::new(vec![2.0, 1.0], vec![1.0], vec![0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn interpolation_stays_within_affine_model(s in 7.5f64..150.0, l in 0.8f64..12.8) {
            // Bilinear interpolation of an affine function is exact.
            let t = table();
            prop_assert!((t.lookup(s, l) - (0.5 * s + 8.0 * l)).abs() < 1e-9);
        }

        #[test]
        fn monotone_table_interpolates_monotonically(
            s1 in 7.5f64..150.0, s2 in 7.5f64..150.0, l in 0.8f64..12.8,
        ) {
            let t = table();
            let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(t.lookup(lo, l) <= t.lookup(hi, l) + 1e-9);
        }
    }
}
