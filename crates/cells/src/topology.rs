use serde::{Deserialize, Serialize};

use m3d_spice::MosKind;

use crate::CellFunction;

/// An electrical net inside a cell topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Signal {
    /// Power rail.
    Vdd,
    /// Ground rail.
    Vss,
    /// The n-th input pin (order of [`CellFunction::input_names`]).
    Input(u8),
    /// The n-th output pin (order of [`CellFunction::output_names`]).
    Output(u8),
    /// Cell-internal node.
    Internal(u8),
}

impl Signal {
    /// Stable numeric id used by layout generation and extraction.
    pub fn node_id(self) -> u32 {
        match self {
            Signal::Vdd => 1,
            Signal::Vss => 2,
            Signal::Input(i) => 10 + i as u32,
            Signal::Output(o) => 40 + o as u32,
            Signal::Internal(k) => 60 + k as u32,
        }
    }

    /// `true` for VDD/VSS.
    pub fn is_supply(self) -> bool {
        matches!(self, Signal::Vdd | Signal::Vss)
    }
}

/// One transistor of a cell: polarity, width, and its three terminals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// NMOS or PMOS.
    pub kind: MosKind,
    /// Gate net.
    pub gate: Signal,
    /// One channel terminal (source/drain are symmetric).
    pub a: Signal,
    /// The other channel terminal.
    pub b: Signal,
    /// Channel width, µm (X1 widths; drive scaling multiplies these).
    pub width: f64,
}

/// The transistor-level structure of a cell.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Topology {
    /// All devices.
    pub devices: Vec<DeviceSpec>,
}

/// Base NMOS width (µm) of the X1 library, Nangate-class.
pub(crate) const WN: f64 = 0.415;
/// Base PMOS width (µm): wider to compensate the hole-mobility deficit
/// (paper Section 3.1).
pub(crate) const WP: f64 = 0.630;
/// Upsizing factor for devices in series stacks.
const STACK: f64 = 1.35;

impl Topology {
    fn dev(&mut self, kind: MosKind, gate: Signal, a: Signal, b: Signal, width: f64) {
        self.devices.push(DeviceSpec {
            kind,
            gate,
            a,
            b,
            width,
        });
    }

    fn inverter(&mut self, input: Signal, output: Signal, scale: f64) {
        self.dev(MosKind::Pmos, input, Signal::Vdd, output, WP * scale);
        self.dev(MosKind::Nmos, input, output, Signal::Vss, WN * scale);
    }

    fn tgate(&mut self, from: Signal, to: Signal, clk_n_gate: Signal, clk_p_gate: Signal) {
        // Transmission gate: NMOS gated by the "pass when high" phase,
        // PMOS gated by its complement.
        self.dev(MosKind::Nmos, clk_n_gate, from, to, WN * 0.8);
        self.dev(MosKind::Pmos, clk_p_gate, from, to, WP * 0.8);
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// All distinct signals, supplies first, in deterministic order.
    pub fn signals(&self) -> Vec<Signal> {
        let mut sigs: Vec<Signal> = self
            .devices
            .iter()
            .flat_map(|d| [d.gate, d.a, d.b])
            .collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs
    }

    /// Total gate width connected to an input, µm (pin-cap basis).
    pub fn gate_width_on(&self, sig: Signal) -> f64 {
        self.devices
            .iter()
            .filter(|d| d.gate == sig)
            .map(|d| d.width)
            .sum()
    }

    /// Total device width (area/leakage basis), µm.
    pub fn total_width(&self) -> f64 {
        self.devices.iter().map(|d| d.width).sum()
    }

    /// Worst (longest) series stack length in the pull-down network driving
    /// `out`, conservatively estimated as the number of distinct NMOS
    /// devices between `out` and VSS on the deepest path.
    pub fn nmos_stack_depth(&self, out: Signal) -> usize {
        self.stack_depth(out, MosKind::Nmos, Signal::Vss)
    }

    /// Worst series stack length in the pull-up network driving `out`.
    pub fn pmos_stack_depth(&self, out: Signal) -> usize {
        self.stack_depth(out, MosKind::Pmos, Signal::Vdd)
    }

    fn stack_depth(&self, out: Signal, kind: MosKind, rail: Signal) -> usize {
        // DFS over channel connectivity, longest simple path out -> rail.
        fn dfs(
            devices: &[DeviceSpec],
            kind: MosKind,
            here: Signal,
            rail: Signal,
            used: &mut Vec<bool>,
        ) -> Option<usize> {
            if here == rail {
                return Some(0);
            }
            let mut best: Option<usize> = None;
            for (i, d) in devices.iter().enumerate() {
                if used[i] || d.kind != kind {
                    continue;
                }
                let next = if d.a == here {
                    Some(d.b)
                } else if d.b == here {
                    Some(d.a)
                } else {
                    None
                };
                if let Some(next) = next {
                    used[i] = true;
                    if let Some(rest) = dfs(devices, kind, next, rail, used) {
                        let len = rest + 1;
                        best = Some(best.map_or(len, |b: usize| b.max(len)));
                    }
                    used[i] = false;
                }
            }
            best
        }
        let mut used = vec![false; self.devices.len()];
        dfs(&self.devices, kind, out, rail, &mut used).unwrap_or(1)
    }

    /// Builds the X1 transistor topology for a function.
    pub fn for_function(function: CellFunction) -> Topology {
        use MosKind::{Nmos, Pmos};
        use Signal::{Input as In, Internal as Int, Output as Out, Vdd, Vss};
        let mut t = Topology::default();
        match function {
            CellFunction::Inv => t.inverter(In(0), Out(0), 1.0),
            CellFunction::Buf => {
                t.inverter(In(0), Int(0), 0.7);
                t.inverter(Int(0), Out(0), 1.3);
            }
            CellFunction::Nand2 => {
                t.dev(Pmos, In(0), Vdd, Out(0), WP);
                t.dev(Pmos, In(1), Vdd, Out(0), WP);
                t.dev(Nmos, In(0), Out(0), Int(0), WN * STACK);
                t.dev(Nmos, In(1), Int(0), Vss, WN * STACK);
            }
            CellFunction::Nand3 => {
                for i in 0..3 {
                    t.dev(Pmos, In(i), Vdd, Out(0), WP);
                }
                t.dev(Nmos, In(0), Out(0), Int(0), WN * STACK * 1.2);
                t.dev(Nmos, In(1), Int(0), Int(1), WN * STACK * 1.2);
                t.dev(Nmos, In(2), Int(1), Vss, WN * STACK * 1.2);
            }
            CellFunction::Nor2 => {
                t.dev(Pmos, In(0), Vdd, Int(0), WP * STACK);
                t.dev(Pmos, In(1), Int(0), Out(0), WP * STACK);
                t.dev(Nmos, In(0), Out(0), Vss, WN);
                t.dev(Nmos, In(1), Out(0), Vss, WN);
            }
            CellFunction::Nor3 => {
                t.dev(Pmos, In(0), Vdd, Int(0), WP * STACK * 1.2);
                t.dev(Pmos, In(1), Int(0), Int(1), WP * STACK * 1.2);
                t.dev(Pmos, In(2), Int(1), Out(0), WP * STACK * 1.2);
                for i in 0..3 {
                    t.dev(Nmos, In(i), Out(0), Vss, WN);
                }
            }
            CellFunction::And2 => {
                // NAND into inverter.
                t.dev(Pmos, In(0), Vdd, Int(0), WP);
                t.dev(Pmos, In(1), Vdd, Int(0), WP);
                t.dev(Nmos, In(0), Int(0), Int(1), WN * STACK);
                t.dev(Nmos, In(1), Int(1), Vss, WN * STACK);
                t.inverter(Int(0), Out(0), 1.0);
            }
            CellFunction::Or2 => {
                t.dev(Pmos, In(0), Vdd, Int(1), WP * STACK);
                t.dev(Pmos, In(1), Int(1), Int(0), WP * STACK);
                t.dev(Nmos, In(0), Int(0), Vss, WN);
                t.dev(Nmos, In(1), Int(0), Vss, WN);
                t.inverter(Int(0), Out(0), 1.0);
            }
            CellFunction::Xor2 => {
                // Internal complements.
                t.inverter(In(0), Int(0), 0.7); // Int(0) = !A
                t.inverter(In(1), Int(1), 0.7); // Int(1) = !B
                                                // PDN: (A & B) | (!A & !B)  -> output low on equality.
                t.dev(Nmos, In(0), Out(0), Int(2), WN * STACK);
                t.dev(Nmos, In(1), Int(2), Vss, WN * STACK);
                t.dev(Nmos, Int(0), Out(0), Int(3), WN * STACK);
                t.dev(Nmos, Int(1), Int(3), Vss, WN * STACK);
                // PUN: (!A | !B) & (A | B) via gates (A,B) then (!A,!B).
                t.dev(Pmos, In(0), Vdd, Int(4), WP * STACK);
                t.dev(Pmos, In(1), Vdd, Int(4), WP * STACK);
                t.dev(Pmos, Int(0), Int(4), Out(0), WP * STACK);
                t.dev(Pmos, Int(1), Int(4), Out(0), WP * STACK);
            }
            CellFunction::Xnor2 => {
                t.inverter(In(0), Int(0), 0.7);
                t.inverter(In(1), Int(1), 0.7);
                // PDN: (A & !B) | (!A & B) -> low on inequality.
                t.dev(Nmos, In(0), Out(0), Int(2), WN * STACK);
                t.dev(Nmos, Int(1), Int(2), Vss, WN * STACK);
                t.dev(Nmos, Int(0), Out(0), Int(3), WN * STACK);
                t.dev(Nmos, In(1), Int(3), Vss, WN * STACK);
                t.dev(Pmos, In(0), Vdd, Int(4), WP * STACK);
                t.dev(Pmos, Int(1), Vdd, Int(4), WP * STACK);
                t.dev(Pmos, Int(0), Int(4), Out(0), WP * STACK);
                t.dev(Pmos, In(1), Int(4), Out(0), WP * STACK);
            }
            CellFunction::Mux2 => {
                // Z = S ? B : A. Complement select, two tgates, output buffer.
                t.inverter(In(2), Int(0), 0.7); // Int(0) = !S
                t.tgate(In(0), Int(1), Int(0), In(2)); // A passes when S low
                t.tgate(In(1), Int(1), In(2), Int(0)); // B passes when S high
                t.inverter(Int(1), Int(2), 0.8);
                t.inverter(Int(2), Out(0), 1.2);
            }
            CellFunction::Aoi21 => {
                // ZN = !(A&B | C).
                t.dev(Nmos, In(0), Out(0), Int(0), WN * STACK);
                t.dev(Nmos, In(1), Int(0), Vss, WN * STACK);
                t.dev(Nmos, In(2), Out(0), Vss, WN);
                t.dev(Pmos, In(0), Vdd, Int(1), WP * STACK);
                t.dev(Pmos, In(1), Vdd, Int(1), WP * STACK);
                t.dev(Pmos, In(2), Int(1), Out(0), WP * STACK);
            }
            CellFunction::Oai21 => {
                // ZN = !((A|B) & C).
                t.dev(Nmos, In(0), Out(0), Int(0), WN * STACK);
                t.dev(Nmos, In(1), Out(0), Int(0), WN * STACK);
                t.dev(Nmos, In(2), Int(0), Vss, WN * STACK);
                t.dev(Pmos, In(0), Vdd, Int(1), WP * STACK);
                t.dev(Pmos, In(1), Int(1), Out(0), WP * STACK);
                t.dev(Pmos, In(2), Vdd, Out(0), WP);
            }
            CellFunction::Aoi22 => {
                // ZN = !(A&B | C&D).
                t.dev(Nmos, In(0), Out(0), Int(0), WN * STACK);
                t.dev(Nmos, In(1), Int(0), Vss, WN * STACK);
                t.dev(Nmos, In(2), Out(0), Int(1), WN * STACK);
                t.dev(Nmos, In(3), Int(1), Vss, WN * STACK);
                t.dev(Pmos, In(0), Vdd, Int(2), WP * STACK);
                t.dev(Pmos, In(1), Vdd, Int(2), WP * STACK);
                t.dev(Pmos, In(2), Int(2), Out(0), WP * STACK);
                t.dev(Pmos, In(3), Int(2), Out(0), WP * STACK);
            }
            CellFunction::Oai22 => {
                t.dev(Nmos, In(0), Out(0), Int(0), WN * STACK);
                t.dev(Nmos, In(1), Out(0), Int(0), WN * STACK);
                t.dev(Nmos, In(2), Int(0), Vss, WN * STACK);
                t.dev(Nmos, In(3), Int(0), Vss, WN * STACK);
                t.dev(Pmos, In(0), Vdd, Int(1), WP * STACK);
                t.dev(Pmos, In(1), Int(1), Int(2), WP * STACK);
                t.dev(Pmos, In(2), Int(2), Out(0), WP * STACK);
                t.dev(Pmos, In(3), Int(2), Out(0), WP * STACK);
            }
            CellFunction::HalfAdder => {
                // S = XOR(A,B), CO = AND(A,B); shares input inverters.
                t.inverter(In(0), Int(0), 0.7);
                t.inverter(In(1), Int(1), 0.7);
                // XOR core onto S.
                t.dev(Nmos, In(0), Out(0), Int(2), WN * STACK);
                t.dev(Nmos, In(1), Int(2), Vss, WN * STACK);
                t.dev(Nmos, Int(0), Out(0), Int(3), WN * STACK);
                t.dev(Nmos, Int(1), Int(3), Vss, WN * STACK);
                t.dev(Pmos, In(0), Vdd, Int(4), WP * STACK);
                t.dev(Pmos, In(1), Vdd, Int(4), WP * STACK);
                t.dev(Pmos, Int(0), Int(4), Out(0), WP * STACK);
                t.dev(Pmos, Int(1), Int(4), Out(0), WP * STACK);
                // CO = !(!A | !B): NOR of complements.
                t.dev(Pmos, Int(0), Vdd, Int(5), WP * STACK);
                t.dev(Pmos, Int(1), Int(5), Out(1), WP * STACK);
                t.dev(Nmos, Int(0), Out(1), Vss, WN);
                t.dev(Nmos, Int(1), Out(1), Vss, WN);
            }
            CellFunction::FullAdder => {
                // 28T mirror adder. Int(0) = !CO, Int(5) = !S.
                let nco = Int(0);
                let ns = Int(5);
                // !CO PDN: A·B | CI·(A|B).
                t.dev(Nmos, In(0), nco, Int(1), WN * STACK);
                t.dev(Nmos, In(1), Int(1), Vss, WN * STACK);
                t.dev(Nmos, In(2), nco, Int(2), WN * STACK);
                t.dev(Nmos, In(0), Int(2), Vss, WN * STACK);
                t.dev(Nmos, In(1), Int(2), Vss, WN * STACK);
                // !CO PUN (mirror).
                t.dev(Pmos, In(0), Vdd, Int(3), WP * STACK);
                t.dev(Pmos, In(1), Int(3), nco, WP * STACK);
                t.dev(Pmos, In(2), Vdd, Int(4), WP * STACK);
                t.dev(Pmos, In(0), Int(4), nco, WP * STACK);
                t.dev(Pmos, In(1), Int(4), nco, WP * STACK);
                // !S PDN: !CO·(A|B|CI) | A·B·CI.
                t.dev(Nmos, nco, ns, Int(6), WN * STACK);
                t.dev(Nmos, In(0), Int(6), Vss, WN * STACK);
                t.dev(Nmos, In(1), Int(6), Vss, WN * STACK);
                t.dev(Nmos, In(2), Int(6), Vss, WN * STACK);
                t.dev(Nmos, In(0), ns, Int(7), WN * STACK);
                t.dev(Nmos, In(1), Int(7), Int(8), WN * STACK);
                t.dev(Nmos, In(2), Int(8), Vss, WN * STACK);
                // !S PUN (mirror).
                t.dev(Pmos, nco, Int(9), ns, WP * STACK);
                t.dev(Pmos, In(0), Vdd, Int(9), WP * STACK);
                t.dev(Pmos, In(1), Vdd, Int(9), WP * STACK);
                t.dev(Pmos, In(2), Vdd, Int(9), WP * STACK);
                t.dev(Pmos, In(0), Vdd, Int(10), WP * STACK);
                t.dev(Pmos, In(1), Int(10), Int(11), WP * STACK);
                t.dev(Pmos, In(2), Int(11), ns, WP * STACK);
                // Output inverters.
                t.inverter(nco, Out(1), 1.0);
                t.inverter(ns, Out(0), 1.0);
            }
            CellFunction::Dff => {
                // Transmission-gate master-slave, rising edge.
                // Clock buffers: Int(0) = !CK, Int(1) = CK buffered.
                t.inverter(In(1), Int(0), 0.7);
                t.inverter(Int(0), Int(1), 0.7);
                // Master: D passes while CK low.
                t.tgate(In(0), Int(2), Int(0), Int(1));
                t.inverter(Int(2), Int(3), 0.8);
                t.inverter(Int(3), Int(4), 0.6);
                t.tgate(Int(4), Int(2), Int(1), Int(0)); // feedback while CK high
                                                         // Slave: master out passes while CK high.
                t.tgate(Int(3), Int(5), Int(1), Int(0));
                t.inverter(Int(5), Int(6), 0.8);
                t.inverter(Int(6), Int(7), 0.6);
                t.tgate(Int(7), Int(5), Int(0), Int(1)); // feedback while CK low
                                                         // Output buffer.
                t.inverter(Int(6), Out(0), 1.2);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_counts_match_textbook_structures() {
        assert_eq!(Topology::for_function(CellFunction::Inv).device_count(), 2);
        assert_eq!(
            Topology::for_function(CellFunction::Nand2).device_count(),
            4
        );
        assert_eq!(
            Topology::for_function(CellFunction::Xor2).device_count(),
            12
        );
        assert_eq!(
            Topology::for_function(CellFunction::FullAdder).device_count(),
            28
        );
        assert_eq!(Topology::for_function(CellFunction::Dff).device_count(), 22);
    }

    #[test]
    fn every_function_touches_both_rails() {
        for f in CellFunction::ALL {
            let t = Topology::for_function(f);
            let sigs = t.signals();
            assert!(sigs.contains(&Signal::Vdd), "{f:?} missing VDD");
            assert!(sigs.contains(&Signal::Vss), "{f:?} missing VSS");
            for i in 0..f.input_count() {
                assert!(
                    sigs.contains(&Signal::Input(i as u8)),
                    "{f:?} missing input {i}"
                );
            }
            for o in 0..f.output_count() {
                assert!(
                    sigs.contains(&Signal::Output(o as u8)),
                    "{f:?} missing output {o}"
                );
            }
        }
    }

    #[test]
    fn stack_depths() {
        let nand3 = Topology::for_function(CellFunction::Nand3);
        assert_eq!(nand3.nmos_stack_depth(Signal::Output(0)), 3);
        assert_eq!(nand3.pmos_stack_depth(Signal::Output(0)), 1);
        let nor2 = Topology::for_function(CellFunction::Nor2);
        assert_eq!(nor2.pmos_stack_depth(Signal::Output(0)), 2);
        assert_eq!(nor2.nmos_stack_depth(Signal::Output(0)), 1);
    }

    #[test]
    fn gate_width_counts_all_fingers() {
        let inv = Topology::for_function(CellFunction::Inv);
        let w = inv.gate_width_on(Signal::Input(0));
        assert!((w - (WN + WP)).abs() < 1e-12);
    }

    #[test]
    fn node_ids_do_not_collide() {
        let mut ids = std::collections::HashSet::new();
        for s in [
            Signal::Vdd,
            Signal::Vss,
            Signal::Input(0),
            Signal::Input(7),
            Signal::Output(0),
            Signal::Output(1),
            Signal::Internal(0),
            Signal::Internal(11),
        ] {
            assert!(ids.insert(s.node_id()), "collision for {s:?}");
        }
    }
}
