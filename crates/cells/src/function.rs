use serde::{Deserialize, Serialize};

/// Logic function of a library cell.
///
/// The set mirrors the slice of the Nangate 45 nm library the benchmark
/// circuits need, plus the arithmetic cells (half/full adder) that the
/// multiplier and FPU generators instantiate heavily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellFunction {
    /// Inverter.
    Inv,
    /// Non-inverting buffer (two cascaded inverters).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND (NAND + inverter).
    And2,
    /// 2-input OR (NOR + inverter).
    Or2,
    /// 2-input XOR (static CMOS, 12T).
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer, output = S ? B : A.
    Mux2,
    /// AND-OR-invert: `!(A&B | C)`.
    Aoi21,
    /// OR-AND-invert: `!((A|B) & C)`.
    Oai21,
    /// AND-OR-invert: `!(A&B | C&D)`.
    Aoi22,
    /// OR-AND-invert: `!((A|B) & (C|D))`.
    Oai22,
    /// Half adder: S = A^B, CO = A&B.
    HalfAdder,
    /// Full adder (28T mirror adder): S = A^B^CI, CO = majority.
    FullAdder,
    /// Rising-edge master-slave D flip-flop (transmission-gate, 24T).
    Dff,
}

impl CellFunction {
    /// All functions in the library.
    pub const ALL: [CellFunction; 18] = [
        CellFunction::Inv,
        CellFunction::Buf,
        CellFunction::Nand2,
        CellFunction::Nand3,
        CellFunction::Nor2,
        CellFunction::Nor3,
        CellFunction::And2,
        CellFunction::Or2,
        CellFunction::Xor2,
        CellFunction::Xnor2,
        CellFunction::Mux2,
        CellFunction::Aoi21,
        CellFunction::Oai21,
        CellFunction::Aoi22,
        CellFunction::Oai22,
        CellFunction::HalfAdder,
        CellFunction::FullAdder,
        CellFunction::Dff,
    ];

    /// Library base name (drive suffix is added by the library builder).
    pub fn base_name(self) -> &'static str {
        match self {
            CellFunction::Inv => "INV",
            CellFunction::Buf => "BUF",
            CellFunction::Nand2 => "NAND2",
            CellFunction::Nand3 => "NAND3",
            CellFunction::Nor2 => "NOR2",
            CellFunction::Nor3 => "NOR3",
            CellFunction::And2 => "AND2",
            CellFunction::Or2 => "OR2",
            CellFunction::Xor2 => "XOR2",
            CellFunction::Xnor2 => "XNOR2",
            CellFunction::Mux2 => "MUX2",
            CellFunction::Aoi21 => "AOI21",
            CellFunction::Oai21 => "OAI21",
            CellFunction::Aoi22 => "AOI22",
            CellFunction::Oai22 => "OAI22",
            CellFunction::HalfAdder => "HA",
            CellFunction::FullAdder => "FA",
            CellFunction::Dff => "DFF",
        }
    }

    /// Input pin names. For the DFF these are `D` then `CK`.
    pub fn input_names(self) -> &'static [&'static str] {
        match self {
            CellFunction::Inv | CellFunction::Buf => &["A"],
            CellFunction::Nand2
            | CellFunction::Nor2
            | CellFunction::And2
            | CellFunction::Or2
            | CellFunction::Xor2
            | CellFunction::Xnor2
            | CellFunction::HalfAdder => &["A", "B"],
            CellFunction::Nand3 | CellFunction::Nor3 => &["A", "B", "C"],
            CellFunction::Mux2 => &["A", "B", "S"],
            CellFunction::Aoi21 | CellFunction::Oai21 => &["A", "B", "C"],
            CellFunction::Aoi22 | CellFunction::Oai22 => &["A", "B", "C", "D"],
            CellFunction::FullAdder => &["A", "B", "CI"],
            CellFunction::Dff => &["D", "CK"],
        }
    }

    /// Output pin names.
    pub fn output_names(self) -> &'static [&'static str] {
        match self {
            CellFunction::HalfAdder => &["S", "CO"],
            CellFunction::FullAdder => &["S", "CO"],
            CellFunction::Dff => &["Q"],
            CellFunction::Inv | CellFunction::Nand2 | CellFunction::Nand3 => &["ZN"],
            CellFunction::Nor2
            | CellFunction::Nor3
            | CellFunction::Xnor2
            | CellFunction::Aoi21
            | CellFunction::Oai21
            | CellFunction::Aoi22
            | CellFunction::Oai22 => &["ZN"],
            _ => &["Z"],
        }
    }

    /// Number of inputs.
    pub fn input_count(self) -> usize {
        self.input_names().len()
    }

    /// Number of outputs.
    pub fn output_count(self) -> usize {
        self.output_names().len()
    }

    /// `true` for the flip-flop.
    pub fn is_sequential(self) -> bool {
        matches!(self, CellFunction::Dff)
    }

    /// `true` when the cell output inverts its single driving stage — used
    /// by the activity propagator for transition bookkeeping.
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            CellFunction::Inv
                | CellFunction::Nand2
                | CellFunction::Nand3
                | CellFunction::Nor2
                | CellFunction::Nor3
                | CellFunction::Xnor2
                | CellFunction::Aoi21
                | CellFunction::Oai21
                | CellFunction::Aoi22
                | CellFunction::Oai22
        )
    }

    /// Evaluates the combinational function.
    ///
    /// # Panics
    ///
    /// Panics for [`CellFunction::Dff`] (stateful) or when `inputs` has the
    /// wrong arity.
    pub fn eval(self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "{self:?} expects {} inputs",
            self.input_count()
        );
        let i = inputs;
        match self {
            CellFunction::Inv => vec![!i[0]],
            CellFunction::Buf => vec![i[0]],
            CellFunction::Nand2 => vec![!(i[0] && i[1])],
            CellFunction::Nand3 => vec![!(i[0] && i[1] && i[2])],
            CellFunction::Nor2 => vec![!(i[0] || i[1])],
            CellFunction::Nor3 => vec![!(i[0] || i[1] || i[2])],
            CellFunction::And2 => vec![i[0] && i[1]],
            CellFunction::Or2 => vec![i[0] || i[1]],
            CellFunction::Xor2 => vec![i[0] ^ i[1]],
            CellFunction::Xnor2 => vec![!(i[0] ^ i[1])],
            CellFunction::Mux2 => vec![if i[2] { i[1] } else { i[0] }],
            CellFunction::Aoi21 => vec![!((i[0] && i[1]) || i[2])],
            CellFunction::Oai21 => vec![!((i[0] || i[1]) && i[2])],
            CellFunction::Aoi22 => vec![!((i[0] && i[1]) || (i[2] && i[3]))],
            CellFunction::Oai22 => vec![!((i[0] || i[1]) && (i[2] || i[3]))],
            CellFunction::HalfAdder => vec![i[0] ^ i[1], i[0] && i[1]],
            CellFunction::FullAdder => {
                let s = i[0] ^ i[1] ^ i[2];
                let co = (i[0] && i[1]) || (i[2] && (i[0] ^ i[1]));
                vec![s, co]
            }
            CellFunction::Dff => panic!("DFF is sequential; eval() is undefined"),
        }
    }

    /// Logic stages from input to output (for the characterizer's
    /// intrinsic-delay model).
    pub fn stage_count(self) -> usize {
        match self {
            CellFunction::Inv
            | CellFunction::Nand2
            | CellFunction::Nand3
            | CellFunction::Nor2
            | CellFunction::Nor3
            | CellFunction::Aoi21
            | CellFunction::Oai21
            | CellFunction::Aoi22
            | CellFunction::Oai22 => 1,
            CellFunction::Buf | CellFunction::And2 | CellFunction::Or2 => 2,
            CellFunction::Xor2 | CellFunction::Xnor2 | CellFunction::HalfAdder => 2,
            CellFunction::Mux2 => 3,
            CellFunction::FullAdder => 3,
            CellFunction::Dff => 3,
        }
    }
}

impl std::fmt::Display for CellFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.base_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for ci in [false, true] {
                    let out = CellFunction::FullAdder.eval(&[a, b, ci]);
                    let sum = (a as u8) + (b as u8) + (ci as u8);
                    assert_eq!(out[0], sum & 1 == 1, "sum for {a}{b}{ci}");
                    assert_eq!(out[1], sum >= 2, "carry for {a}{b}{ci}");
                }
            }
        }
    }

    #[test]
    fn aoi_oai_are_complementary_structures() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let aoi = CellFunction::Aoi21.eval(&[a, b, c])[0];
                    assert_eq!(aoi, !((a && b) || c));
                    let oai = CellFunction::Oai21.eval(&[a, b, c])[0];
                    assert_eq!(oai, !((a || b) && c));
                }
            }
        }
    }

    #[test]
    fn mux_selects() {
        assert_eq!(CellFunction::Mux2.eval(&[true, false, false]), vec![true]);
        assert_eq!(CellFunction::Mux2.eval(&[true, false, true]), vec![false]);
    }

    #[test]
    fn arity_matches_pin_lists() {
        for f in CellFunction::ALL {
            assert_eq!(f.input_count(), f.input_names().len());
            assert_eq!(f.output_count(), f.output_names().len());
            if !f.is_sequential() {
                let out = f.eval(&vec![false; f.input_count()]);
                assert_eq!(out.len(), f.output_count(), "{f:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn dff_eval_panics() {
        CellFunction::Dff.eval(&[false, false]);
    }

    #[test]
    fn base_names_are_unique() {
        let mut names: Vec<_> = CellFunction::ALL.iter().map(|f| f.base_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CellFunction::ALL.len());
    }
}
