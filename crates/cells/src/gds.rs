//! GDSII export of cell layouts — the "GDSII-level layouts" the paper's
//! title claim rests on.
//!
//! Emits a real binary GDSII stream (HEADER/BGNLIB/UNITS/BGNSTR/BOUNDARY
//! records) with one structure per cell; every [`m3d_geom::LayerShape`]
//! becomes a BOUNDARY on its layer number. A minimal reader is included
//! for round-trip verification.
//!
//! # Example
//!
//! ```
//! use m3d_cells::{gds, layout::generate_layout, CellFunction, Topology};
//! use m3d_tech::{DesignStyle, TechNode};
//!
//! let node = TechNode::n45();
//! let topo = Topology::for_function(CellFunction::Inv);
//! let geom = generate_layout(&node, &topo, DesignStyle::Tmi, 1);
//! let bytes = gds::to_gds(&[("INV_X1", &geom.shapes)], "tmi45");
//! let cells = gds::boundary_counts(&bytes).expect("valid stream");
//! assert_eq!(cells[0].0, "INV_X1");
//! assert_eq!(cells[0].1, geom.shapes.len());
//! ```

use m3d_geom::ShapeSet;

// GDSII record types.
const HEADER: u8 = 0x00;
const BGNLIB: u8 = 0x01;
const LIBNAME: u8 = 0x02;
const UNITS: u8 = 0x03;
const ENDLIB: u8 = 0x04;
const BGNSTR: u8 = 0x05;
const STRNAME: u8 = 0x06;
const ENDSTR: u8 = 0x07;
const BOUNDARY: u8 = 0x08;
const LAYER: u8 = 0x0D;
const DATATYPE: u8 = 0x0E;
const XY: u8 = 0x10;
const ENDEL: u8 = 0x11;

// GDSII data types.
const DT_NONE: u8 = 0x00;
const DT_I16: u8 = 0x02;
const DT_I32: u8 = 0x03;
const DT_F64: u8 = 0x05;
const DT_ASCII: u8 = 0x06;

fn record(out: &mut Vec<u8>, rtype: u8, dtype: u8, payload: &[u8]) {
    let len = (payload.len() + 4) as u16;
    out.extend_from_slice(&len.to_be_bytes());
    out.push(rtype);
    out.push(dtype);
    out.extend_from_slice(payload);
}

fn ascii_payload(s: &str) -> Vec<u8> {
    let mut v = s.as_bytes().to_vec();
    if v.len() % 2 == 1 {
        v.push(0);
    }
    v
}

/// Encodes an f64 into GDSII 8-byte excess-64 real format.
fn gds_real(mut value: f64) -> [u8; 8] {
    if value == 0.0 {
        return [0; 8];
    }
    let negative = value < 0.0;
    value = value.abs();
    let mut exponent = 64i32;
    while value >= 1.0 {
        value /= 16.0;
        exponent += 1;
    }
    while value < 1.0 / 16.0 {
        value *= 16.0;
        exponent -= 1;
    }
    let mantissa = (value * 2f64.powi(56)) as u64;
    let mut out = [0u8; 8];
    out[0] = (exponent as u8) | if negative { 0x80 } else { 0 };
    out[1..8].copy_from_slice(&mantissa.to_be_bytes()[1..8]);
    out
}

/// Serializes named shape sets into one binary GDSII library.
///
/// Database unit = 1 nm (the toolkit grid); user unit = 1 µm.
pub fn to_gds(cells: &[(&str, &ShapeSet)], libname: &str) -> Vec<u8> {
    let mut out = Vec::new();
    record(&mut out, HEADER, DT_I16, &600i16.to_be_bytes());
    // BGNLIB carries two 12-short timestamps; zeros are accepted.
    record(&mut out, BGNLIB, DT_I16, &[0u8; 24]);
    record(&mut out, LIBNAME, DT_ASCII, &ascii_payload(libname));
    let mut units = Vec::with_capacity(16);
    units.extend_from_slice(&gds_real(1e-3)); // db unit in user units (nm/um)
    units.extend_from_slice(&gds_real(1e-9)); // db unit in metres
    record(&mut out, UNITS, DT_F64, &units);

    for (name, shapes) in cells {
        record(&mut out, BGNSTR, DT_I16, &[0u8; 24]);
        record(&mut out, STRNAME, DT_ASCII, &ascii_payload(name));
        for s in shapes.iter() {
            record(&mut out, BOUNDARY, DT_NONE, &[]);
            record(&mut out, LAYER, DT_I16, &(s.layer as i16).to_be_bytes());
            record(&mut out, DATATYPE, DT_I16, &0i16.to_be_bytes());
            // Closed rectangle: 5 points, 10 i32 coordinates.
            let r = s.rect;
            let pts: [(i64, i64); 5] = [
                (r.lo().x, r.lo().y),
                (r.hi().x, r.lo().y),
                (r.hi().x, r.hi().y),
                (r.lo().x, r.hi().y),
                (r.lo().x, r.lo().y),
            ];
            let mut xy = Vec::with_capacity(40);
            for (x, y) in pts {
                xy.extend_from_slice(&(x as i32).to_be_bytes());
                xy.extend_from_slice(&(y as i32).to_be_bytes());
            }
            record(&mut out, XY, DT_I32, &xy);
            record(&mut out, ENDEL, DT_NONE, &[]);
        }
        record(&mut out, ENDSTR, DT_NONE, &[]);
    }
    record(&mut out, ENDLIB, DT_NONE, &[]);
    out
}

/// Error from [`boundary_counts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGdsError(pub String);

impl std::fmt::Display for ParseGdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid GDSII stream: {}", self.0)
    }
}

impl std::error::Error for ParseGdsError {}

/// Minimal GDSII reader: returns `(structure name, boundary count)` per
/// structure, verifying record framing along the way.
///
/// # Errors
///
/// Returns [`ParseGdsError`] on truncated or malformed records.
pub fn boundary_counts(bytes: &[u8]) -> Result<Vec<(String, usize)>, ParseGdsError> {
    let mut cells = Vec::new();
    let mut pos = 0usize;
    let mut current: Option<(String, usize)> = None;
    while pos + 4 <= bytes.len() {
        let len = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]) as usize;
        if len < 4 || pos + len > bytes.len() {
            return Err(ParseGdsError(format!("bad record length {len} at {pos}")));
        }
        let rtype = bytes[pos + 2];
        let payload = &bytes[pos + 4..pos + len];
        match rtype {
            STRNAME => {
                let name = String::from_utf8_lossy(payload)
                    .trim_end_matches('\0')
                    .to_string();
                current = Some((name, 0));
            }
            BOUNDARY => {
                if let Some((_, n)) = current.as_mut() {
                    *n += 1;
                }
            }
            ENDSTR => {
                cells.push(
                    current
                        .take()
                        .ok_or_else(|| ParseGdsError("ENDSTR without STRNAME".into()))?,
                );
            }
            ENDLIB => return Ok(cells),
            _ => {}
        }
        pos += len;
    }
    Err(ParseGdsError("missing ENDLIB".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::generate_layout;
    use crate::{CellFunction, Topology};
    use m3d_tech::{DesignStyle, TechNode};

    fn sample() -> Vec<u8> {
        let node = TechNode::n45();
        let inv = generate_layout(
            &node,
            &Topology::for_function(CellFunction::Inv),
            DesignStyle::Tmi,
            1,
        );
        let dff = generate_layout(
            &node,
            &Topology::for_function(CellFunction::Dff),
            DesignStyle::Tmi,
            1,
        );
        to_gds(&[("INV_X1", &inv.shapes), ("DFF_X1", &dff.shapes)], "tmi45")
    }

    #[test]
    fn round_trip_counts_every_shape() {
        let node = TechNode::n45();
        let inv = generate_layout(
            &node,
            &Topology::for_function(CellFunction::Inv),
            DesignStyle::Tmi,
            1,
        );
        let bytes = to_gds(&[("INV_X1", &inv.shapes)], "lib");
        let cells = boundary_counts(&bytes).expect("valid");
        assert_eq!(cells, vec![("INV_X1".to_string(), inv.shapes.len())]);
    }

    #[test]
    fn multiple_structures_stay_ordered() {
        let cells = boundary_counts(&sample()).expect("valid");
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0, "INV_X1");
        assert_eq!(cells[1].0, "DFF_X1");
        assert!(cells[1].1 > cells[0].1, "DFF has more shapes than INV");
    }

    #[test]
    fn header_magic_is_version_600() {
        let bytes = sample();
        assert_eq!(&bytes[..6], &[0x00, 0x06, 0x00, 0x02, 0x02, 0x58]);
    }

    #[test]
    fn gds_real_encodes_unity_and_sign() {
        // 1.0 = 0.0625 * 16^1 -> exponent 65, mantissa 0.0625*2^56.
        let one = gds_real(1.0);
        assert_eq!(one[0], 0x41);
        assert_eq!(gds_real(-1.0)[0], 0xC1);
        assert_eq!(gds_real(0.0), [0u8; 8]);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut bytes = sample();
        bytes.truncate(bytes.len() - 4);
        assert!(boundary_counts(&bytes).is_err());
    }
}
