use serde::{Deserialize, Serialize};

use m3d_cells::CellLibrary;
use m3d_netlist::{NetDriver, Netlist};
use m3d_sta::NetModel;

use crate::{propagate_activity, PowerReport};

/// Power analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Clock period, ps (frequency = 1/period).
    pub clock_period_ps: f64,
    /// Switching activity at primary inputs (paper default 0.2).
    pub alpha_pi: f64,
    /// Switching activity at sequential cell outputs (paper default 0.1).
    pub alpha_ff: f64,
    /// Representative input slew for internal-energy lookups, ps.
    pub slew_ps: f64,
}

impl PowerConfig {
    /// Paper-default config for a clock period.
    pub fn new(clock_period_ps: f64) -> Self {
        PowerConfig {
            clock_period_ps,
            alpha_pi: 0.2,
            alpha_ff: 0.1,
            slew_ps: 30.0,
        }
    }

    /// Overrides the flop-output activity (the paper's Fig. 11 sweep).
    pub fn with_alpha_ff(mut self, alpha: f64) -> Self {
        self.alpha_ff = alpha;
        self
    }
}

/// Power-analysis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// `models` is shorter than the net count.
    ModelCountMismatch {
        /// Nets in the design.
        nets: usize,
        /// Models supplied.
        models: usize,
    },
    /// A switching-activity knob is outside `[0, 1]` or non-finite.
    InvalidActivity {
        /// Knob name (`alpha_pi` / `alpha_ff`).
        knob: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Clock period non-finite or non-positive.
    InvalidClockPeriod(f64),
}

impl std::fmt::Display for PowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerError::ModelCountMismatch { nets, models } => write!(
                f,
                "power analysis needs one NetModel per net: {nets} nets, {models} models"
            ),
            PowerError::InvalidActivity { knob, value } => {
                write!(f, "{knob} must be in [0, 1], got {value}")
            }
            PowerError::InvalidClockPeriod(t) => {
                write!(f, "clock period must be positive, got {t} ps")
            }
        }
    }
}

impl std::error::Error for PowerError {}

/// Runs statistical power analysis.
///
/// `models` supplies per-net wire capacitance (indexed by `NetId`).
///
/// # Panics
///
/// Panics if `models` is shorter than the net count; see
/// [`try_analyze_power`] for the fallible form used by the supervised
/// flow.
pub fn analyze_power(
    netlist: &Netlist,
    lib: &CellLibrary,
    models: &[NetModel],
    config: &PowerConfig,
) -> PowerReport {
    match try_analyze_power(netlist, lib, models, config) {
        Ok(report) => report,
        Err(e) => panic!("power analysis failed: {e}"),
    }
}

/// Fallible form of [`analyze_power`].
///
/// # Errors
///
/// Returns [`PowerError`] on a model/net count mismatch or out-of-range
/// activity and clock knobs.
pub fn try_analyze_power(
    netlist: &Netlist,
    lib: &CellLibrary,
    models: &[NetModel],
    config: &PowerConfig,
) -> Result<PowerReport, PowerError> {
    if models.len() < netlist.net_count() {
        return Err(PowerError::ModelCountMismatch {
            nets: netlist.net_count(),
            models: models.len(),
        });
    }
    for (knob, value) in [("alpha_pi", config.alpha_pi), ("alpha_ff", config.alpha_ff)] {
        if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
            return Err(PowerError::InvalidActivity { knob, value });
        }
    }
    if !(config.clock_period_ps.is_finite() && config.clock_period_ps > 0.0) {
        return Err(PowerError::InvalidClockPeriod(config.clock_period_ps));
    }
    let act = propagate_activity(netlist, lib, config.alpha_pi, config.alpha_ff);
    let t = config.clock_period_ps;
    let vdd = lib.node().vdd;
    let v2 = vdd * vdd;

    let mut report = PowerReport::default();

    // Net switching power: each transition charges/discharges C; the VDD
    // rail supplies C·V² on rising transitions only, i.e. 0.5·α·C·V² per
    // cycle on average.
    for id in netlist.net_ids() {
        let alpha = act[id.0 as usize].alpha;
        let c_wire = models[id.0 as usize].c_wire;
        let c_pin = netlist.net_pin_cap(id, lib);
        report.wire_cap_pf += c_wire * 1e-3;
        report.pin_cap_pf += c_pin * 1e-3;
        if alpha == 0.0 {
            continue;
        }
        // fJ per cycle / ps per cycle = mW.
        report.wire_mw += 0.5 * alpha * c_wire * v2 / t;
        report.pin_mw += 0.5 * alpha * c_pin * v2 / t;
    }

    // Cell internal power and leakage.
    for id in netlist.inst_ids() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        report.leakage_mw += cell.leakage_mw;
        let n_in = cell.input_count();
        // Energy per output transition from the NLDM, at the output load.
        for &out in &inst.pins[n_in..] {
            let alpha = act[out.0 as usize].alpha;
            if alpha == 0.0 {
                continue;
            }
            let load = models[out.0 as usize].c_wire + netlist.net_pin_cap(out, lib);
            let e_int = cell.energy.lookup(config.slew_ps, load);
            report.cell_mw += alpha * e_int / t;
        }
        // Flop clocking energy: dissipated every cycle regardless of data.
        if let Some(seq) = cell.seq {
            report.cell_mw += seq.clk_energy_fj / t;
        }
    }

    // Primary-input pin power is already counted through their nets; port
    // drivers themselves are external. Undriven nets contribute nothing.
    let _ = NetDriver::None;
    Ok(report)
}

/// Per-instance power: internal + leakage per cell, sorted descending —
/// the "report_power -sort" view used to find hot spots.
pub fn per_instance_power(
    netlist: &Netlist,
    lib: &CellLibrary,
    models: &[NetModel],
    config: &PowerConfig,
) -> Vec<(m3d_netlist::InstId, f64)> {
    let act = propagate_activity(netlist, lib, config.alpha_pi, config.alpha_ff);
    let t = config.clock_period_ps;
    let mut rows: Vec<(m3d_netlist::InstId, f64)> = netlist
        .inst_ids()
        .map(|id| {
            let inst = netlist.inst(id);
            let cell = lib.cell(inst.cell);
            let mut p = cell.leakage_mw;
            let n_in = cell.input_count();
            for &out in &inst.pins[n_in..] {
                let alpha = act[out.0 as usize].alpha;
                if alpha > 0.0 {
                    let load = models[out.0 as usize].c_wire + netlist.net_pin_cap(out, lib);
                    p += alpha * cell.energy.lookup(config.slew_ps, load) / t;
                }
            }
            if let Some(seq) = cell.seq {
                p += seq.clk_energy_fj / t;
            }
            (id, p)
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_cells::CellFunction;
    use m3d_netlist::NetlistBuilder;
    use m3d_tech::{DesignStyle, TechNode};

    fn lib() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    fn toy(lib: &CellLibrary) -> Netlist {
        let mut b = NetlistBuilder::new(lib, "t");
        let x = b.input();
        let y = b.input();
        let z = b.gate(CellFunction::Xor2, &[x, y]);
        let q = b.dff(z);
        b.output(q);
        b.finish()
    }

    #[test]
    fn power_scales_inversely_with_period() {
        let lib = lib();
        let n = toy(&lib);
        let models = vec![
            NetModel {
                c_wire: 5.0,
                r_wire: 0.1,
            };
            n.net_count()
        ];
        let slow = analyze_power(&n, &lib, &models, &PowerConfig::new(2000.0));
        let fast = analyze_power(&n, &lib, &models, &PowerConfig::new(1000.0));
        let dyn_slow = slow.total_mw() - slow.leakage_mw;
        let dyn_fast = fast.total_mw() - fast.leakage_mw;
        assert!((dyn_fast / dyn_slow - 2.0).abs() < 1e-9);
        assert!((slow.leakage_mw - fast.leakage_mw).abs() < 1e-15);
    }

    #[test]
    fn wire_power_scales_with_wire_cap() {
        let lib = lib();
        let n = toy(&lib);
        let thin = vec![
            NetModel {
                c_wire: 1.0,
                r_wire: 0.1,
            };
            n.net_count()
        ];
        let fat = vec![
            NetModel {
                c_wire: 10.0,
                r_wire: 0.1,
            };
            n.net_count()
        ];
        let p_thin = analyze_power(&n, &lib, &thin, &PowerConfig::new(1000.0));
        let p_fat = analyze_power(&n, &lib, &fat, &PowerConfig::new(1000.0));
        assert!((p_fat.wire_mw / p_thin.wire_mw - 10.0).abs() < 1e-9);
        assert!(
            (p_fat.pin_mw - p_thin.pin_mw).abs() < 1e-12,
            "pin power unchanged"
        );
    }

    #[test]
    fn higher_activity_raises_dynamic_power_only() {
        let lib = lib();
        let n = toy(&lib);
        let models = vec![NetModel::default(); n.net_count()];
        let lo = analyze_power(
            &n,
            &lib,
            &models,
            &PowerConfig::new(1000.0).with_alpha_ff(0.1),
        );
        let hi = analyze_power(
            &n,
            &lib,
            &models,
            &PowerConfig::new(1000.0).with_alpha_ff(0.4),
        );
        assert!(hi.total_mw() > lo.total_mw());
        assert_eq!(hi.leakage_mw, lo.leakage_mw);
    }

    #[test]
    fn per_instance_power_sums_to_cell_plus_leakage() {
        let lib = lib();
        let n = toy(&lib);
        let models = vec![NetModel::default(); n.net_count()];
        let cfg = PowerConfig::new(1000.0);
        let total = analyze_power(&n, &lib, &models, &cfg);
        let rows = per_instance_power(&n, &lib, &models, &cfg);
        let sum: f64 = rows.iter().map(|(_, p)| p).sum();
        assert!(
            (sum - (total.cell_mw + total.leakage_mw)).abs() < 1e-9,
            "per-instance {} vs aggregate {}",
            sum,
            total.cell_mw + total.leakage_mw
        );
        // Sorted descending.
        for pair in rows.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn clock_dominates_an_idle_design() {
        // With zero input activity, only clocking and leakage remain.
        let lib = lib();
        let n = toy(&lib);
        let models = vec![NetModel::default(); n.net_count()];
        let mut cfg = PowerConfig::new(1000.0);
        cfg.alpha_pi = 0.0;
        cfg.alpha_ff = 0.0;
        let p = analyze_power(&n, &lib, &models, &cfg);
        assert!(p.cell_mw > 0.0, "flop clocking energy remains");
        assert!(p.pin_mw > 0.0, "clock pin caps still toggle");
    }
}
