//! Statistical power analysis for the `monolith3d` flow.
//!
//! Implements the paper's sign-off power methodology (Section 2, S10):
//! switching activity factors are assigned to the primary inputs (0.2)
//! and sequential cell outputs (0.1), propagated through the
//! combinational logic using exact per-function Boolean-difference
//! probabilities, and converted into
//!
//! * **cell power** — internal energy per output transition from the
//!   library NLDM tables, plus per-cycle clocking energy in flops,
//! * **net power** — `0.5·α·C·V²·f`, split into its **wire** and **pin**
//!   components (the decomposition behind the paper's Table 16 and the
//!   DES-vs-LDPC analysis of Section 4.3),
//! * **leakage**.
//!
//! # Example
//!
//! ```
//! use m3d_cells::{CellFunction, CellLibrary};
//! use m3d_netlist::NetlistBuilder;
//! use m3d_power::{analyze_power, PowerConfig};
//! use m3d_sta::NetModel;
//! use m3d_tech::{DesignStyle, TechNode};
//!
//! let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
//! let mut b = NetlistBuilder::new(&lib, "t");
//! let x = b.input();
//! let y = b.gate(CellFunction::Inv, &[x]);
//! let q = b.dff(y);
//! b.output(q);
//! let n = b.finish();
//! let models = vec![NetModel::default(); n.net_count()];
//! let p = analyze_power(&n, &lib, &models, &PowerConfig::new(1000.0));
//! assert!(p.total_mw() > 0.0);
//! ```

mod activity;
mod analysis;
mod report;

pub use activity::{propagate_activity, Activity};
pub use analysis::{analyze_power, per_instance_power, try_analyze_power, PowerConfig, PowerError};
pub use report::PowerReport;
