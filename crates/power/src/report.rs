use serde::{Deserialize, Serialize};

/// Power analysis result, mW, in the decomposition the paper's tables
/// report: `total = cell + net + leakage`, with `net = wire + pin`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerReport {
    /// Cell-internal dynamic power (switching inside cell boundaries,
    /// including flop clocking energy), mW.
    pub cell_mw: f64,
    /// Wire component of net switching power, mW.
    pub wire_mw: f64,
    /// Pin (cell input capacitance) component of net switching power, mW.
    pub pin_mw: f64,
    /// Leakage, mW.
    pub leakage_mw: f64,
    /// Total wire capacitance, pF (Table 16 reports this too).
    pub wire_cap_pf: f64,
    /// Total pin capacitance, pF.
    pub pin_cap_pf: f64,
}

impl PowerReport {
    /// Net switching power (wire + pin), mW.
    pub fn net_mw(&self) -> f64 {
        self.wire_mw + self.pin_mw
    }

    /// Total power, mW.
    pub fn total_mw(&self) -> f64 {
        self.cell_mw + self.net_mw() + self.leakage_mw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = PowerReport {
            cell_mw: 3.0,
            wire_mw: 2.0,
            pin_mw: 1.0,
            leakage_mw: 0.5,
            wire_cap_pf: 10.0,
            pin_cap_pf: 5.0,
        };
        assert_eq!(r.net_mw(), 3.0);
        assert_eq!(r.total_mw(), 6.5);
    }
}
