use serde::{Deserialize, Serialize};

use m3d_cells::CellLibrary;
use m3d_netlist::{levelize, NetDriver, Netlist};

/// Per-net signal statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Static probability of the signal being 1.
    pub p_one: f64,
    /// Expected transitions per clock cycle.
    pub alpha: f64,
}

impl Default for Activity {
    fn default() -> Self {
        Activity {
            p_one: 0.5,
            alpha: 0.0,
        }
    }
}

/// Propagates static probabilities and transition densities from the
/// primary inputs (`alpha_pi`) and flop outputs (`alpha_ff`) through the
/// combinational network.
///
/// For each gate output the propagation uses the exact Boolean difference
/// under an input-independence assumption:
/// `alpha_out = sum_i alpha_i * P(f flips when input i flips)`, evaluated
/// by enumerating the (<= 2^4) input combinations of the library
/// functions. The clock net carries `alpha = 2` (both edges every cycle).
pub fn propagate_activity(
    netlist: &Netlist,
    lib: &CellLibrary,
    alpha_pi: f64,
    alpha_ff: f64,
) -> Vec<Activity> {
    let mut act = vec![Activity::default(); netlist.net_count()];
    for &pi in &netlist.primary_inputs {
        act[pi.0 as usize] = Activity {
            p_one: 0.5,
            alpha: alpha_pi,
        };
    }
    if let Some(clk) = netlist.clock {
        act[clk.0 as usize] = Activity {
            p_one: 0.5,
            alpha: 2.0,
        };
    }

    let (_, order) = levelize(netlist, lib).expect("combinational cycle in design");
    for inst_id in order {
        let inst = netlist.inst(inst_id);
        let cell = lib.cell(inst.cell);
        let function = cell.function;
        let n_in = cell.input_count();
        if function.is_sequential() {
            let q = inst.pins[n_in];
            act[q.0 as usize] = Activity {
                p_one: 0.5,
                alpha: alpha_ff,
            };
            continue;
        }
        // Gather input stats (an undriven input keeps the default 0.5/0).
        let inputs: Vec<Activity> = (0..n_in).map(|p| act[inst.pins[p].0 as usize]).collect();
        let combos = 1usize << n_in;
        let n_out = function.output_count();
        let mut p_one = vec![0.0f64; n_out];
        let mut alpha = vec![0.0f64; n_out];
        // P(out = 1).
        for mask in 0..combos {
            let bits: Vec<bool> = (0..n_in).map(|i| mask & (1 << i) != 0).collect();
            let prob: f64 = bits
                .iter()
                .zip(&inputs)
                .map(|(&b, a)| if b { a.p_one } else { 1.0 - a.p_one })
                .product();
            if prob == 0.0 {
                continue;
            }
            let out = function.eval(&bits);
            for (o, &v) in out.iter().enumerate() {
                if v {
                    p_one[o] += prob;
                }
            }
        }
        // Boolean difference per input.
        for (i, input_stat) in inputs.iter().enumerate() {
            if input_stat.alpha == 0.0 {
                continue;
            }
            // P(f(x_i=0) != f(x_i=1)) over the other inputs.
            let mut diff = vec![0.0f64; n_out];
            for mask in 0..combos {
                if mask & (1 << i) != 0 {
                    continue; // enumerate with x_i = 0; flip below
                }
                let bits0: Vec<bool> = (0..n_in).map(|k| mask & (1 << k) != 0).collect();
                let mut bits1 = bits0.clone();
                bits1[i] = true;
                let prob: f64 = bits0
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != i)
                    .map(|(k, &b)| {
                        if b {
                            inputs[k].p_one
                        } else {
                            1.0 - inputs[k].p_one
                        }
                    })
                    .product();
                if prob == 0.0 {
                    continue;
                }
                let f0 = function.eval(&bits0);
                let f1 = function.eval(&bits1);
                for o in 0..n_out {
                    if f0[o] != f1[o] {
                        diff[o] += prob;
                    }
                }
            }
            for o in 0..n_out {
                alpha[o] += input_stat.alpha * diff[o];
            }
        }
        for (o, &out_net) in inst.pins[n_in..].iter().enumerate() {
            let idx = out_net.0 as usize;
            // A net driven by this output (keep the larger alpha if the
            // net somehow already carries one -- cannot happen for
            // well-formed netlists).
            act[idx] = Activity {
                p_one: p_one[o],
                // Cap: a signal cannot flip more often than its inputs
                // combined; in practice glitching is filtered by inertial
                // delays, cap at 2 transitions per cycle.
                alpha: alpha[o].min(2.0),
            };
        }
    }
    // Undriven nets keep defaults.
    for id in netlist.net_ids() {
        if matches!(netlist.net(id).driver, NetDriver::None) {
            act[id.0 as usize].alpha = 0.0;
        }
    }
    act
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_cells::CellFunction;
    use m3d_netlist::NetlistBuilder;
    use m3d_tech::{DesignStyle, TechNode};

    fn lib() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    #[test]
    fn inverter_preserves_activity() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let y = b.gate(CellFunction::Inv, &[x]);
        let n = b.finish();
        let act = propagate_activity(&n, &lib, 0.2, 0.1);
        assert!((act[y.0 as usize].alpha - 0.2).abs() < 1e-12);
        assert!((act[y.0 as usize].p_one - 0.5).abs() < 1e-12);
    }

    #[test]
    fn and_gate_attenuates_activity() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let y = b.input();
        let z = b.gate(CellFunction::And2, &[x, y]);
        let n = b.finish();
        let act = propagate_activity(&n, &lib, 0.2, 0.1);
        let a = act[z.0 as usize];
        // P(1) = 0.25; alpha = 0.2*0.5 + 0.2*0.5 = 0.2... per Boolean
        // difference: flipping x matters only when y=1 (p=0.5).
        assert!((a.p_one - 0.25).abs() < 1e-12);
        assert!((a.alpha - 0.2).abs() < 1e-12);
    }

    #[test]
    fn xor_gate_propagates_fully() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let y = b.input();
        let z = b.gate(CellFunction::Xor2, &[x, y]);
        let n = b.finish();
        let act = propagate_activity(&n, &lib, 0.2, 0.1);
        // XOR flips whenever any input flips: alpha = 0.4.
        assert!((act[z.0 as usize].alpha - 0.4).abs() < 1e-12);
    }

    #[test]
    fn flop_outputs_get_ff_alpha_and_clock_gets_two() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let q = b.dff(x);
        let n = b.finish();
        let act = propagate_activity(&n, &lib, 0.2, 0.1);
        assert!((act[q.0 as usize].alpha - 0.1).abs() < 1e-12);
        let clk = n.clock.expect("clock");
        assert!((act[clk.0 as usize].alpha - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deep_logic_activity_stays_bounded() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let ins = b.inputs(16);
        let out = b.xor_tree(&ins);
        let n = b.finish();
        let act = propagate_activity(&n, &lib, 0.3, 0.1);
        let a = act[out.0 as usize].alpha;
        assert!(a <= 2.0 + 1e-12, "alpha {a} exceeds cap");
        assert!(a > 0.3, "xor tree should amplify activity");
    }
}
