use serde::{Deserialize, Serialize};

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosKind {
    /// N-channel device (top tier in T-MI cells).
    Nmos,
    /// P-channel device (bottom tier in T-MI cells).
    Pmos,
}

/// Semi-empirical alpha-power-law MOSFET parameters (Sakurai-Newton).
///
/// The model captures velocity saturation via the `alpha` exponent and is
/// accurate enough for gate-level delay/power characterization, which is
/// all the T-MI study needs from its transistor model.
///
/// Current units are mA; `beta` has units mA / V^alpha per µm of width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Polarity.
    pub kind: MosKind,
    /// Threshold voltage magnitude, V.
    pub vth: f64,
    /// Transconductance coefficient, mA / V^alpha per µm width.
    pub beta: f64,
    /// Velocity-saturation exponent (2.0 = classic square law; modern
    /// short-channel devices sit near 1.2-1.4).
    pub alpha: f64,
    /// Saturation-voltage coefficient: `Vdsat = kv * (Vgs - Vth)^(alpha/2)`.
    pub kv: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Device width, µm.
    pub width: f64,
    /// Gate capacitance, fF per µm width (split evenly between G-S and G-D).
    pub c_gate_per_um: f64,
    /// Drain/source junction capacitance, fF per µm width.
    pub c_junction_per_um: f64,
    /// Off-state (subthreshold) leakage at Vgs = 0, nA per µm width.
    pub i_off_na_per_um: f64,
}

impl MosParams {
    /// A 45 nm-class NMOS of the given width (µm), calibrated so that
    /// characterized INV_X1 delays land in the range the paper's Table 2
    /// reports.
    pub fn nmos45(width: f64) -> Self {
        MosParams {
            kind: MosKind::Nmos,
            vth: 0.47,
            beta: 0.26,
            alpha: 1.32,
            kv: 0.85,
            lambda: 0.10,
            width,
            // Calibrated so INV_X1 input cap lands at the 0.463 fF the
            // paper's Table 11 reports for the 45 nm library.
            c_gate_per_um: 0.44,
            c_junction_per_um: 0.13,
            i_off_na_per_um: 1.2,
        }
    }

    /// A 45 nm-class PMOS (hole mobility ~ half the electron mobility; the
    /// Nangate library compensates by drawing PMOS wider, see Section 3.1).
    pub fn pmos45(width: f64) -> Self {
        MosParams {
            kind: MosKind::Pmos,
            vth: 0.43,
            beta: 0.13,
            alpha: 1.35,
            kv: 0.90,
            lambda: 0.11,
            width,
            c_gate_per_um: 0.44,
            c_junction_per_um: 0.13,
            i_off_na_per_um: 0.6,
        }
    }

    /// A 7 nm-class multi-gate NMOS (PTM-MG-flavoured): lower threshold
    /// and supply, much higher drive per µm, far smaller capacitance.
    /// Follows the paper's Table 6/S3 projection of the device trends.
    pub fn nmos7(width: f64) -> Self {
        MosParams {
            kind: MosKind::Nmos,
            vth: 0.25,
            beta: 0.48,
            alpha: 1.15,
            kv: 0.75,
            lambda: 0.06,
            width,
            c_gate_per_um: 0.44 * 0.55,
            c_junction_per_um: 0.13 * 0.45,
            i_off_na_per_um: 1.0,
        }
    }

    /// A 7 nm-class multi-gate PMOS. Advanced channel engineering closes
    /// most of the hole-mobility gap at sub-32 nm nodes (paper footnote 3),
    /// so the P/N drive ratio is near one.
    pub fn pmos7(width: f64) -> Self {
        MosParams {
            kind: MosKind::Pmos,
            vth: 0.24,
            beta: 0.42,
            alpha: 1.18,
            kv: 0.78,
            lambda: 0.07,
            width,
            c_gate_per_um: 0.44 * 0.55,
            c_junction_per_um: 0.13 * 0.45,
            i_off_na_per_um: 0.8,
        }
    }

    /// Total gate capacitance, fF.
    pub fn c_gate(&self) -> f64 {
        self.c_gate_per_um * self.width
    }

    /// Total junction capacitance, fF.
    pub fn c_junction(&self) -> f64 {
        self.c_junction_per_um * self.width
    }

    /// Drain current into the drain terminal, mA, for NMOS-convention
    /// terminal voltages (`vgs`, `vds` both referenced to the source).
    ///
    /// Symmetric in source/drain: callers must pass `vds >= 0` (swap the
    /// terminals otherwise); this is handled by the stamping code.
    pub fn id_nchan(&self, vgs: f64, vds: f64) -> f64 {
        debug_assert!(vds >= -1e-12);
        let vgt = vgs - self.vth;
        let b = self.beta * self.width;
        if vgt <= 0.0 {
            // Subthreshold: exponential roll-off, floor at i_off.
            let i_off = self.i_off_na_per_um * self.width * 1e-6; // nA -> mA
            let n_vt = 0.035; // n * kT/q at ~85C, V
            return i_off * (vgt / n_vt).exp().min(1.0) * sat_frac(vds);
        }
        let vdsat = self.kv * vgt.powf(self.alpha / 2.0);
        let idsat = b * vgt.powf(self.alpha);
        let clm = 1.0 + self.lambda * vds;
        if vds >= vdsat {
            idsat * clm
        } else {
            let x = vds / vdsat;
            idsat * x * (2.0 - x) * clm
        }
    }

    /// Drain current with polarity handled: positive current flows
    /// drain -> source for NMOS and source -> drain for PMOS.
    /// `vg`, `vd`, `vs` are absolute node voltages.
    pub fn id(&self, vg: f64, vd: f64, vs: f64) -> f64 {
        match self.kind {
            MosKind::Nmos => {
                if vd >= vs {
                    self.id_nchan(vg - vs, vd - vs)
                } else {
                    // Source/drain swap.
                    -self.id_nchan(vg - vd, vs - vd)
                }
            }
            MosKind::Pmos => {
                // Mirror through 0: a PMOS is an NMOS in the negated domain.
                if vd <= vs {
                    -self.id_nchan(vs - vg, vs - vd)
                } else {
                    self.id_nchan(vd - vg, vd - vs)
                }
            }
        }
    }

    /// Numerical partial derivatives `(d Id/d vg, d Id/d vd, d Id/d vs)`
    /// used by the Newton linearization.
    pub fn id_derivs(&self, vg: f64, vd: f64, vs: f64) -> (f64, f64, f64) {
        const H: f64 = 1e-5;
        let base = self.id(vg, vd, vs);
        (
            (self.id(vg + H, vd, vs) - base) / H,
            (self.id(vg, vd + H, vs) - base) / H,
            (self.id(vg, vd, vs + H) - base) / H,
        )
    }
}

/// Smooth 0->1 factor so subthreshold current still depends on Vds.
fn sat_frac(vds: f64) -> f64 {
    1.0 - (-vds / 0.026).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmos_off_below_threshold() {
        let m = MosParams::nmos45(0.415);
        let on = m.id_nchan(1.1, 1.1);
        let off = m.id_nchan(0.0, 1.1);
        assert!(on > 0.05, "on current {on} mA");
        assert!(off < 1e-5, "off current {off} mA");
        assert!(on / off.max(1e-30) > 1e4);
    }

    #[test]
    fn current_monotonic_in_vgs() {
        let m = MosParams::nmos45(1.0);
        let mut prev = -1.0;
        for i in 0..20 {
            let vgs = i as f64 * 0.06;
            let id = m.id_nchan(vgs, 1.1);
            assert!(id >= prev, "non-monotonic at vgs = {vgs}");
            prev = id;
        }
    }

    #[test]
    fn current_monotonic_in_vds_and_saturates() {
        let m = MosParams::nmos45(1.0);
        let lin = m.id_nchan(1.1, 0.1);
        let sat = m.id_nchan(1.1, 1.1);
        assert!(sat > lin);
        // Beyond vdsat, only lambda-slope growth.
        let deep = m.id_nchan(1.1, 2.0);
        assert!(deep < sat * 1.2);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = MosParams::pmos45(0.63);
        // Gate low, source at VDD, drain at 0: device on, current flows
        // source->drain, i.e. *into* the drain from outside is negative.
        let id_on = p.id(0.0, 0.0, 1.1);
        assert!(id_on < -0.05, "PMOS on current {id_on}");
        // Gate high: off.
        let id_off = p.id(1.1, 0.0, 1.1);
        assert!(id_off.abs() < 1e-4);
    }

    #[test]
    fn source_drain_swap_is_antisymmetric() {
        let m = MosParams::nmos45(1.0);
        let a = m.id(1.1, 0.8, 0.2);
        let b = m.id(1.1, 0.2, 0.8);
        assert!((a + b).abs() < 1e-9, "a = {a}, b = {b}");
    }

    #[test]
    fn derivatives_have_correct_signs() {
        let m = MosParams::nmos45(1.0);
        let (gm, gd, gs) = m.id_derivs(0.9, 0.6, 0.0);
        assert!(gm > 0.0);
        assert!(gd > 0.0);
        assert!(gs < 0.0);
    }

    #[test]
    fn n7_devices_follow_the_itrs_trends() {
        // Higher drive per um at lower VDD, near-unity P/N ratio, lower
        // caps: the paper's Table 10 story.
        let n45 = MosParams::nmos45(1.0);
        let n7 = MosParams::nmos7(1.0);
        let i45 = n45.id_nchan(1.1, 1.1);
        let i7 = n7.id_nchan(0.7, 0.7);
        assert!(i7 > i45, "7 nm drive {i7} should beat 45 nm {i45} per um");
        let p7 = MosParams::pmos7(1.0);
        let ip7 = -p7.id(0.0, 0.0, 0.7);
        assert!(
            (0.7..1.1).contains(&(ip7 / i7)),
            "P/N ratio {} should be near one at 7 nm",
            ip7 / i7
        );
        assert!(n7.c_gate() < n45.c_gate());
    }

    #[test]
    fn pmos_weaker_than_nmos_per_um() {
        // Hole mobility deficit: same width -> roughly half the current.
        let n = MosParams::nmos45(1.0);
        let p = MosParams::pmos45(1.0);
        let idn = n.id_nchan(1.1, 1.1);
        let idp = -p.id(0.0, 0.0, 1.1);
        assert!(idp < idn * 0.7 && idp > idn * 0.3, "idn {idn} idp {idp}");
    }
}
