use crate::circuit::Circuit;
use crate::solver::solve_dense;
use crate::{ConvergenceError, Node};

/// Transient simulation engine: trapezoidal integration with per-step
/// Newton-Raphson linearization of the MOSFETs.
///
/// # Example
///
/// ```
/// use m3d_spice::{Circuit, MosParams, Transient, Waveform};
///
/// // A CMOS inverter driving 2 fF.
/// let mut c = Circuit::new();
/// let vdd = c.node("vdd");
/// let inp = c.node("in");
/// let out = c.node("out");
/// c.vsource(vdd, Waveform::Dc(1.1));
/// c.vsource(inp, Waveform::step(1.1, 20.0, 10.0));
/// c.mosfet(out, inp, Circuit::GND, MosParams::nmos45(0.415));
/// c.mosfet(out, inp, vdd, MosParams::pmos45(0.630));
/// c.capacitor(out, Circuit::GND, 2.0);
/// let r = Transient::new(&c).run(200.0);
/// // Input rise -> output falls below VDD/2 some time after the input
/// // crosses VDD/2.
/// let t_in = r.cross_time(inp, 0.55, true).expect("input crosses");
/// let t_out = r.cross_time(out, 0.55, false).expect("output falls");
/// assert!(t_out > t_in);
/// assert!(t_out - t_in < 60.0, "inverter delay {} ps", t_out - t_in);
/// ```
/// Companion-model integration method used for one solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Integ {
    /// First-order, unconditionally damped; used for DC settling.
    BackwardEuler,
    /// Second-order accurate; used for the measured transient.
    Trapezoidal,
}

impl Integ {
    fn geq(self, c: f64, dt: f64) -> f64 {
        match self {
            Integ::BackwardEuler => c / dt,
            Integ::Trapezoidal => 2.0 * c / dt,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Transient<'c> {
    circuit: &'c Circuit,
    dt: Option<f64>,
    max_newton: usize,
}

/// Simulated node waveforms plus per-source energy bookkeeping.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Time points, ps.
    pub time: Vec<f64>,
    /// `voltages[node][step]`, V.
    pub voltages: Vec<Vec<f64>>,
    /// Energy delivered by each voltage source over the run, fJ
    /// (positive = source supplied energy to the circuit).
    pub source_energy: Vec<f64>,
}

impl<'c> Transient<'c> {
    /// Creates an engine for `circuit` with an automatic timestep
    /// (1/2000 of the run length, at most 0.5 ps).
    pub fn new(circuit: &'c Circuit) -> Self {
        Transient {
            circuit,
            dt: None,
            max_newton: 60,
        }
    }

    /// Overrides the timestep, ps.
    pub fn with_dt(mut self, dt: f64) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive");
        self.dt = Some(dt);
        self
    }

    /// Runs until `t_end` ps.
    ///
    /// # Panics
    ///
    /// Panics on Newton non-convergence; use [`Transient::try_run`] to
    /// handle the error.
    pub fn run(&self, t_end: f64) -> TransientResult {
        self.try_run(t_end).expect("transient convergence")
    }

    /// Runs until `t_end` ps.
    ///
    /// # Errors
    ///
    /// Returns [`ConvergenceError`] when Newton iteration fails at some
    /// timestep (usually an unphysical circuit: floating gates, no DC path).
    pub fn try_run(&self, t_end: f64) -> Result<TransientResult, ConvergenceError> {
        let ckt = self.circuit;
        let n_nodes = ckt.node_count();
        let nv = ckt.vsources.len();
        // Unknowns: node voltages 1..n_nodes (ground eliminated) then
        // source branch currents.
        let dim = (n_nodes - 1) + nv;
        let dt = self.dt.unwrap_or_else(|| (t_end / 2000.0).min(0.5));
        let steps = (t_end / dt).ceil() as usize;

        let mut v = vec![0.0; n_nodes]; // current node voltages
        let mut cap_current: Vec<f64> = vec![0.0; ckt.capacitors.len()];
        // Operating point at t = 0 via pseudo-transient settling: hold the
        // sources at their t = 0 values and integrate until quiescent. The
        // capacitor companion conductances keep the Newton iteration
        // well-conditioned even deep in MOSFET saturation, where a plain
        // DC Newton (open capacitors, tiny gds) can limit-cycle.
        {
            let dt_settle = 2.0;
            for _ in 0..500 {
                let prev = v.clone();
                self.solve_point(
                    &mut v,
                    Some((dt_settle, &mut cap_current)),
                    Integ::BackwardEuler,
                    0.0,
                    dim,
                    n_nodes,
                )?;
                let moved = v
                    .iter()
                    .zip(&prev)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                if moved < 1e-9 {
                    break;
                }
            }
            cap_current.iter_mut().for_each(|i| *i = 0.0);
        }
        let mut time = Vec::with_capacity(steps + 1);
        let mut volts: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); n_nodes];
        let mut energy = vec![0.0; nv];
        let mut src_i_prev = vec![0.0; nv];

        let record = |t: f64, v: &[f64], time: &mut Vec<f64>, volts: &mut Vec<Vec<f64>>| {
            time.push(t);
            for (node, wave) in volts.iter_mut().enumerate() {
                wave.push(v[node]);
            }
        };
        record(0.0, &v, &mut time, &mut volts);

        for step in 1..=steps {
            let t = step as f64 * dt;
            let src_i = self.solve_point(
                &mut v,
                Some((dt, &mut cap_current)),
                Integ::Trapezoidal,
                t,
                dim,
                n_nodes,
            )?;
            // Trapezoidal energy integration per source: E += v * i * dt.
            for (k, vs) in ckt.vsources.iter().enumerate() {
                let vv = vs.waveform.at(t);
                // Source current convention: src_i is the branch current
                // flowing out of the + terminal into the circuit.
                // The MNA branch current is oriented into the source from
                // the circuit, so delivered power is its negation.
                let p_now = -vv * src_i[k];
                let p_prev = -vs.waveform.at(t - dt) * src_i_prev[k];
                energy[k] += 0.5 * (p_now + p_prev) * dt;
                src_i_prev[k] = src_i[k];
            }
            record(t, &v, &mut time, &mut volts);
        }
        Ok(TransientResult {
            time,
            voltages: volts,
            source_energy: energy,
        })
    }

    /// Solves one operating point. When `trans` is `Some((dt, cap_i))`, the
    /// capacitors get companion models for the chosen integration `method`
    /// and `cap_i` is updated; when `None`, capacitors are open (pure DC
    /// solve). Returns the voltage source branch currents.
    ///
    /// Backward Euler has no companion-current memory, so it damps straight
    /// to the DC point during the settling phase; trapezoidal is
    /// second-order accurate and is used for the measured transient.
    fn solve_point(
        &self,
        v: &mut [f64],
        trans: Option<(f64, &mut Vec<f64>)>,
        method: Integ,
        t: f64,
        dim: usize,
        n_nodes: usize,
    ) -> Result<Vec<f64>, ConvergenceError> {
        let ckt = self.circuit;
        let nv = ckt.vsources.len();
        let (dt, cap_prev): (Option<f64>, Option<&Vec<f64>>) = match &trans {
            Some((dt, ci)) => (Some(*dt), Some(&**ci)),
            None => (None, None),
        };
        let v_prev: Vec<f64> = v.to_vec();
        let mut src_i = vec![0.0; nv];
        let gmin = 1e-9;

        let mut converged = false;
        for _iter in 0..self.max_newton {
            let mut a = vec![0.0; dim * dim];
            let mut b = vec![0.0; dim];
            // Map node -> unknown index (ground = none).
            let idx = |node: Node| -> Option<usize> {
                if node.index() == 0 {
                    None
                } else {
                    Some(node.index() - 1)
                }
            };
            let stamp_g = |a: &mut [f64], p: Option<usize>, q: Option<usize>, g: f64| {
                if let Some(i) = p {
                    a[i * dim + i] += g;
                    if let Some(j) = q {
                        a[i * dim + j] -= g;
                    }
                }
                if let Some(j) = q {
                    a[j * dim + j] += g;
                    if let Some(i) = p {
                        a[j * dim + i] -= g;
                    }
                }
            };
            // gmin to ground on every node.
            for i in 0..(n_nodes - 1) {
                a[i * dim + i] += gmin;
            }
            for r in &ckt.resistors {
                stamp_g(&mut a, idx(r.a), idx(r.b), 1.0 / r.r);
            }
            if let (Some(dt), Some(cap_i)) = (dt, cap_prev) {
                for (k, c) in ckt.capacitors.iter().enumerate() {
                    let geq = method.geq(c.c, dt);
                    let v_ab_prev = v_prev[c.a.index()] - v_prev[c.b.index()];
                    let ieq = match method {
                        Integ::BackwardEuler => geq * v_ab_prev,
                        Integ::Trapezoidal => geq * v_ab_prev + cap_i[k],
                    };
                    stamp_g(&mut a, idx(c.a), idx(c.b), geq);
                    if let Some(i) = idx(c.a) {
                        b[i] += ieq;
                    }
                    if let Some(j) = idx(c.b) {
                        b[j] -= ieq;
                    }
                }
            }
            for m in &ckt.mosfets {
                let (vg, vd, vs) = (v[m.g.index()], v[m.d.index()], v[m.s.index()]);
                let id0 = m.params.id(vg, vd, vs);
                let (gm, gd, gs) = m.params.id_derivs(vg, vd, vs);
                // Current Id leaves node d and enters node s.
                let ieq = id0 - gm * vg - gd * vd - gs * vs;
                let (di, gi, si) = (idx(m.d), idx(m.g), idx(m.s));
                if let Some(i) = di {
                    if let Some(j) = gi {
                        a[i * dim + j] += gm;
                    }
                    a[i * dim + i] += gd;
                    if let Some(j) = si {
                        a[i * dim + j] += gs;
                    }
                    b[i] -= ieq;
                }
                if let Some(i) = si {
                    if let Some(j) = gi {
                        a[i * dim + j] -= gm;
                    }
                    if let Some(j) = di {
                        a[i * dim + j] -= gd;
                    }
                    a[i * dim + i] -= gs;
                    b[i] += ieq;
                }
            }
            for (k, vs) in ckt.vsources.iter().enumerate() {
                let row = (n_nodes - 1) + k;
                let vv = vs.waveform.at(t);
                if let Some(i) = idx(vs.pos) {
                    a[i * dim + row] += 1.0;
                    a[row * dim + i] += 1.0;
                }
                b[row] = vv;
            }

            let x = match solve_dense(a, b) {
                Some(x) => x,
                None => {
                    return Err(ConvergenceError {
                        at_time_ps: t as u64,
                    })
                }
            };
            // Damped update with convergence check.
            let mut max_delta: f64 = 0.0;
            for node in 1..n_nodes {
                let new_v = x[node - 1];
                let delta = new_v - v[node];
                max_delta = max_delta.max(delta.abs());
                let limited = delta.clamp(-0.6, 0.6);
                v[node] += limited;
            }
            for k in 0..nv {
                src_i[k] = x[(n_nodes - 1) + k];
            }
            if max_delta < 1e-7 {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(ConvergenceError {
                at_time_ps: t as u64,
            });
        }
        // Update capacitor branch currents for the next companion step.
        if let Some((dt, cap_i)) = trans {
            for (k, c) in self.circuit.capacitors.iter().enumerate() {
                let geq = method.geq(c.c, dt);
                let v_ab = v[c.a.index()] - v[c.b.index()];
                let v_ab_prev = v_prev[c.a.index()] - v_prev[c.b.index()];
                cap_i[k] = match method {
                    Integ::BackwardEuler => geq * (v_ab - v_ab_prev),
                    Integ::Trapezoidal => geq * (v_ab - v_ab_prev) - cap_i[k],
                };
            }
        }
        Ok(src_i)
    }
}

/// Sweeps the DC transfer curve of a circuit: for each value of the
/// swept source (by index into the circuit's source list), settles the
/// circuit and records the observed node voltage.
///
/// Used to validate gate thresholds (e.g. an inverter's VTC) against the
/// device models.
///
/// # Panics
///
/// Panics if `source_idx` is out of range or settling fails.
pub fn dc_transfer(
    circuit: &Circuit,
    source_idx: usize,
    sweep: &[f64],
    observe: Node,
) -> Vec<(f64, f64)> {
    assert!(
        source_idx < circuit.vsources.len(),
        "source index out of range"
    );
    sweep
        .iter()
        .map(|&v| {
            let mut ckt = circuit.clone();
            ckt.vsources[source_idx].waveform = crate::Waveform::Dc(v);
            let r = Transient::new(&ckt).with_dt(2.0).run(120.0);
            (v, r.final_voltage(observe))
        })
        .collect()
}

impl TransientResult {
    /// Voltage of `node` at sample `step`.
    pub fn voltage(&self, node: Node, step: usize) -> f64 {
        self.voltages[node.index()][step]
    }

    /// Final (settled) voltage of `node`.
    pub fn final_voltage(&self, node: Node) -> f64 {
        *self.voltages[node.index()]
            .last()
            .expect("non-empty waveform")
    }

    /// First time `node` crosses `threshold` in the given direction
    /// (`rising = true` for upward crossings), linearly interpolated.
    pub fn cross_time(&self, node: Node, threshold: f64, rising: bool) -> Option<f64> {
        let w = &self.voltages[node.index()];
        for i in 1..w.len() {
            let (v0, v1) = (w[i - 1], w[i]);
            let crossed = if rising {
                v0 < threshold && v1 >= threshold
            } else {
                v0 > threshold && v1 <= threshold
            };
            if crossed {
                let f = (threshold - v0) / (v1 - v0);
                return Some(self.time[i - 1] + f * (self.time[i] - self.time[i - 1]));
            }
        }
        None
    }

    /// Transition time between the `lo_frac` and `hi_frac` fractions of
    /// `vdd` (e.g. 0.3/0.7), extrapolated to the full swing the way
    /// Liberty slews are reported: `(t_hi - t_lo) / (hi - lo)`.
    pub fn slew(
        &self,
        node: Node,
        vdd: f64,
        lo_frac: f64,
        hi_frac: f64,
        rising: bool,
    ) -> Option<f64> {
        let (first, second) = if rising {
            (lo_frac, hi_frac)
        } else {
            (hi_frac, lo_frac)
        };
        let t0 = self.cross_time(node, first * vdd, rising)?;
        let t1 = self.cross_time(node, second * vdd, rising)?;
        Some((t1 - t0).abs() / (hi_frac - lo_frac))
    }

    /// Total energy delivered by all sources, fJ.
    pub fn total_source_energy(&self) -> f64 {
        self.source_energy.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MosParams, Waveform};

    #[test]
    fn rc_time_constant_matches_theory() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(inp, Waveform::step(1.0, 5.0, 0.01));
        c.resistor(inp, out, 2.0); // 2 kOhm
        c.capacitor(out, Circuit::GND, 3.0); // 3 fF -> tau = 6 ps
        let r = Transient::new(&c).with_dt(0.02).run(60.0);
        let t63 = r
            .cross_time(out, 1.0 - (-1.0f64).exp(), true)
            .expect("charges");
        assert!((t63 - 5.0 - 6.0).abs() < 0.15, "tau measured {}", t63 - 5.0);
    }

    #[test]
    fn capacitive_divider_charge_conservation() {
        // Two series caps from a stepped source: V_mid = C1/(C1+C2) * V.
        let mut c = Circuit::new();
        let inp = c.node("in");
        let mid = c.node("mid");
        c.vsource(inp, Waveform::step(1.0, 1.0, 0.5));
        c.capacitor(inp, mid, 2.0);
        c.capacitor(mid, Circuit::GND, 2.0);
        // Large bleed resistor so DC is well-defined.
        c.resistor(mid, Circuit::GND, 1e6);
        let r = Transient::new(&c).with_dt(0.01).run(10.0);
        let v_mid = r.voltage(mid, (2.0 / 0.01) as usize);
        assert!((v_mid - 0.5).abs() < 0.02, "v_mid = {v_mid}");
    }

    #[test]
    fn inverter_dc_levels_are_rail_to_rail() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Waveform::Dc(1.1));
        c.vsource(inp, Waveform::Dc(0.0));
        c.mosfet(out, inp, Circuit::GND, MosParams::nmos45(0.415));
        c.mosfet(out, inp, vdd, MosParams::pmos45(0.630));
        c.capacitor(out, Circuit::GND, 1.0);
        let r = Transient::new(&c).with_dt(0.5).run(100.0);
        assert!(
            r.final_voltage(out) > 1.05,
            "out = {}",
            r.final_voltage(out)
        );
    }

    #[test]
    fn inverter_switching_consumes_energy() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Waveform::Dc(1.1));
        c.vsource(inp, Waveform::step(1.1, 20.0, 7.5));
        c.mosfet(out, inp, Circuit::GND, MosParams::nmos45(0.415));
        c.mosfet(out, inp, vdd, MosParams::pmos45(0.630));
        let load = 3.2;
        c.capacitor(out, Circuit::GND, load);
        let r = Transient::new(&c).with_dt(0.1).run(200.0);
        // Output discharges: the NMOS dumps the load charge to ground, and
        // the rising input charges the gate caps. The VDD rail itself can
        // *absorb* energy on this edge (input couples into it through the
        // PMOS gate-source cap), but the total delivered by all sources
        // must be positive and of CV^2 order.
        assert!(r.final_voltage(out) < 0.05);
        let total = r.total_source_energy();
        assert!(
            total > 0.1 && total < 20.0,
            "total source energy {total} fJ"
        );
    }

    #[test]
    fn inverter_vtc_is_monotone_and_rail_to_rail() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Waveform::Dc(1.1));
        c.vsource(inp, Waveform::Dc(0.0));
        c.mosfet(out, inp, Circuit::GND, MosParams::nmos45(0.415));
        c.mosfet(out, inp, vdd, MosParams::pmos45(0.630));
        c.capacitor(out, Circuit::GND, 1.0);
        let sweep: Vec<f64> = (0..=11).map(|i| i as f64 * 0.1).collect();
        let vtc = dc_transfer(&c, 1, &sweep, out);
        // Rails.
        assert!(vtc[0].1 > 1.0, "out at Vin=0 is {}", vtc[0].1);
        assert!(vtc[11].1 < 0.1, "out at Vin=VDD is {}", vtc[11].1);
        // Monotone non-increasing.
        for pair in vtc.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-6);
        }
        // The switching threshold sits mid-rail-ish.
        let vm = vtc
            .windows(2)
            .find(|w| w[0].1 >= w[0].0 && w[1].1 < w[1].0)
            .map(|w| w[1].0)
            .expect("VTC crosses the unity line");
        assert!((0.3..0.8).contains(&vm), "switching threshold {vm}");
    }

    #[test]
    fn output_slew_grows_with_load() {
        let delay_for = |load: f64| {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let inp = c.node("in");
            let out = c.node("out");
            c.vsource(vdd, Waveform::Dc(1.1));
            c.vsource(inp, Waveform::fall(1.1, 10.0, 7.5));
            c.mosfet(out, inp, Circuit::GND, MosParams::nmos45(0.415));
            c.mosfet(out, inp, vdd, MosParams::pmos45(0.630));
            c.capacitor(out, Circuit::GND, load);
            let r = Transient::new(&c).with_dt(0.1).run(400.0);
            r.slew(out, 1.1, 0.3, 0.7, true).expect("output rises")
        };
        let s_small = delay_for(0.8);
        let s_big = delay_for(12.8);
        assert!(s_big > 3.0 * s_small, "slews {s_small} vs {s_big}");
    }
}
