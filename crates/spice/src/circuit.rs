use serde::{Deserialize, Serialize};

use crate::{MosParams, Waveform};

/// A circuit node handle. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Node(pub(crate) usize);

impl Node {
    /// Index of the node in the MNA system (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Resistor {
    pub a: Node,
    pub b: Node,
    /// kΩ.
    pub r: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Capacitor {
    pub a: Node,
    pub b: Node,
    /// fF.
    pub c: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct VSource {
    pub pos: Node,
    pub waveform: Waveform,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Mosfet {
    pub d: Node,
    pub g: Node,
    pub s: Node,
    pub params: MosParams,
}

/// A flat transistor-level circuit: the netlist the characterizer builds
/// from a cell's extracted layout.
///
/// Nodes are created with [`Circuit::node`]; ground is pre-defined as
/// [`Circuit::GND`]. Voltage sources are always referenced to ground
/// (sufficient for characterization decks).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    names: Vec<String>,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) capacitors: Vec<Capacitor>,
    pub(crate) vsources: Vec<VSource>,
    pub(crate) mosfets: Vec<Mosfet>,
}

impl Circuit {
    /// The ground node.
    pub const GND: Node = Node(0);

    /// Creates an empty circuit containing only ground.
    pub fn new() -> Self {
        Circuit {
            names: vec!["0".to_string()],
            ..Default::default()
        }
    }

    /// Creates a named node and returns its handle.
    pub fn node(&mut self, name: &str) -> Node {
        self.names.push(name.to_string());
        Node(self.names.len() - 1)
    }

    /// Name of a node.
    pub fn node_name(&self, n: Node) -> &str {
        &self.names[n.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Adds a resistor of `r` kΩ between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not positive and finite.
    pub fn resistor(&mut self, a: Node, b: Node, r: f64) {
        assert!(
            r.is_finite() && r > 0.0,
            "resistance must be positive, got {r}"
        );
        self.resistors.push(Resistor { a, b, r });
    }

    /// Adds a capacitor of `c` fF between `a` and `b`. Zero-value
    /// capacitors are accepted and ignored.
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or non-finite.
    pub fn capacitor(&mut self, a: Node, b: Node, c: f64) {
        assert!(
            c.is_finite() && c >= 0.0,
            "capacitance must be >= 0, got {c}"
        );
        if c > 0.0 {
            self.capacitors.push(Capacitor { a, b, c });
        }
    }

    /// Adds an ideal voltage source driving `pos` (referenced to ground).
    pub fn vsource(&mut self, pos: Node, waveform: Waveform) {
        self.vsources.push(VSource { pos, waveform });
    }

    /// Adds a MOSFET. Device gate/junction capacitances from `params` are
    /// stamped automatically as linear capacitors to ground and between
    /// gate and channel terminals.
    pub fn mosfet(&mut self, d: Node, g: Node, s: Node, params: MosParams) {
        let cg = params.c_gate();
        let cj = params.c_junction();
        // Split gate cap between G-S and G-D (Meyer-style, bias-independent).
        self.capacitor(g, s, cg * 0.5);
        self.capacitor(g, d, cg * 0.5);
        self.capacitor(d, Circuit::GND, cj);
        self.capacitor(s, Circuit::GND, cj);
        self.mosfets.push(Mosfet { d, g, s, params });
    }

    /// Number of MOSFET devices.
    pub fn mosfet_count(&self) -> usize {
        self.mosfets.len()
    }

    /// Total capacitance attached to a node, fF (useful sanity metric).
    pub fn node_capacitance(&self, n: Node) -> f64 {
        self.capacitors
            .iter()
            .filter(|c| c.a == n || c.b == n)
            .map(|c| c.c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_node_zero() {
        let c = Circuit::new();
        assert_eq!(Circuit::GND.index(), 0);
        assert_eq!(c.node_name(Circuit::GND), "0");
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn nodes_are_sequential_and_named() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(c.node_name(b), "b");
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GND, 0.0);
    }

    #[test]
    fn mosfet_stamps_device_caps() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        let s = c.node("s");
        let p = MosParams::nmos45(1.0);
        c.mosfet(d, g, s, p);
        assert_eq!(c.mosfet_count(), 1);
        // Gate sees cg/2 to source and cg/2 to drain.
        assert!((c.node_capacitance(g) - p.c_gate()).abs() < 1e-12);
        // Drain sees cg/2 + cj.
        assert!((c.node_capacitance(d) - (p.c_gate() * 0.5 + p.c_junction())).abs() < 1e-12);
    }

    #[test]
    fn zero_cap_is_dropped() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor(a, Circuit::GND, 0.0);
        assert_eq!(c.node_capacitance(a), 0.0);
        assert!(c.capacitors.is_empty());
    }
}
