//! A small SPICE-class circuit simulator for standard-cell characterization.
//!
//! The DAC'13 T-MI study characterizes its 3D cells by feeding extracted
//! transistor + parasitic-RC netlists into a SPICE-driven library
//! characterizer. This crate is that substrate: a modified nodal analysis
//! (MNA) engine with
//!
//! * linear resistors, capacitors, and independent voltage sources,
//! * a semi-empirical alpha-power-law MOSFET model (Sakurai-Newton) for
//!   both NMOS and PMOS devices,
//! * trapezoidal transient integration with per-step Newton-Raphson,
//! * waveform measurement helpers (threshold crossings, 30/70 slew,
//!   supply-energy integration) used to build NLDM delay/power tables.
//!
//! Units follow the toolkit convention: V, kΩ, fF, ps, mA, fJ, mW.
//!
//! # Example: an RC step response
//!
//! ```
//! use m3d_spice::{Circuit, Transient, Waveform};
//!
//! let mut c = Circuit::new();
//! let inp = c.node("in");
//! let out = c.node("out");
//! c.vsource(inp, Waveform::step(1.0, 10.0, 1.0));
//! c.resistor(inp, out, 1.0);        // 1 kOhm
//! c.capacitor(out, Circuit::GND, 1.0); // 1 fF -> tau = 1 ps
//! let result = Transient::new(&c).run(50.0);
//! let t50 = result.cross_time(out, 0.5, true).expect("crosses 0.5 V");
//! // Analytic 50% point: t_start + tau*ln(2) (plus ~half the 1 ps input slew).
//! assert!((t50 - (10.5 + 0.693)).abs() < 0.1, "t50 = {t50}");
//! ```

mod circuit;
mod mosfet;
mod solver;
mod transient;
mod waveform;

pub use circuit::{Circuit, Node};
pub use mosfet::{MosKind, MosParams};
pub use solver::solve_dense;
pub use transient::{dc_transfer, Transient, TransientResult};
pub use waveform::Waveform;

/// Stage-error alias: SPICE's one failure mode is Newton non-convergence,
/// so the flow-level taxonomy wraps [`ConvergenceError`] under this name.
pub type SpiceError = ConvergenceError;

/// Error produced when the nonlinear solver fails to converge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceError {
    /// Simulation time (ps) at which Newton iteration diverged.
    pub at_time_ps: u64,
}

impl std::fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "newton iteration failed to converge near t = {} ps",
            self.at_time_ps
        )
    }
}

impl std::error::Error for ConvergenceError {}
