use serde::{Deserialize, Serialize};

/// A time-dependent source voltage, V as a function of ps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Constant voltage.
    Dc(f64),
    /// Piecewise-linear waveform: `(time_ps, volts)` points sorted by time.
    /// Before the first point the first voltage holds; after the last point
    /// the last voltage holds.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// A single linear ramp from 0 V to `v1` starting at `delay` ps and
    /// taking `slew` ps (a rising step; use [`Waveform::fall`] for the
    /// mirror image).
    ///
    /// The `slew` here is the full 0-100 % transition time. Library slew
    /// conventions (30/70 measurement extrapolated) are handled by the
    /// characterizer, not the source.
    pub fn step(v1: f64, delay: f64, slew: f64) -> Self {
        Waveform::Pwl(vec![(delay, 0.0), (delay + slew.max(1e-3), v1)])
    }

    /// A falling ramp from `v0` to 0 V starting at `delay` ps over `slew` ps.
    pub fn fall(v0: f64, delay: f64, slew: f64) -> Self {
        Waveform::Pwl(vec![(delay, v0), (delay + slew.max(1e-3), 0.0)])
    }

    /// The source voltage at time `t` ps.
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        let f = (t - t0) / (t1 - t0);
                        return v0 + f * (v1 - v0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// The value the waveform settles at (last PWL point / DC value).
    pub fn final_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pwl(points) => points.last().map(|&(_, v)| v).unwrap_or(0.0),
        }
    }

    /// The value at t = 0.
    pub fn initial_value(&self) -> f64 {
        self.at(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(1.1);
        assert_eq!(w.at(0.0), 1.1);
        assert_eq!(w.at(1e9), 1.1);
        assert_eq!(w.final_value(), 1.1);
    }

    #[test]
    fn step_interpolates_linearly() {
        let w = Waveform::step(1.0, 10.0, 4.0);
        assert_eq!(w.at(0.0), 0.0);
        assert_eq!(w.at(10.0), 0.0);
        assert!((w.at(12.0) - 0.5).abs() < 1e-12);
        assert_eq!(w.at(14.0), 1.0);
        assert_eq!(w.at(100.0), 1.0);
    }

    #[test]
    fn fall_mirrors_step() {
        let w = Waveform::fall(1.0, 10.0, 4.0);
        assert_eq!(w.at(9.0), 1.0);
        assert!((w.at(12.0) - 0.5).abs() < 1e-12);
        assert_eq!(w.at(14.5), 0.0);
        assert_eq!(w.initial_value(), 1.0);
        assert_eq!(w.final_value(), 0.0);
    }

    #[test]
    fn degenerate_pwl_is_safe() {
        assert_eq!(Waveform::Pwl(vec![]).at(5.0), 0.0);
        let w = Waveform::Pwl(vec![(1.0, 2.0)]);
        assert_eq!(w.at(0.0), 2.0);
        assert_eq!(w.at(9.0), 2.0);
    }
}
