/// Solves the dense linear system `A x = b` in place via LU decomposition
/// with partial pivoting, returning `x`.
///
/// `a` is row-major `n x n`. Returns `None` when the matrix is numerically
/// singular (pivot below 1e-300).
///
/// The MNA matrices produced by cell-characterization circuits are tiny
/// (tens of unknowns), so a dense solver is both the simplest and the
/// fastest choice here.
///
/// # Example
///
/// ```
/// let a = vec![2.0, 1.0, 1.0, 3.0];
/// let b = vec![3.0, 5.0];
/// let x = m3d_spice::solve_dense(a, b).expect("non-singular");
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
pub fn solve_dense(mut a: Vec<f64>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert_eq!(a.len(), n * n, "matrix shape mismatch");
    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        let inv_pivot = 1.0 / a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] * inv_pivot;
            if factor == 0.0 {
                continue;
            }
            a[row * n + col] = 0.0;
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in (col + 1)..n {
            sum -= a[col * n + k] * b[k];
        }
        b[col] = sum / a[col * n + col];
    }
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_returns_rhs() {
        let a = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let b = vec![4.0, -2.0, 7.5];
        assert_eq!(solve_dense(a, b.clone()).expect("identity"), b);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] x = [2, 3] -> x = [3, 2].
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_dense(a, vec![2.0, 3.0]).expect("permutation matrix");
        assert_eq!(x, vec![3.0, 2.0]);
    }

    proptest! {
        #[test]
        fn residual_is_small_for_random_systems(seed in 0u64..200) {
            // Deterministic pseudo-random diagonally-dominated systems.
            let n = 1 + (seed as usize % 8);
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut rnd = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2000) as f64 / 1000.0 - 1.0
            };
            let mut a = vec![0.0; n * n];
            for (i, v) in a.iter_mut().enumerate() {
                *v = rnd();
            // Diagonal dominance guarantees solvability.
                if i % (n + 1) == 0 {
                    *v += n as f64 + 1.0;
                }
            }
            let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let x = solve_dense(a.clone(), b.clone()).expect("diag dominant");
            for i in 0..n {
                let mut r = -b[i];
                for j in 0..n {
                    r += a[i * n + j] * x[j];
                }
                prop_assert!(r.abs() < 1e-9, "residual {} at row {}", r, i);
            }
        }
    }
}
