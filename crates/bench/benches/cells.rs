//! Benches of the cell substrate: layout generation, parasitic
//! extraction (Table 1 machinery) and SPICE characterization (Table 2
//! machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use m3d_cells::{
    characterize::{characterize_analytic, characterize_spice},
    layout::generate_layout,
    CellFunction, CellLibrary, Topology,
};
use m3d_extract::{extract_cell, TopSiliconModel};
use m3d_tech::{DesignStyle, TechNode};

fn bench_cells(c: &mut Criterion) {
    let node = TechNode::n45();

    c.bench_function("layout_generate_dff_tmi", |b| {
        let topo = Topology::for_function(CellFunction::Dff);
        b.iter(|| black_box(generate_layout(&node, &topo, DesignStyle::Tmi, 1)));
    });

    c.bench_function("cell_extraction_dff_tmi", |b| {
        let topo = Topology::for_function(CellFunction::Dff);
        let geom = generate_layout(&node, &topo, DesignStyle::Tmi, 1);
        b.iter(|| {
            black_box(extract_cell(
                &node,
                &geom.shapes,
                TopSiliconModel::Dielectric,
            ))
        });
    });

    c.bench_function("characterize_analytic_mux2", |b| {
        let topo = Topology::for_function(CellFunction::Mux2);
        let geom = generate_layout(&node, &topo, DesignStyle::TwoD, 1);
        b.iter(|| {
            black_box(characterize_analytic(
                &node,
                DesignStyle::TwoD,
                CellFunction::Mux2,
                1,
                &topo,
                &geom,
            ))
        });
    });

    let mut slow = c.benchmark_group("spice");
    slow.sample_size(10);
    slow.bench_function("characterize_spice_inv_1pt", |b| {
        let topo = Topology::for_function(CellFunction::Inv);
        let geom = generate_layout(&node, &topo, DesignStyle::TwoD, 1);
        b.iter(|| {
            black_box(characterize_spice(
                &node,
                CellFunction::Inv,
                1,
                &topo,
                &geom,
                vec![7.5],
                vec![0.8],
            ))
        });
    });
    slow.bench_function("library_build_tmi", |b| {
        b.iter(|| black_box(CellLibrary::build(&node, DesignStyle::Tmi)));
    });
    slow.finish();
}

criterion_group!(cells, bench_cells);
criterion_main!(cells);
