//! Ablation benches for the design choices DESIGN.md calls out:
//! placement effort vs wirelength, router layer-spill behaviour, the
//! top-silicon extraction bracketing, and the T-MI WLM.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use m3d_bench::bench_design;
use m3d_cells::{layout::generate_layout, CellFunction, Topology};
use m3d_extract::{extract_cell, TopSiliconModel};
use m3d_netlist::{BenchScale, Benchmark};
use m3d_place::Placer;
use m3d_route::Router;
use m3d_tech::{DesignStyle, MetalStack, NodeId, StackKind, TechNode};
use monolith3d::{Flow, FlowConfig};

fn bench_ablations(c: &mut Criterion) {
    let node = TechNode::n45();

    // Placement-quality ablation: effort (iterations) vs result. Criterion
    // measures the cost; the HPWL landing points are printed once.
    let (lib, netlist) = bench_design(Benchmark::M256);
    for iters in [8usize, 40, 120] {
        let p = Placer::new(&lib).iterations(iters).place(&netlist);
        println!(
            "[ablation] placement iterations {iters}: HPWL {:.1} mm",
            p.total_hpwl_um(&netlist) * 1e-3
        );
    }
    let mut g = c.benchmark_group("ablation_placement_effort");
    g.sample_size(10);
    for iters in [8usize, 40] {
        g.bench_function(format!("iters_{iters}"), |b| {
            b.iter(|| black_box(Placer::new(&lib).iterations(iters).place(&netlist)));
        });
    }
    g.finish();

    // Router stack ablation: 2D vs T-MI vs T-MI+M capacity structure.
    let mut g = c.benchmark_group("ablation_router_stack");
    g.sample_size(10);
    let placement = Placer::new(&lib).iterations(40).place(&netlist);
    for kind in [StackKind::TwoD, StackKind::Tmi, StackKind::TmiPlusM] {
        let stack = MetalStack::new(&node, kind);
        g.bench_function(format!("{kind}"), |b| {
            b.iter(|| black_box(Router::new(&node, &stack).route(&netlist, &placement, &lib)));
        });
    }
    g.finish();

    // Extraction bracketing ablation (Table 1's dielectric vs conductor).
    let mut g = c.benchmark_group("ablation_top_silicon");
    let topo = Topology::for_function(CellFunction::Dff);
    let geom = generate_layout(&node, &topo, DesignStyle::Tmi, 1);
    for (name, model) in [
        ("dielectric", TopSiliconModel::Dielectric),
        ("conductor", TopSiliconModel::Conductor),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(extract_cell(&node, &geom.shapes, model)));
        });
    }
    g.finish();

    // T-MI WLM ablation (Table 15): flow with and without the T-MI WLM.
    let mut g = c.benchmark_group("ablation_tmi_wlm");
    g.sample_size(10);
    for (name, tmi_wlm) in [("tmi_wlm", true), ("wlm_2d", false)] {
        g.bench_function(name, |b| {
            let mut cfg = FlowConfig::new(NodeId::N45).scale(BenchScale::Small);
            cfg.tmi_wlm = tmi_wlm;
            b.iter(|| {
                black_box(Flow::new(Benchmark::Ldpc, DesignStyle::Tmi, cfg.clone()).run_uncached())
            });
        });
    }
    g.finish();
}

criterion_group!(ablations, bench_ablations);
criterion_main!(ablations);
