//! End-to-end flow benches: one per paper table family, on reduced-scale
//! circuits (the full-scale tables come from the `paper_tables` binary).
//!
//! Every iteration calls `run_uncached` so criterion measures the flow
//! engine, not an `ArtifactCache` lookup; the cold/warm wall-clock story
//! lives in the `flow_bench` binary (`BENCH_flow.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{Flow, FlowConfig};

fn cfg45() -> FlowConfig {
    FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
}

fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow");
    g.sample_size(10);

    // Table 4 family: the 45 nm iso-performance flows.
    for bench in [Benchmark::Aes, Benchmark::Des, Benchmark::Ldpc] {
        g.bench_function(format!("table4_{}_2d", bench.name()), |b| {
            b.iter(|| black_box(Flow::new(bench, DesignStyle::TwoD, cfg45()).run_uncached()));
        });
        g.bench_function(format!("table4_{}_tmi", bench.name()), |b| {
            b.iter(|| black_box(Flow::new(bench, DesignStyle::Tmi, cfg45()).run_uncached()));
        });
    }

    // Table 7 family: the 7 nm projection.
    g.bench_function("table7_aes_tmi_7nm", |b| {
        let cfg = FlowConfig::new(NodeId::N7).scale(BenchScale::Small);
        b.iter(|| {
            black_box(Flow::new(Benchmark::Aes, DesignStyle::Tmi, cfg.clone()).run_uncached())
        });
    });

    // Fig. 4 family: a clock-sweep point.
    g.bench_function("fig4_aes_fast_clock", |b| {
        let cfg = cfg45().clock(720.0);
        b.iter(|| {
            black_box(Flow::new(Benchmark::Aes, DesignStyle::Tmi, cfg.clone()).run_uncached())
        });
    });

    // Table 8 family: pin-cap variant.
    g.bench_function("table8_des_pincap", |b| {
        let mut cfg = FlowConfig::new(NodeId::N7).scale(BenchScale::Small);
        cfg.pin_cap_scale = 0.6;
        b.iter(|| {
            black_box(Flow::new(Benchmark::Des, DesignStyle::Tmi, cfg.clone()).run_uncached())
        });
    });
    g.finish();
}

criterion_group!(flow, bench_flow);
criterion_main!(flow);
