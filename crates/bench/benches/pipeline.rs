//! Benches of the physical-design pipeline stages: synthesis, placement,
//! routing, STA and power analysis (the engines behind Tables 4/7).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use m3d_bench::bench_design;
use m3d_netlist::Benchmark;
use m3d_place::Placer;
use m3d_power::{analyze_power, PowerConfig};
use m3d_route::Router;
use m3d_sta::{analyze, TimingConfig};
use m3d_synth::{synthesize, wlm_net_models, SynthConfig, WireLoadModel};
use m3d_tech::{MetalStack, StackKind, TechNode};

fn bench_pipeline(c: &mut Criterion) {
    let node = TechNode::n45();
    let stack = MetalStack::new(&node, StackKind::TwoD);
    let (lib, netlist) = bench_design(Benchmark::Des);
    let placement = Placer::new(&lib).iterations(40).place(&netlist);
    let routed = Router::new(&node, &stack).route(&netlist, &placement, &lib);
    let models: Vec<m3d_sta::NetModel> = netlist
        .net_ids()
        .map(|id| {
            let rn = routed.net(id);
            let p = m3d_extract::extract_net(&node, &routed.stack, &rn.segments, rn.via_count);
            m3d_sta::NetModel {
                c_wire: p.c_wire,
                r_wire: p.r_wire,
            }
        })
        .collect();

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    g.bench_function("synthesis_des_small", |b| {
        let wlm = WireLoadModel::from_placement(&netlist, &placement);
        b.iter(|| {
            black_box(synthesize(
                netlist.clone(),
                &lib,
                &wlm,
                &SynthConfig::new(2500.0),
            ))
        });
    });

    g.bench_function("placement_des_small", |b| {
        b.iter(|| black_box(Placer::new(&lib).iterations(40).place(&netlist)));
    });

    g.bench_function("routing_des_small", |b| {
        b.iter(|| black_box(Router::new(&node, &stack).route(&netlist, &placement, &lib)));
    });

    g.bench_function("extraction_des_small", |b| {
        b.iter(|| {
            black_box(wlm_net_models(
                &netlist,
                &WireLoadModel::uniform(10.0, 2.0),
                &node,
                &stack,
            ))
        });
    });

    g.bench_function("sta_des_small", |b| {
        b.iter(|| black_box(analyze(&netlist, &lib, &models, &TimingConfig::new(2500.0))));
    });

    g.bench_function("power_des_small", |b| {
        b.iter(|| {
            black_box(analyze_power(
                &netlist,
                &lib,
                &models,
                &PowerConfig::new(2500.0),
            ))
        });
    });
    g.finish();
}

criterion_group!(pipeline, bench_pipeline);
criterion_main!(pipeline);
