//! Benchmark harness for the `monolith3d` toolkit.
//!
//! Two kinds of artifacts live here:
//!
//! * the **`paper_tables` binary** — regenerates every table and figure
//!   of the paper at full (`--paper`) or reduced (`--small`) benchmark
//!   scale. `paper_tables all` writes the complete run that
//!   `EXPERIMENTS.md` records.
//! * **Criterion benches** (`cells`, `pipeline`, `flow`, `ablations`) —
//!   performance measurements of the toolkit's engines plus the ablation
//!   studies DESIGN.md calls out, run on reduced-scale circuits so a
//!   `cargo bench` pass stays in minutes.

use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark, Netlist};
use m3d_tech::{DesignStyle, TechNode};

/// Builds the (library, netlist) pair the pipeline benches share.
pub fn bench_design(bench: Benchmark) -> (CellLibrary, Netlist) {
    let node = TechNode::n45();
    let lib = CellLibrary::build(&node, DesignStyle::TwoD);
    let netlist = bench.generate(&lib, BenchScale::Small);
    (lib, netlist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_design_is_usable() {
        let (lib, n) = bench_design(Benchmark::Aes);
        assert!(n.instance_count() > 100);
        n.check_consistency(&lib);
    }
}
