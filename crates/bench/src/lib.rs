//! Benchmark harness for the `monolith3d` toolkit.
//!
//! Three kinds of artifacts live here:
//!
//! * the **`paper_tables` binary** — regenerates every table and figure
//!   of the paper at full (`--paper`) or reduced (`--small`) benchmark
//!   scale through the shared [`monolith3d::ArtifactCache`].
//!   `paper_tables all` writes the complete run that `EXPERIMENTS.md`
//!   records; `paper_tables --small --subset` runs the flow-heavy smoke
//!   subset.
//! * the **`flow_bench` binary** — times that smoke subset cold
//!   (cleared cache) and warm (primed cache) and writes the comparison
//!   to `BENCH_flow.json`.
//! * **Criterion benches** (`cells`, `pipeline`, `flow`, `ablations`) —
//!   performance measurements of the toolkit's engines plus the ablation
//!   studies DESIGN.md calls out, run on reduced-scale circuits (and
//!   through `Flow::run_uncached`, so the cache never hides the work).

use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark, Netlist};
use m3d_tech::{DesignStyle, NodeId, TechNode};
use monolith3d::experiments as exp;

/// Shared command-line parsing for the bench binaries.
pub mod cli {
    use std::fmt;

    use m3d_tech::{NodeId, PdkRegistry};

    /// Typed error from parsing a `--node` process-node name.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum NodeError {
        /// `--node` was the last argument: no name followed it.
        MissingValue,
        /// The name matches no registered PDK.
        Unknown {
            /// What the user typed.
            given: String,
            /// The registered PDK names, in registration order.
            known: Vec<String>,
        },
    }

    impl fmt::Display for NodeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                NodeError::MissingValue => write!(f, "--node needs a process-node name"),
                NodeError::Unknown { given, known } => write!(
                    f,
                    "unknown node '{given}': registered PDKs are {}",
                    known.join(", ")
                ),
            }
        }
    }

    impl std::error::Error for NodeError {}

    /// Parses a `--node` operand (`None` models a missing one) against
    /// the [`PdkRegistry`]. The error lists every registered name so the
    /// usage line that wraps it is actionable.
    pub fn parse_node(value: Option<&str>) -> Result<NodeId, NodeError> {
        let v = value.ok_or(NodeError::MissingValue)?;
        PdkRegistry::global()
            .by_name(v)
            .ok_or_else(|| NodeError::Unknown {
                given: v.to_string(),
                known: PdkRegistry::global()
                    .names()
                    .iter()
                    .map(|n| n.to_string())
                    .collect(),
            })
    }

    /// Typed error from parsing a `--jobs` worker count.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum JobsError {
        /// `--jobs` was the last argument: no value followed it.
        MissingValue,
        /// The value was not an unsigned integer.
        NotANumber(String),
        /// `--jobs 0` asks for an executor with no workers.
        Zero,
    }

    impl fmt::Display for JobsError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                JobsError::MissingValue => write!(f, "--jobs needs a worker count"),
                JobsError::NotANumber(v) => write!(f, "bad --jobs value '{v}': not a number"),
                JobsError::Zero => {
                    write!(
                        f,
                        "--jobs 0 rejected: the executor needs at least one worker"
                    )
                }
            }
        }
    }

    impl std::error::Error for JobsError {}

    /// Parses a `--jobs` operand (`None` models a missing one).
    ///
    /// Zero is rejected rather than clamped: an explicit `--jobs 0` is
    /// a user error, and silently running one worker instead hides it.
    pub fn parse_jobs(value: Option<&str>) -> Result<usize, JobsError> {
        let v = value.ok_or(JobsError::MissingValue)?;
        let n: usize = v
            .parse()
            .map_err(|_| JobsError::NotANumber(v.to_string()))?;
        if n == 0 {
            return Err(JobsError::Zero);
        }
        Ok(n)
    }

    /// Typed error from parsing a `--deadline-s` run budget.
    #[derive(Debug, Clone, PartialEq)]
    pub enum DeadlineError {
        /// `--deadline-s` was the last argument: no value followed it.
        MissingValue,
        /// The value was not a number of seconds.
        NotANumber(String),
        /// The budget was zero, negative, or not finite — a run that can
        /// never admit a single point.
        NotPositive(String),
    }

    impl fmt::Display for DeadlineError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                DeadlineError::MissingValue => {
                    write!(f, "--deadline-s needs a budget in seconds")
                }
                DeadlineError::NotANumber(v) => {
                    write!(f, "bad --deadline-s value '{v}': not a number of seconds")
                }
                DeadlineError::NotPositive(v) => write!(
                    f,
                    "--deadline-s {v} rejected: the run budget must be a positive number of seconds"
                ),
            }
        }
    }

    impl std::error::Error for DeadlineError {}

    /// Parses a `--deadline-s` operand (`None` models a missing one)
    /// into a whole-run wall-clock budget.
    ///
    /// Fractional seconds are accepted (`--deadline-s 0.5`); zero,
    /// negative and non-finite budgets are rejected rather than clamped,
    /// for the same reason `--jobs 0` is.
    pub fn parse_deadline(value: Option<&str>) -> Result<std::time::Duration, DeadlineError> {
        let v = value.ok_or(DeadlineError::MissingValue)?;
        let s: f64 = v
            .parse()
            .map_err(|_| DeadlineError::NotANumber(v.to_string()))?;
        if !s.is_finite() || s <= 0.0 {
            return Err(DeadlineError::NotPositive(v.to_string()));
        }
        Ok(std::time::Duration::from_secs_f64(s))
    }
}

/// Builds the (library, netlist) pair the pipeline benches share.
pub fn bench_design(bench: Benchmark) -> (CellLibrary, Netlist) {
    let node = TechNode::n45();
    let lib = CellLibrary::build(&node, DesignStyle::TwoD);
    let netlist = bench.generate(&lib, BenchScale::Small);
    (lib, netlist)
}

/// One named experiment driver of the `paper_tables` registry.
pub type PaperDriver = (&'static str, fn(BenchScale) -> String);

/// One named node-generic experiment driver: the `--node` CLI path runs
/// these with the selected [`NodeId`].
pub type NodeDriver = (&'static str, fn(NodeId, BenchScale) -> String);

/// The flow-heavy smoke subset: `paper_tables --subset` and the
/// `flow_bench` cold/warm benchmark both run exactly these drivers.
pub const SMOKE_SUBSET: [&str; 4] = ["table4", "fig3", "table16", "fig10"];

/// Node-generic forms of the smoke-subset drivers. At the two paper
/// nodes each renders byte-identical output to its [`paper_drivers`]
/// counterpart (45 nm) or its pinned node table (7 nm); at any other
/// registered PDK it renders the generic table for that node. Names
/// mirror [`SMOKE_SUBSET`] exactly so `--subset --node NAME` selects the
/// same work across every backend.
pub fn node_drivers() -> Vec<NodeDriver> {
    vec![
        ("table4", exp::layout_results_at),
        ("fig3", exp::fig3_circuit_character_at),
        ("table16", exp::table16_net_breakdown_at),
        ("fig10", exp::fig10_layer_usage_at),
    ]
}

// Cell-level experiments ignore the benchmark scale; thin wrappers
// adapt them to the common driver signature.
fn t1(_: BenchScale) -> String {
    exp::table1_cell_rc()
}
fn t2(_: BenchScale) -> String {
    exp::table2_cell_timing_power()
}
fn t3(_: BenchScale) -> String {
    exp::table3_metal_layers()
}
fn t6(_: BenchScale) -> String {
    exp::table6_node_setup()
}
fn t11(_: BenchScale) -> String {
    exp::table11_7nm_cells()
}
fn f5(_: BenchScale) -> String {
    exp::fig5_cell_inventory()
}

/// The full experiment registry, in the order `paper_tables all` runs.
pub fn paper_drivers() -> Vec<PaperDriver> {
    vec![
        ("table1", t1),
        ("table2", t2),
        ("table3", t3),
        ("table4", exp::table4_layout_45nm),
        ("table5", exp::table5_prior_work),
        ("table6", t6),
        ("table7", exp::table7_layout_7nm),
        ("table8", exp::table8_pin_cap),
        ("table9", exp::table9_resistivity),
        ("table11", t11),
        ("table12", exp::table12_benchmarks),
        ("table15", exp::table15_wlm_impact),
        ("table16", exp::table16_net_breakdown),
        ("table17", exp::table17_metal_stack),
        ("fig3", exp::fig3_circuit_character),
        ("fig4", exp::fig4_clock_sweep),
        ("fig5", f5),
        ("fig6", exp::fig6_wlm_curves),
        ("fig10", exp::fig10_layer_usage),
        ("fig11", exp::fig11_activity_sweep),
        ("s5", exp::fig_s5_blockage),
        ("gmi", monolith3d::gmi::gmi_comparison),
        ("summary", exp::summary_scorecard),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_design_is_usable() {
        let (lib, n) = bench_design(Benchmark::Aes);
        assert!(n.instance_count() > 100);
        n.check_consistency(&lib);
    }

    #[test]
    fn parse_jobs_accepts_positive_counts() {
        assert_eq!(cli::parse_jobs(Some("1")), Ok(1));
        assert_eq!(cli::parse_jobs(Some("4")), Ok(4));
        assert_eq!(cli::parse_jobs(Some("64")), Ok(64));
    }

    #[test]
    fn parse_jobs_rejects_zero_missing_and_junk() {
        assert_eq!(cli::parse_jobs(Some("0")), Err(cli::JobsError::Zero));
        assert_eq!(cli::parse_jobs(None), Err(cli::JobsError::MissingValue));
        assert!(matches!(
            cli::parse_jobs(Some("four")),
            Err(cli::JobsError::NotANumber(_))
        ));
        assert!(matches!(
            cli::parse_jobs(Some("-2")),
            Err(cli::JobsError::NotANumber(_))
        ));
        // The message names the offending value so the usage line that
        // wraps it is actionable.
        let msg = cli::parse_jobs(Some("four")).expect_err("junk").to_string();
        assert!(msg.contains("four"), "got: {msg}");
        let msg = cli::parse_jobs(Some("0")).expect_err("zero").to_string();
        assert!(msg.contains("at least one worker"), "got: {msg}");
    }

    #[test]
    fn parse_deadline_accepts_positive_seconds() {
        use std::time::Duration;
        assert_eq!(cli::parse_deadline(Some("30")), Ok(Duration::from_secs(30)));
        assert_eq!(
            cli::parse_deadline(Some("0.5")),
            Ok(Duration::from_millis(500))
        );
    }

    #[test]
    fn parse_deadline_rejects_missing_junk_and_nonpositive() {
        assert_eq!(
            cli::parse_deadline(None),
            Err(cli::DeadlineError::MissingValue)
        );
        assert!(matches!(
            cli::parse_deadline(Some("soon")),
            Err(cli::DeadlineError::NotANumber(_))
        ));
        for bad in ["0", "-3", "inf", "NaN"] {
            assert!(
                matches!(
                    cli::parse_deadline(Some(bad)),
                    Err(cli::DeadlineError::NotPositive(_))
                ),
                "'{bad}' must be rejected as non-positive"
            );
        }
        // The message names the offending value so the usage line that
        // wraps it is actionable.
        let msg = cli::parse_deadline(Some("soon"))
            .expect_err("junk")
            .to_string();
        assert!(msg.contains("soon"), "got: {msg}");
        let msg = cli::parse_deadline(Some("0"))
            .expect_err("zero")
            .to_string();
        assert!(msg.contains("positive"), "got: {msg}");
    }

    #[test]
    fn smoke_subset_names_are_registered() {
        let drivers = paper_drivers();
        for name in SMOKE_SUBSET {
            assert!(
                drivers.iter().any(|(n, _)| *n == name),
                "subset driver '{name}' missing from the registry"
            );
        }
    }

    #[test]
    fn parse_node_resolves_every_registered_pdk() {
        for name in m3d_tech::PdkRegistry::global().names() {
            let id = cli::parse_node(Some(name)).expect("registered node parses");
            assert_eq!(id.label(), name);
        }
        assert_eq!(cli::parse_node(Some("45nm")), Ok(NodeId::N45));
        assert_eq!(cli::parse_node(Some("7nm")), Ok(NodeId::N7));
    }

    #[test]
    fn parse_node_rejects_missing_and_unknown_names() {
        assert_eq!(cli::parse_node(None), Err(cli::NodeError::MissingValue));
        let err = cli::parse_node(Some("3nm")).expect_err("unknown node");
        // The message names the bad input and lists every registered
        // PDK so the usage line that wraps it is actionable.
        let msg = err.to_string();
        assert!(msg.contains("3nm"), "got: {msg}");
        for name in m3d_tech::PdkRegistry::global().names() {
            assert!(msg.contains(name), "'{name}' not listed in: {msg}");
        }
    }

    #[test]
    fn node_drivers_mirror_the_smoke_subset() {
        let names: Vec<&str> = node_drivers().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, SMOKE_SUBSET);
    }
}
