//! Validates a JSONL event trace written by `JsonlRecorder`.
//!
//! ```text
//! trace_check <trace.jsonl>
//! ```
//!
//! Checks every line against the event schema: known `kind`, required
//! per-kind fields, strictly increasing sequence numbers, and balanced
//! stage spans (every `stage_started` paired with exactly one terminal
//! `stage_finished`). Prints a one-line summary and exits 0 on success;
//! prints the violation and exits 1 otherwise. CI runs this over the
//! trace the smoke subset emits, so a schema drift between the recorder
//! and the validator fails the build rather than silently producing
//! unparseable artifacts.

use monolith3d::observe::validate_jsonl;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: trace_check <trace.jsonl>");
        std::process::exit(2);
    });
    if args.next().is_some() {
        eprintln!("usage: trace_check <trace.jsonl>");
        std::process::exit(2);
    }
    let trace = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("trace_check: cannot read '{path}': {e}");
        std::process::exit(2);
    });
    match validate_jsonl(&trace) {
        Ok(summary) => {
            println!(
                "{path}: {} events, {} stage spans, {} cache hits / {} misses, \
                 {} checkpoints written / {} resumed",
                summary.events,
                summary.stage_spans,
                summary.cache_hits,
                summary.cache_misses,
                summary.checkpoints_written,
                summary.checkpoints_resumed,
            );
        }
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            std::process::exit(1);
        }
    }
}
