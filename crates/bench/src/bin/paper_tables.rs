//! Regenerates the paper's tables and figures.
//!
//! ```text
//! paper_tables [--small] <experiment | all>
//! ```
//!
//! Experiments: table1 table2 table3 table4 table5 table6 table7 table8
//! table9 table11 table12 table15 table16 table17 fig3 fig4 fig5 fig6
//! fig10 fig11 s5 gmi (the G-MI extension study).
//!
//! `--small` runs the reduced benchmark circuits (seconds); the default
//! paper scale regenerates the full study (minutes).

use std::time::Instant;

use m3d_netlist::BenchScale;
use monolith3d::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let scale = if small {
        BenchScale::Small
    } else {
        BenchScale::Paper
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let wanted = if wanted.is_empty() {
        vec!["all"]
    } else {
        wanted
    };

    type Driver = (&'static str, fn(BenchScale) -> String);

    // Cell-level experiments ignore the benchmark scale; thin wrappers
    // adapt them to the common driver signature.
    fn t1(_: BenchScale) -> String {
        exp::table1_cell_rc()
    }
    fn t2(_: BenchScale) -> String {
        exp::table2_cell_timing_power()
    }
    fn t3(_: BenchScale) -> String {
        exp::table3_metal_layers()
    }
    fn t6(_: BenchScale) -> String {
        exp::table6_node_setup()
    }
    fn t11(_: BenchScale) -> String {
        exp::table11_7nm_cells()
    }
    fn f5(_: BenchScale) -> String {
        exp::fig5_cell_inventory()
    }

    let drivers: Vec<Driver> = vec![
        ("table1", t1),
        ("table2", t2),
        ("table3", t3),
        ("table4", exp::table4_layout_45nm),
        ("table5", exp::table5_prior_work),
        ("table6", t6),
        ("table7", exp::table7_layout_7nm),
        ("table8", exp::table8_pin_cap),
        ("table9", exp::table9_resistivity),
        ("table11", t11),
        ("table12", exp::table12_benchmarks),
        ("table15", exp::table15_wlm_impact),
        ("table16", exp::table16_net_breakdown),
        ("table17", exp::table17_metal_stack),
        ("fig3", exp::fig3_circuit_character),
        ("fig4", exp::fig4_clock_sweep),
        ("fig5", f5),
        ("fig6", exp::fig6_wlm_curves),
        ("fig10", exp::fig10_layer_usage),
        ("fig11", exp::fig11_activity_sweep),
        ("s5", exp::fig_s5_blockage),
        ("gmi", monolith3d::gmi::gmi_comparison),
        ("summary", exp::summary_scorecard),
    ];

    let run_all = wanted.contains(&"all");
    let mut ran = 0;
    for (name, driver) in &drivers {
        if !run_all && !wanted.contains(name) {
            continue;
        }
        let t = Instant::now();
        println!("==================== {name} ====================");
        println!("{}", driver(scale));
        println!("[{name} took {:.1?}]\n", t.elapsed());
        ran += 1;
    }
    if ran == 0 {
        eprintln!(
            "unknown experiment(s): {wanted:?}\nknown: {}",
            drivers
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
}
