//! Regenerates the paper's tables and figures.
//!
//! ```text
//! paper_tables [--small] [--subset] [--jobs N] <experiment | all>
//! ```
//!
//! Experiments: table1 table2 table3 table4 table5 table6 table7 table8
//! table9 table11 table12 table15 table16 table17 fig3 fig4 fig5 fig6
//! fig10 fig11 s5 gmi (the G-MI extension study).
//!
//! `--small` runs the reduced benchmark circuits (seconds); the default
//! paper scale regenerates the full study (minutes). `--subset` selects
//! the flow-heavy smoke subset the `flow_bench` binary times.
//!
//! `--jobs N` (default: the host's available parallelism) fans the
//! selected drivers' flow matrix out across N workers *before* the
//! drivers run: the workers pre-warm the process-wide `ArtifactCache`
//! through the work-stealing `ParallelExecutor`, then each driver
//! formats its table from bit-identical cache hits. stdout is therefore
//! **byte-identical** for every `--jobs` value (`--jobs 1` skips the
//! fan-out entirely); all diagnostics — per-driver timings, executor
//! utilization, cache statistics — go to stderr.

use std::time::Instant;

use m3d_bench::{paper_drivers, PaperDriver, SMOKE_SUBSET};
use m3d_netlist::BenchScale;
use monolith3d::{experiments, ArtifactCache, ExperimentPlan, ParallelExecutor};

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}\nusage: paper_tables [--small] [--subset] [--jobs N] <experiment | all>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut small = false;
    let mut subset = false;
    let mut jobs = ParallelExecutor::default_workers();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => small = true,
            "--subset" => subset = true,
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--jobs needs a worker count"));
                jobs = v
                    .parse()
                    .unwrap_or_else(|_| usage_exit(&format!("bad --jobs value '{v}'")));
            }
            other => {
                if let Some(v) = other.strip_prefix("--jobs=") {
                    jobs = v
                        .parse()
                        .unwrap_or_else(|_| usage_exit(&format!("bad --jobs value '{v}'")));
                } else if other.starts_with("--") {
                    usage_exit(&format!("unknown flag '{other}'"));
                } else {
                    wanted.push(other.to_string());
                }
            }
        }
    }
    let jobs = jobs.max(1);
    let scale = if small {
        BenchScale::Small
    } else {
        BenchScale::Paper
    };
    if subset {
        wanted.extend(SMOKE_SUBSET.iter().map(|s| s.to_string()));
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }

    let drivers = paper_drivers();
    let run_all = wanted.iter().any(|w| w == "all");
    let selected: Vec<&PaperDriver> = drivers
        .iter()
        .filter(|(name, _)| run_all || wanted.iter().any(|w| w == name))
        .collect();
    if selected.is_empty() {
        eprintln!(
            "unknown experiment(s): {wanted:?}\nknown: {}",
            drivers
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }

    // Fan the selected drivers' flow matrix out first, so the serial
    // formatting pass below hits a warm cache. `--jobs 1` skips this:
    // the plan would run the exact same flows the drivers are about to
    // run, in the same order, for no gain.
    if jobs > 1 {
        let mut plan = ExperimentPlan::new();
        for (name, _) in &selected {
            plan.merge(experiments::plan_for(name, scale));
        }
        if !plan.is_empty() {
            eprintln!(
                "[fanning {} flow points out across {jobs} workers]",
                plan.len()
            );
            let t = Instant::now();
            let report = ParallelExecutor::new(jobs).run(&plan);
            let util = report.utilization();
            eprintln!(
                "[executor: {} points in {:.1} s; worker utilization {}]",
                report.ok_count(),
                t.elapsed().as_secs_f64(),
                util.iter()
                    .map(|u| format!("{:.0}%", u * 100.0))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            if let Some(e) = report.first_error() {
                // The responsible driver will hit the same failure
                // serially and panic with full context.
                eprintln!("[executor: a flow point failed: {e}]");
            }
        }
    }

    for (name, driver) in &selected {
        let t = Instant::now();
        println!("==================== {name} ====================");
        println!("{}", driver(scale));
        eprintln!("[{name} took {:.1?}]", t.elapsed());
    }
    eprintln!("[artifact cache: {}]", ArtifactCache::global().stats());
}
