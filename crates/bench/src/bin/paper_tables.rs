//! Regenerates the paper's tables and figures.
//!
//! ```text
//! paper_tables [--small] [--subset] <experiment | all>
//! ```
//!
//! Experiments: table1 table2 table3 table4 table5 table6 table7 table8
//! table9 table11 table12 table15 table16 table17 fig3 fig4 fig5 fig6
//! fig10 fig11 s5 gmi (the G-MI extension study).
//!
//! `--small` runs the reduced benchmark circuits (seconds); the default
//! paper scale regenerates the full study (minutes). `--subset` selects
//! the flow-heavy smoke subset the `flow_bench` binary times.
//!
//! Every flow and cell library routes through the process-wide
//! `ArtifactCache`, so a full run builds each distinct library exactly
//! once and repeated flow points are shared across tables. Cache
//! statistics go to stderr; stdout carries only the tables.

use std::time::Instant;

use m3d_bench::{paper_drivers, SMOKE_SUBSET};
use m3d_netlist::BenchScale;
use monolith3d::ArtifactCache;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let subset = args.iter().any(|a| a == "--subset");
    let scale = if small {
        BenchScale::Small
    } else {
        BenchScale::Paper
    };
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if subset {
        wanted.extend(SMOKE_SUBSET);
    }
    let wanted = if wanted.is_empty() {
        vec!["all"]
    } else {
        wanted
    };

    let drivers = paper_drivers();
    let run_all = wanted.contains(&"all");
    let mut ran = 0;
    for (name, driver) in &drivers {
        if !run_all && !wanted.contains(name) {
            continue;
        }
        let t = Instant::now();
        println!("==================== {name} ====================");
        println!("{}", driver(scale));
        println!("[{name} took {:.1?}]\n", t.elapsed());
        ran += 1;
    }
    if ran == 0 {
        eprintln!(
            "unknown experiment(s): {wanted:?}\nknown: {}",
            drivers
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
    eprintln!("[artifact cache: {}]", ArtifactCache::global().stats());
}
