//! Regenerates the paper's tables and figures.
//!
//! ```text
//! paper_tables [--small] [--subset] [--node NAME] [--jobs N] [--trace FILE] [--report FILE] <experiment | all>
//! ```
//!
//! Experiments: table1 table2 table3 table4 table5 table6 table7 table8
//! table9 table11 table12 table15 table16 table17 fig3 fig4 fig5 fig6
//! fig10 fig11 s5 gmi (the G-MI extension study).
//!
//! `--small` runs the reduced benchmark circuits (seconds); the default
//! paper scale regenerates the full study (minutes). `--subset` selects
//! the flow-heavy smoke subset the `flow_bench` binary times.
//!
//! `--node NAME` retargets the run to any PDK in the process-node
//! registry (`45nm`, `7nm`, `fdsoi-miv`, plus any plug-in). With
//! `--node` the experiment registry is the node-generic smoke subset;
//! at the two paper nodes its stdout is byte-identical to the classic
//! drivers, and any other backend renders generic tables for its node.
//!
//! `--jobs N` (default: the host's available parallelism) fans the
//! selected drivers' flow matrix out across N workers *before* the
//! drivers run: the workers pre-warm the process-wide `ArtifactCache`
//! through the work-stealing `ParallelExecutor`, then each driver
//! formats its table from bit-identical cache hits. stdout is therefore
//! **byte-identical** for every `--jobs` value (`--jobs 1` skips the
//! fan-out entirely); all diagnostics — per-driver timings, executor
//! utilization, cache statistics — go to stderr.
//!
//! `--deadline-s N` puts the pre-warm fan-out under a whole-run
//! wall-clock budget through the resource governor: when the budget
//! expires the executor cancels cooperatively and returns whatever
//! points completed. stdout is still byte-identical — a driver whose
//! points were cancelled simply recomputes them serially — so the flag
//! bounds only the parallel leg, never the answer. Fractional seconds
//! are accepted. With `--jobs 1` there is no fan-out to govern and the
//! flag is a no-op.
//!
//! `--trace FILE` attaches a [`JsonlRecorder`] to the run: every flow
//! event (stage spans, retries, checkpoints, cache traffic, steals) is
//! appended to FILE as one JSON object per line. `--report FILE`
//! aggregates the same events through a [`MetricsRegistry`] and writes
//! the resulting `RunReport` JSON. Both are diagnostics: stdout stays
//! byte-identical whether or not they are given.
//!
//! `--cache-dir DIR` attaches a persistent [`DiskStore`] under DIR: cell
//! libraries and flow results survive the process, so a second
//! invocation with the same DIR re-characterizes nothing and reprints
//! the same tables from verified disk hits. The store is self-checking —
//! a corrupt or truncated entry is quarantined and rebuilt, never
//! served — and any I/O trouble degrades the run back to the in-memory
//! tier, so `--cache-dir` can never change stdout, only the time it
//! takes to produce it.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use m3d_bench::{cli, node_drivers, paper_drivers, SMOKE_SUBSET};
use m3d_netlist::BenchScale;
use m3d_tech::NodeId;
use monolith3d::{
    experiments, ArtifactCache, DiskStore, ExperimentPlan, JsonlRecorder, MetricsRegistry,
    ParallelExecutor, Recorder, RunGovernor, Tee,
};

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: paper_tables [--small] [--subset] [--node NAME] [--jobs N] \
         [--deadline-s N] [--cache-dir DIR] [--trace FILE] [--report FILE] <experiment | all>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut small = false;
    let mut subset = false;
    let mut node: Option<NodeId> = None;
    let mut jobs = ParallelExecutor::default_workers();
    let mut deadline: Option<Duration> = None;
    let mut trace_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => small = true,
            "--subset" => subset = true,
            "--node" => {
                node = Some(
                    cli::parse_node(it.next().map(String::as_str))
                        .unwrap_or_else(|e| usage_exit(&e.to_string())),
                );
            }
            "--jobs" => {
                jobs = cli::parse_jobs(it.next().map(String::as_str))
                    .unwrap_or_else(|e| usage_exit(&e.to_string()));
            }
            "--deadline-s" => {
                deadline = Some(
                    cli::parse_deadline(it.next().map(String::as_str))
                        .unwrap_or_else(|e| usage_exit(&e.to_string())),
                );
            }
            "--cache-dir" => {
                cache_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--cache-dir needs a directory"))
                        .clone(),
                );
            }
            "--trace" => {
                trace_path = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--trace needs a file path"))
                        .clone(),
                );
            }
            "--report" => {
                report_path = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--report needs a file path"))
                        .clone(),
                );
            }
            other => {
                if let Some(v) = other.strip_prefix("--node=") {
                    node = Some(
                        cli::parse_node(Some(v)).unwrap_or_else(|e| usage_exit(&e.to_string())),
                    );
                } else if let Some(v) = other.strip_prefix("--jobs=") {
                    jobs = cli::parse_jobs(Some(v)).unwrap_or_else(|e| usage_exit(&e.to_string()));
                } else if let Some(v) = other.strip_prefix("--deadline-s=") {
                    deadline = Some(
                        cli::parse_deadline(Some(v)).unwrap_or_else(|e| usage_exit(&e.to_string())),
                    );
                } else if let Some(v) = other.strip_prefix("--cache-dir=") {
                    cache_dir = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--trace=") {
                    trace_path = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--report=") {
                    report_path = Some(v.to_string());
                } else if other.starts_with("--") {
                    usage_exit(&format!("unknown flag '{other}'"));
                } else {
                    wanted.push(other.to_string());
                }
            }
        }
    }

    // Attach the requested sinks before any flow runs so the trace and
    // report see the whole process, fan-out included. The executor and
    // every supervisor inherit the cache's recorder.
    let jsonl = trace_path.as_deref().map(|p| {
        Arc::new(
            JsonlRecorder::create(Path::new(p))
                .unwrap_or_else(|e| usage_exit(&format!("cannot create trace file '{p}': {e}"))),
        )
    });
    let metrics = report_path
        .as_deref()
        .map(|_| Arc::new(MetricsRegistry::new()));
    let recorder: Option<Arc<dyn Recorder>> = match (&jsonl, &metrics) {
        (Some(j), Some(m)) => Some(Arc::new(Tee::new(
            Arc::clone(j) as Arc<dyn Recorder>,
            Arc::clone(m) as Arc<dyn Recorder>,
        ))),
        (Some(j), None) => Some(Arc::clone(j) as Arc<dyn Recorder>),
        (None, Some(m)) => Some(Arc::clone(m) as Arc<dyn Recorder>),
        (None, None) => None,
    };
    if let Some(r) = recorder {
        ArtifactCache::global().set_recorder(r);
    }
    // The disk tier goes in after the recorder so its events land in the
    // same trace, and before the fan-out so the workers read and publish
    // through it. stdout is unaffected either way: a verified disk hit
    // is bit-identical to a rebuild, and a store that cannot be read or
    // written degrades back to the memory tier.
    if let Some(d) = &cache_dir {
        ArtifactCache::global().attach_disk(DiskStore::open(Path::new(d)));
        eprintln!("[persistent artifact store at {d}]");
    }

    let scale = if small {
        BenchScale::Small
    } else {
        BenchScale::Paper
    };
    if subset {
        wanted.extend(SMOKE_SUBSET.iter().map(|s| s.to_string()));
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }

    // Without `--node`, selection goes over the full classic registry
    // (stdout bytes pinned by the golden tests). With `--node`, it goes
    // over the node-generic smoke drivers retargeted to the chosen PDK.
    let run_all = wanted.iter().any(|w| w == "all");
    type Run = (&'static str, Box<dyn Fn() -> String>);
    let (known, selected): (Vec<&'static str>, Vec<Run>) = match node {
        None => {
            let drivers = paper_drivers();
            (
                drivers.iter().map(|(n, _)| *n).collect(),
                drivers
                    .iter()
                    .filter(|(name, _)| run_all || wanted.iter().any(|w| w == name))
                    .map(|&(name, driver)| {
                        (
                            name,
                            Box::new(move || driver(scale)) as Box<dyn Fn() -> String>,
                        )
                    })
                    .collect(),
            )
        }
        Some(nid) => {
            let drivers = node_drivers();
            (
                drivers.iter().map(|(n, _)| *n).collect(),
                drivers
                    .iter()
                    .filter(|(name, _)| run_all || wanted.iter().any(|w| w == name))
                    .map(|&(name, driver)| {
                        (
                            name,
                            Box::new(move || driver(nid, scale)) as Box<dyn Fn() -> String>,
                        )
                    })
                    .collect(),
            )
        }
    };
    if selected.is_empty() {
        eprintln!(
            "unknown experiment(s): {wanted:?}\nknown: {}",
            known.join(" ")
        );
        std::process::exit(2);
    }

    // Fan the selected drivers' flow matrix out first, so the serial
    // formatting pass below hits a warm cache. `--jobs 1` skips this:
    // the plan would run the exact same flows the drivers are about to
    // run, in the same order, for no gain.
    if jobs > 1 {
        let mut plan = ExperimentPlan::new();
        for (name, _) in &selected {
            plan.merge(match node {
                None => experiments::plan_for(name, scale),
                Some(nid) => experiments::plan_for_at(name, scale, nid),
            });
        }
        if !plan.is_empty() {
            eprintln!(
                "[fanning {} flow points out across {jobs} workers]",
                plan.len()
            );
            let t = Instant::now();
            match deadline {
                // A budgeted fan-out runs through the governor: on
                // expiry the executor cancels cooperatively and the
                // drivers below recompute whatever is missing serially,
                // so stdout never changes — only how much of the warm-up
                // finished in time.
                Some(budget) => {
                    let gov = RunGovernor::new().with_run_deadline(budget);
                    let report = ParallelExecutor::new(jobs).run_governed(&plan, &gov);
                    eprintln!(
                        "[executor: {} of {} points in {:.1} s under a {:.1} s budget{}]",
                        report.done_count(),
                        plan.len(),
                        t.elapsed().as_secs_f64(),
                        budget.as_secs_f64(),
                        if report.is_partial() {
                            "; budget expired, drivers recompute the rest"
                        } else {
                            ""
                        }
                    );
                    if let Some(e) = report.first_error() {
                        eprintln!("[executor: a flow point failed: {e}]");
                    }
                }
                None => {
                    let report = ParallelExecutor::new(jobs).run(&plan);
                    let util = report.utilization();
                    eprintln!(
                        "[executor: {} points in {:.1} s; worker utilization {}]",
                        report.ok_count(),
                        t.elapsed().as_secs_f64(),
                        util.iter()
                            .map(|u| format!("{:.0}%", u * 100.0))
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    if let Some(e) = report.first_error() {
                        // The responsible driver will hit the same failure
                        // serially and panic with full context.
                        eprintln!("[executor: a flow point failed: {e}]");
                    }
                }
            }
        }
    }

    for (name, run) in &selected {
        let t = Instant::now();
        println!("==================== {name} ====================");
        println!("{}", run());
        eprintln!("[{name} took {:.1?}]", t.elapsed());
    }
    eprintln!("[artifact cache: {}]", ArtifactCache::global().stats());

    if let (Some(j), Some(p)) = (&jsonl, &trace_path) {
        match j.flush() {
            Ok(()) => eprintln!("[wrote event trace to {p}]"),
            Err(e) => eprintln!("[trace flush to {p} failed: {e}]"),
        }
    }
    if let (Some(m), Some(p)) = (&metrics, &report_path) {
        let json = m.report().to_json();
        match std::fs::write(p, &json) {
            Ok(()) => eprintln!("[wrote run report to {p}]"),
            Err(e) => eprintln!("[run report write to {p} failed: {e}]"),
        }
    }
}
