//! Wall-clock smoke benchmark of the flow engine's memo layer and of
//! the work-stealing parallel executor.
//!
//! ```text
//! flow_bench [output.json] [--node NAME] [--jobs N] [--deadline-s N] [--report FILE] [--cache-dir DIR]
//! ```
//!
//! Five timed legs, all on the `paper_tables` smoke subset
//! (`SMOKE_SUBSET`) at reduced benchmark scale. `--node NAME` retargets
//! every leg to any PDK in the process-node registry (the disk-warm
//! child re-executes with the same node, so the cross-process leg
//! serves that node's artifacts):
//!
//! 1. **cold serial** — cleared `ArtifactCache`, drivers run serially;
//!    every library build and flow executes.
//! 2. **warm serial** — the same drivers against the now-primed cache;
//!    completed results are shared.
//! 3. **cold parallel** — cache cleared again; the subset's flow matrix
//!    fans out across `--jobs` workers (default: the host's available
//!    parallelism) through the `ParallelExecutor`, then the drivers
//!    format from the warmed cache.
//! 4. **disk cold** — memory tier cleared, a persistent `DiskStore`
//!    attached over an empty directory (`--cache-dir DIR`, default: a
//!    scratch directory removed afterwards); the serial suite runs and
//!    publishes every artifact to disk.
//! 5. **disk warm, fresh process** — the binary re-executes itself with
//!    an empty memory tier and the now-populated store directory; the
//!    child's suite must characterize **zero** libraries — everything is
//!    served from verified disk entries across a real process boundary.
//!
//! Cache counters are reported **per leg** via `CacheStats::delta` —
//! the raw counters are cumulative over the process, so labelling them
//! as a phase's own (as an earlier version did for its warm leg)
//! misreports every phase after the first. The warm-over-cold speedup
//! is reported as `null` when the warm time is below `TIMER_FLOOR_S`:
//! a ratio against a denominator of a few dozen microseconds is timer
//! noise, not a measurement.
//!
//! A fourth, **untimed** leg replays the cold-parallel workload with a
//! `MetricsRegistry` attached and writes the resulting `RunReport`
//! next to the benchmark JSON (default `BENCH_flow_report.json`,
//! override with `--report FILE`). Keeping it outside the timed window
//! means the three benchmark legs above run on the `NullRecorder` fast
//! path, so the numbers stay comparable against uninstrumented
//! baselines, while the report still describes a real cold run.
//!
//! Another untimed leg replays the same plan through the resource
//! governor (`ParallelExecutor::run_governed`) under a whole-run
//! wall-clock budget — `--deadline-s N`, default 120 s — and records
//! the typed per-point outcomes (`done` / `failed` / `cancelled` /
//! `deadline_exceeded` / `drained`) in the `governed` section of the
//! benchmark JSON. Over the warm cache every point completes well
//! inside the default budget, so the leg doubles as a regression check
//! that governance overhead never cancels an unconstrained run; a tight
//! explicit budget shows the partial-result path instead.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use m3d_bench::{cli, node_drivers, paper_drivers, SMOKE_SUBSET};
use m3d_netlist::BenchScale;
use m3d_tech::NodeId;
use monolith3d::{
    experiments, observe, ArtifactCache, CacheStats, DiskStore, ExperimentPlan, MetricsRegistry,
    ParallelExecutor, RunGovernor,
};

/// Default whole-run budget for the governed leg: generous enough that
/// a warm-cache replay always completes, so the default report shows
/// governance overhead, not governance kicking in.
const DEFAULT_GOVERNED_BUDGET: Duration = Duration::from_secs(120);

/// Durations below this are dominated by timer resolution and
/// scheduling jitter; ratios against them are meaningless.
const TIMER_FLOOR_S: f64 = 1e-3;

/// One suite entry: a smoke-subset name plus the closure that runs it.
type Run = (&'static str, Box<dyn Fn() -> String>);

/// The smoke subset bound to a node: the classic `paper_tables` drivers
/// at the 45 nm default, the node-generic drivers retargeted to any
/// other registered PDK. Either way the names are exactly
/// `SMOKE_SUBSET`, so cold/warm comparisons time the same work.
fn suite_runs(node: Option<NodeId>) -> Vec<Run> {
    match node {
        None => paper_drivers()
            .into_iter()
            .filter(|(name, _)| SMOKE_SUBSET.contains(name))
            .map(|(name, driver)| {
                (
                    name,
                    Box::new(move || driver(BenchScale::Small)) as Box<dyn Fn() -> String>,
                )
            })
            .collect(),
        Some(nid) => node_drivers()
            .into_iter()
            .map(|(name, driver)| {
                (
                    name,
                    Box::new(move || driver(nid, BenchScale::Small)) as Box<dyn Fn() -> String>,
                )
            })
            .collect(),
    }
}

/// Runs the smoke subset once, returning the wall-clock seconds.
fn run_suite(runs: &[Run]) -> f64 {
    let t = Instant::now();
    for (name, run) in runs {
        let out = run();
        assert!(!out.is_empty(), "driver '{name}' produced no output");
    }
    t.elapsed().as_secs_f64()
}

fn stats_json(s: &CacheStats) -> String {
    format!(
        "{{\"library_builds\": {}, \"library_hits\": {}, \"library_evictions\": {}, \
         \"flow_stores\": {}, \"flow_hits\": {}, \"flow_misses\": {}, \"flow_evictions\": {}, \
         \"disk_hits\": {}, \"disk_misses\": {}, \"disk_stores\": {}, \"disk_evictions\": {}, \
         \"disk_quarantined\": {}, \"store_degraded\": {}}}",
        s.library_builds,
        s.library_hits,
        s.library_evictions,
        s.flow_stores,
        s.flow_hits,
        s.flow_misses,
        s.flow_evictions,
        s.disk_hits,
        s.disk_misses,
        s.disk_stores,
        s.disk_evictions,
        s.disk_quarantined,
        s.store_degraded
    )
}

fn f64_list(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x:.3}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: flow_bench [output.json] [--node NAME] [--jobs N] [--deadline-s N] \
         [--report FILE] [--cache-dir DIR]"
    );
    std::process::exit(2);
}

/// Fresh-process half of the disk-warm leg: the parent re-executes this
/// binary with `--disk-warm-worker=DIR` (plus its own `--node`, if any)
/// so the warm numbers cross a real process boundary — empty memory
/// tier, store state only on disk. The child prints `key=value` lines
/// on stdout for the parent to parse.
fn disk_warm_worker(dir: &Path, node: Option<NodeId>) -> ! {
    let cache = ArtifactCache::global();
    cache.clear();
    cache.attach_disk(DiskStore::open(dir));
    let runs = suite_runs(node);
    let warm_s = run_suite(&runs);
    let s = cache.stats();
    println!("disk_warm_s={warm_s:.6}");
    println!("library_builds={}", s.library_builds);
    println!("disk_hits={}", s.disk_hits);
    println!("disk_quarantined={}", s.disk_quarantined);
    println!("store_degraded={}", s.store_degraded);
    std::process::exit(0);
}

/// Parsed result of the re-executed disk-warm child.
struct DiskWarm {
    warm_s: f64,
    library_builds: u64,
    disk_hits: u64,
}

fn spawn_disk_warm_child(dir: &Path, node: Option<NodeId>) -> DiskWarm {
    let exe = std::env::current_exe().expect("own executable path");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg(format!("--disk-warm-worker={}", dir.display()));
    if let Some(nid) = node {
        // The child must rebuild the same node's suite, or the warm leg
        // would miss every key the parent stored.
        cmd.arg(format!("--node={}", nid.label()));
    }
    let out = cmd.output().expect("spawn disk-warm child");
    assert!(
        out.status.success(),
        "disk-warm child failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| -> f64 {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
            .unwrap_or_else(|| panic!("child output missing '{key}=':\n{stdout}"))
    };
    DiskWarm {
        warm_s: field("disk_warm_s"),
        library_builds: field("library_builds") as u64,
        disk_hits: field("disk_hits") as u64,
    }
}

/// `BENCH_flow.json` -> `BENCH_flow_report.json`; non-`.json` paths
/// get `.report.json` appended.
fn default_report_path(out_path: &str) -> String {
    match out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}_report.json"),
        None => format!("{out_path}.report.json"),
    }
}

fn main() {
    let mut out_path = "BENCH_flow.json".to_string();
    let mut report_path: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut node: Option<NodeId> = None;
    let mut worker_dir: Option<String> = None;
    let mut jobs = ParallelExecutor::default_workers();
    let mut deadline = DEFAULT_GOVERNED_BUDGET;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--node" {
            node = Some(
                cli::parse_node(it.next().as_deref())
                    .unwrap_or_else(|e| usage_exit(&e.to_string())),
            );
        } else if let Some(v) = a.strip_prefix("--node=") {
            node = Some(cli::parse_node(Some(v)).unwrap_or_else(|e| usage_exit(&e.to_string())));
        } else if a == "--jobs" {
            jobs = cli::parse_jobs(it.next().as_deref())
                .unwrap_or_else(|e| usage_exit(&e.to_string()));
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = cli::parse_jobs(Some(v)).unwrap_or_else(|e| usage_exit(&e.to_string()));
        } else if a == "--deadline-s" {
            deadline = cli::parse_deadline(it.next().as_deref())
                .unwrap_or_else(|e| usage_exit(&e.to_string()));
        } else if let Some(v) = a.strip_prefix("--deadline-s=") {
            deadline = cli::parse_deadline(Some(v)).unwrap_or_else(|e| usage_exit(&e.to_string()));
        } else if a == "--report" {
            report_path = Some(
                it.next()
                    .unwrap_or_else(|| usage_exit("--report needs a file path")),
            );
        } else if let Some(v) = a.strip_prefix("--report=") {
            report_path = Some(v.to_string());
        } else if a == "--cache-dir" {
            cache_dir = Some(
                it.next()
                    .unwrap_or_else(|| usage_exit("--cache-dir needs a directory")),
            );
        } else if let Some(v) = a.strip_prefix("--cache-dir=") {
            cache_dir = Some(v.to_string());
        } else if let Some(v) = a.strip_prefix("--disk-warm-worker=") {
            // Dispatch after the loop: the child's `--node` flag may
            // follow this one on the command line.
            worker_dir = Some(v.to_string());
        } else if a.starts_with("--") {
            usage_exit(&format!("unknown flag '{a}'"));
        } else {
            out_path = a;
        }
    }
    if let Some(dir) = worker_dir {
        disk_warm_worker(Path::new(&dir), node);
    }
    let report_path = report_path.unwrap_or_else(|| default_report_path(&out_path));
    let runs = suite_runs(node);
    let cache = ArtifactCache::global();

    // Leg 1: cold serial.
    cache.clear();
    let serial_cold_s = run_suite(&runs);
    let cold_stats = cache.stats(); // delta from zero: clear() reset it
    eprintln!("[cold serial suite: {serial_cold_s:.3} s; {cold_stats}]");

    // Leg 2: warm serial — report the *delta* this leg contributed, not
    // the cumulative process counters.
    let before_warm = cache.stats();
    let warm_s = run_suite(&runs);
    let warm_stats = cache.stats().delta(&before_warm);
    eprintln!("[warm serial suite: {warm_s:.3} s; {warm_stats}]");
    assert_eq!(
        warm_stats.flow_misses, 0,
        "a fully-warm suite must not miss the flow cache"
    );

    // Leg 3: cold parallel — executor fan-out plus the drivers'
    // formatting pass, timed together for a fair serial comparison.
    cache.clear();
    let mut plan = ExperimentPlan::new();
    for name in SMOKE_SUBSET {
        plan.merge(match node {
            None => experiments::plan_for(name, BenchScale::Small),
            Some(nid) => experiments::plan_for_at(name, BenchScale::Small, nid),
        });
    }
    let t = Instant::now();
    let report = ParallelExecutor::new(jobs).run(&plan);
    if let Some(e) = report.first_error() {
        panic!("parallel flow point failed: {e}");
    }
    run_suite(&runs);
    let parallel_cold_s = t.elapsed().as_secs_f64();
    let parallel_stats = cache.stats();
    let utilization = report.utilization();
    eprintln!(
        "[cold parallel suite ({jobs} jobs): {parallel_cold_s:.3} s; {parallel_stats}; \
         worker utilization [{}]]",
        f64_list(&utilization)
    );

    // Governed leg (untimed): the same plan through the resource
    // governor under a whole-run budget, over the cache leg 3 just
    // warmed. Outcome counts land in the JSON; with the generous
    // default budget every point must come back `done`, pinning the
    // invariant that governance never cancels an unconstrained run.
    let gov = RunGovernor::new().with_run_deadline(deadline);
    let governed = ParallelExecutor::new(jobs).run_governed(&plan, &gov);
    eprintln!(
        "[governed replay ({:.1} s budget): {} done, {} cancelled, {} deadline-exceeded, \
         {} drained, {} failed]",
        deadline.as_secs_f64(),
        governed.done_count(),
        governed.count("cancelled"),
        governed.count("deadline_exceeded"),
        governed.count("drained"),
        governed.count("failed"),
    );
    if deadline == DEFAULT_GOVERNED_BUDGET {
        assert_eq!(
            governed.done_count(),
            plan.len(),
            "a warm governed replay under the default budget must complete every point"
        );
    }

    let warm_speedup = if warm_s >= TIMER_FLOOR_S {
        Some(serial_cold_s / warm_s)
    } else {
        None
    };
    let warm_speedup_json = warm_speedup
        .map(|s| format!("{s:.1}"))
        .unwrap_or_else(|| "null".to_string());
    let parallel_speedup = serial_cold_s / parallel_cold_s.max(TIMER_FLOOR_S);

    // Leg 4 (untimed): replay the cold-parallel workload with metrics
    // attached, then detach so the instrumentation cannot leak into any
    // later use of the process-wide cache.
    let metrics = Arc::new(MetricsRegistry::new());
    cache.set_recorder(Arc::clone(&metrics) as Arc<dyn monolith3d::Recorder>);
    cache.clear();
    let replay = ParallelExecutor::new(jobs).run(&plan);
    if let Some(e) = replay.first_error() {
        panic!("instrumented flow point failed: {e}");
    }
    run_suite(&runs);
    cache.set_recorder(observe::null());
    let run_report = metrics.report();
    eprintln!(
        "[instrumented replay: {} stages started, {} cache hits]",
        run_report.counter("stage_started"),
        run_report.counter("cache_hit_library") + run_report.counter("cache_hit_flow"),
    );
    std::fs::write(&report_path, run_report.to_json())
        .unwrap_or_else(|e| panic!("write {report_path}: {e}"));
    eprintln!("[wrote run report to {report_path}]");

    // Leg 5: disk cold — empty memory tier AND empty store directory;
    // the suite builds everything once and publishes it to disk.
    let (store_dir, scratch_store): (PathBuf, bool) = match &cache_dir {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("m3d-flow-bench-store-{}", std::process::id())),
            true,
        ),
    };
    let _ = std::fs::remove_dir_all(&store_dir); // cold means cold
    cache.clear();
    cache.attach_disk(DiskStore::open(&store_dir));
    let before_disk = cache.stats();
    let disk_cold_s = run_suite(&runs);
    let disk_cold_stats = cache.stats().delta(&before_disk);
    eprintln!("[disk cold suite: {disk_cold_s:.3} s; {disk_cold_stats}]");
    assert_eq!(
        disk_cold_stats.store_degraded, 0,
        "store must stay healthy on a writable directory"
    );

    // Leg 6: disk warm across a real process boundary — a child process
    // starts with nothing in memory and must serve the whole suite from
    // verified disk entries, characterizing zero libraries.
    let dw = spawn_disk_warm_child(&store_dir, node);
    eprintln!(
        "[disk warm suite (fresh process): {:.3} s; {} library builds, {} disk hits]",
        dw.warm_s, dw.library_builds, dw.disk_hits
    );
    assert_eq!(
        dw.library_builds, 0,
        "a fresh process over a warm store must not re-characterize any library"
    );
    assert!(dw.disk_hits > 0, "warm leg must actually read the store");
    cache.detach_disk();
    if scratch_store {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
    let disk_warm_speedup = if dw.warm_s >= TIMER_FLOOR_S {
        Some(serial_cold_s / dw.warm_s)
    } else {
        None
    };
    let disk_warm_speedup_json = disk_warm_speedup
        .map(|s| format!("{s:.1}"))
        .unwrap_or_else(|| "null".to_string());

    let suite = SMOKE_SUBSET
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let busy: Vec<f64> = report.workers.iter().map(|w| w.busy_s).collect();
    let json = format!(
        "{{\n  \"suite\": [{suite}],\n  \"scale\": \"small\",\n  \"jobs\": {jobs},\n  \
         \"host_cores\": {cores},\n  \"timer_floor_s\": {TIMER_FLOOR_S},\n  \
         \"serial_cold_s\": {serial_cold_s:.4},\n  \"warm_s\": {warm_s:.6},\n  \
         \"warm_speedup\": {warm_speedup_json},\n  \
         \"parallel_cold_s\": {parallel_cold_s:.4},\n  \
         \"parallel_speedup\": {parallel_speedup:.2},\n  \
         \"disk_cold_s\": {disk_cold_s:.4},\n  \
         \"disk_warm_fresh_process_s\": {disk_warm_s:.6},\n  \
         \"disk_warm_speedup\": {disk_warm_speedup_json},\n  \
         \"disk_warm_library_builds\": {dw_builds},\n  \
         \"governed\": {{\"deadline_s\": {gov_deadline:.3}, \"done\": {gov_done}, \
         \"failed\": {gov_failed}, \"cancelled\": {gov_cancelled}, \
         \"deadline_exceeded\": {gov_deadline_exceeded}, \"drained\": {gov_drained}, \
         \"partial\": {gov_partial}}},\n  \
         \"worker_busy_s\": [{busy_s}],\n  \"worker_utilization\": [{util}],\n  \
         \"cold_cache\": {cold},\n  \"warm_cache\": {warm},\n  \"parallel_cache\": {par},\n  \
         \"disk_cold_cache\": {disk_cold}\n}}\n",
        cores = ParallelExecutor::default_workers(),
        disk_warm_s = dw.warm_s,
        dw_builds = dw.library_builds,
        gov_deadline = deadline.as_secs_f64(),
        gov_done = governed.done_count(),
        gov_failed = governed.count("failed"),
        gov_cancelled = governed.count("cancelled"),
        gov_deadline_exceeded = governed.count("deadline_exceeded"),
        gov_drained = governed.count("drained"),
        gov_partial = governed.is_partial(),
        busy_s = f64_list(&busy),
        util = f64_list(&utilization),
        cold = stats_json(&cold_stats),
        warm = stats_json(&warm_stats),
        par = stats_json(&parallel_stats),
        disk_cold = stats_json(&disk_cold_stats),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));

    println!(
        "wrote {out_path}: cold {serial_cold_s:.3} s, warm {warm_s:.3} s ({}), \
         parallel {parallel_cold_s:.3} s ({parallel_speedup:.2}x, {jobs} jobs), \
         disk cold {disk_cold_s:.3} s, disk warm fresh-process {:.3} s ({})",
        warm_speedup
            .map(|s| format!("{s:.1}x"))
            .unwrap_or_else(|| "below timer floor".to_string()),
        dw.warm_s,
        disk_warm_speedup
            .map(|s| format!("{s:.1}x"))
            .unwrap_or_else(|| "below timer floor".to_string()),
    );
    if let Some(s) = warm_speedup {
        assert!(
            s >= 2.0,
            "warm suite must be at least 2x faster than cold (got {s:.1}x)"
        );
    }
}
