//! Cold/warm wall-clock smoke benchmark of the flow engine's memo layer.
//!
//! ```text
//! flow_bench [output.json]
//! ```
//!
//! Runs the `paper_tables` smoke subset (see `SMOKE_SUBSET`) twice at
//! reduced benchmark scale: once against a cleared `ArtifactCache`
//! (cold — every library build and flow executes) and once against the
//! now-primed cache (warm — completed results are shared). Writes the
//! two suite times, their ratio and the cache counters to
//! `BENCH_flow.json` (or the path given as the first argument).

use std::time::Instant;

use m3d_bench::{paper_drivers, PaperDriver, SMOKE_SUBSET};
use m3d_netlist::BenchScale;
use monolith3d::{ArtifactCache, CacheStats};

/// Runs the smoke subset once, returning the wall-clock seconds.
fn run_suite(drivers: &[PaperDriver]) -> f64 {
    let t = Instant::now();
    for name in SMOKE_SUBSET {
        let (_, driver) = drivers
            .iter()
            .find(|(n, _)| *n == name)
            .expect("subset drivers are registered");
        let out = driver(BenchScale::Small);
        assert!(!out.is_empty(), "driver '{name}' produced no output");
    }
    t.elapsed().as_secs_f64()
}

fn stats_json(s: &CacheStats) -> String {
    format!(
        "{{\"library_builds\": {}, \"library_hits\": {}, \"library_evictions\": {}, \
         \"flow_stores\": {}, \"flow_hits\": {}, \"flow_misses\": {}, \"flow_evictions\": {}}}",
        s.library_builds,
        s.library_hits,
        s.library_evictions,
        s.flow_stores,
        s.flow_hits,
        s.flow_misses,
        s.flow_evictions
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_flow.json".to_string());
    let drivers = paper_drivers();
    let cache = ArtifactCache::global();

    cache.clear();
    let cold_s = run_suite(&drivers);
    let cold_stats = cache.stats();
    eprintln!("[cold suite: {cold_s:.3} s; {cold_stats}]");

    let warm_s = run_suite(&drivers);
    let warm_stats = cache.stats();
    eprintln!("[warm suite: {warm_s:.3} s; {warm_stats}]");

    let speedup = cold_s / warm_s.max(1e-9);
    let suite = SMOKE_SUBSET
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"suite\": [{suite}],\n  \"scale\": \"small\",\n  \"cold_s\": {cold_s:.4},\n  \"warm_s\": {warm_s:.6},\n  \"speedup\": {speedup:.1},\n  \"cold_cache\": {},\n  \"warm_cache\": {}\n}}\n",
        stats_json(&cold_stats),
        stats_json(&warm_stats)
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}: cold {cold_s:.3} s, warm {warm_s:.3} s ({speedup:.1}x)");
    assert!(
        speedup >= 2.0,
        "warm suite must be at least 2x faster than cold (got {speedup:.1}x)"
    );
}
