//! Wall-clock smoke benchmark of the flow engine's memo layer and of
//! the work-stealing parallel executor.
//!
//! ```text
//! flow_bench [output.json] [--jobs N] [--report FILE]
//! ```
//!
//! Three legs, all on the `paper_tables` smoke subset (`SMOKE_SUBSET`)
//! at reduced benchmark scale:
//!
//! 1. **cold serial** — cleared `ArtifactCache`, drivers run serially;
//!    every library build and flow executes.
//! 2. **warm serial** — the same drivers against the now-primed cache;
//!    completed results are shared.
//! 3. **cold parallel** — cache cleared again; the subset's flow matrix
//!    fans out across `--jobs` workers (default: the host's available
//!    parallelism) through the `ParallelExecutor`, then the drivers
//!    format from the warmed cache.
//!
//! Cache counters are reported **per leg** via `CacheStats::delta` —
//! the raw counters are cumulative over the process, so labelling them
//! as a phase's own (as an earlier version did for its warm leg)
//! misreports every phase after the first. The warm-over-cold speedup
//! is reported as `null` when the warm time is below `TIMER_FLOOR_S`:
//! a ratio against a denominator of a few dozen microseconds is timer
//! noise, not a measurement.
//!
//! A fourth, **untimed** leg replays the cold-parallel workload with a
//! `MetricsRegistry` attached and writes the resulting `RunReport`
//! next to the benchmark JSON (default `BENCH_flow_report.json`,
//! override with `--report FILE`). Keeping it outside the timed window
//! means the three benchmark legs above run on the `NullRecorder` fast
//! path, so the numbers stay comparable against uninstrumented
//! baselines, while the report still describes a real cold run.

use std::sync::Arc;
use std::time::Instant;

use m3d_bench::{cli, paper_drivers, PaperDriver, SMOKE_SUBSET};
use m3d_netlist::BenchScale;
use monolith3d::{
    experiments, observe, ArtifactCache, CacheStats, ExperimentPlan, MetricsRegistry,
    ParallelExecutor,
};

/// Durations below this are dominated by timer resolution and
/// scheduling jitter; ratios against them are meaningless.
const TIMER_FLOOR_S: f64 = 1e-3;

/// Runs the smoke subset once, returning the wall-clock seconds.
fn run_suite(drivers: &[PaperDriver]) -> f64 {
    let t = Instant::now();
    for name in SMOKE_SUBSET {
        let (_, driver) = drivers
            .iter()
            .find(|(n, _)| *n == name)
            .expect("subset drivers are registered");
        let out = driver(BenchScale::Small);
        assert!(!out.is_empty(), "driver '{name}' produced no output");
    }
    t.elapsed().as_secs_f64()
}

fn stats_json(s: &CacheStats) -> String {
    format!(
        "{{\"library_builds\": {}, \"library_hits\": {}, \"library_evictions\": {}, \
         \"flow_stores\": {}, \"flow_hits\": {}, \"flow_misses\": {}, \"flow_evictions\": {}}}",
        s.library_builds,
        s.library_hits,
        s.library_evictions,
        s.flow_stores,
        s.flow_hits,
        s.flow_misses,
        s.flow_evictions
    )
}

fn f64_list(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x:.3}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}\nusage: flow_bench [output.json] [--jobs N] [--report FILE]");
    std::process::exit(2);
}

/// `BENCH_flow.json` -> `BENCH_flow_report.json`; non-`.json` paths
/// get `.report.json` appended.
fn default_report_path(out_path: &str) -> String {
    match out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}_report.json"),
        None => format!("{out_path}.report.json"),
    }
}

fn main() {
    let mut out_path = "BENCH_flow.json".to_string();
    let mut report_path: Option<String> = None;
    let mut jobs = ParallelExecutor::default_workers();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--jobs" {
            jobs = cli::parse_jobs(it.next().as_deref())
                .unwrap_or_else(|e| usage_exit(&e.to_string()));
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = cli::parse_jobs(Some(v)).unwrap_or_else(|e| usage_exit(&e.to_string()));
        } else if a == "--report" {
            report_path = Some(
                it.next()
                    .unwrap_or_else(|| usage_exit("--report needs a file path")),
            );
        } else if let Some(v) = a.strip_prefix("--report=") {
            report_path = Some(v.to_string());
        } else if a.starts_with("--") {
            usage_exit(&format!("unknown flag '{a}'"));
        } else {
            out_path = a;
        }
    }
    let report_path = report_path.unwrap_or_else(|| default_report_path(&out_path));
    let drivers = paper_drivers();
    let cache = ArtifactCache::global();

    // Leg 1: cold serial.
    cache.clear();
    let serial_cold_s = run_suite(&drivers);
    let cold_stats = cache.stats(); // delta from zero: clear() reset it
    eprintln!("[cold serial suite: {serial_cold_s:.3} s; {cold_stats}]");

    // Leg 2: warm serial — report the *delta* this leg contributed, not
    // the cumulative process counters.
    let before_warm = cache.stats();
    let warm_s = run_suite(&drivers);
    let warm_stats = cache.stats().delta(&before_warm);
    eprintln!("[warm serial suite: {warm_s:.3} s; {warm_stats}]");
    assert_eq!(
        warm_stats.flow_misses, 0,
        "a fully-warm suite must not miss the flow cache"
    );

    // Leg 3: cold parallel — executor fan-out plus the drivers'
    // formatting pass, timed together for a fair serial comparison.
    cache.clear();
    let mut plan = ExperimentPlan::new();
    for name in SMOKE_SUBSET {
        plan.merge(experiments::plan_for(name, BenchScale::Small));
    }
    let t = Instant::now();
    let report = ParallelExecutor::new(jobs).run(&plan);
    if let Some(e) = report.first_error() {
        panic!("parallel flow point failed: {e}");
    }
    run_suite(&drivers);
    let parallel_cold_s = t.elapsed().as_secs_f64();
    let parallel_stats = cache.stats();
    let utilization = report.utilization();
    eprintln!(
        "[cold parallel suite ({jobs} jobs): {parallel_cold_s:.3} s; {parallel_stats}; \
         worker utilization [{}]]",
        f64_list(&utilization)
    );

    let warm_speedup = if warm_s >= TIMER_FLOOR_S {
        Some(serial_cold_s / warm_s)
    } else {
        None
    };
    let warm_speedup_json = warm_speedup
        .map(|s| format!("{s:.1}"))
        .unwrap_or_else(|| "null".to_string());
    let parallel_speedup = serial_cold_s / parallel_cold_s.max(TIMER_FLOOR_S);

    let suite = SMOKE_SUBSET
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let busy: Vec<f64> = report.workers.iter().map(|w| w.busy_s).collect();
    let json = format!(
        "{{\n  \"suite\": [{suite}],\n  \"scale\": \"small\",\n  \"jobs\": {jobs},\n  \
         \"host_cores\": {cores},\n  \"timer_floor_s\": {TIMER_FLOOR_S},\n  \
         \"serial_cold_s\": {serial_cold_s:.4},\n  \"warm_s\": {warm_s:.6},\n  \
         \"warm_speedup\": {warm_speedup_json},\n  \
         \"parallel_cold_s\": {parallel_cold_s:.4},\n  \
         \"parallel_speedup\": {parallel_speedup:.2},\n  \
         \"worker_busy_s\": [{busy_s}],\n  \"worker_utilization\": [{util}],\n  \
         \"cold_cache\": {cold},\n  \"warm_cache\": {warm},\n  \"parallel_cache\": {par}\n}}\n",
        cores = ParallelExecutor::default_workers(),
        busy_s = f64_list(&busy),
        util = f64_list(&utilization),
        cold = stats_json(&cold_stats),
        warm = stats_json(&warm_stats),
        par = stats_json(&parallel_stats),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));

    // Leg 4 (untimed): replay the cold-parallel workload with metrics
    // attached, then detach so the instrumentation cannot leak into any
    // later use of the process-wide cache.
    let metrics = Arc::new(MetricsRegistry::new());
    cache.set_recorder(Arc::clone(&metrics) as Arc<dyn monolith3d::Recorder>);
    cache.clear();
    let replay = ParallelExecutor::new(jobs).run(&plan);
    if let Some(e) = replay.first_error() {
        panic!("instrumented flow point failed: {e}");
    }
    run_suite(&drivers);
    cache.set_recorder(observe::null());
    let run_report = metrics.report();
    eprintln!(
        "[instrumented replay: {} stages started, {} cache hits]",
        run_report.counter("stage_started"),
        run_report.counter("cache_hit_library") + run_report.counter("cache_hit_flow"),
    );
    std::fs::write(&report_path, run_report.to_json())
        .unwrap_or_else(|e| panic!("write {report_path}: {e}"));
    eprintln!("[wrote run report to {report_path}]");

    println!(
        "wrote {out_path}: cold {serial_cold_s:.3} s, warm {warm_s:.3} s ({}), \
         parallel {parallel_cold_s:.3} s ({parallel_speedup:.2}x, {jobs} jobs)",
        warm_speedup
            .map(|s| format!("{s:.1}x"))
            .unwrap_or_else(|| "below timer floor".to_string()),
    );
    if let Some(s) = warm_speedup {
        assert!(
            s >= 2.0,
            "warm suite must be at least 2x faster than cold (got {s:.1}x)"
        );
    }
}
